//! Facade crate re-exporting the whole Artemis/CSE workspace.
//!
//! See [`cse_core`] for the paper's primary contribution (JoNM mutators and
//! the compilation-space formalization), [`cse_vm`] for the tiered language
//! virtual machine substrate, and the `examples/` directory for runnable
//! entry points.

#![forbid(unsafe_code)]

pub use cse_bytecode as bytecode;
pub use cse_core as core;
pub use cse_fuzz as fuzz;
pub use cse_lang as lang;
pub use cse_reduce as reduce;
pub use cse_vm as vm;
