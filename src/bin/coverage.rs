//! Coverage smoke driver: runs one campaign under the active
//! `CSE_COVERAGE` policy and reports the merged JIT-behavior coverage.
//!
//! ```text
//! coverage [kind]                    # default: hotspot
//! ```
//!
//! Environment:
//! * `CSE_COVERAGE` — `off|collect|guide` (the knob under test)
//! * `CSE_SEEDS`    — campaign seed budget (default 12)
//! * `CSE_JOBS`     — worker threads (default 1)
//!
//! Output is line-oriented for scripting (`ci.sh` asserts on it):
//! `cells N` is the merged global map's covered-cell count, `corpus N`
//! the minimized live corpus size, `digest X` the campaign digest.

use std::process::ExitCode;

use artemis_cse::core::campaign::{run_campaign, CampaignConfig};
use artemis_cse::vm::VmKind;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() -> ExitCode {
    let kind = match std::env::args().nth(1).as_deref() {
        None | Some("hotspot") => VmKind::HotSpotLike,
        Some("openj9") => VmKind::OpenJ9Like,
        Some("art") => VmKind::ArtLike,
        Some(other) => {
            eprintln!("coverage: unknown VM kind `{other}` (want hotspot|openj9|art)");
            return ExitCode::FAILURE;
        }
    };
    let seeds = env_u64("CSE_SEEDS", 12);
    let jobs = env_u64("CSE_JOBS", 1) as usize;
    let config = CampaignConfig::for_kind(kind, seeds).with_jobs(jobs);
    let result = run_campaign(&config);

    println!("kind {kind:?}");
    println!("seeds {}", result.totals.seeds);
    println!("mutants {}", result.totals.mutants);
    println!("bugs {}", result.bugs.len());
    println!("digest {:016x}", result.digest(&config));
    match &result.coverage {
        Some(state) => {
            println!("cells {}", state.cells());
            println!("corpus {}", state.corpus.len());
            println!("execs {}", state.execs);
            let per_1k = if state.execs == 0 {
                0.0
            } else {
                f64::from(state.cells()) * 1000.0 / state.execs as f64
            };
            println!("cells_per_1k_execs {per_1k:.2}");
            for (i, name) in ["baseline", "force_top", "force_t1"].iter().enumerate() {
                println!(
                    "variant {name} runs {} new_cells {}",
                    state.variant_runs[i], state.variant_new[i]
                );
            }
        }
        None => println!("cells 0"),
    }
    ExitCode::SUCCESS
}
