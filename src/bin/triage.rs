//! On-demand incident triage over a quarantine directory.
//!
//! Reads the self-contained `incident_*.mj` repro files a supervised
//! campaign quarantined, reconstructs the incidents (phase, seeds, VM
//! profile, panic payload, program source), and runs the same triage
//! pipeline a campaign runs at completion: signature-based dedup,
//! budget-bounded reduction, and flakiness re-execution. Reduced repros
//! are written back into the quarantine directory as
//! `triage_<signature>.mj` and the canonical report goes to stdout.
//!
//! ```text
//! triage [quarantine-dir]            # default: results/quarantine
//! ```
//!
//! Environment:
//! * `CSE_TRIAGE_STEPS`  — reduction step budget per report (default 1000)
//! * `CSE_TRIAGE_RERUNS` — re-executions per parallelism level (default 3)
//! * `CSE_JOBS`          — triage worker threads (default 1)
//! * `CSE_TRIAGE_CHAOS`  — `seed,after_ops`: re-arm the campaign's chaos
//!   fault injection so chaos incidents reproduce under replay
//!
//! The VM profile (kind, JIT flag, fuel, active bug set) is recovered
//! from the repro file headers, so triage replays incidents under the
//! same substrate that produced them.

use std::path::PathBuf;
use std::process::ExitCode;

use artemis_cse::core::{
    triage_incidents, ChaosConfig, HarnessIncident, IncidentPhase, TriageConfig,
};
use artemis_cse::vm::{BugId, FaultInjector, VmConfig, VmKind};

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results/quarantine".to_string());
    let dir = PathBuf::from(dir);
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("incident_") && n.ends_with(".mj"))
            })
            .collect(),
        Err(e) => {
            eprintln!("triage: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    // Lexicographic order keeps the batch (and the report digest)
    // independent of directory enumeration order.
    paths.sort();
    if paths.is_empty() {
        println!("triage: no quarantined incidents in {}", dir.display());
        return ExitCode::SUCCESS;
    }

    let mut incidents = Vec::new();
    let mut vm: Option<VmConfig> = None;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(text) => match parse_repro(&text) {
                Some((incident, file_vm)) => {
                    incidents.push(incident);
                    vm.get_or_insert(file_vm);
                }
                None => eprintln!("triage: skipping unparsable {}", path.display()),
            },
            Err(e) => eprintln!("triage: skipping {}: {e}", path.display()),
        }
    }
    if incidents.is_empty() {
        eprintln!("triage: no parsable incidents in {}", dir.display());
        return ExitCode::FAILURE;
    }

    let mut tcfg = TriageConfig {
        vm: vm.expect("vm recovered alongside first incident"),
        max_reduce_steps: env_usize("CSE_TRIAGE_STEPS").unwrap_or(1000),
        reruns: env_usize("CSE_TRIAGE_RERUNS").unwrap_or(3),
        retries: 1,
        jobs: env_usize("CSE_JOBS").unwrap_or(1).max(1),
    };
    tcfg.vm.wall_clock_limit = None;
    let chaos = std::env::var("CSE_TRIAGE_CHAOS").ok().and_then(|v| {
        let (seed, ops) = v.split_once(',')?;
        Some(ChaosConfig { panic_on_seed: seed.parse().ok()?, after_ops: ops.parse().ok()? })
    });

    let report = triage_incidents(&incidents, &tcfg, chaos, Some(&dir));
    print!("{}", report.render());
    println!("digest {:016x}", report.digest());
    ExitCode::SUCCESS
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Reconstructs an incident (and the VM profile that produced it) from a
/// quarantine repro file's comment headers.
fn parse_repro(text: &str) -> Option<(HarnessIncident, VmConfig)> {
    let mut phase = None;
    let mut seed = None;
    let mut rng_seed = None;
    let mut iteration = None;
    let mut payload = Vec::new();
    let mut kind = None;
    let mut jit_enabled = true;
    let mut fuel = None;
    let mut bugs: Option<Vec<BugId>> = None;
    let mut no_source = false;
    let mut source_at = None;
    for (offset, line) in line_offsets(text) {
        let Some(rest) = line.strip_prefix("// ") else {
            // First non-header line: the program source starts here.
            source_at = Some(offset);
            break;
        };
        if let Some(v) = rest.strip_prefix("phase: ") {
            phase = IncidentPhase::from_name(v.trim());
        } else if let Some(v) = rest.strip_prefix("campaign seed: ") {
            seed = v.trim().parse::<u64>().ok();
        } else if let Some(v) = rest.strip_prefix("rng seed: ") {
            rng_seed = v.trim().parse::<u64>().ok();
        } else if let Some(v) = rest.strip_prefix("mutation iteration: ") {
            iteration = v.trim().parse::<usize>().ok();
        } else if let Some(v) = rest.strip_prefix("panic: ") {
            payload.push(v.to_string());
        } else if let Some(v) = rest.strip_prefix("vm profile: ") {
            let head = v.split_whitespace().next().unwrap_or("");
            kind = match head {
                "HotSpotLike" => Some(VmKind::HotSpotLike),
                "OpenJ9Like" => Some(VmKind::OpenJ9Like),
                "ArtLike" => Some(VmKind::ArtLike),
                _ => None,
            };
            jit_enabled = v.contains("jit: true");
            fuel =
                v.split("fuel: ").nth(1).and_then(|t| t.trim_end_matches(')').parse::<u64>().ok());
        } else if let Some(v) = rest.strip_prefix("active bugs: ") {
            let v = v.trim();
            bugs = Some(if v == "none" {
                Vec::new()
            } else {
                v.split(',')
                    .filter_map(|name| {
                        BugId::all().iter().copied().find(|b| format!("{b:?}") == name.trim())
                    })
                    .collect()
            });
        } else if rest.trim() == "(no source captured)" {
            no_source = true;
        }
    }
    let incident = HarnessIncident {
        phase: phase?,
        seed: seed?,
        rng_seed: rng_seed?,
        iteration,
        payload: payload.join("\n"),
        source: if no_source { None } else { source_at.map(|at| text[at..].to_string()) },
    };
    let mut vm = VmConfig::correct(kind?);
    vm.jit_enabled = jit_enabled;
    if let Some(fuel) = fuel {
        vm.fuel = fuel;
    }
    if let Some(bugs) = bugs {
        vm.faults = FaultInjector::with(bugs);
    }
    Some((incident, vm))
}

/// `(byte offset, line)` pairs — lets the parser hand back the raw
/// source tail without re-joining lines.
fn line_offsets(text: &str) -> impl Iterator<Item = (usize, &str)> {
    let mut pos = 0;
    text.lines().map(move |line| {
        let at = pos;
        pos = at + line.len() + 1;
        (at, line)
    })
}
