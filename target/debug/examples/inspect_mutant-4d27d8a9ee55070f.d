/root/repo/target/debug/examples/inspect_mutant-4d27d8a9ee55070f.d: examples/inspect_mutant.rs

/root/repo/target/debug/examples/inspect_mutant-4d27d8a9ee55070f: examples/inspect_mutant.rs

examples/inspect_mutant.rs:
