/root/repo/target/debug/examples/compilation_space-650986c248b6188b.d: examples/compilation_space.rs

/root/repo/target/debug/examples/compilation_space-650986c248b6188b: examples/compilation_space.rs

examples/compilation_space.rs:
