/root/repo/target/debug/examples/bughunt-0caf97f76ed13ae0.d: examples/bughunt.rs

/root/repo/target/debug/examples/bughunt-0caf97f76ed13ae0: examples/bughunt.rs

examples/bughunt.rs:
