/root/repo/target/debug/examples/inspect_mutant-d30f3acfd65fc90a.d: examples/inspect_mutant.rs Cargo.toml

/root/repo/target/debug/examples/libinspect_mutant-d30f3acfd65fc90a.rmeta: examples/inspect_mutant.rs Cargo.toml

examples/inspect_mutant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
