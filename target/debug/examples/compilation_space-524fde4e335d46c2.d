/root/repo/target/debug/examples/compilation_space-524fde4e335d46c2.d: examples/compilation_space.rs Cargo.toml

/root/repo/target/debug/examples/libcompilation_space-524fde4e335d46c2.rmeta: examples/compilation_space.rs Cargo.toml

examples/compilation_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
