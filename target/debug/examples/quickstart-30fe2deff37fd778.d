/root/repo/target/debug/examples/quickstart-30fe2deff37fd778.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-30fe2deff37fd778: examples/quickstart.rs

examples/quickstart.rs:
