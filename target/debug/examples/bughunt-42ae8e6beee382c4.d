/root/repo/target/debug/examples/bughunt-42ae8e6beee382c4.d: examples/bughunt.rs Cargo.toml

/root/repo/target/debug/examples/libbughunt-42ae8e6beee382c4.rmeta: examples/bughunt.rs Cargo.toml

examples/bughunt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
