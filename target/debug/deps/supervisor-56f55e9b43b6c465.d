/root/repo/target/debug/deps/supervisor-56f55e9b43b6c465.d: tests/supervisor.rs

/root/repo/target/debug/deps/supervisor-56f55e9b43b6c465: tests/supervisor.rs

tests/supervisor.rs:
