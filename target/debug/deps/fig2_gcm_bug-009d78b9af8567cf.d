/root/repo/target/debug/deps/fig2_gcm_bug-009d78b9af8567cf.d: crates/bench/src/bin/fig2_gcm_bug.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_gcm_bug-009d78b9af8567cf.rmeta: crates/bench/src/bin/fig2_gcm_bug.rs Cargo.toml

crates/bench/src/bin/fig2_gcm_bug.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
