/root/repo/target/debug/deps/cse_fuzz-c555c887fb248ed2.d: crates/fuzz/src/lib.rs crates/fuzz/src/gen.rs

/root/repo/target/debug/deps/libcse_fuzz-c555c887fb248ed2.rlib: crates/fuzz/src/lib.rs crates/fuzz/src/gen.rs

/root/repo/target/debug/deps/libcse_fuzz-c555c887fb248ed2.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/gen.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/gen.rs:
