/root/repo/target/debug/deps/cse_rng-94b0bf658767ce8f.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcse_rng-94b0bf658767ce8f.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
