/root/repo/target/debug/deps/cse_lang-ff22859e7603d94e.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/scope.rs crates/lang/src/token.rs crates/lang/src/ty.rs crates/lang/src/typeck.rs

/root/repo/target/debug/deps/libcse_lang-ff22859e7603d94e.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/scope.rs crates/lang/src/token.rs crates/lang/src/ty.rs crates/lang/src/typeck.rs

/root/repo/target/debug/deps/libcse_lang-ff22859e7603d94e.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/scope.rs crates/lang/src/token.rs crates/lang/src/ty.rs crates/lang/src/typeck.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
crates/lang/src/scope.rs:
crates/lang/src/token.rs:
crates/lang/src/ty.rs:
crates/lang/src/typeck.rs:
