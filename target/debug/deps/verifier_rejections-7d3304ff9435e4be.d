/root/repo/target/debug/deps/verifier_rejections-7d3304ff9435e4be.d: crates/bytecode/tests/verifier_rejections.rs

/root/repo/target/debug/deps/verifier_rejections-7d3304ff9435e4be: crates/bytecode/tests/verifier_rejections.rs

crates/bytecode/tests/verifier_rejections.rs:
