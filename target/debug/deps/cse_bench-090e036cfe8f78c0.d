/root/repo/target/debug/deps/cse_bench-090e036cfe8f78c0.d: crates/bench/src/lib.rs crates/bench/src/stopwatch.rs

/root/repo/target/debug/deps/libcse_bench-090e036cfe8f78c0.rlib: crates/bench/src/lib.rs crates/bench/src/stopwatch.rs

/root/repo/target/debug/deps/libcse_bench-090e036cfe8f78c0.rmeta: crates/bench/src/lib.rs crates/bench/src/stopwatch.rs

crates/bench/src/lib.rs:
crates/bench/src/stopwatch.rs:
