/root/repo/target/debug/deps/jit_differential-31fb5d4f3a4df165.d: crates/vm/tests/jit_differential.rs

/root/repo/target/debug/deps/jit_differential-31fb5d4f3a4df165: crates/vm/tests/jit_differential.rs

crates/vm/tests/jit_differential.rs:
