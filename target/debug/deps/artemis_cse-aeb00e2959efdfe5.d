/root/repo/target/debug/deps/artemis_cse-aeb00e2959efdfe5.d: src/lib.rs

/root/repo/target/debug/deps/libartemis_cse-aeb00e2959efdfe5.rmeta: src/lib.rs

src/lib.rs:
