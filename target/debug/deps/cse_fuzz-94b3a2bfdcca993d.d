/root/repo/target/debug/deps/cse_fuzz-94b3a2bfdcca993d.d: crates/fuzz/src/lib.rs crates/fuzz/src/gen.rs Cargo.toml

/root/repo/target/debug/deps/libcse_fuzz-94b3a2bfdcca993d.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/gen.rs Cargo.toml

crates/fuzz/src/lib.rs:
crates/fuzz/src/gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
