/root/repo/target/debug/deps/cse_bytecode-5a7b1a989fc31e9d.d: crates/bytecode/src/lib.rs crates/bytecode/src/compile.rs crates/bytecode/src/disasm.rs crates/bytecode/src/insn.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libcse_bytecode-5a7b1a989fc31e9d.rmeta: crates/bytecode/src/lib.rs crates/bytecode/src/compile.rs crates/bytecode/src/disasm.rs crates/bytecode/src/insn.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs Cargo.toml

crates/bytecode/src/lib.rs:
crates/bytecode/src/compile.rs:
crates/bytecode/src/disasm.rs:
crates/bytecode/src/insn.rs:
crates/bytecode/src/program.rs:
crates/bytecode/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
