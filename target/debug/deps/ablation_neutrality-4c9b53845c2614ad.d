/root/repo/target/debug/deps/ablation_neutrality-4c9b53845c2614ad.d: crates/bench/src/bin/ablation_neutrality.rs Cargo.toml

/root/repo/target/debug/deps/libablation_neutrality-4c9b53845c2614ad.rmeta: crates/bench/src/bin/ablation_neutrality.rs Cargo.toml

crates/bench/src/bin/ablation_neutrality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
