/root/repo/target/debug/deps/cse_bench-1d9af6c53826db9e.d: crates/bench/src/lib.rs crates/bench/src/stopwatch.rs Cargo.toml

/root/repo/target/debug/deps/libcse_bench-1d9af6c53826db9e.rmeta: crates/bench/src/lib.rs crates/bench/src/stopwatch.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/stopwatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
