/root/repo/target/debug/deps/vm_throughput-f0708dc99cbf2f61.d: crates/bench/benches/vm_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libvm_throughput-f0708dc99cbf2f61.rmeta: crates/bench/benches/vm_throughput.rs Cargo.toml

crates/bench/benches/vm_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
