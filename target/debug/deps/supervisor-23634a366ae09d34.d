/root/repo/target/debug/deps/supervisor-23634a366ae09d34.d: tests/supervisor.rs Cargo.toml

/root/repo/target/debug/deps/libsupervisor-23634a366ae09d34.rmeta: tests/supervisor.rs Cargo.toml

tests/supervisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
