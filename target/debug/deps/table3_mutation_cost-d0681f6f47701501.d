/root/repo/target/debug/deps/table3_mutation_cost-d0681f6f47701501.d: crates/bench/src/bin/table3_mutation_cost.rs

/root/repo/target/debug/deps/table3_mutation_cost-d0681f6f47701501: crates/bench/src/bin/table3_mutation_cost.rs

crates/bench/src/bin/table3_mutation_cost.rs:
