/root/repo/target/debug/deps/validation_oracles-11cdf8a05237e2ae.d: tests/validation_oracles.rs

/root/repo/target/debug/deps/validation_oracles-11cdf8a05237e2ae: tests/validation_oracles.rs

tests/validation_oracles.rs:
