/root/repo/target/debug/deps/cse_core-d5e30a14f62b814d.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/campaign.rs crates/core/src/mutate.rs crates/core/src/skeleton.rs crates/core/src/space.rs crates/core/src/supervisor.rs crates/core/src/synth.rs crates/core/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libcse_core-d5e30a14f62b814d.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/campaign.rs crates/core/src/mutate.rs crates/core/src/skeleton.rs crates/core/src/space.rs crates/core/src/supervisor.rs crates/core/src/synth.rs crates/core/src/validate.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/campaign.rs:
crates/core/src/mutate.rs:
crates/core/src/skeleton.rs:
crates/core/src/space.rs:
crates/core/src/supervisor.rs:
crates/core/src/synth.rs:
crates/core/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
