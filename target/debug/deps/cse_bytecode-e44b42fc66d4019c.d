/root/repo/target/debug/deps/cse_bytecode-e44b42fc66d4019c.d: crates/bytecode/src/lib.rs crates/bytecode/src/compile.rs crates/bytecode/src/disasm.rs crates/bytecode/src/insn.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs

/root/repo/target/debug/deps/cse_bytecode-e44b42fc66d4019c: crates/bytecode/src/lib.rs crates/bytecode/src/compile.rs crates/bytecode/src/disasm.rs crates/bytecode/src/insn.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs

crates/bytecode/src/lib.rs:
crates/bytecode/src/compile.rs:
crates/bytecode/src/disasm.rs:
crates/bytecode/src/insn.rs:
crates/bytecode/src/program.rs:
crates/bytecode/src/verify.rs:
