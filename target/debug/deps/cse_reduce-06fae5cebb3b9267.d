/root/repo/target/debug/deps/cse_reduce-06fae5cebb3b9267.d: crates/reduce/src/lib.rs

/root/repo/target/debug/deps/libcse_reduce-06fae5cebb3b9267.rmeta: crates/reduce/src/lib.rs

crates/reduce/src/lib.rs:
