/root/repo/target/debug/deps/validation_oracles-299164e5882c6f6f.d: tests/validation_oracles.rs Cargo.toml

/root/repo/target/debug/deps/libvalidation_oracles-299164e5882c6f6f.rmeta: tests/validation_oracles.rs Cargo.toml

tests/validation_oracles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
