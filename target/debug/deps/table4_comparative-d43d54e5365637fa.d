/root/repo/target/debug/deps/table4_comparative-d43d54e5365637fa.d: crates/bench/src/bin/table4_comparative.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_comparative-d43d54e5365637fa.rmeta: crates/bench/src/bin/table4_comparative.rs Cargo.toml

crates/bench/src/bin/table4_comparative.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
