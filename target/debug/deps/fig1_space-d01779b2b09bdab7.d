/root/repo/target/debug/deps/fig1_space-d01779b2b09bdab7.d: crates/bench/src/bin/fig1_space.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_space-d01779b2b09bdab7.rmeta: crates/bench/src/bin/fig1_space.rs Cargo.toml

crates/bench/src/bin/fig1_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
