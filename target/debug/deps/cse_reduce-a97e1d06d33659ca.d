/root/repo/target/debug/deps/cse_reduce-a97e1d06d33659ca.d: crates/reduce/src/lib.rs

/root/repo/target/debug/deps/cse_reduce-a97e1d06d33659ca: crates/reduce/src/lib.rs

crates/reduce/src/lib.rs:
