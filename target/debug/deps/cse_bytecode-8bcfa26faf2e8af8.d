/root/repo/target/debug/deps/cse_bytecode-8bcfa26faf2e8af8.d: crates/bytecode/src/lib.rs crates/bytecode/src/compile.rs crates/bytecode/src/disasm.rs crates/bytecode/src/insn.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libcse_bytecode-8bcfa26faf2e8af8.rmeta: crates/bytecode/src/lib.rs crates/bytecode/src/compile.rs crates/bytecode/src/disasm.rs crates/bytecode/src/insn.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs Cargo.toml

crates/bytecode/src/lib.rs:
crates/bytecode/src/compile.rs:
crates/bytecode/src/disasm.rs:
crates/bytecode/src/insn.rs:
crates/bytecode/src/program.rs:
crates/bytecode/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
