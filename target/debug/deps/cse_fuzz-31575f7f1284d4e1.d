/root/repo/target/debug/deps/cse_fuzz-31575f7f1284d4e1.d: crates/fuzz/src/lib.rs crates/fuzz/src/gen.rs

/root/repo/target/debug/deps/cse_fuzz-31575f7f1284d4e1: crates/fuzz/src/lib.rs crates/fuzz/src/gen.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/gen.rs:
