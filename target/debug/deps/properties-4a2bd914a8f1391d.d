/root/repo/target/debug/deps/properties-4a2bd914a8f1391d.d: tests/properties.rs

/root/repo/target/debug/deps/properties-4a2bd914a8f1391d: tests/properties.rs

tests/properties.rs:
