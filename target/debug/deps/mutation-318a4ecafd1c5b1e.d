/root/repo/target/debug/deps/mutation-318a4ecafd1c5b1e.d: crates/bench/benches/mutation.rs Cargo.toml

/root/repo/target/debug/deps/libmutation-318a4ecafd1c5b1e.rmeta: crates/bench/benches/mutation.rs Cargo.toml

crates/bench/benches/mutation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
