/root/repo/target/debug/deps/cse_fuzz-f0d9192e3b711516.d: crates/fuzz/src/lib.rs crates/fuzz/src/gen.rs

/root/repo/target/debug/deps/libcse_fuzz-f0d9192e3b711516.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/gen.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/gen.rs:
