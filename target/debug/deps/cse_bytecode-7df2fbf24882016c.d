/root/repo/target/debug/deps/cse_bytecode-7df2fbf24882016c.d: crates/bytecode/src/lib.rs crates/bytecode/src/compile.rs crates/bytecode/src/disasm.rs crates/bytecode/src/insn.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs

/root/repo/target/debug/deps/libcse_bytecode-7df2fbf24882016c.rmeta: crates/bytecode/src/lib.rs crates/bytecode/src/compile.rs crates/bytecode/src/disasm.rs crates/bytecode/src/insn.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs

crates/bytecode/src/lib.rs:
crates/bytecode/src/compile.rs:
crates/bytecode/src/disasm.rs:
crates/bytecode/src/insn.rs:
crates/bytecode/src/program.rs:
crates/bytecode/src/verify.rs:
