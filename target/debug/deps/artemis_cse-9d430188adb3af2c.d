/root/repo/target/debug/deps/artemis_cse-9d430188adb3af2c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libartemis_cse-9d430188adb3af2c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
