/root/repo/target/debug/deps/cse_reduce-317d86976a4cb268.d: crates/reduce/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcse_reduce-317d86976a4cb268.rmeta: crates/reduce/src/lib.rs Cargo.toml

crates/reduce/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
