/root/repo/target/debug/deps/cse_rng-3e526267bca81b5e.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/cse_rng-3e526267bca81b5e: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
