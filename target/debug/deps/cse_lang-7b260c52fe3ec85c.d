/root/repo/target/debug/deps/cse_lang-7b260c52fe3ec85c.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/scope.rs crates/lang/src/token.rs crates/lang/src/ty.rs crates/lang/src/typeck.rs Cargo.toml

/root/repo/target/debug/deps/libcse_lang-7b260c52fe3ec85c.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/scope.rs crates/lang/src/token.rs crates/lang/src/ty.rs crates/lang/src/typeck.rs Cargo.toml

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
crates/lang/src/scope.rs:
crates/lang/src/token.rs:
crates/lang/src/ty.rs:
crates/lang/src/typeck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
