/root/repo/target/debug/deps/ablation_mutators-dbd536bbcad0a044.d: crates/bench/src/bin/ablation_mutators.rs Cargo.toml

/root/repo/target/debug/deps/libablation_mutators-dbd536bbcad0a044.rmeta: crates/bench/src/bin/ablation_mutators.rs Cargo.toml

crates/bench/src/bin/ablation_mutators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
