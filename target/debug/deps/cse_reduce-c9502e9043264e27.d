/root/repo/target/debug/deps/cse_reduce-c9502e9043264e27.d: crates/reduce/src/lib.rs

/root/repo/target/debug/deps/libcse_reduce-c9502e9043264e27.rlib: crates/reduce/src/lib.rs

/root/repo/target/debug/deps/libcse_reduce-c9502e9043264e27.rmeta: crates/reduce/src/lib.rs

crates/reduce/src/lib.rs:
