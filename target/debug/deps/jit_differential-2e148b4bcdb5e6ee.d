/root/repo/target/debug/deps/jit_differential-2e148b4bcdb5e6ee.d: crates/vm/tests/jit_differential.rs Cargo.toml

/root/repo/target/debug/deps/libjit_differential-2e148b4bcdb5e6ee.rmeta: crates/vm/tests/jit_differential.rs Cargo.toml

crates/vm/tests/jit_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
