/root/repo/target/debug/deps/ablation_max_iter-b00095c7bbd2970e.d: crates/bench/src/bin/ablation_max_iter.rs

/root/repo/target/debug/deps/ablation_max_iter-b00095c7bbd2970e: crates/bench/src/bin/ablation_max_iter.rs

crates/bench/src/bin/ablation_max_iter.rs:
