/root/repo/target/debug/deps/table1_campaign-6f9927c69f1a2013.d: crates/bench/src/bin/table1_campaign.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_campaign-6f9927c69f1a2013.rmeta: crates/bench/src/bin/table1_campaign.rs Cargo.toml

crates/bench/src/bin/table1_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
