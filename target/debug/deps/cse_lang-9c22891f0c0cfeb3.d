/root/repo/target/debug/deps/cse_lang-9c22891f0c0cfeb3.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/scope.rs crates/lang/src/token.rs crates/lang/src/ty.rs crates/lang/src/typeck.rs

/root/repo/target/debug/deps/libcse_lang-9c22891f0c0cfeb3.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/scope.rs crates/lang/src/token.rs crates/lang/src/ty.rs crates/lang/src/typeck.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
crates/lang/src/scope.rs:
crates/lang/src/token.rs:
crates/lang/src/ty.rs:
crates/lang/src/typeck.rs:
