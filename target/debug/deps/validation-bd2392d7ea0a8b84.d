/root/repo/target/debug/deps/validation-bd2392d7ea0a8b84.d: crates/bench/benches/validation.rs Cargo.toml

/root/repo/target/debug/deps/libvalidation-bd2392d7ea0a8b84.rmeta: crates/bench/benches/validation.rs Cargo.toml

crates/bench/benches/validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
