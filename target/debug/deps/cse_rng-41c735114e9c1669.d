/root/repo/target/debug/deps/cse_rng-41c735114e9c1669.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libcse_rng-41c735114e9c1669.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libcse_rng-41c735114e9c1669.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
