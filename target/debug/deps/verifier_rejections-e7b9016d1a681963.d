/root/repo/target/debug/deps/verifier_rejections-e7b9016d1a681963.d: crates/bytecode/tests/verifier_rejections.rs Cargo.toml

/root/repo/target/debug/deps/libverifier_rejections-e7b9016d1a681963.rmeta: crates/bytecode/tests/verifier_rejections.rs Cargo.toml

crates/bytecode/tests/verifier_rejections.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
