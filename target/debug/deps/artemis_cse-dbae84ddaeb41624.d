/root/repo/target/debug/deps/artemis_cse-dbae84ddaeb41624.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libartemis_cse-dbae84ddaeb41624.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
