/root/repo/target/debug/deps/skeleton_soundness-f363098b4b1240e5.d: crates/vm/tests/skeleton_soundness.rs

/root/repo/target/debug/deps/skeleton_soundness-f363098b4b1240e5: crates/vm/tests/skeleton_soundness.rs

crates/vm/tests/skeleton_soundness.rs:
