/root/repo/target/debug/deps/table3_mutation_cost-10709c455d303edb.d: crates/bench/src/bin/table3_mutation_cost.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_mutation_cost-10709c455d303edb.rmeta: crates/bench/src/bin/table3_mutation_cost.rs Cargo.toml

crates/bench/src/bin/table3_mutation_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
