/root/repo/target/debug/deps/cse_core-8e142ae9ac788a45.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/campaign.rs crates/core/src/mutate.rs crates/core/src/skeleton.rs crates/core/src/space.rs crates/core/src/supervisor.rs crates/core/src/synth.rs crates/core/src/validate.rs

/root/repo/target/debug/deps/libcse_core-8e142ae9ac788a45.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/campaign.rs crates/core/src/mutate.rs crates/core/src/skeleton.rs crates/core/src/space.rs crates/core/src/supervisor.rs crates/core/src/synth.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/campaign.rs:
crates/core/src/mutate.rs:
crates/core/src/skeleton.rs:
crates/core/src/space.rs:
crates/core/src/supervisor.rs:
crates/core/src/synth.rs:
crates/core/src/validate.rs:
