/root/repo/target/debug/deps/table2_components-8bfc6b2a5918c889.d: crates/bench/src/bin/table2_components.rs

/root/repo/target/debug/deps/table2_components-8bfc6b2a5918c889: crates/bench/src/bin/table2_components.rs

crates/bench/src/bin/table2_components.rs:
