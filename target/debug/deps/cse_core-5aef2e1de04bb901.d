/root/repo/target/debug/deps/cse_core-5aef2e1de04bb901.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/campaign.rs crates/core/src/mutate.rs crates/core/src/skeleton.rs crates/core/src/space.rs crates/core/src/supervisor.rs crates/core/src/synth.rs crates/core/src/validate.rs

/root/repo/target/debug/deps/libcse_core-5aef2e1de04bb901.rlib: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/campaign.rs crates/core/src/mutate.rs crates/core/src/skeleton.rs crates/core/src/space.rs crates/core/src/supervisor.rs crates/core/src/synth.rs crates/core/src/validate.rs

/root/repo/target/debug/deps/libcse_core-5aef2e1de04bb901.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/campaign.rs crates/core/src/mutate.rs crates/core/src/skeleton.rs crates/core/src/space.rs crates/core/src/supervisor.rs crates/core/src/synth.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/campaign.rs:
crates/core/src/mutate.rs:
crates/core/src/skeleton.rs:
crates/core/src/space.rs:
crates/core/src/supervisor.rs:
crates/core/src/synth.rs:
crates/core/src/validate.rs:
