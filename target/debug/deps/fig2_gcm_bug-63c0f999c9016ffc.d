/root/repo/target/debug/deps/fig2_gcm_bug-63c0f999c9016ffc.d: crates/bench/src/bin/fig2_gcm_bug.rs

/root/repo/target/debug/deps/fig2_gcm_bug-63c0f999c9016ffc: crates/bench/src/bin/fig2_gcm_bug.rs

crates/bench/src/bin/fig2_gcm_bug.rs:
