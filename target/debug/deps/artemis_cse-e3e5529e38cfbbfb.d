/root/repo/target/debug/deps/artemis_cse-e3e5529e38cfbbfb.d: src/lib.rs

/root/repo/target/debug/deps/artemis_cse-e3e5529e38cfbbfb: src/lib.rs

src/lib.rs:
