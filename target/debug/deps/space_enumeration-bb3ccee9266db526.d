/root/repo/target/debug/deps/space_enumeration-bb3ccee9266db526.d: crates/bench/benches/space_enumeration.rs Cargo.toml

/root/repo/target/debug/deps/libspace_enumeration-bb3ccee9266db526.rmeta: crates/bench/benches/space_enumeration.rs Cargo.toml

crates/bench/benches/space_enumeration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
