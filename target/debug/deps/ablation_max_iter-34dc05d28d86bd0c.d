/root/repo/target/debug/deps/ablation_max_iter-34dc05d28d86bd0c.d: crates/bench/src/bin/ablation_max_iter.rs Cargo.toml

/root/repo/target/debug/deps/libablation_max_iter-34dc05d28d86bd0c.rmeta: crates/bench/src/bin/ablation_max_iter.rs Cargo.toml

crates/bench/src/bin/ablation_max_iter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
