/root/repo/target/debug/deps/cse_fuzz-fe64a34bb95ebace.d: crates/fuzz/src/lib.rs crates/fuzz/src/gen.rs Cargo.toml

/root/repo/target/debug/deps/libcse_fuzz-fe64a34bb95ebace.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/gen.rs Cargo.toml

crates/fuzz/src/lib.rs:
crates/fuzz/src/gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
