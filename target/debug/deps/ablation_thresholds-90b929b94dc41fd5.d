/root/repo/target/debug/deps/ablation_thresholds-90b929b94dc41fd5.d: crates/bench/src/bin/ablation_thresholds.rs Cargo.toml

/root/repo/target/debug/deps/libablation_thresholds-90b929b94dc41fd5.rmeta: crates/bench/src/bin/ablation_thresholds.rs Cargo.toml

crates/bench/src/bin/ablation_thresholds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
