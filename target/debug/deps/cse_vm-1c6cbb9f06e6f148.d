/root/repo/target/debug/deps/cse_vm-1c6cbb9f06e6f148.d: crates/vm/src/lib.rs crates/vm/src/config.rs crates/vm/src/events.rs crates/vm/src/exec.rs crates/vm/src/faults.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/jit/mod.rs crates/vm/src/jit/build.rs crates/vm/src/jit/cfg.rs crates/vm/src/jit/exec.rs crates/vm/src/jit/ir.rs crates/vm/src/jit/passes/mod.rs crates/vm/src/jit/passes/codegen.rs crates/vm/src/jit/passes/constfold.rs crates/vm/src/jit/passes/copyprop.rs crates/vm/src/jit/passes/dce.rs crates/vm/src/jit/passes/gcm.rs crates/vm/src/jit/passes/gvn.rs crates/vm/src/jit/passes/licm.rs crates/vm/src/jit/passes/loopopt.rs crates/vm/src/jit/passes/regalloc.rs crates/vm/src/jit/passes/vp.rs crates/vm/src/plan.rs crates/vm/src/profile.rs crates/vm/src/supervise.rs crates/vm/src/value.rs

/root/repo/target/debug/deps/libcse_vm-1c6cbb9f06e6f148.rlib: crates/vm/src/lib.rs crates/vm/src/config.rs crates/vm/src/events.rs crates/vm/src/exec.rs crates/vm/src/faults.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/jit/mod.rs crates/vm/src/jit/build.rs crates/vm/src/jit/cfg.rs crates/vm/src/jit/exec.rs crates/vm/src/jit/ir.rs crates/vm/src/jit/passes/mod.rs crates/vm/src/jit/passes/codegen.rs crates/vm/src/jit/passes/constfold.rs crates/vm/src/jit/passes/copyprop.rs crates/vm/src/jit/passes/dce.rs crates/vm/src/jit/passes/gcm.rs crates/vm/src/jit/passes/gvn.rs crates/vm/src/jit/passes/licm.rs crates/vm/src/jit/passes/loopopt.rs crates/vm/src/jit/passes/regalloc.rs crates/vm/src/jit/passes/vp.rs crates/vm/src/plan.rs crates/vm/src/profile.rs crates/vm/src/supervise.rs crates/vm/src/value.rs

/root/repo/target/debug/deps/libcse_vm-1c6cbb9f06e6f148.rmeta: crates/vm/src/lib.rs crates/vm/src/config.rs crates/vm/src/events.rs crates/vm/src/exec.rs crates/vm/src/faults.rs crates/vm/src/heap.rs crates/vm/src/interp.rs crates/vm/src/jit/mod.rs crates/vm/src/jit/build.rs crates/vm/src/jit/cfg.rs crates/vm/src/jit/exec.rs crates/vm/src/jit/ir.rs crates/vm/src/jit/passes/mod.rs crates/vm/src/jit/passes/codegen.rs crates/vm/src/jit/passes/constfold.rs crates/vm/src/jit/passes/copyprop.rs crates/vm/src/jit/passes/dce.rs crates/vm/src/jit/passes/gcm.rs crates/vm/src/jit/passes/gvn.rs crates/vm/src/jit/passes/licm.rs crates/vm/src/jit/passes/loopopt.rs crates/vm/src/jit/passes/regalloc.rs crates/vm/src/jit/passes/vp.rs crates/vm/src/plan.rs crates/vm/src/profile.rs crates/vm/src/supervise.rs crates/vm/src/value.rs

crates/vm/src/lib.rs:
crates/vm/src/config.rs:
crates/vm/src/events.rs:
crates/vm/src/exec.rs:
crates/vm/src/faults.rs:
crates/vm/src/heap.rs:
crates/vm/src/interp.rs:
crates/vm/src/jit/mod.rs:
crates/vm/src/jit/build.rs:
crates/vm/src/jit/cfg.rs:
crates/vm/src/jit/exec.rs:
crates/vm/src/jit/ir.rs:
crates/vm/src/jit/passes/mod.rs:
crates/vm/src/jit/passes/codegen.rs:
crates/vm/src/jit/passes/constfold.rs:
crates/vm/src/jit/passes/copyprop.rs:
crates/vm/src/jit/passes/dce.rs:
crates/vm/src/jit/passes/gcm.rs:
crates/vm/src/jit/passes/gvn.rs:
crates/vm/src/jit/passes/licm.rs:
crates/vm/src/jit/passes/loopopt.rs:
crates/vm/src/jit/passes/regalloc.rs:
crates/vm/src/jit/passes/vp.rs:
crates/vm/src/plan.rs:
crates/vm/src/profile.rs:
crates/vm/src/supervise.rs:
crates/vm/src/value.rs:
