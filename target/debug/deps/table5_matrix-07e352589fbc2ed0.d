/root/repo/target/debug/deps/table5_matrix-07e352589fbc2ed0.d: crates/bench/src/bin/table5_matrix.rs

/root/repo/target/debug/deps/table5_matrix-07e352589fbc2ed0: crates/bench/src/bin/table5_matrix.rs

crates/bench/src/bin/table5_matrix.rs:
