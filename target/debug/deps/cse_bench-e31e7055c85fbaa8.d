/root/repo/target/debug/deps/cse_bench-e31e7055c85fbaa8.d: crates/bench/src/lib.rs crates/bench/src/stopwatch.rs

/root/repo/target/debug/deps/cse_bench-e31e7055c85fbaa8: crates/bench/src/lib.rs crates/bench/src/stopwatch.rs

crates/bench/src/lib.rs:
crates/bench/src/stopwatch.rs:
