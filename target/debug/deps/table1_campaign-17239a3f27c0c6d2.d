/root/repo/target/debug/deps/table1_campaign-17239a3f27c0c6d2.d: crates/bench/src/bin/table1_campaign.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_campaign-17239a3f27c0c6d2.rmeta: crates/bench/src/bin/table1_campaign.rs Cargo.toml

crates/bench/src/bin/table1_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
