/root/repo/target/debug/deps/table5_matrix-6c73efd6b4df2a21.d: crates/bench/src/bin/table5_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_matrix-6c73efd6b4df2a21.rmeta: crates/bench/src/bin/table5_matrix.rs Cargo.toml

crates/bench/src/bin/table5_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
