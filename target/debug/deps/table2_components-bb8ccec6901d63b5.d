/root/repo/target/debug/deps/table2_components-bb8ccec6901d63b5.d: crates/bench/src/bin/table2_components.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_components-bb8ccec6901d63b5.rmeta: crates/bench/src/bin/table2_components.rs Cargo.toml

crates/bench/src/bin/table2_components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
