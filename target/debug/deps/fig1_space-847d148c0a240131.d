/root/repo/target/debug/deps/fig1_space-847d148c0a240131.d: crates/bench/src/bin/fig1_space.rs

/root/repo/target/debug/deps/fig1_space-847d148c0a240131: crates/bench/src/bin/fig1_space.rs

crates/bench/src/bin/fig1_space.rs:
