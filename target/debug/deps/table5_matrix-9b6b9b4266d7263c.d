/root/repo/target/debug/deps/table5_matrix-9b6b9b4266d7263c.d: crates/bench/src/bin/table5_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_matrix-9b6b9b4266d7263c.rmeta: crates/bench/src/bin/table5_matrix.rs Cargo.toml

crates/bench/src/bin/table5_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
