/root/repo/target/debug/deps/robustness-c1f5dd6428c773f7.d: crates/lang/tests/robustness.rs

/root/repo/target/debug/deps/robustness-c1f5dd6428c773f7: crates/lang/tests/robustness.rs

crates/lang/tests/robustness.rs:
