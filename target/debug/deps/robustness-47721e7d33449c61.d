/root/repo/target/debug/deps/robustness-47721e7d33449c61.d: crates/lang/tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-47721e7d33449c61.rmeta: crates/lang/tests/robustness.rs Cargo.toml

crates/lang/tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
