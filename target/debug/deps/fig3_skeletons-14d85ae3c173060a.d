/root/repo/target/debug/deps/fig3_skeletons-14d85ae3c173060a.d: crates/bench/src/bin/fig3_skeletons.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_skeletons-14d85ae3c173060a.rmeta: crates/bench/src/bin/fig3_skeletons.rs Cargo.toml

crates/bench/src/bin/fig3_skeletons.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
