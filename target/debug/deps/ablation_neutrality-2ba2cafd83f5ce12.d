/root/repo/target/debug/deps/ablation_neutrality-2ba2cafd83f5ce12.d: crates/bench/src/bin/ablation_neutrality.rs

/root/repo/target/debug/deps/ablation_neutrality-2ba2cafd83f5ce12: crates/bench/src/bin/ablation_neutrality.rs

crates/bench/src/bin/ablation_neutrality.rs:
