/root/repo/target/debug/deps/artemis_cse-ed4058971048e369.d: src/lib.rs

/root/repo/target/debug/deps/libartemis_cse-ed4058971048e369.rlib: src/lib.rs

/root/repo/target/debug/deps/libartemis_cse-ed4058971048e369.rmeta: src/lib.rs

src/lib.rs:
