/root/repo/target/debug/deps/table4_comparative-ea676cd87143fb57.d: crates/bench/src/bin/table4_comparative.rs

/root/repo/target/debug/deps/table4_comparative-ea676cd87143fb57: crates/bench/src/bin/table4_comparative.rs

crates/bench/src/bin/table4_comparative.rs:
