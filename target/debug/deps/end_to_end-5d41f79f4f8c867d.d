/root/repo/target/debug/deps/end_to_end-5d41f79f4f8c867d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-5d41f79f4f8c867d: tests/end_to_end.rs

tests/end_to_end.rs:
