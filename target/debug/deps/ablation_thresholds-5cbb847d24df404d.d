/root/repo/target/debug/deps/ablation_thresholds-5cbb847d24df404d.d: crates/bench/src/bin/ablation_thresholds.rs

/root/repo/target/debug/deps/ablation_thresholds-5cbb847d24df404d: crates/bench/src/bin/ablation_thresholds.rs

crates/bench/src/bin/ablation_thresholds.rs:
