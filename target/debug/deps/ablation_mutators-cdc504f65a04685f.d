/root/repo/target/debug/deps/ablation_mutators-cdc504f65a04685f.d: crates/bench/src/bin/ablation_mutators.rs

/root/repo/target/debug/deps/ablation_mutators-cdc504f65a04685f: crates/bench/src/bin/ablation_mutators.rs

crates/bench/src/bin/ablation_mutators.rs:
