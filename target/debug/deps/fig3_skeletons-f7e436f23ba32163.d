/root/repo/target/debug/deps/fig3_skeletons-f7e436f23ba32163.d: crates/bench/src/bin/fig3_skeletons.rs

/root/repo/target/debug/deps/fig3_skeletons-f7e436f23ba32163: crates/bench/src/bin/fig3_skeletons.rs

crates/bench/src/bin/fig3_skeletons.rs:
