/root/repo/target/debug/deps/table3_mutation_cost-e1c14eb1a4a8ec2e.d: crates/bench/src/bin/table3_mutation_cost.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_mutation_cost-e1c14eb1a4a8ec2e.rmeta: crates/bench/src/bin/table3_mutation_cost.rs Cargo.toml

crates/bench/src/bin/table3_mutation_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
