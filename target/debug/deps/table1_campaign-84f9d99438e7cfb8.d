/root/repo/target/debug/deps/table1_campaign-84f9d99438e7cfb8.d: crates/bench/src/bin/table1_campaign.rs

/root/repo/target/debug/deps/table1_campaign-84f9d99438e7cfb8: crates/bench/src/bin/table1_campaign.rs

crates/bench/src/bin/table1_campaign.rs:
