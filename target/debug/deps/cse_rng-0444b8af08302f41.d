/root/repo/target/debug/deps/cse_rng-0444b8af08302f41.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libcse_rng-0444b8af08302f41.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
