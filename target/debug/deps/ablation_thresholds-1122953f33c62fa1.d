/root/repo/target/debug/deps/ablation_thresholds-1122953f33c62fa1.d: crates/bench/src/bin/ablation_thresholds.rs Cargo.toml

/root/repo/target/debug/deps/libablation_thresholds-1122953f33c62fa1.rmeta: crates/bench/src/bin/ablation_thresholds.rs Cargo.toml

crates/bench/src/bin/ablation_thresholds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
