/root/repo/target/debug/deps/skeleton_soundness-c3c3afef8997ad8c.d: crates/vm/tests/skeleton_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libskeleton_soundness-c3c3afef8997ad8c.rmeta: crates/vm/tests/skeleton_soundness.rs Cargo.toml

crates/vm/tests/skeleton_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
