/root/repo/target/release/examples/quickstart-fc3cd961cd6efbbe.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-fc3cd961cd6efbbe: examples/quickstart.rs

examples/quickstart.rs:
