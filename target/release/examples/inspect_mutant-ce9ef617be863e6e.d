/root/repo/target/release/examples/inspect_mutant-ce9ef617be863e6e.d: examples/inspect_mutant.rs

/root/repo/target/release/examples/inspect_mutant-ce9ef617be863e6e: examples/inspect_mutant.rs

examples/inspect_mutant.rs:
