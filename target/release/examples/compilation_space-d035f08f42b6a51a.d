/root/repo/target/release/examples/compilation_space-d035f08f42b6a51a.d: examples/compilation_space.rs

/root/repo/target/release/examples/compilation_space-d035f08f42b6a51a: examples/compilation_space.rs

examples/compilation_space.rs:
