/root/repo/target/release/examples/bughunt-4e250f0ad1a40417.d: examples/bughunt.rs

/root/repo/target/release/examples/bughunt-4e250f0ad1a40417: examples/bughunt.rs

examples/bughunt.rs:
