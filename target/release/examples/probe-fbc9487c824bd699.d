/root/repo/target/release/examples/probe-fbc9487c824bd699.d: examples/probe.rs

/root/repo/target/release/examples/probe-fbc9487c824bd699: examples/probe.rs

examples/probe.rs:
