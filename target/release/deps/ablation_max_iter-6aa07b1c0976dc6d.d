/root/repo/target/release/deps/ablation_max_iter-6aa07b1c0976dc6d.d: crates/bench/src/bin/ablation_max_iter.rs

/root/repo/target/release/deps/ablation_max_iter-6aa07b1c0976dc6d: crates/bench/src/bin/ablation_max_iter.rs

crates/bench/src/bin/ablation_max_iter.rs:
