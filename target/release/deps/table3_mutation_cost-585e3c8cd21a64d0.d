/root/repo/target/release/deps/table3_mutation_cost-585e3c8cd21a64d0.d: crates/bench/src/bin/table3_mutation_cost.rs

/root/repo/target/release/deps/table3_mutation_cost-585e3c8cd21a64d0: crates/bench/src/bin/table3_mutation_cost.rs

crates/bench/src/bin/table3_mutation_cost.rs:
