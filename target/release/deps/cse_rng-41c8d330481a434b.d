/root/repo/target/release/deps/cse_rng-41c8d330481a434b.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libcse_rng-41c8d330481a434b.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libcse_rng-41c8d330481a434b.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
