/root/repo/target/release/deps/cse_bytecode-b1dc94428176ac8c.d: crates/bytecode/src/lib.rs crates/bytecode/src/compile.rs crates/bytecode/src/disasm.rs crates/bytecode/src/insn.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs

/root/repo/target/release/deps/libcse_bytecode-b1dc94428176ac8c.rlib: crates/bytecode/src/lib.rs crates/bytecode/src/compile.rs crates/bytecode/src/disasm.rs crates/bytecode/src/insn.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs

/root/repo/target/release/deps/libcse_bytecode-b1dc94428176ac8c.rmeta: crates/bytecode/src/lib.rs crates/bytecode/src/compile.rs crates/bytecode/src/disasm.rs crates/bytecode/src/insn.rs crates/bytecode/src/program.rs crates/bytecode/src/verify.rs

crates/bytecode/src/lib.rs:
crates/bytecode/src/compile.rs:
crates/bytecode/src/disasm.rs:
crates/bytecode/src/insn.rs:
crates/bytecode/src/program.rs:
crates/bytecode/src/verify.rs:
