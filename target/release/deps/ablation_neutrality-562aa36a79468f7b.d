/root/repo/target/release/deps/ablation_neutrality-562aa36a79468f7b.d: crates/bench/src/bin/ablation_neutrality.rs

/root/repo/target/release/deps/ablation_neutrality-562aa36a79468f7b: crates/bench/src/bin/ablation_neutrality.rs

crates/bench/src/bin/ablation_neutrality.rs:
