/root/repo/target/release/deps/cse_core-ea3a0296db2f8920.d: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/campaign.rs crates/core/src/mutate.rs crates/core/src/skeleton.rs crates/core/src/space.rs crates/core/src/supervisor.rs crates/core/src/synth.rs crates/core/src/validate.rs

/root/repo/target/release/deps/libcse_core-ea3a0296db2f8920.rlib: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/campaign.rs crates/core/src/mutate.rs crates/core/src/skeleton.rs crates/core/src/space.rs crates/core/src/supervisor.rs crates/core/src/synth.rs crates/core/src/validate.rs

/root/repo/target/release/deps/libcse_core-ea3a0296db2f8920.rmeta: crates/core/src/lib.rs crates/core/src/baseline.rs crates/core/src/campaign.rs crates/core/src/mutate.rs crates/core/src/skeleton.rs crates/core/src/space.rs crates/core/src/supervisor.rs crates/core/src/synth.rs crates/core/src/validate.rs

crates/core/src/lib.rs:
crates/core/src/baseline.rs:
crates/core/src/campaign.rs:
crates/core/src/mutate.rs:
crates/core/src/skeleton.rs:
crates/core/src/space.rs:
crates/core/src/supervisor.rs:
crates/core/src/synth.rs:
crates/core/src/validate.rs:
