/root/repo/target/release/deps/table4_comparative-9fa1cba04b600b27.d: crates/bench/src/bin/table4_comparative.rs

/root/repo/target/release/deps/table4_comparative-9fa1cba04b600b27: crates/bench/src/bin/table4_comparative.rs

crates/bench/src/bin/table4_comparative.rs:
