/root/repo/target/release/deps/cse_fuzz-67094aa7c5f2aedd.d: crates/fuzz/src/lib.rs crates/fuzz/src/gen.rs

/root/repo/target/release/deps/libcse_fuzz-67094aa7c5f2aedd.rlib: crates/fuzz/src/lib.rs crates/fuzz/src/gen.rs

/root/repo/target/release/deps/libcse_fuzz-67094aa7c5f2aedd.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/gen.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/gen.rs:
