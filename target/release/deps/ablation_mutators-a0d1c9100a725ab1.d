/root/repo/target/release/deps/ablation_mutators-a0d1c9100a725ab1.d: crates/bench/src/bin/ablation_mutators.rs

/root/repo/target/release/deps/ablation_mutators-a0d1c9100a725ab1: crates/bench/src/bin/ablation_mutators.rs

crates/bench/src/bin/ablation_mutators.rs:
