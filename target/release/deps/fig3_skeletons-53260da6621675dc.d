/root/repo/target/release/deps/fig3_skeletons-53260da6621675dc.d: crates/bench/src/bin/fig3_skeletons.rs

/root/repo/target/release/deps/fig3_skeletons-53260da6621675dc: crates/bench/src/bin/fig3_skeletons.rs

crates/bench/src/bin/fig3_skeletons.rs:
