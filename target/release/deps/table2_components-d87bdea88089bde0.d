/root/repo/target/release/deps/table2_components-d87bdea88089bde0.d: crates/bench/src/bin/table2_components.rs

/root/repo/target/release/deps/table2_components-d87bdea88089bde0: crates/bench/src/bin/table2_components.rs

crates/bench/src/bin/table2_components.rs:
