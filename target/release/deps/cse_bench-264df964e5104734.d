/root/repo/target/release/deps/cse_bench-264df964e5104734.d: crates/bench/src/lib.rs crates/bench/src/stopwatch.rs

/root/repo/target/release/deps/libcse_bench-264df964e5104734.rlib: crates/bench/src/lib.rs crates/bench/src/stopwatch.rs

/root/repo/target/release/deps/libcse_bench-264df964e5104734.rmeta: crates/bench/src/lib.rs crates/bench/src/stopwatch.rs

crates/bench/src/lib.rs:
crates/bench/src/stopwatch.rs:
