/root/repo/target/release/deps/fig1_space-622ec88ee5ff94d3.d: crates/bench/src/bin/fig1_space.rs

/root/repo/target/release/deps/fig1_space-622ec88ee5ff94d3: crates/bench/src/bin/fig1_space.rs

crates/bench/src/bin/fig1_space.rs:
