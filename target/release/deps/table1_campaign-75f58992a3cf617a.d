/root/repo/target/release/deps/table1_campaign-75f58992a3cf617a.d: crates/bench/src/bin/table1_campaign.rs

/root/repo/target/release/deps/table1_campaign-75f58992a3cf617a: crates/bench/src/bin/table1_campaign.rs

crates/bench/src/bin/table1_campaign.rs:
