/root/repo/target/release/deps/cse_reduce-a3c00bf37e742fed.d: crates/reduce/src/lib.rs

/root/repo/target/release/deps/libcse_reduce-a3c00bf37e742fed.rlib: crates/reduce/src/lib.rs

/root/repo/target/release/deps/libcse_reduce-a3c00bf37e742fed.rmeta: crates/reduce/src/lib.rs

crates/reduce/src/lib.rs:
