/root/repo/target/release/deps/mutation-1f8b6df96b924061.d: crates/bench/benches/mutation.rs

/root/repo/target/release/deps/mutation-1f8b6df96b924061: crates/bench/benches/mutation.rs

crates/bench/benches/mutation.rs:
