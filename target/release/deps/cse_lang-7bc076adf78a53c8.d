/root/repo/target/release/deps/cse_lang-7bc076adf78a53c8.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/scope.rs crates/lang/src/token.rs crates/lang/src/ty.rs crates/lang/src/typeck.rs

/root/repo/target/release/deps/libcse_lang-7bc076adf78a53c8.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/scope.rs crates/lang/src/token.rs crates/lang/src/ty.rs crates/lang/src/typeck.rs

/root/repo/target/release/deps/libcse_lang-7bc076adf78a53c8.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/parser.rs crates/lang/src/pretty.rs crates/lang/src/scope.rs crates/lang/src/token.rs crates/lang/src/ty.rs crates/lang/src/typeck.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/lexer.rs:
crates/lang/src/parser.rs:
crates/lang/src/pretty.rs:
crates/lang/src/scope.rs:
crates/lang/src/token.rs:
crates/lang/src/ty.rs:
crates/lang/src/typeck.rs:
