/root/repo/target/release/deps/fig2_gcm_bug-73c5b8363f3eacd5.d: crates/bench/src/bin/fig2_gcm_bug.rs

/root/repo/target/release/deps/fig2_gcm_bug-73c5b8363f3eacd5: crates/bench/src/bin/fig2_gcm_bug.rs

crates/bench/src/bin/fig2_gcm_bug.rs:
