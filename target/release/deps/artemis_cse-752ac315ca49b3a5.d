/root/repo/target/release/deps/artemis_cse-752ac315ca49b3a5.d: src/lib.rs

/root/repo/target/release/deps/libartemis_cse-752ac315ca49b3a5.rlib: src/lib.rs

/root/repo/target/release/deps/libartemis_cse-752ac315ca49b3a5.rmeta: src/lib.rs

src/lib.rs:
