/root/repo/target/release/deps/ablation_thresholds-f8796e074f3803d8.d: crates/bench/src/bin/ablation_thresholds.rs

/root/repo/target/release/deps/ablation_thresholds-f8796e074f3803d8: crates/bench/src/bin/ablation_thresholds.rs

crates/bench/src/bin/ablation_thresholds.rs:
