/root/repo/target/release/deps/table5_matrix-ea537da46dd85abb.d: crates/bench/src/bin/table5_matrix.rs

/root/repo/target/release/deps/table5_matrix-ea537da46dd85abb: crates/bench/src/bin/table5_matrix.rs

crates/bench/src/bin/table5_matrix.rs:
