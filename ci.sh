#!/usr/bin/env bash
# Tier-1 verification gate. Everything here runs offline: the workspace
# has no registry dependencies, so no network access is needed beyond a
# stock Rust toolchain.
#
#   ./ci.sh          # full gate: fmt, clippy, build, tests
#   ./ci.sh quick    # skip the release build (debug tests only)
set -euo pipefail
cd "$(dirname "$0")"

mode="${1:-full}"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

if [ "$mode" != "quick" ]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q (tier-1: root crate)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test -q under CSE_VERIFY_IR=each (IR verifier after every pass)"
CSE_VERIFY_IR=each cargo test -q

# Translation validation: the corpus and 2^n plan-space soundness tests,
# corruption-injection sensitivity, and digest invariance run with the
# refinement checker armed after every pass. The pass-table completeness
# gate (every registered pass declares a TV contract) runs in the
# workspace unit suite above.
echo "==> translation-validation smoke (CSE_TV=each on corpus + plan space)"
CSE_TV=each cargo test -q --test tv_checker

if [ "$mode" != "quick" ]; then
    echo "==> parallel-engine digest equality under --release"
    cargo test --release -q --test parallel_determinism

    # Execution-memo cross-check: CSE_EXEC_CACHE=check re-executes every
    # run the memo serves and asserts observable equality; the memoization
    # suite (digest invariance across policies, jobs, and fault profiles)
    # runs entirely in that mode here.
    echo "==> execution-memo cross-check (CSE_EXEC_CACHE=check on the fuzzed corpus)"
    CSE_EXEC_CACHE=check cargo test --release -q --test memoization

    # Perf smoke: a small campaign through the full bench — throughput,
    # per-stage breakdown, interpreter microbench, and the pruned-vs-
    # exhaustive plan-space digest cross-check (the bench exits non-zero
    # if pruning ever diverges). The JSON artifact is the same file a
    # full-size run produces, and each run appends a dated entry to
    # results/BENCH_trajectory.jsonl; the bench fails if serial
    # seeds_per_sec regresses >20% against the last committed entry for
    # the same workload shape.
    echo "==> perf smoke (bench_campaign -> results/BENCH_campaign.json)"
    mkdir -p results
    CSE_SEEDS=4 CSE_BENCH_OUT=results/BENCH_campaign.json \
        cargo run --release -q -p cse-bench --bin bench_campaign

    echo "==> triage smoke (seeded-fault campaign; every incident reduced, deduped, classified)"
    cargo test --release -q --test triage chaos_campaign_triage_is_complete_and_job_count_invariant

    # Coverage smoke: the same seed budget under uniform sampling
    # (CSE_COVERAGE=off digests are byte-compatible with collect, so
    # collect doubles as the uniform reference) and under the feedback
    # scheduler. Guidance must strictly increase covered cells — this is
    # the subsystem's payoff gate, not just a does-it-run check.
    echo "==> coverage smoke (CSE_COVERAGE=guide must beat collect at equal budget)"
    collect_cells=$(CSE_COVERAGE=collect CSE_SEEDS=12 \
        cargo run --release -q --bin coverage | awk '/^cells /{print $2}')
    guide_cells=$(CSE_COVERAGE=guide CSE_SEEDS=12 \
        cargo run --release -q --bin coverage | awk '/^cells /{print $2}')
    echo "    collect: ${collect_cells} cells   guide: ${guide_cells} cells"
    if [ -z "$collect_cells" ] || [ -z "$guide_cells" ] \
        || [ "$guide_cells" -le "$collect_cells" ]; then
        echo "error: coverage guidance did not increase covered cells" >&2
        exit 1
    fi
fi

echo "==> OK"
