//! Inspect what JoNM actually does to a program: print a seed and one
//! mutant side by side, then show how the mutant's execution heats the
//! VM (compilations, OSR entries, de-optimizations) while the seed stays
//! cold.
//!
//! ```sh
//! cargo run --release --example inspect_mutant
//! ```

use artemis_cse::core::mutate::Artemis;
use artemis_cse::core::synth::SynthParams;
use artemis_cse::core::validate::compile_checked;
use artemis_cse::vm::{Vm, VmConfig, VmKind};

fn main() {
    let seed = artemis_cse::fuzz::generate(12, &artemis_cse::fuzz::FuzzConfig::default());
    let mut artemis = Artemis::new(4, SynthParams::for_kind(VmKind::HotSpotLike));
    let (mutant, applied) = artemis.jonm(&seed);

    println!("=== seed ===\n{}", artemis_cse::lang::pretty::print(&seed));
    println!(
        "=== mutant (mutations: {applied:?}) ===\n{}",
        artemis_cse::lang::pretty::print(&mutant)
    );

    let vm = VmConfig::correct(VmKind::HotSpotLike);
    let seed_run = Vm::run_program(&compile_checked(&seed), vm.clone());
    let mutant_run = Vm::run_program(&compile_checked(&mutant), vm);
    println!("=== temperatures ===");
    println!(
        "seed  : {} JIT compiles, {} OSR compiles, {} deopts, {} ops",
        seed_run.stats.compilations,
        seed_run.stats.osr_compilations,
        seed_run.stats.deopts,
        seed_run.stats.total_ops()
    );
    println!(
        "mutant: {} JIT compiles, {} OSR compiles, {} deopts, {} ops",
        mutant_run.stats.compilations,
        mutant_run.stats.osr_compilations,
        mutant_run.stats.deopts,
        mutant_run.stats.total_ops()
    );
    assert_eq!(seed_run.output, mutant_run.output, "JoNM preserved the output");
    println!("\noutputs are identical — the mutation only changed *how* the VM ran the code.");
}
