//! Quickstart: mutate a hand-written program with JoNM and validate a
//! (deliberately buggy) JIT compiler with it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use artemis_cse::core::validate::{validate, ValidateConfig};
use artemis_cse::vm::{VmConfig, VmKind};

fn main() {
    // 1. A seed program in MiniJava — the Java subset this workspace's
    //    whole stack (parser, bytecode compiler, tiered VM) understands.
    let seed = artemis_cse::lang::parse_and_check(
        r#"
        class Counter {
            static byte total = 0;
            static int bump(int amount) {
                Counter.total += (byte) amount;
                return Counter.total;
            }
            static void main() {
                int last = 0;
                for (int i = 0; i < 10; i++) {
                    last = bump(i % 5);
                }
                println(last);
                println(Counter.total);
            }
        }
        "#,
    )
    .expect("the seed is valid MiniJava");

    // 2. Pick a VM under test. `for_kind` ships the profile's default
    //    seeded-bug catalog — a stand-in for a buggy production JVM.
    let vm = VmConfig::for_kind(VmKind::HotSpotLike);

    // 3. Run Algorithm 1: derive 8 JIT-op-neutral mutants and
    //    cross-validate their outputs against the seed's.
    let config = ValidateConfig::paper_defaults(vm);
    let outcome = validate(&seed, &config, /* rng seed */ 1);

    println!(
        "ran {} mutants ({} VM invocations), found {} discrepancies",
        outcome.mutants_run,
        outcome.vm_invocations,
        outcome.discrepancies.len()
    );
    for d in &outcome.discrepancies {
        println!("\n--- discrepancy ({:?}, culprit {:?}) ---", d.kind.symptom(), d.culprit);
        println!("seed behaved:   {}", d.seed_observable.lines().next().unwrap_or(""));
        println!("mutant behaved: {}", d.mutant_observable.lines().next().unwrap_or(""));
    }
    if outcome.discrepancies.is_empty() {
        println!("(no discrepancy on this tiny seed — try `cargo run --example bughunt`)");
    }
}
