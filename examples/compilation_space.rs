//! Compilation-space exploration by hand: enumerate every JIT choice of a
//! small program (the paper's Figure 1 idea) and inspect the JIT-traces.
//!
//! ```sh
//! cargo run --release --example compilation_space
//! ```

use artemis_cse::core::space::{enumerate_space, find_space_discrepancy, JitTrace};
use artemis_cse::vm::{VmConfig, VmKind};

fn main() {
    let program = artemis_cse::lang::parse_and_check(
        r#"
        class Calc {
            static int square(int x) { return x * x; }
            static int twice(int x) { return square(x) + square(x + 0); }
            static void main() { println(twice(6)); }
        }
        "#,
    )
    .unwrap();
    let bytecode = artemis_cse::bytecode::compile(&program).unwrap();

    // Pick the calls to control: both square() invocations and twice().
    let calls = vec![
        (bytecode.find_method("Calc", "twice").unwrap(), 0),
        (bytecode.find_method("Calc", "square").unwrap(), 0),
        (bytecode.find_method("Calc", "square").unwrap(), 1),
    ];
    let config = VmConfig::correct(VmKind::HotSpotLike);
    let points = enumerate_space(&bytecode, &calls, &config);
    println!("2^{} = {} compilation choices:\n", calls.len(), points.len());
    for (i, point) in points.iter().enumerate() {
        let marks: Vec<&str> =
            point.choices.iter().map(|&c| if c { "compiled" } else { "interp" }).collect();
        println!(
            "#{:<2} twice={:<8} square#1={:<8} square#2={:<8} -> {}",
            i + 1,
            marks[0],
            marks[1],
            marks[2],
            point.result.output.trim()
        );
        println!("    trace: {}", JitTrace::from_events(&point.result.events).render());
    }
    match find_space_discrepancy(&points) {
        None => println!("\nspace is consistent: this VM mis-compiles none of these choices"),
        Some((a, b)) => println!("\nJIT BUG between choices #{} and #{}", a + 1, b + 1),
    }
}
