//! Bug hunt: a small fuzzing campaign against the OpenJ9-like VM profile,
//! followed by automatic reduction of the first reproducer — the paper's
//! full workflow (JavaFuzzer seeds → Artemis → Perses-style reduction).
//!
//! ```sh
//! cargo run --release --example bughunt
//! ```

use artemis_cse::core::campaign::{run_campaign, CampaignConfig};
use artemis_cse::core::validate::compile_checked;
use artemis_cse::vm::{Outcome, Vm, VmConfig, VmKind};

fn main() {
    let seeds = std::env::var("CSE_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(40);
    println!("hunting with {seeds} seeds x 8 mutants against the OpenJ9-like VM ...\n");
    let jobs = std::env::var("CSE_JOBS").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    let mut config = CampaignConfig::for_kind(VmKind::OpenJ9Like, seeds).with_jobs(jobs);
    // Run supervised: checkpoint + quarantine under results/bughunt
    // (gitignored — unlike the curated reports in results/). Kill the
    // hunt at any point and re-run to resume from the checkpoint.
    let workdir = std::path::Path::new("results").join("bughunt");
    config.supervisor.checkpoint_path = Some(workdir.join("campaign.checkpoint"));
    config.supervisor.checkpoint_every = 8;
    config.supervisor.quarantine_dir = Some(workdir.join("quarantine"));
    // CSE_TRIAGE=1 triages quarantined incidents at campaign end:
    // reduction, signature dedup, flakiness verdicts (see cse_core::triage).
    if std::env::var("CSE_TRIAGE").is_ok_and(|v| v != "0") {
        config = config.with_triage();
    }
    let result = run_campaign(&config);
    if let Some(triage) = &result.triage {
        print!("{}", triage.render());
    }
    println!(
        "{} unique bugs from {} mutants ({} duplicates, {:.1?} wall):",
        result.bugs.len(),
        result.totals.mutants,
        result.duplicates(),
        result.totals.wall
    );
    if !result.incidents.is_empty() {
        println!("{} harness incident(s) contained and quarantined", result.incidents.len());
    }
    for evidence in result.bugs.values() {
        println!(
            "  {:?}  [{:?} in {}]  first seen at seed {}",
            evidence.bug, evidence.symptom, evidence.component, evidence.first_seed
        );
    }
    let Some(evidence) = result.bugs.values().next() else {
        println!("no bugs found at this campaign size; raise CSE_SEEDS");
        return;
    };

    // Reduce the first reproducer while it still exposes its bug.
    println!("\nreducing the reproducer for {:?} ...", evidence.bug);
    let reproducer = artemis_cse::lang::parse_and_check(&evidence.reproducer)
        .expect("stored reproducers re-parse");
    let vm = VmConfig::for_kind(VmKind::OpenJ9Like);
    let bug = evidence.bug;
    let before = evidence.reproducer.lines().count();
    let reduced = artemis_cse::reduce::reduce(&reproducer, &mut |candidate| {
        let bytecode = compile_checked(candidate);
        let run = Vm::run_program(&bytecode, vm.clone());
        matches!(&run.outcome, Outcome::Crash(info) if info.bug == bug)
    });
    let reduced_source = artemis_cse::lang::pretty::print(&reduced);
    println!(
        "reduced from {before} to {} lines:\n\n{reduced_source}",
        reduced_source.lines().count()
    );
}
