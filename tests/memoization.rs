//! Execution-memoization soundness: the content-addressed execution
//! cache (`cse_core::memo`) is an execution *strategy*, never an input —
//! a campaign must produce a bit-identical `CampaignResult::digest` with
//! the memo on, off, or in cross-check mode, at every `jobs` setting,
//! with and without injected VM faults. The check mode (also reachable
//! via `CSE_EXEC_CACHE=check`) re-executes every served run and asserts
//! observable equality, so running this suite under
//! `CSE_EXEC_CACHE=check` turns it into the ci.sh cross-check leg.

use cse_core::campaign::{run_campaign, CampaignConfig, CampaignResult};
use cse_core::{ExecCachePolicy, ValidateConfig};
use cse_vm::{VmConfig, VmKind};

/// Campaign digests across every memo policy × `jobs ∈ {1, 4}` cell.
/// `VmConfig::for_kind` carries the kind's default injected bug set, so
/// this is the "injected faults active" run the issue asks for: served
/// results must replay defects and fired-fault masks exactly, or the
/// attribution counters (and hence the digest) drift.
#[test]
fn campaign_digest_is_invariant_under_memo_policy_and_jobs() {
    let base = CampaignConfig::for_kind(VmKind::HotSpotLike, 6);
    let reference = run_campaign(&base.clone().with_exec_cache(ExecCachePolicy::Off));
    let reference_digest = reference.digest(&base);
    assert!(
        !reference.bugs.is_empty(),
        "calibration: the buggy profile must surface discrepancies for this to be a real test"
    );
    for policy in [ExecCachePolicy::On, ExecCachePolicy::Off, ExecCachePolicy::Check] {
        for jobs in [1, 4] {
            let config = base.clone().with_exec_cache(policy).with_jobs(jobs);
            let result = run_campaign(&config);
            assert_eq!(
                reference_digest,
                result.digest(&config),
                "digest drift with exec_cache={policy:?}, jobs={jobs}"
            );
            assert_identical_observables(&reference, &result, policy, jobs);
        }
    }
}

/// Everything observable must match, not just the digest (the digest
/// deliberately masks the four volatile cache counters).
fn assert_identical_observables(
    a: &CampaignResult,
    b: &CampaignResult,
    policy: ExecCachePolicy,
    jobs: usize,
) {
    let label = format!("exec_cache={policy:?}, jobs={jobs}");
    assert_eq!(a.totals.seeds, b.totals.seeds, "{label}: seeds");
    assert_eq!(a.totals.mutants, b.totals.mutants, "{label}: mutants");
    assert_eq!(a.totals.completed, b.totals.completed, "{label}: completed");
    assert_eq!(a.totals.vm_invocations, b.totals.vm_invocations, "{label}: vm_invocations");
    assert_eq!(a.totals.ir_verify_defects, b.totals.ir_verify_defects, "{label}: ir defects");
    assert_eq!(a.cse_seeds, b.cse_seeds, "{label}: cse_seeds");
    assert_eq!(a.unattributed, b.unattributed, "{label}: unattributed");
    assert_eq!(
        a.bugs.keys().collect::<Vec<_>>(),
        b.bugs.keys().collect::<Vec<_>>(),
        "{label}: bug set"
    );
    for (bug, ea) in &a.bugs {
        let eb = &b.bugs[bug];
        assert_eq!(ea.occurrences, eb.occurrences, "{label}: occurrences of {bug:?}");
        assert_eq!(ea.first_seed, eb.first_seed, "{label}: first seed of {bug:?}");
    }
}

/// The memo must actually fire on this workload — a suite that passes
/// because the cache never serves anything proves nothing.
#[test]
fn memo_serves_runs_on_the_fuzzed_corpus() {
    let config =
        CampaignConfig::for_kind(VmKind::HotSpotLike, 6).with_exec_cache(ExecCachePolicy::On);
    let result = run_campaign(&config);
    assert!(
        result.totals.exec_cache_hits > 0,
        "no execution-memo hits across 6 fuzzed seeds (misses: {})",
        result.totals.exec_cache_misses
    );
    let off =
        CampaignConfig::for_kind(VmKind::HotSpotLike, 6).with_exec_cache(ExecCachePolicy::Off);
    let off_result = run_campaign(&off);
    assert_eq!(off_result.totals.exec_cache_hits, 0, "kill switch must disable the memo");
    // The hit/miss split is policy-dependent, but the *sum of decisions*
    // the campaign makes is not: vm_invocations counts served runs too.
    assert_eq!(result.totals.vm_invocations, off_result.totals.vm_invocations);
}

/// Check mode re-executes every served run and asserts observable
/// equality inside `cse_core::memo`; surviving a buggy-profile campaign
/// is the cross-check passing.
#[test]
fn check_mode_cross_checks_served_runs() {
    let config =
        CampaignConfig::for_kind(VmKind::OpenJ9Like, 4).with_exec_cache(ExecCachePolicy::Check);
    let result = run_campaign(&config);
    assert!(
        result.totals.exec_cache_hits > 0,
        "check mode never exercised a served run on this corpus"
    );
}

/// Fault fingerprints partition the cache: the same seed validated under
/// a correct VM and under the buggy profile shares method digests, and
/// the memo must never leak a result across the fault boundary. The
/// correct-VM validation finding zero discrepancies (while the buggy one
/// finds some across the corpus) is exactly that isolation.
#[test]
fn fault_fingerprints_partition_the_memo() {
    for seed_value in 0..6u64 {
        let seed = cse_fuzz::generate(seed_value, &cse_fuzz::FuzzConfig::default());
        let correct = ValidateConfig {
            exec_cache: ExecCachePolicy::On,
            ..ValidateConfig::paper_defaults(VmConfig::correct(VmKind::HotSpotLike))
        };
        let outcome = cse_core::validate::validate(&seed, &correct, seed_value);
        assert!(
            outcome.discrepancies.is_empty(),
            "seed {seed_value}: correct VM reported a discrepancy with the memo on: {:?}",
            outcome.discrepancies[0].kind
        );
        let buggy = ValidateConfig {
            exec_cache: ExecCachePolicy::Check,
            ..ValidateConfig::paper_defaults(VmConfig::for_kind(VmKind::HotSpotLike))
        };
        // Check mode asserts served == fresh internally; a cross-fault
        // leak would trip it (or the correct-VM assert above).
        cse_core::validate::validate(&seed, &buggy, seed_value);
    }
}
