//! Acceptance tests for automated incident triage: in-campaign
//! reduction, signature-based dedup, flakiness re-execution, and
//! digest stability across worker counts.

use std::path::{Path, PathBuf};

use cse_core::campaign::{run_campaign, CampaignConfig};
use cse_core::supervisor::{ChaosConfig, HarnessIncident, IncidentPhase};
use cse_core::{shrink_plan, signature_of, triage_incidents, TriageConfig, Verdict};
use cse_reduce::{reduce_with, ReduceConfig};
use cse_vm::supervise::supervised_run;
use cse_vm::{ExecMode, ForcedPlan, VmConfig, VmKind};

/// A unique scratch directory per test (tests share one process).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cse-triage-{}-{test}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn chaos_campaign(jobs: usize, dir: &Path) -> CampaignConfig {
    let mut config = CampaignConfig::for_kind(VmKind::HotSpotLike, 5).with_jobs(jobs);
    config.supervisor.chaos = Some(ChaosConfig { panic_on_seed: 2, after_ops: 1_000 });
    config.supervisor.quarantine_dir = Some(dir.to_path_buf());
    let mut triage = TriageConfig::for_campaign(&config);
    triage.max_reduce_steps = 300;
    triage.reruns = 2;
    config.triage = Some(triage);
    config
}

/// The headline acceptance criterion: on a seeded-fault campaign, every
/// quarantined incident is triaged into a reduced, deduplicated,
/// classified report, and both the campaign digest and the triage
/// report are bit-identical for `jobs ∈ {1, 4}`.
#[test]
fn chaos_campaign_triage_is_complete_and_job_count_invariant() {
    let dir1 = scratch("campaign-j1");
    let dir4 = scratch("campaign-j4");
    let config1 = chaos_campaign(1, &dir1);
    let config4 = chaos_campaign(4, &dir4);
    let r1 = run_campaign(&config1);
    let r4 = run_campaign(&config4);

    // Identical digests and identical triage renderings across jobs.
    assert_eq!(r1.digest(&config1), r4.digest(&config4));
    let t1 = r1.triage.as_ref().expect("triage ran");
    let t4 = r4.triage.as_ref().expect("triage ran");
    assert_eq!(t1.render(), t4.render());
    assert_eq!(t1.digest(), t4.digest());

    // 100% of quarantined incidents are accounted for: every incident
    // lands in exactly one signature group (promoted or suppressed).
    assert!(!r1.incidents.is_empty(), "the chaos seed must quarantine incidents");
    let grouped: usize = t1.reports.iter().chain(&t1.suppressed).map(|rep| rep.occurrences).sum();
    assert_eq!(grouped, r1.incidents.len(), "triage must cover every incident");

    // The chaos panic reproduces deterministically, carries the original
    // signature, and its repro was strictly reduced.
    assert!(!t1.reports.is_empty(), "the chaos panic must be promoted");
    for report in &t1.reports {
        assert_eq!(report.verdict, Verdict::Deterministic);
        assert_eq!(report.reruns_matched, report.reruns_total);
        assert!(
            report.reduced_bytes < report.original_bytes,
            "repro must shrink: {} -> {} bytes",
            report.original_bytes,
            report.reduced_bytes
        );
        let sig = signature_of(
            r1.incidents.iter().find(|i| signature_of(i) == report.signature).expect("member"),
        );
        assert_eq!(sig, report.signature, "reduction must preserve the signature");
        // The reduced repro was persisted next to the quarantined input.
        let repro = dir1.join(format!("triage_{:016x}.mj", report.signature.stable_hash()));
        assert!(repro.exists(), "missing reduced repro {}", repro.display());
    }

    // The digest-bearing counters agree with the report.
    assert_eq!(r1.totals.triage_reports, t1.reports.len() as u64);
    assert_eq!(r1.totals.triage_duplicates, t1.duplicates() as u64);
    assert_eq!(r1.totals.triage_unreproducible, t1.suppressed.len() as u64);
}

/// Re-running a finished, checkpointed campaign recomputes the same
/// triage verdicts and the same digest (triage is deterministic, so it
/// is recomputed on resume rather than checkpointed).
#[test]
fn resumed_finished_campaign_reproduces_triage_digest() {
    let dir = scratch("resume");
    let mut config = chaos_campaign(1, &dir);
    config.supervisor.checkpoint_path = Some(dir.join("campaign.checkpoint"));
    let first = run_campaign(&config);
    let resumed = run_campaign(&config);
    assert_eq!(first.digest(&config), resumed.digest(&config));
    assert_eq!(
        first.triage.as_ref().map(|t| t.digest()),
        resumed.triage.as_ref().map(|t| t.digest())
    );
    assert_eq!(first.totals.triage_reports, resumed.totals.triage_reports);
}

/// The reducer's step budget is a hard bound: an adversarial predicate
/// that accepts everything cannot make reduction run away.
#[test]
fn reduce_step_budget_terminates_adversarial_inputs() {
    let program = cse_fuzz::generate(3, &cse_fuzz::FuzzConfig::default());
    let mut calls = 0usize;
    let outcome = reduce_with(&program, ReduceConfig { max_steps: 10 }, &mut |_| {
        calls += 1;
        true
    });
    assert!(outcome.budget_exhausted, "an accept-all predicate must exhaust the budget");
    // Typecheck-rejected candidates charge a step without reaching the
    // predicate, so predicate calls never exceed steps.
    assert!(calls <= outcome.steps, "{calls} predicate calls > {} steps", outcome.steps);
    assert!(outcome.steps <= 10, "budget overrun: {} steps", outcome.steps);
    // A flip-flopping predicate is bounded just the same.
    let mut flip = false;
    let outcome = reduce_with(&program, ReduceConfig { max_steps: 25 }, &mut |_| {
        flip = !flip;
        flip
    });
    assert!(outcome.steps <= 25);
}

/// Reduction reaches a fixed point: reducing an already-reduced program
/// changes nothing.
#[test]
fn reduction_is_idempotent() {
    let program = cse_fuzz::generate(5, &cse_fuzz::FuzzConfig::default());
    let mut keep = |p: &cse_lang::Program| cse_lang::pretty::print(p).contains("println");
    let once = reduce_with(&program, ReduceConfig { max_steps: 2_000 }, &mut keep);
    assert!(!once.budget_exhausted, "syntactic reduction must reach a fixed point");
    let twice = reduce_with(&once.program, ReduceConfig { max_steps: 2_000 }, &mut keep);
    assert_eq!(
        cse_lang::pretty::print(&once.program),
        cse_lang::pretty::print(&twice.program),
        "second reduction must be a no-op"
    );
}

/// Using cse-reduce as a library against a seeded fault: the repro of a
/// deterministic injected panic shrinks well below the original seed.
#[test]
fn seeded_fault_repro_shrinks_below_threshold() {
    let program = cse_fuzz::generate(2, &cse_fuzz::FuzzConfig::default());
    let original = cse_lang::pretty::print(&program);
    let mut vm = VmConfig::correct(VmKind::HotSpotLike);
    vm.chaos_panic_at_ops = Some(500); // the seeded fault
    let mut trips_fault = |p: &cse_lang::Program| {
        let Ok(bytecode) = cse_core::validate::try_compile_checked(p) else { return false };
        matches!(supervised_run(&bytecode, vm.clone()), Err(panic) if panic.payload.contains("chaos"))
    };
    assert!(trips_fault(&program), "the seed must trip the fault");
    let outcome = reduce_with(&program, ReduceConfig { max_steps: 400 }, &mut trips_fault);
    let reduced = cse_lang::pretty::print(&outcome.program);
    assert!(trips_fault(&outcome.program), "signature must survive reduction");
    assert!(
        reduced.len() * 2 < original.len(),
        "repro must shrink below half: {} -> {} bytes",
        original.len(),
        reduced.len()
    );
}

/// Compilation-space coordinate shrinking: irrelevant forced-plan pins
/// are dropped, the load-bearing pin survives, and the walk is bounded.
#[test]
fn forced_plan_shrinks_to_the_load_bearing_pin() {
    let mut plan = ForcedPlan::all_interpreted();
    for method in 0..6u32 {
        plan.set(cse_bytecode::MethodId(method), 0, ExecMode::Interpret);
    }
    let load_bearing = (cse_bytecode::MethodId(3), 0);
    let shrunk =
        shrink_plan(&plan, 100, &mut |candidate| candidate.per_call.contains_key(&load_bearing));
    assert_eq!(shrunk.per_call.len(), 1, "only the load-bearing pin survives");
    assert!(shrunk.per_call.contains_key(&load_bearing));
    assert_eq!(shrunk.default, None, "the default mode is dropped when irrelevant");

    // The step budget bounds the walk even when everything is kept.
    let kept = shrink_plan(&plan, 2, &mut |_| false);
    assert_eq!(kept.per_call.len(), plan.per_call.len());
}

/// Direct pipeline check: a reproducing incident is promoted with a
/// deterministic verdict and its signature intact; quarantine file names
/// carry the signature hash so same-seed incidents never collide.
#[test]
fn reproducing_incident_is_promoted_with_signature_preserved() {
    let seed_program = cse_fuzz::generate(7, &cse_fuzz::FuzzConfig::default());
    let incident = HarnessIncident {
        phase: IncidentPhase::SeedRun,
        seed: 7,
        rng_seed: 7,
        iteration: None,
        payload: "chaos: injected VM panic after 50 burned ops".to_string(),
        source: Some(cse_lang::pretty::print(&seed_program)),
    };
    let tcfg = TriageConfig {
        vm: VmConfig::correct(VmKind::HotSpotLike),
        max_reduce_steps: 200,
        reruns: 2,
        retries: 1,
        jobs: 1,
    };
    let chaos = Some(ChaosConfig { panic_on_seed: 7, after_ops: 50 });
    let dir = scratch("pipeline");
    let report = triage_incidents(std::slice::from_ref(&incident), &tcfg, chaos, Some(&dir));
    assert_eq!(report.reports.len(), 1);
    let triaged = &report.reports[0];
    assert_eq!(triaged.verdict, Verdict::Deterministic);
    assert_eq!(triaged.signature, signature_of(&incident));
    assert!(triaged.reduced_bytes < triaged.original_bytes);

    // Same seed + phase, different payloads → different quarantine files.
    let mut other = incident.clone();
    other.payload = "a completely different failure".to_string();
    let qdir = scratch("pipeline-quarantine");
    let vm = VmConfig::correct(VmKind::HotSpotLike);
    let a = cse_core::supervisor::quarantine_incident(&qdir, &incident, &vm).expect("write");
    let b = cse_core::supervisor::quarantine_incident(&qdir, &other, &vm).expect("write");
    assert_ne!(a, b, "signature hash must keep same-seed incidents from overwriting");
}
