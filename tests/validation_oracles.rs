//! Branch coverage for the `validate` oracles that long campaigns rely
//! on: timeout classification (genuine performance bug vs discard), the
//! 8x-operations performance-anomaly oracle, neutrality-violation
//! skipping, and the disjoint-counter invariant.

use cse_core::validate::{
    is_performance_anomaly, timeout_is_performance_bug, validate, validate_with, DiscrepancyKind,
    ValidateConfig,
};
use cse_vm::{BugId, ExecStats, ExecutionResult, FaultInjector, Outcome, Vm, VmConfig, VmKind};

fn completed(total_ops: u64) -> ExecutionResult {
    ExecutionResult {
        output: String::new(),
        outcome: Outcome::Completed { uncaught_exception: false },
        events: Vec::new(),
        ir_verify: Vec::new(),
        tv: Vec::new(),
        stats: ExecStats { interp_ops: total_ops, ..ExecStats::default() },
    }
}

fn timed_out() -> ExecutionResult {
    ExecutionResult {
        output: String::new(),
        outcome: Outcome::Timeout,
        events: Vec::new(),
        ir_verify: Vec::new(),
        tv: Vec::new(),
        stats: ExecStats::default(),
    }
}

/// A mutant timeout is the JIT's fault only when the reference
/// interpreter finished the same program comfortably (< fuel/4).
#[test]
fn timeout_classification_branches() {
    const FUEL: u64 = 40_000_000;
    // No reference (neutrality off, or the reference run panicked):
    // never a performance verdict.
    assert!(!timeout_is_performance_bug(None, FUEL));
    // Reference finished comfortably: the slowness is the JIT's.
    assert!(timeout_is_performance_bug(Some(&completed(FUEL / 4 - 1)), FUEL));
    // Reference needed a quarter of the budget or more: the program is
    // just expensive — discard.
    assert!(!timeout_is_performance_bug(Some(&completed(FUEL / 4)), FUEL));
    assert!(!timeout_is_performance_bug(Some(&completed(FUEL)), FUEL));
    // Reference timed out too: definitely just expensive.
    assert!(!timeout_is_performance_bug(Some(&timed_out()), FUEL));
}

/// The explicit anomaly oracle fires strictly above `8x + 1M` reference
/// operations.
#[test]
fn performance_anomaly_boundary() {
    assert!(!is_performance_anomaly(0, 0));
    assert!(!is_performance_anomaly(8 * 500_000 + 1_000_000, 500_000));
    assert!(is_performance_anomaly(8 * 500_000 + 1_000_001, 500_000));
    // Saturates instead of overflowing on huge reference counts.
    assert!(!is_performance_anomaly(u64::MAX, u64::MAX / 2));
}

/// A seeded performance bug must surface as a `Performance` discrepancy
/// (not a discard, not a mis-compilation): compiled code blows the step
/// budget or the 8x oracle while interpretation stays cheap.
#[test]
fn performance_bug_yields_performance_discrepancy() {
    // Calibrated deterministic exhibit: fuzzer seed 8, rng seed 8.
    let seed = cse_fuzz::generate(8, &cse_fuzz::FuzzConfig::default());
    let vm = VmConfig::correct(VmKind::HotSpotLike)
        .with_faults(FaultInjector::with([BugId::HsPerfQuadraticLoop]));
    let config = ValidateConfig::paper_defaults(vm);
    let outcome = validate(&seed, &config, 8);
    let perf = outcome
        .discrepancies
        .iter()
        .filter(|d| matches!(d.kind, DiscrepancyKind::Performance))
        .count();
    assert!(perf > 0, "expected a Performance discrepancy, got {:?}", outcome.discrepancies);
    for d in &outcome.discrepancies {
        assert_eq!(d.kind.symptom(), cse_vm::Symptom::Performance);
        assert_eq!(d.culprit, Some(BugId::HsPerfQuadraticLoop));
    }
}

/// On a *correct* VM with a tight step budget, expensive mutants are
/// discarded — never reported as performance bugs (the reference is just
/// as slow, so the timeout carries no blame).
#[test]
fn expensive_mutants_are_discarded_not_reported() {
    // Calibrated deterministic exhibit: fuzzer seed 1 completes in ~97k
    // ops; its hot-loop mutants exceed twice that.
    let seed = cse_fuzz::generate(1, &cse_fuzz::FuzzConfig::default());
    let baseline = Vm::run_program(
        &cse_core::validate::compile_checked(&seed),
        VmConfig::correct(VmKind::HotSpotLike),
    );
    assert!(baseline.outcome.is_completed());
    let mut vm = VmConfig::correct(VmKind::HotSpotLike);
    vm.fuel = baseline.stats.total_ops() * 2;
    let config = ValidateConfig::paper_defaults(vm);
    let outcome = validate(&seed, &config, 1);
    assert!(outcome.discarded > 0, "expected timeout discards: {outcome:?}");
    assert!(
        outcome.discrepancies.is_empty(),
        "a correct VM must produce no discrepancies: {:?}",
        outcome.discrepancies
    );
    assert_eq!(outcome.mutants_run, outcome.completed + outcome.discarded);
}

/// A non-neutral mutation (injected via the chaos knob) must be detected
/// against the reference interpreter and skipped — counted as a
/// neutrality violation, never reported as a VM bug.
#[test]
fn non_neutral_mutants_are_detected_and_skipped() {
    let source = r#"
    class T {
        static int v() {
            int x = 0;
            x = 41;
            return x + 1;
        }
        static void main() {
            println(T.v());
        }
    }
    "#;
    let seed = cse_lang::parse_and_check(source).expect("seed parses");
    let config = ValidateConfig::paper_defaults(VmConfig::correct(VmKind::HotSpotLike));
    let outcome = validate_with(&seed, &config, 7, |artemis| {
        artemis.chaos_break_neutrality = true;
    });
    assert!(outcome.neutrality_violations > 0, "the flipped literal must be caught: {outcome:?}");
    assert!(
        outcome.discrepancies.is_empty(),
        "non-neutral mutants must never be reported as VM bugs"
    );
    // Violations are one discard reason; counters stay disjoint.
    assert!(outcome.neutrality_violations <= outcome.discarded);
    assert_eq!(outcome.mutants_run, outcome.completed + outcome.discarded);

    // The same seed without the chaos knob validates cleanly.
    let clean = validate(&seed, &config, 7);
    assert_eq!(clean.neutrality_violations, 0);
    assert!(clean.discrepancies.is_empty());
}

/// The seed timing out is a seed-level discard: no mutants attempted, no
/// mutant counters touched.
#[test]
fn seed_timeout_is_a_seed_level_discard() {
    let seed = cse_fuzz::generate(1, &cse_fuzz::FuzzConfig::default());
    let mut vm = VmConfig::correct(VmKind::HotSpotLike);
    vm.fuel = 100; // Nothing completes in 100 ops.
    let config = ValidateConfig::paper_defaults(vm);
    let outcome = validate(&seed, &config, 1);
    assert!(outcome.seed_discarded);
    assert_eq!(outcome.mutants_run, 0);
    assert_eq!(outcome.discarded, 0, "seed discards must not pollute mutant counters");
    assert_eq!(outcome.vm_invocations, 1);
}
