//! Crash-isolation acceptance tests for the campaign supervisor:
//! panic containment, checkpoint/resume determinism, and quarantine.

use std::path::PathBuf;

use cse_core::campaign::{run_campaign, CampaignConfig};
use cse_core::supervisor::{ChaosConfig, IncidentPhase, SupervisorConfig};
use cse_vm::VmKind;

/// A unique scratch directory per test (tests share one process).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cse-supervisor-{}-{test}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A VM panic mid-campaign must be contained: the campaign completes,
/// the panic is reported as a `HarnessIncident` naming the offending
/// seed, and no results from other seeds are lost.
#[test]
fn panicking_seed_is_contained_and_loses_no_other_results() {
    const SEEDS: u64 = 6;
    const CHAOS_SEED: u64 = 3;
    let clean = run_campaign(&CampaignConfig::for_kind(VmKind::HotSpotLike, SEEDS));

    let mut config = CampaignConfig::for_kind(VmKind::HotSpotLike, SEEDS);
    config.supervisor.chaos = Some(ChaosConfig { panic_on_seed: CHAOS_SEED, after_ops: 1_000 });
    let chaotic = run_campaign(&config);

    // The campaign ran to completion despite the panic.
    assert_eq!(chaotic.totals.seeds, SEEDS);
    assert!(!chaotic.totals.partial);

    // The panic is a structured incident naming the offending seed. Other
    // incident phases (e.g. `TvDefect` when the suite runs under
    // `CSE_TV=each` against this bug-seeded VM) are orthogonal oracles.
    let panics: Vec<_> =
        chaotic.incidents.iter().filter(|i| i.phase == IncidentPhase::SeedRun).collect();
    assert!(!panics.is_empty(), "the contained panic must be reported");
    for incident in panics {
        assert_eq!(incident.seed, CHAOS_SEED);
        assert!(incident.payload.contains("chaos"), "payload: {}", incident.payload);
        assert!(incident.source.is_some(), "incident must carry a repro source");
    }
    assert_eq!(chaotic.totals.seeds_discarded, clean.totals.seeds_discarded + 1);

    // No results from other seeds are lost.
    let expected_cse: Vec<u64> =
        clean.cse_seeds.iter().copied().filter(|&s| s != CHAOS_SEED).collect();
    assert_eq!(chaotic.cse_seeds, expected_cse);
    for (bug, evidence) in &clean.bugs {
        if evidence.first_seed != CHAOS_SEED {
            assert!(
                chaotic.bugs.contains_key(bug),
                "bug {bug:?} (first seed {}) lost to the chaos seed",
                evidence.first_seed
            );
        }
    }
}

/// A campaign killed mid-run and resumed from its checkpoint must
/// produce a bit-identical `CampaignResult` to an uninterrupted run.
#[test]
fn killed_and_resumed_campaign_matches_uninterrupted_run() {
    const SEEDS: u64 = 6;
    let uninterrupted = run_campaign(&CampaignConfig::for_kind(VmKind::OpenJ9Like, SEEDS));

    let dir = scratch("resume");
    let mut config = CampaignConfig::for_kind(VmKind::OpenJ9Like, SEEDS);
    config.supervisor = SupervisorConfig {
        checkpoint_path: Some(dir.join("campaign.checkpoint")),
        checkpoint_every: 2,
        stop_after_seeds: Some(2),
        ..SupervisorConfig::default()
    };

    // First invocation: "killed" after 2 seeds.
    let killed = run_campaign(&config);
    assert!(killed.totals.partial, "a stopped campaign must be marked partial");
    assert_eq!(killed.totals.seeds, 2);

    // Keep resuming until done (each invocation is a fresh process in
    // real usage; state flows only through the checkpoint file).
    let mut resumed = killed;
    let mut invocations = 1;
    while resumed.totals.partial {
        resumed = run_campaign(&config);
        invocations += 1;
        assert!(invocations <= 10, "campaign must converge");
    }
    assert_eq!(invocations, 3, "6 seeds at 2 per invocation");
    assert_eq!(resumed.totals.seeds, SEEDS);

    assert_eq!(
        resumed.digest(&config),
        uninterrupted.digest(&config),
        "resume must be bit-identical to an uninterrupted run"
    );
    // Spot-check the digest is not vacuous.
    assert_eq!(resumed.cse_seeds, uninterrupted.cse_seeds);
    assert_eq!(resumed.bugs.len(), uninterrupted.bugs.len());
    assert_eq!(resumed.totals.mutants, uninterrupted.totals.mutants);
    std::fs::remove_dir_all(&dir).ok();
}

/// Resuming a finished campaign is a no-op that returns the stored
/// state, not a re-run.
#[test]
fn resuming_a_finished_campaign_is_idempotent() {
    const SEEDS: u64 = 3;
    let dir = scratch("idempotent");
    let mut config = CampaignConfig::for_kind(VmKind::ArtLike, SEEDS);
    config.supervisor.checkpoint_path = Some(dir.join("campaign.checkpoint"));
    let first = run_campaign(&config);
    assert!(!first.totals.partial);
    let second = run_campaign(&config);
    assert_eq!(second.totals.seeds, SEEDS, "totals must not double-count");
    assert_eq!(first.digest(&config), second.digest(&config));
    std::fs::remove_dir_all(&dir).ok();
}

/// A checkpoint from a different campaign must not be resumed into this
/// one; the campaign starts fresh (correct by determinism) instead.
#[test]
fn foreign_checkpoint_is_ignored() {
    const SEEDS: u64 = 2;
    let dir = scratch("foreign");
    let path = dir.join("campaign.checkpoint");
    let mut hotspot = CampaignConfig::for_kind(VmKind::HotSpotLike, SEEDS);
    hotspot.supervisor.checkpoint_path = Some(path.clone());
    run_campaign(&hotspot);

    let mut art = CampaignConfig::for_kind(VmKind::ArtLike, SEEDS);
    art.supervisor.checkpoint_path = Some(path);
    let result = run_campaign(&art);
    let fresh = run_campaign(&CampaignConfig::for_kind(VmKind::ArtLike, SEEDS));
    assert_eq!(result.digest(&art), fresh.digest(&art));
    std::fs::remove_dir_all(&dir).ok();
}

/// Crashing and panicking inputs are persisted as self-contained repro
/// files: mutant source + rng seed + VM profile.
#[test]
fn quarantine_holds_self_contained_repro_files() {
    const SEEDS: u64 = 6;
    let dir = scratch("quarantine");
    let mut config = CampaignConfig::for_kind(VmKind::HotSpotLike, SEEDS);
    config.supervisor.quarantine_dir = Some(dir.clone());
    config.supervisor.chaos = Some(ChaosConfig { panic_on_seed: 2, after_ops: 1_000 });
    let result = run_campaign(&config);

    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("quarantine dir exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();

    // The contained panic left an incident repro.
    let incident_file = names
        .iter()
        .find(|n| n.starts_with("incident_seed2_"))
        .unwrap_or_else(|| panic!("no incident file in {names:?}"));
    let body = std::fs::read_to_string(dir.join(incident_file)).unwrap();
    for needle in ["rng seed: 2", "vm profile: HotSpotLike", "panic: chaos", "class "] {
        assert!(body.contains(needle), "incident repro missing `{needle}`:\n{body}");
    }

    // Every crash bug found left a crash repro naming its culprit.
    let crash_bugs: Vec<_> =
        result.bugs.values().filter(|e| e.symptom == cse_vm::Symptom::Crash).collect();
    assert!(!crash_bugs.is_empty(), "calibration: this campaign finds crash bugs");
    for evidence in crash_bugs {
        // Quarantine file names are lowercased (case-insensitive-fs safe).
        let label = format!("{:?}", evidence.bug).to_ascii_lowercase();
        let file = names
            .iter()
            .find(|n| n.starts_with("crash_seed") && n.contains(&label))
            .unwrap_or_else(|| panic!("no crash repro for {label} in {names:?}"));
        let body = std::fs::read_to_string(dir.join(file)).unwrap();
        assert!(body.contains("rng seed:"), "crash repro must pin the rng seed");
        assert!(body.contains("active bugs:"), "crash repro must pin the VM profile");
        assert!(body.contains("class "), "crash repro must embed the mutant source");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// An expired global deadline ends the campaign cleanly with
/// `totals.partial = true` instead of mid-seed state loss.
#[test]
fn expired_deadline_ends_campaign_cleanly_as_partial() {
    let mut config = CampaignConfig::for_kind(VmKind::HotSpotLike, 50);
    config.supervisor.deadline = Some(std::time::Duration::ZERO);
    let result = run_campaign(&config);
    assert!(result.totals.partial);
    assert_eq!(result.totals.seeds, 0, "zero budget processes zero seeds");
}

/// Campaign totals keep the per-seed counter invariant:
/// `mutants = completed + discarded`, disjointly.
#[test]
fn campaign_totals_keep_counter_invariants() {
    let result = run_campaign(&CampaignConfig::for_kind(VmKind::OpenJ9Like, 6));
    assert_eq!(result.totals.mutants, result.totals.completed + result.totals.discarded);
    assert!(result.totals.neutrality_violations <= result.totals.discarded);
}
