//! The static IR verifier (`cse_vm::jit::verify`) as a third oracle:
//!
//! * **Soundness on the clean corpus** — `each` mode must accept every
//!   `IrFunc` the pipeline produces for fuzzed seeds, JoNM mutants, and
//!   all `2^n` forced plans of an enumerated compilation space. A false
//!   positive here would flood campaigns with phantom incidents.
//! * **Sensitivity** — hand-seeded corruptions (dangling block,
//!   use-before-def, effect-flag lies, dst-arity violations) must each be
//!   rejected and attributed to the pass label they were checked under.
//! * **Determinism** — campaign digests with the verifier in `boundary`
//!   mode stay bit-identical across `jobs ∈ {1, 4}`.

use cse_rng::Rng64;

use artemis_cse::bytecode::{Insn, PrintKind};
use artemis_cse::core::campaign::{run_campaign, CampaignConfig};
use artemis_cse::core::mutate::Artemis;
use artemis_cse::core::space::enumerate_space;
use artemis_cse::core::synth::SynthParams;
use artemis_cse::core::validate::{compile_checked, try_compile_checked};
use artemis_cse::vm::jit::ir::{Inst, IrFunc, Op, Term};
use artemis_cse::vm::jit::{self, verify, CompileCtx};
use artemis_cse::vm::{FaultInjector, Tier, TvMode, VerifyMode, Vm, VmConfig, VmKind};

/// `each`-mode verification across the fuzzed seed corpus, on every VM
/// profile, under both the natural tiering policy and force-compile-all.
/// A defect here is a verifier false positive (or a real pipeline bug).
#[test]
fn each_mode_accepts_fuzzed_corpus() {
    let mut rng = Rng64::seed_from_u64(0x1f1e);
    for _ in 0..8 {
        let seed = rng.gen_range(0u64..1_000_000);
        let program = cse_fuzz::generate(seed, &cse_fuzz::FuzzConfig::default());
        let bytecode = compile_checked(&program);
        for kind in [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike] {
            for config in [
                VmConfig::correct(kind).with_verify_ir(VerifyMode::Each),
                VmConfig::force_compile_all(kind).with_verify_ir(VerifyMode::Each),
            ] {
                let result = Vm::run_program(&bytecode, config);
                assert!(
                    result.ir_verify.is_empty(),
                    "seed {seed} on {kind}: verifier flagged clean IR:\n{}",
                    result.ir_verify.join("\n")
                );
                assert_eq!(result.stats.ir_verify_defects, 0, "seed {seed} on {kind}");
            }
        }
    }
}

/// JoNM mutants flow through the same pipelines as seeds; `each` mode
/// must accept their IR too (mutators insert dead loops, guarded blocks,
/// and exception plumbing that stress the verifier's lattice).
#[test]
fn each_mode_accepts_jonm_mutants() {
    let mut rng = Rng64::seed_from_u64(0x3a7a);
    let mut checked = 0;
    while checked < 8 {
        let seed = rng.gen_range(0u64..100_000);
        let rng_seed = rng.gen_range(0u64..1_000);
        let program = cse_fuzz::generate(seed, &cse_fuzz::FuzzConfig::default());
        let mut artemis = Artemis::new(rng_seed, SynthParams::for_kind(VmKind::HotSpotLike));
        let (mutant, applied) = artemis.jonm(&program);
        if applied.is_empty() {
            continue;
        }
        let bytecode = match try_compile_checked(&mutant) {
            Ok(b) => b,
            Err(_) => continue,
        };
        for kind in [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike] {
            let config = VmConfig::correct(kind).with_verify_ir(VerifyMode::Each);
            let result = Vm::run_program(&bytecode, config);
            assert!(
                result.ir_verify.is_empty(),
                "mutant (seed {seed}, rng {rng_seed}) on {kind}:\n{}",
                result.ir_verify.join("\n")
            );
        }
        checked += 1;
    }
}

/// All `2^4` forced plans of the paper's Figure 1 program verify cleanly:
/// the verifier holds over the entire enumerated compilation space, not
/// just the tiering policy's natural path.
#[test]
fn each_mode_accepts_all_forced_plans() {
    let program = cse_lang::parse_and_check(
        r#"
        class T {
            static int baz() { return 1; }
            static int bar() { return 2; }
            static int foo() { return bar() + baz(); }
            static void main() { println(foo()); }
        }
        "#,
    )
    .unwrap();
    let bytecode = cse_bytecode::compile(&program).unwrap();
    let calls = vec![
        (bytecode.find_method("T", "main").unwrap(), 0),
        (bytecode.find_method("T", "foo").unwrap(), 0),
        (bytecode.find_method("T", "bar").unwrap(), 0),
        (bytecode.find_method("T", "baz").unwrap(), 0),
    ];
    for kind in [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike] {
        let base = VmConfig::correct(kind).with_verify_ir(VerifyMode::Each);
        let points = enumerate_space(&bytecode, &calls, &base);
        assert_eq!(points.len(), 16);
        for (i, point) in points.iter().enumerate() {
            assert!(
                point.result.ir_verify.is_empty(),
                "space point {i} on {kind}:\n{}",
                point.result.ir_verify.join("\n")
            );
        }
    }
}

/// Compiles a small two-method program at tier 2 and returns its `add`
/// function's IR (verified clean as a baseline) plus the bytecode.
fn compiled_add() -> (IrFunc, artemis_cse::bytecode::BProgram) {
    let program = cse_lang::parse_and_check(
        r#"
        class T {
            static int add(int a, int b) { return a + b; }
            static void main() { println(add(1, 2)); }
        }
        "#,
    )
    .unwrap();
    let bytecode = cse_bytecode::compile(&program).unwrap();
    let method = bytecode.find_method("T", "add").unwrap();
    let profiles: Vec<_> = bytecode.methods.iter().map(|_| Default::default()).collect();
    let faults = FaultInjector::none();
    let ctx = CompileCtx {
        program: &bytecode,
        profiles: &profiles,
        faults: &faults,
        kind: VmKind::HotSpotLike,
        tier: Tier::T2,
        speculate: false,
        inline_limit: 48,
        has_osr_code: false,
        verify: VerifyMode::Off,
        tv: TvMode::Off,
        fired: std::cell::Cell::new(0),
    };
    let mut defects = Vec::new();
    let mut tv_defects = Vec::new();
    let func =
        jit::compile(&ctx, method, None, &mut defects, &mut tv_defects).expect("add compiles");
    assert!(defects.is_empty());
    assert!(tv_defects.is_empty());
    let baseline = verify::check_func(&func, &bytecode, verify::PASS_BUILD);
    assert!(baseline.is_empty(), "baseline must verify: {baseline:?}");
    (func, bytecode)
}

/// Corruption 1: a terminator jumping to a block that does not exist.
/// Must be rejected with the pass label it was checked under.
#[test]
fn dangling_block_is_rejected_with_attribution() {
    let (mut func, bytecode) = compiled_add();
    let last = func.blocks.len() - 1;
    func.blocks[last].term = Term::Jump(999);
    let errors = verify::check_func(&func, &bytecode, "gvn");
    assert!(!errors.is_empty());
    assert_eq!(errors[0].pass, "gvn", "defect must carry the pass it was found after");
    assert!(
        errors[0].detail.contains("dangling block b999"),
        "unexpected detail: {}",
        errors[0].detail
    );
    // Display carries method, pass, and block for incident logs.
    let rendered = errors[0].to_string();
    assert!(rendered.contains("T.add"), "missing method in: {rendered}");
    assert!(rendered.contains("after gvn"), "missing pass in: {rendered}");
}

/// Corruption 2: reading a register no path ever defines. The definite-
/// assignment dataflow must flag the use, attributed to the pass label.
#[test]
fn use_before_def_is_rejected_with_attribution() {
    let (mut func, bytecode) = compiled_add();
    func.num_regs += 2;
    let undefined = func.num_regs - 2;
    let dst = func.num_regs - 1;
    func.blocks[0]
        .insts
        .insert(0, Inst { dst: Some(dst), op: Op::Copy(undefined), frame: 0, bc_pc: 0 });
    let errors = verify::check_func(&func, &bytecode, "licm");
    assert!(!errors.is_empty());
    assert_eq!(errors[0].pass, "licm");
    assert!(
        errors[0].detail.contains(&format!("use of undefined register r{undefined}")),
        "unexpected detail: {}",
        errors[0].detail
    );
}

/// Corruption 3: an effect-only op (`println`) writing a destination
/// register — a dst-arity violation the shape phase must reject.
#[test]
fn effect_only_dst_is_rejected_with_attribution() {
    let (mut func, bytecode) = compiled_add();
    func.num_regs += 1;
    let dst = func.num_regs - 1;
    let val = func.frames[0].local_base; // anchor: defined at entry
    func.blocks[0].insts.push(Inst {
        dst: Some(dst),
        op: Op::Println { kind: PrintKind::Int, val },
        frame: 0,
        bc_pc: 0,
    });
    let errors = verify::check_func(&func, &bytecode, "regalloc");
    assert!(!errors.is_empty());
    assert_eq!(errors[0].pass, "regalloc");
    assert!(
        errors[0].detail.contains("effect-only op writes destination"),
        "unexpected detail: {}",
        errors[0].detail
    );
}

/// Corruption 4: lying effect flags. The audit cross-checks claimed
/// purity/throw/write bits against an independent table of op shapes.
#[test]
fn wrong_effect_claims_are_rejected() {
    // A store claimed pure: the canonical mis-flag that would let DCE
    // delete it.
    let store = Op::PutStatic { class: artemis_cse::bytecode::ClassId(0), field: 0, val: 0 };
    assert!(verify::check_effect_claims(&store, true, false, true).is_err());
    // A pure op claimed to write memory (would pin it against motion —
    // unsound in the other direction).
    assert!(verify::check_effect_claims(&Op::ConstI(1), false, false, true).is_err());
    // Division claimed non-throwing.
    let truth_ok = verify::check_effect_claims(
        &Op::ConstI(1),
        Op::ConstI(1).is_pure(),
        Op::ConstI(1).can_throw(),
        Op::ConstI(1).is_memory_write(),
    );
    assert!(truth_ok.is_ok(), "true flags must pass the audit");
}

/// Satellite: the verifier holds at the location-assignment stages too.
/// The regalloc and codegen analyses leave `compiled_add`'s IR
/// verifiable, a corruption surfacing after codegen is attributed to
/// that stage, and the defect renders the pre-pass IR snapshot when the
/// pipeline driver attaches one.
#[test]
fn post_regalloc_codegen_stage_verifies_and_attributes() {
    let (mut func, bytecode) = compiled_add();
    let profiles: Vec<_> = bytecode.methods.iter().map(|_| Default::default()).collect();
    let faults = FaultInjector::none();
    let ctx = CompileCtx {
        program: &bytecode,
        profiles: &profiles,
        faults: &faults,
        kind: VmKind::HotSpotLike,
        tier: Tier::T2,
        speculate: false,
        inline_limit: 48,
        has_osr_code: false,
        verify: VerifyMode::Off,
        tv: TvMode::Off,
        fired: std::cell::Cell::new(0),
    };
    let snapshot = func.pretty();
    jit::passes::regalloc::run(&ctx, &mut func).expect("correct regalloc never crashes");
    assert!(verify::check_func(&func, &bytecode, "regalloc").is_empty());
    jit::passes::codegen::run(&ctx, &mut func).expect("correct codegen never crashes");
    assert!(verify::check_func(&func, &bytecode, "codegen").is_empty());
    // A corruption surfacing after the codegen stage carries its label.
    let last = func.blocks.len() - 1;
    func.blocks[last].term = Term::Jump(777);
    let mut errors = verify::check_func(&func, &bytecode, "codegen");
    assert!(!errors.is_empty());
    assert_eq!(errors[0].pass, "codegen");
    // Without a snapshot the defect renders only the post-pass IR; with
    // one (attached by the pipeline driver in `each` mode) both dumps
    // appear, and the first line — what triage signatures parse — stays
    // identical.
    let bare = errors[0].to_string();
    assert!(!bare.contains("--- IR before"), "no snapshot, no pre-pass dump");
    errors[0].pre_ir = Some(snapshot);
    let full = errors[0].to_string();
    assert!(full.contains("--- IR before codegen"), "missing pre-pass dump in: {full}");
    assert_eq!(bare.lines().next(), full.lines().next(), "signature line must not change");
}

/// Satellite: a hand-corrupted compiled program must be caught by
/// bytecode verification before any VM executes it (the gate
/// `try_compile_checked` now applies to every JoNM mutant).
#[test]
fn corrupted_bytecode_is_rejected_before_execution() {
    let source = r#"
        class T {
            static int add(int a, int b) { return a + b; }
            static void main() { println(add(1, 2)); }
        }
    "#;
    let program = cse_lang::parse_and_check(source).unwrap();
    // The untampered program passes the full compile-and-verify gate.
    assert!(try_compile_checked(&program).is_ok());
    // Corrupt the compiled form: a jump far past the end of the method.
    let mut bytecode = cse_bytecode::compile(&program).unwrap();
    let main = bytecode.find_method("T", "main").unwrap();
    let code = &mut bytecode.methods[main.0 as usize].code;
    code[0] = Insn::Jump(9_999);
    let err = cse_bytecode::verify::verify_program(&bytecode);
    assert!(err.is_err(), "out-of-range jump must fail bytecode verification");
}

/// `boundary` mode is campaign-safe: digests stay bit-identical across
/// `jobs ∈ {1, 4}` with the verifier on.
#[test]
fn boundary_mode_digest_is_identical_across_jobs() {
    let mut config = CampaignConfig::for_kind(VmKind::HotSpotLike, 4);
    config.vm.verify_ir = VerifyMode::Boundary;
    let serial = run_campaign(&config);
    let serial_digest = serial.digest(&config);
    let parallel_config = config.clone().with_jobs(4);
    let parallel = run_campaign(&parallel_config);
    assert_eq!(
        serial_digest,
        parallel.digest(&parallel_config),
        "boundary-mode digest must not depend on jobs"
    );
    assert_eq!(
        serial.totals.ir_verify_defects, parallel.totals.ir_verify_defects,
        "defect totals must merge deterministically"
    );
}

/// Satellite: with *both* boundary oracles enabled (`CSE_VERIFY_IR` and
/// `CSE_TV`), campaign digests stay bit-identical across `jobs ∈ {1,4}`
/// and the TV defect totals merge deterministically.
#[test]
fn tv_boundary_digest_is_identical_across_jobs() {
    let mut config = CampaignConfig::for_kind(VmKind::OpenJ9Like, 4);
    config.vm.verify_ir = VerifyMode::Boundary;
    config.vm.tv = TvMode::Boundary;
    let serial = run_campaign(&config);
    let parallel_config = config.clone().with_jobs(4);
    let parallel = run_campaign(&parallel_config);
    assert_eq!(
        serial.digest(&config),
        parallel.digest(&parallel_config),
        "boundary-mode TV digest must not depend on jobs"
    );
    assert_eq!(
        serial.totals.tv_defects, parallel.totals.tv_defects,
        "TV defect totals must merge deterministically"
    );
}
