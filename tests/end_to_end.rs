//! Integration tests spanning every crate: the full
//! fuzz → mutate → execute → cross-validate → attribute → reduce pipeline.

use artemis_cse::core::campaign::{run_campaign, CampaignConfig};
use artemis_cse::core::validate::{compile_checked, validate, ValidateConfig};
use artemis_cse::vm::{BugId, FaultInjector, Outcome, Vm, VmConfig, VmKind};

/// The whole pipeline finds seeded bugs on every VM profile.
#[test]
fn campaigns_find_seeded_bugs_on_every_profile() {
    for kind in [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike] {
        let config = CampaignConfig::for_kind(kind, 12);
        let result = run_campaign(&config);
        assert_eq!(result.totals.neutrality_violations, 0, "{kind}: non-neutral mutant");
        assert!(!result.bugs.is_empty(), "{kind}: campaign over 12 seeds found no injected bug");
        for evidence in result.bugs.values() {
            // Attribution must agree with the profile's seeded catalog.
            assert!(
                BugId::default_set(kind).contains(&evidence.bug),
                "{kind}: attributed {:?} which is not seeded on this profile",
                evidence.bug
            );
        }
    }
}

/// The oracle never fires on a bug-free VM (soundness of the whole
/// harness: mutator neutrality + substrate correctness).
#[test]
fn no_false_positives_on_correct_vms() {
    for kind in [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike] {
        for seed_value in 0..5u64 {
            let seed = cse_fuzz::generate(seed_value, &cse_fuzz::FuzzConfig::default());
            let config = ValidateConfig::paper_defaults(VmConfig::correct(kind));
            let outcome = validate(&seed, &config, seed_value);
            assert!(
                outcome.discrepancies.is_empty(),
                "{kind} seed {seed_value}: false positive {:?}",
                outcome.discrepancies[0].kind
            );
            assert_eq!(outcome.neutrality_violations, 0);
        }
    }
}

/// A discrepancy reproducer can be re-parsed, re-run, and reduced while
/// still exposing the same ground-truth bug.
#[test]
fn reproducers_survive_reduction() {
    let config = CampaignConfig::for_kind(VmKind::HotSpotLike, 20);
    let result = run_campaign(&config);
    let Some(evidence) = result.bugs.values().find(|e| e.reproducer.lines().count() < 400) else {
        // Campaign size kept small for CI; nothing suitably small found.
        return;
    };
    let reproducer =
        artemis_cse::lang::parse_and_check(&evidence.reproducer).expect("reproducer re-parses");
    let vm = VmConfig::for_kind(VmKind::HotSpotLike);
    let bug = evidence.bug;
    let exposes = |p: &artemis_cse::lang::Program| -> bool {
        let run = Vm::run_program(&compile_checked(p), vm.clone());
        match run.outcome {
            Outcome::Crash(info) => info.bug == bug,
            _ => false,
        }
    };
    if !exposes(&reproducer) {
        // Mis-compilation reproducers need the seed for comparison; only
        // crash bugs are reduced standalone here.
        return;
    }
    let reduced = artemis_cse::reduce::reduce(&reproducer, &mut |p| exposes(p));
    assert!(exposes(&reduced), "reduction lost the bug");
    assert!(
        artemis_cse::lang::pretty::print(&reduced).len()
            <= artemis_cse::lang::pretty::print(&reproducer).len(),
        "reduction must not grow the program"
    );
}

/// Figure 2 end to end through the public API.
#[test]
fn figure2_gcm_bug_detected_and_attributed() {
    let seed = artemis_cse::lang::parse_and_check(cse_bench_fig2::SEED).unwrap();
    let mutant = artemis_cse::lang::parse_and_check(cse_bench_fig2::MUTANT).unwrap();
    let vm = VmConfig::correct(VmKind::HotSpotLike)
        .with_faults(FaultInjector::with([BugId::HsGcmStoreSink]));
    let seed_run = Vm::run_program(&compile_checked(&seed), vm.clone());
    let mutant_run = Vm::run_program(&compile_checked(&mutant), vm);
    assert_ne!(seed_run.output, mutant_run.output);
    // The traditional approach cannot see it: force-compile-all compiles
    // without profiles, and the buggy GCM path needs them.
    let forced = VmConfig::force_compile_all(VmKind::HotSpotLike)
        .with_faults(FaultInjector::with([BugId::HsGcmStoreSink]));
    let seed_forced = Vm::run_program(&compile_checked(&seed), forced.clone());
    assert_eq!(
        seed_run.output, seed_forced.output,
        "count=0 on the seed shows nothing — the bug needs CSE's warm traces"
    );
}

/// Inline copies of the Figure 2 sources (kept in `cse-bench` for the
/// harness; duplicated here so the integration test has no bench dep).
mod cse_bench_fig2 {
    pub const SEED: &str = r#"
class T {
    byte l = 0;
    int[] k = new int[] { 80, 41, 60, 81 };
    void g() {
        for (int r = 0; r < 2; r++) {
            for (int zz = 0; zz < this.k.length; zz++) {
                int m = this.k[zz];
                switch ((m >>> 1) % 10 + 36) {
                    case 36:
                        l += 2;
                    case 40: break;
                    case 41: k[1] = 9;
                }
            }
        }
    }
    void o() { g(); }
    void p() {
        for (int q = 2; q < 5; q++) { o(); }
        println(l);
    }
    static void main() { T t = new T(); t.p(); t.p(); }
}
"#;
    pub const MUTANT: &str = r#"
class T {
    static boolean z = false;
    byte l = 0;
    int[] k = new int[] { 80, 41, 60, 81 };
    void g() {
        for (int r = 0; r < 2; r++) {
            for (int zz = 0; zz < this.k.length; zz++) {
                int m = this.k[zz];
                switch ((m >>> 1) % 10 + 36) {
                    case 36:
                        for (int w = -2967; w < 4342; w += 4) { }
                        l += 2;
                    case 40: break;
                    case 41: k[1] = 9;
                }
            }
        }
    }
    void o() {
        if (T.z) { return; }
        g();
    }
    void p() {
        for (int q = 2; q < 5; q++) {
            T.z = true;
            for (int u = 0; u < 9676; u++) { o(); }
            T.z = false;
            o();
        }
        println(l);
    }
    static void main() { T t = new T(); t.p(); t.p(); }
}
"#;
}

/// The CSE-vs-traditional asymmetry (Table 4's headline) holds on a small
/// sample: CSE finds at least as many discrepancy seeds, including some
/// the traditional approach misses.
#[test]
fn cse_dominates_traditional_on_sample() {
    let vm = VmConfig::for_kind(VmKind::OpenJ9Like);
    let mut cse = 0;
    let mut tra = 0;
    for seed_value in 0..25u64 {
        let seed = cse_fuzz::generate(seed_value, &cse_fuzz::FuzzConfig::default());
        let mut config = ValidateConfig::paper_defaults(vm.clone());
        config.verify_neutrality = false;
        if validate(&seed, &config, seed_value).found_bug() {
            cse += 1;
        }
        if artemis_cse::core::baseline::traditional(&seed, &vm).discrepancy {
            tra += 1;
        }
    }
    assert!(cse > tra, "CSE found {cse} vs traditional {tra} — expected CSE to dominate");
}
