//! The per-pass translation validator (`cse_vm::jit::tv`) as a fourth
//! oracle:
//!
//! * **Sensitivity with attribution** — for every pass registered in any
//!   pipeline table, seeded semantic corruptions of the pass's output
//!   (dropped store, wrong constant, weakened guard, reordered effects,
//!   dropped anchor write) must each be rejected under the pass's
//!   declared refinement contract, with the counterexample attributed to
//!   exactly that pass.
//! * **Soundness on the clean path** — the uncorrupted output of every
//!   pass on a reference function, the fuzzed corpus under `CSE_TV=each`,
//!   and the full `2^n` forced plan space must all validate cleanly. A
//!   false positive would flood campaigns with phantom incidents.
//! * **Real-bug sensitivity** — an actual injected compiler bug
//!   (`HsGvnArrayAlias`, a wrong "cannot alias" test) is caught by the
//!   simulation relation, not just hand-made corruptions.
//! * **Observation-only determinism** — campaign digests with `CSE_TV`
//!   in `boundary` mode are bit-identical to `off`, across `jobs ∈ {1,4}`.

use std::cell::Cell;

use cse_rng::Rng64;

use artemis_cse::bytecode::{ArrKind, BProgram, ClassId, CmpOp, PrintKind};
use artemis_cse::core::campaign::{run_campaign, CampaignConfig};
use artemis_cse::core::space::enumerate_space;
use artemis_cse::core::validate::compile_checked;
use artemis_cse::vm::jit::ir::{BinKind, Block, InlineFrame, Inst, IrFunc, Op, Reg, Term};
use artemis_cse::vm::jit::passes::{self, PassFn};
use artemis_cse::vm::jit::tv::{self, TvContract};
use artemis_cse::vm::jit::{verify, CompileCtx};
use artemis_cse::vm::{
    BugId, DeoptReason, FaultInjector, ForcedPlan, Tier, TvMode, VerifyMode, Vm, VmConfig, VmKind,
};

fn inst(dst: Option<Reg>, op: Op) -> Inst {
    Inst { dst, op, frame: 0, bc_pc: 0 }
}

/// A compiled program whose method table backs `qualified_name` for the
/// hand-built IR below (the IR itself never executes).
fn host_bytecode() -> BProgram {
    let program = cse_lang::parse_and_check(
        r#"
        class T {
            static int add(int a, int b) { return a + b; }
            static void main() { println(add(1, 2)); }
        }
        "#,
    )
    .unwrap();
    cse_bytecode::compile(&program).unwrap()
}

/// Hand-built reference function exercising every contract dimension:
/// const-foldable arithmetic (constfold), a copy chain (copyprop), a
/// redundant expression (gvn), a loop-invariant computation in a
/// self-loop (licm), heap effects and an interleaved load (effect
/// ordering), anchor writes (deopt state), a speculation guard
/// (`Trap`), and a return of a loop-defined anchor.
fn reference_func(bytecode: &BProgram) -> IrFunc {
    let method = bytecode.find_method("T", "add").unwrap();
    let func = IrFunc {
        method,
        tier: Tier::T2,
        blocks: vec![
            // b0: constants, a copy chain, redundant adds, an anchor
            // write, and an allocation.
            Block {
                insts: vec![
                    inst(Some(5), Op::ConstI(7)),
                    inst(Some(6), Op::ConstI(3)),
                    inst(Some(13), Op::Copy(6)),
                    inst(Some(7), Op::BinI(BinKind::Add, 5, 6)),
                    inst(Some(15), Op::BinI(BinKind::Add, 5, 6)),
                    inst(Some(0), Op::Copy(7)),
                    inst(Some(9), Op::NewObject(ClassId(0))),
                ],
                term: Term::Jump(1),
            },
            // b1: self-loop with a loop-invariant add, an anchor write, a
            // store/load pair, and an observable print.
            Block {
                insts: vec![
                    inst(Some(8), Op::BinI(BinKind::Add, 0, 6)),
                    inst(Some(1), Op::Copy(8)),
                    inst(None, Op::PutField { obj: 9, field: 0, val: 8 }),
                    inst(Some(10), Op::GetField { obj: 9, field: 0 }),
                    inst(None, Op::Println { kind: PrintKind::Int, val: 10 }),
                    inst(Some(11), Op::CmpI(CmpOp::Lt, 8, 5)),
                ],
                term: Term::Branch { cond: 11, if_true: 1, if_false: 2 },
            },
            // b2: a comparison through the copy chain feeding the guard.
            Block {
                insts: vec![inst(Some(12), Op::CmpI(CmpOp::Gt, 0, 13))],
                term: Term::Branch { cond: 12, if_true: 3, if_false: 4 },
            },
            // b3: speculation guard (deopt point).
            Block {
                insts: vec![],
                term: Term::Trap { bc_pc: 9, reason: DeoptReason::BranchSpeculation },
            },
            // b4: return the loop-defined anchor.
            Block { insts: vec![], term: Term::Return(Some(1)) },
        ],
        num_regs: 16,
        frames: vec![InlineFrame { method, local_base: 0, num_locals: 2, parent: None }],
        handlers: vec![],
        osr_entry: None,
        anchor_limit_per_frame: vec![(0, 2)],
    };
    let baseline = verify::check_func(&func, bytecode, verify::PASS_BUILD);
    assert!(baseline.is_empty(), "reference function must verify: {baseline:?}");
    func
}

fn test_ctx<'a>(
    bytecode: &'a BProgram,
    profiles: &'a [artemis_cse::vm::profile::MethodProfile],
    faults: &'a FaultInjector,
) -> CompileCtx<'a> {
    CompileCtx {
        program: bytecode,
        profiles,
        faults,
        kind: VmKind::HotSpotLike,
        tier: Tier::T2,
        speculate: true,
        inline_limit: 48,
        has_osr_code: false,
        verify: VerifyMode::Off,
        tv: TvMode::Off,
        fired: Cell::new(0),
    }
}

/// Every distinct pass registered across all pipeline tables, keyed by
/// the table name the verifier attributes defects to.
fn unique_passes() -> Vec<(&'static str, PassFn)> {
    let mut seen: Vec<(&'static str, PassFn)> = Vec::new();
    for kind in [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike] {
        for optimizing in [false, true] {
            for &(name, pass) in passes::pipeline(kind, optimizing) {
                if !seen.iter().any(|&(n, _)| n == name) {
                    seen.push((name, pass));
                }
            }
        }
    }
    seen
}

// --- Seeded semantic corruptions -------------------------------------
//
// Each takes a pass's (clean, validated) output and miscompiles it in a
// way the simulation relation must reject: an observable effect
// disappears, a value feeding effects changes, a deopt guard weakens,
// effects reorder, or deopt-visible anchor state is lost. They locate
// their target structurally so they apply to any pass's output shape
// (e.g. after LICM has inserted a preheader or constfold has folded).

fn drop_store(func: &mut IrFunc) {
    for block in &mut func.blocks {
        if let Some(i) = block.insts.iter().position(|x| matches!(x.op, Op::PutField { .. })) {
            block.insts.remove(i);
            return;
        }
    }
    panic!("no store to drop");
}

fn wrong_constant(func: &mut IrFunc) {
    for block in &mut func.blocks {
        for x in &mut block.insts {
            if x.op == Op::ConstI(3) {
                x.op = Op::ConstI(4);
                return;
            }
        }
    }
    panic!("no ConstI(3) to corrupt");
}

fn weaken_guard(func: &mut IrFunc) {
    for block in &mut func.blocks {
        if matches!(block.term, Term::Trap { .. }) {
            block.term = Term::Return(None);
            return;
        }
    }
    panic!("no guard to weaken");
}

fn reorder_effects(func: &mut IrFunc) {
    for block in &mut func.blocks {
        let store = block.insts.iter().position(|x| matches!(x.op, Op::PutField { .. }));
        let print = block.insts.iter().position(|x| matches!(x.op, Op::Println { .. }));
        if let (Some(a), Some(b)) = (store, print) {
            block.insts.swap(a, b);
            return;
        }
    }
    panic!("no block with both a store and a print");
}

fn drop_anchor_write(func: &mut IrFunc) {
    for block in &mut func.blocks {
        if let Some(i) = block.insts.iter().position(|x| x.dst == Some(1)) {
            block.insts.remove(i);
            return;
        }
    }
    panic!("no write to anchor r1");
}

type Corruption = fn(&mut IrFunc);

const CORRUPTIONS: &[(&str, Corruption)] = &[
    ("dropped-store", drop_store),
    ("wrong-constant", wrong_constant),
    ("weakened-guard", weaken_guard),
    ("reordered-effects", reorder_effects),
    ("dropped-anchor-write", drop_anchor_write),
];

/// The tentpole acceptance gate: every registered pass's legitimate
/// output validates cleanly against its declared contract, and each of
/// the ≥3 seeded semantic corruptions of that output is rejected with
/// the counterexample attributed to exactly that pass.
#[test]
fn every_pass_rejects_seeded_corruptions_with_attribution() {
    let bytecode = host_bytecode();
    let reference = reference_func(&bytecode);
    let profiles: Vec<_> = bytecode.methods.iter().map(|_| Default::default()).collect();
    let faults = FaultInjector::none();
    let ctx = test_ctx(&bytecode, &profiles, &faults);
    let all = unique_passes();
    assert!(all.len() >= 10, "expected the full pass roster, got {}", all.len());
    for (name, pass) in all {
        let contract = passes::tv_contract(name).expect("registered pass carries a contract");
        let mut after = reference.clone();
        pass(&ctx, &mut after).expect("correct path never crashes");
        let clean = tv::check_refinement(&reference, &after, name, contract, &bytecode);
        assert!(
            clean.is_empty(),
            "false positive on the clean output of {name}:\n{}",
            clean.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("\n")
        );
        for (label, corrupt) in CORRUPTIONS {
            let mut bad = after.clone();
            corrupt(&mut bad);
            let errors = tv::check_refinement(&reference, &bad, name, contract, &bytecode);
            assert!(!errors.is_empty(), "{name}: corruption `{label}` was not rejected");
            for e in &errors {
                assert_eq!(e.pass, name, "{name}/{label}: defect attributed to `{}`", e.pass);
            }
            // The counterexample carries both IR dumps for triage.
            let rendered = errors[0].to_string();
            assert!(rendered.contains(&format!("after {name}")), "missing pass in {rendered}");
            assert!(rendered.contains("--- IR before"), "missing pre-pass dump");
            assert!(rendered.contains("--- IR after"), "missing post-pass dump");
        }
    }
}

/// Boundary mode checks the whole pipeline as one refinement; its
/// counterexamples are attributed to the synthetic `pipeline` pass.
#[test]
fn boundary_counterexamples_are_attributed_to_the_pipeline() {
    let bytecode = host_bytecode();
    let reference = reference_func(&bytecode);
    let mut bad = reference.clone();
    weaken_guard(&mut bad);
    let errors = tv::check_refinement(
        &reference,
        &bad,
        tv::PASS_PIPELINE,
        TvContract::GuardIntroducing,
        &bytecode,
    );
    assert!(!errors.is_empty(), "weakened guard must be a defect even when guards may strengthen");
    assert_eq!(errors[0].pass, "pipeline");
    assert!(errors[0].detail.contains("weakened"), "unexpected detail: {}", errors[0].detail);
}

/// A *real* injected bug — `HsGvnArrayAlias` CSEs an array load across a
/// store whose index register differs (a wrong "cannot alias" test) —
/// must be caught by the simulation relation: the stale value reaches an
/// observable print.
#[test]
fn tv_catches_the_injected_gvn_alias_bug() {
    let bytecode = host_bytecode();
    let method = bytecode.find_method("T", "add").unwrap();
    let profiles: Vec<_> = bytecode.methods.iter().map(|_| Default::default()).collect();
    let before = IrFunc {
        method,
        tier: Tier::T2,
        blocks: vec![Block {
            insts: vec![
                inst(Some(4), Op::ArrLoad { kind: ArrKind::I32, arr: 0, idx: 1 }),
                inst(None, Op::ArrStore { kind: ArrKind::I32, arr: 0, idx: 2, val: 4 }),
                inst(Some(5), Op::ArrLoad { kind: ArrKind::I32, arr: 0, idx: 1 }),
                inst(None, Op::Println { kind: PrintKind::Int, val: 5 }),
            ],
            term: Term::Return(None),
        }],
        num_regs: 8,
        frames: vec![InlineFrame { method, local_base: 0, num_locals: 2, parent: None }],
        handlers: vec![],
        osr_entry: None,
        anchor_limit_per_frame: vec![(0, 2)],
    };
    let faults = FaultInjector::with([BugId::HsGvnArrayAlias]);
    let ctx = test_ctx(&bytecode, &profiles, &faults);
    let mut after = before.clone();
    passes::gvn::run_local(&ctx, &mut after).unwrap();
    assert_eq!(after.blocks[0].insts[2].op, Op::Copy(4), "the injected bug must fire");
    let errors =
        tv::check_refinement(&before, &after, "gvn-local", TvContract::EffectPreserving, &bytecode);
    assert!(!errors.is_empty(), "stale load reaching a print must break the simulation");
    assert_eq!(errors[0].pass, "gvn-local");
    // The correct path on the same input validates cleanly.
    let faults = FaultInjector::none();
    let ctx = test_ctx(&bytecode, &profiles, &faults);
    let mut after = before.clone();
    passes::gvn::run_local(&ctx, &mut after).unwrap();
    let clean =
        tv::check_refinement(&before, &after, "gvn-local", TvContract::EffectPreserving, &bytecode);
    assert!(clean.is_empty(), "correct GVN must validate:\n{:?}", clean.first());
}

/// `each`-mode soundness across the fuzzed seed corpus, on every VM
/// profile, under both the natural tiering policy and a forced
/// compile-everything plan — on *correct* VMs (no seeded bugs), any TV
/// report is a checker false positive or a genuine pipeline bug.
#[test]
fn each_mode_accepts_fuzzed_corpus() {
    let mut rng = Rng64::seed_from_u64(0x7c5e);
    for _ in 0..8 {
        let seed = rng.gen_range(0u64..1_000_000);
        let program = cse_fuzz::generate(seed, &cse_fuzz::FuzzConfig::default());
        let bytecode = compile_checked(&program);
        for kind in [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike] {
            let top = VmConfig::correct(kind).top_tier();
            for config in [
                VmConfig::correct(kind).with_tv(TvMode::Each),
                VmConfig::correct(kind).with_plan(ForcedPlan::all(top)).with_tv(TvMode::Each),
            ] {
                let result = Vm::run_program(&bytecode, config);
                assert!(
                    result.tv.is_empty(),
                    "seed {seed} on {kind}: TV flagged a correct pipeline:\n{}",
                    result.tv.join("\n")
                );
                assert_eq!(result.stats.tv_defects, 0, "seed {seed} on {kind}");
            }
        }
    }
}

/// All `2^4` forced plans of the paper's Figure 1 program validate
/// cleanly under `each` mode: the refinement checker holds over the
/// entire enumerated compilation space, not just the natural path.
#[test]
fn each_mode_accepts_all_forced_plans() {
    let program = cse_lang::parse_and_check(
        r#"
        class T {
            static int baz() { return 1; }
            static int bar() { return 2; }
            static int foo() { return bar() + baz(); }
            static void main() { println(foo()); }
        }
        "#,
    )
    .unwrap();
    let bytecode = cse_bytecode::compile(&program).unwrap();
    let calls = vec![
        (bytecode.find_method("T", "main").unwrap(), 0),
        (bytecode.find_method("T", "foo").unwrap(), 0),
        (bytecode.find_method("T", "bar").unwrap(), 0),
        (bytecode.find_method("T", "baz").unwrap(), 0),
    ];
    for kind in [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike] {
        let base = VmConfig::correct(kind).with_tv(TvMode::Each);
        let points = enumerate_space(&bytecode, &calls, &base);
        assert_eq!(points.len(), 16);
        for (i, point) in points.iter().enumerate() {
            assert!(
                point.result.tv.is_empty(),
                "space point {i} on {kind}:\n{}",
                point.result.tv.join("\n")
            );
            assert_eq!(point.result.stats.tv_defects, 0, "space point {i} on {kind}");
        }
    }
}

/// TV is observation-only: campaign digests in `boundary` mode are
/// bit-identical to `off`, and independent of `jobs`. TV defect totals
/// and `TvDefect` incidents are masked out of the digest exactly so this
/// holds even on bug-seeded campaign VMs.
#[test]
fn boundary_mode_digests_match_off_across_jobs() {
    let base = CampaignConfig::for_kind(VmKind::HotSpotLike, 4);
    let mut digests = Vec::new();
    for jobs in [1, 4] {
        for mode in [TvMode::Off, TvMode::Boundary] {
            let mut config = base.clone().with_jobs(jobs);
            config.vm.tv = mode;
            let result = run_campaign(&config);
            digests.push((jobs, mode, result.digest(&config)));
        }
    }
    let reference = digests[0].2;
    for (jobs, mode, digest) in &digests {
        assert_eq!(digest, &reference, "campaign digest diverged at jobs={jobs}, CSE_TV={mode}");
    }
}
