//! Warmth-aware plan-space pruning: the optimisation contract.
//!
//! Pruning serves plan-space points from a proven-identical representative
//! run instead of executing them (see `cse_core::space`). Its soundness
//! rests on inlining monotonicity of the all-interpreted profiling run;
//! these tests pin the user-visible consequence — pruned and exhaustive
//! enumerations are **bit-identical** — across a fuzzed program corpus,
//! not just the hand-written examples in the module's unit tests.

use cse_bytecode::program::MethodId;
use cse_core::campaign::{run_campaign, CampaignConfig};
use cse_core::space::{
    enumerate_space_with, find_space_discrepancy, space_digest, PrunePlans, SpacePoint,
};
use cse_core::validate::try_compile_checked;
use cse_vm::{VmConfig, VmKind};

/// Builds a plan-space coordinate list for a fuzzed program: the first few
/// methods, each at a likely-live invocation (0) and, for the first one, a
/// certainly-dead invocation (beyond any reachable count). Dead
/// coordinates are what pruning collapses, so every space here exercises
/// the representative-sharing path.
fn corpus_calls(num_methods: usize) -> Vec<(MethodId, u64)> {
    let mut calls: Vec<(MethodId, u64)> = Vec::new();
    for m in 0..num_methods.min(4) {
        calls.push((MethodId(m as u32), 0));
    }
    calls.push((MethodId(0), 1 << 40));
    calls
}

fn assert_points_identical(pruned: &[SpacePoint], exhaustive: &[SpacePoint], label: &str) {
    assert_eq!(pruned.len(), exhaustive.len(), "{label}: point count");
    for (i, (p, e)) in pruned.iter().zip(exhaustive).enumerate() {
        assert_eq!(p.choices, e.choices, "{label}: point {i} choices");
        assert_eq!(p.result.output, e.result.output, "{label}: point {i} output");
        assert_eq!(p.result.outcome, e.result.outcome, "{label}: point {i} outcome");
    }
    assert_eq!(
        space_digest(pruned),
        space_digest(exhaustive),
        "{label}: pruned and exhaustive digests must be bit-identical"
    );
}

/// The headline property over a fuzzed corpus: for every program and VM
/// kind, `PrunePlans::On` and `PrunePlans::Off` enumerate bit-identical
/// spaces (same outputs, same outcomes, same digest), and neither exposes
/// a cross-point discrepancy on a correct VM.
#[test]
fn pruned_enumeration_matches_exhaustive_across_fuzz_corpus() {
    let fuzz = cse_fuzz::FuzzConfig::default();
    let kinds = [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike];
    for seed in 0..6u64 {
        let program = cse_fuzz::generate(seed, &fuzz);
        let bytecode = match try_compile_checked(&program) {
            Ok(b) => b,
            Err(_) => continue,
        };
        let calls = corpus_calls(bytecode.methods.len());
        let kind = kinds[seed as usize % kinds.len()];
        let config = VmConfig::correct(kind);
        let pruned = enumerate_space_with(&bytecode, &calls, &config, PrunePlans::On);
        let exhaustive = enumerate_space_with(&bytecode, &calls, &config, PrunePlans::Off);
        let label = format!("seed {seed} ({kind:?})");
        assert_eq!(pruned.len(), 1 << calls.len(), "{label}: full space");
        assert_points_identical(&pruned, &exhaustive, &label);
        assert_eq!(
            find_space_discrepancy(&exhaustive),
            None,
            "{label}: a correct VM must have a consistent space"
        );
    }
}

/// Pruning with a certainly-dead coordinate must still enumerate every
/// point (the space's *shape* is an API contract; only the executions are
/// shared), and re-enumeration is deterministic.
#[test]
fn pruned_enumeration_is_deterministic() {
    let fuzz = cse_fuzz::FuzzConfig::default();
    let program = cse_fuzz::generate(1, &fuzz);
    let bytecode = try_compile_checked(&program).expect("corpus seed 1 compiles");
    let calls = corpus_calls(bytecode.methods.len());
    let config = VmConfig::correct(VmKind::HotSpotLike);
    let first = enumerate_space_with(&bytecode, &calls, &config, PrunePlans::On);
    let second = enumerate_space_with(&bytecode, &calls, &config, PrunePlans::On);
    assert_eq!(space_digest(&first), space_digest(&second));
}

/// Campaign digests are independent of both the pruning switch and the
/// worker count. Plan-space pruning lives in `cse_core::space`, which the
/// campaign's validation loop never consults — pinned here by running the
/// same campaign at jobs = 1 and jobs = 4 (complementing
/// `parallel_determinism.rs`, which sweeps jobs ∈ {2, 4, 8}) and checking
/// the digest is bit-identical.
#[test]
fn campaign_digest_invariant_across_jobs_one_and_four() {
    let config = CampaignConfig::for_kind(VmKind::HotSpotLike, 5);
    let serial = run_campaign(&config);
    let parallel_config = config.clone().with_jobs(4);
    let parallel = run_campaign(&parallel_config);
    assert_eq!(
        serial.digest(&config),
        parallel.digest(&parallel_config),
        "campaign digest must not depend on jobs"
    );
    assert_eq!(serial.totals.seeds, 5);
}
