//! Acceptance tests for coverage-guided exploration: digest stability
//! under `off`, jobs-invariance and kill/resume-invariance under
//! `guide`, and the guidance payoff (strictly more cells at the same
//! execution budget).

use std::path::PathBuf;

use cse_core::campaign::{run_campaign, CampaignConfig};
use cse_core::supervisor::SupervisorConfig;
use cse_core::CoveragePolicy;
use cse_vm::VmKind;

const SEEDS: u64 = 12;

/// A unique scratch directory per test (tests share one process).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cse-coverage-{}-{test}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// `off` must reproduce the pre-coverage campaign exactly, and
/// `collect` must observe without perturbing: same digest, plus a
/// non-trivial coverage report on the side.
#[test]
fn collect_observes_without_changing_the_campaign_digest() {
    let off_config =
        CampaignConfig::for_kind(VmKind::HotSpotLike, SEEDS).with_coverage(CoveragePolicy::Off);
    let off = run_campaign(&off_config);
    assert!(off.coverage.is_none(), "off campaigns must carry no coverage state");

    let collect_config =
        CampaignConfig::for_kind(VmKind::HotSpotLike, SEEDS).with_coverage(CoveragePolicy::Collect);
    let collect = run_campaign(&collect_config);
    let state = collect.coverage.as_ref().expect("collect campaigns carry coverage state");
    assert!(state.cells() > 0, "a JIT-heavy campaign must cover cells");
    assert!(!state.corpus.is_empty(), "novel mutants must enter the corpus");

    assert_eq!(
        off.digest(&off_config),
        collect.digest(&collect_config),
        "collection must not perturb what the campaign finds"
    );
    // Spot-check the digest comparison is not vacuous.
    assert_eq!(off.cse_seeds, collect.cse_seeds);
    assert_eq!(off.totals.mutants, collect.totals.mutants);
}

/// The full feedback loop — map merge, corpus admission, round
/// scheduling — must be bit-identical across worker counts.
#[test]
fn guided_campaign_is_jobs_invariant() {
    let base =
        CampaignConfig::for_kind(VmKind::OpenJ9Like, SEEDS).with_coverage(CoveragePolicy::Guide);
    let reference = run_campaign(&base);
    let reference_fp = reference.coverage.as_ref().expect("guided state").fingerprint();
    for jobs in [4, 8] {
        let config = base.clone().with_jobs(jobs);
        let result = run_campaign(&config);
        assert_eq!(
            result.digest(&config),
            reference.digest(&base),
            "guided digest must not depend on jobs ({jobs})"
        );
        assert_eq!(
            result.coverage.as_ref().expect("guided state").fingerprint(),
            reference_fp,
            "coverage state must not depend on jobs ({jobs})"
        );
    }
}

/// A guided campaign killed mid-round and resumed from its v6
/// checkpoint must be bit-identical to an uninterrupted run — the
/// persisted schedule is what makes mid-round resume exact.
#[test]
fn guided_kill_resume_mid_round_is_bit_identical() {
    const KILL_SEEDS: u64 = 10;
    let uninterrupted = run_campaign(
        &CampaignConfig::for_kind(VmKind::HotSpotLike, KILL_SEEDS)
            .with_coverage(CoveragePolicy::Guide),
    );

    let dir = scratch("resume");
    let mut config = CampaignConfig::for_kind(VmKind::HotSpotLike, KILL_SEEDS)
        .with_coverage(CoveragePolicy::Guide);
    config.supervisor = SupervisorConfig {
        checkpoint_path: Some(dir.join("campaign.checkpoint")),
        checkpoint_every: 1,
        // 5 is not a multiple of ROUND_LEN (4): the kill lands mid-round.
        stop_after_seeds: Some(5),
        ..SupervisorConfig::default()
    };
    let killed = run_campaign(&config);
    assert!(killed.totals.partial);
    assert_eq!(killed.totals.seeds, 5, "the kill must land mid-round");

    let mut resumed = killed;
    let mut invocations = 1;
    while resumed.totals.partial {
        resumed = run_campaign(&config);
        invocations += 1;
        assert!(invocations <= 10, "campaign must converge");
    }
    assert_eq!(resumed.totals.seeds, KILL_SEEDS);
    assert_eq!(
        resumed.digest(&config),
        uninterrupted.digest(&config),
        "mid-round resume must be bit-identical to an uninterrupted run"
    );
    assert_eq!(
        resumed.coverage.as_ref().expect("guided state").fingerprint(),
        uninterrupted.coverage.as_ref().expect("guided state").fingerprint(),
        "coverage state must round-trip through checkpoint v6 exactly"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The payoff: at the same seed budget, guidance must reach coverage
/// cells uniform sampling does not (forced top-tier plans alone
/// guarantee compilations of methods warmup never promotes).
#[test]
fn guide_covers_strictly_more_cells_than_collect_at_equal_budget() {
    let collect = run_campaign(
        &CampaignConfig::for_kind(VmKind::HotSpotLike, SEEDS)
            .with_coverage(CoveragePolicy::Collect),
    );
    let guide = run_campaign(
        &CampaignConfig::for_kind(VmKind::HotSpotLike, SEEDS).with_coverage(CoveragePolicy::Guide),
    );
    assert_eq!(collect.totals.seeds, guide.totals.seeds, "equal budget");
    let collect_cells = collect.coverage.as_ref().expect("state").cells();
    let guide_cells = guide.coverage.as_ref().expect("state").cells();
    assert!(
        guide_cells > collect_cells,
        "guide must strictly beat uniform sampling ({guide_cells} vs {collect_cells} cells)"
    );
}
