//! The parallel campaign engine's determinism contract: for every
//! `jobs` setting, `run_campaign` must produce a **bit-identical**
//! `CampaignResult::digest` to the serial (`jobs = 1`) reference run —
//! including under injected worker panics, deadline cutoffs, and
//! checkpointed resume.

use std::path::PathBuf;
use std::time::Duration;

use cse_core::campaign::{run_campaign, CampaignConfig, CampaignResult};
use cse_core::supervisor::{ChaosConfig, SupervisorConfig};
use cse_vm::VmKind;

/// A unique scratch directory per test (tests share one process).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cse-parallel-{}-{test}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Fields that must not depend on scheduling (everything except wall
/// time, which the digest already excludes).
fn assert_identical(serial: &CampaignResult, parallel: &CampaignResult, label: &str) {
    assert_eq!(serial.totals.seeds, parallel.totals.seeds, "{label}: seeds");
    assert_eq!(serial.totals.mutants, parallel.totals.mutants, "{label}: mutants");
    assert_eq!(
        serial.totals.vm_invocations, parallel.totals.vm_invocations,
        "{label}: vm_invocations"
    );
    assert_eq!(serial.totals.partial, parallel.totals.partial, "{label}: partial");
    assert_eq!(serial.cse_seeds, parallel.cse_seeds, "{label}: cse_seeds");
    assert_eq!(serial.traditional_seeds, parallel.traditional_seeds, "{label}: traditional");
    assert_eq!(serial.unattributed, parallel.unattributed, "{label}: unattributed");
    assert_eq!(serial.incidents.len(), parallel.incidents.len(), "{label}: incidents");
    assert_eq!(
        serial.bugs.keys().collect::<Vec<_>>(),
        parallel.bugs.keys().collect::<Vec<_>>(),
        "{label}: bug set"
    );
}

/// The headline property: digest(jobs = N) == digest(serial) for
/// N ∈ {1, 2, 4, 8}, across several campaign shapes. `jobs = 1` is not a
/// no-op: it routes through the work-stealing engine with a single
/// worker, which must still merge identically to the plain serial loop.
#[test]
fn parallel_digest_matches_serial() {
    let mut shapes: Vec<(&str, CampaignConfig)> = Vec::new();
    shapes.push(("hotspot", CampaignConfig::for_kind(VmKind::HotSpotLike, 6)));
    let mut traditional = CampaignConfig::for_kind(VmKind::OpenJ9Like, 5);
    traditional.run_traditional = true;
    shapes.push(("openj9+traditional", traditional));
    let mut offset = CampaignConfig::for_kind(VmKind::ArtLike, 4);
    offset.first_seed = 100;
    offset.max_iter = 4;
    shapes.push(("art+offset", offset));

    for (label, config) in shapes {
        let serial = run_campaign(&config);
        let serial_digest = serial.digest(&config);
        for jobs in [1, 2, 4, 8] {
            let parallel_config = config.clone().with_jobs(jobs);
            let parallel = run_campaign(&parallel_config);
            assert_identical(&serial, &parallel, label);
            // `jobs` is not part of the digest's config identity: compare
            // under both configs to pin that down.
            assert_eq!(
                serial_digest,
                parallel.digest(&parallel_config),
                "{label}: digest must not depend on jobs={jobs}"
            );
            assert_eq!(
                serial_digest,
                parallel.digest(&config),
                "{label}: digest must not encode the jobs knob (jobs={jobs})"
            );
        }
    }
}

/// A chaos-injected VM panic on one seed must be contained by the worker
/// that drew it and merged at the right position — identically to the
/// serial run.
#[test]
fn injected_panic_is_deterministic_across_jobs() {
    let mut config = CampaignConfig::for_kind(VmKind::HotSpotLike, 6);
    config.supervisor.chaos = Some(ChaosConfig { panic_on_seed: 3, after_ops: 1_000 });
    let serial = run_campaign(&config);
    assert!(!serial.incidents.is_empty(), "calibration: the chaos panic must fire");
    for jobs in [1, 2, 4, 8] {
        let parallel_config = config.clone().with_jobs(jobs);
        let parallel = run_campaign(&parallel_config);
        assert_identical(&serial, &parallel, "chaos");
        assert_eq!(serial.incidents, parallel.incidents, "jobs={jobs}: incident stream");
        assert_eq!(serial.digest(&config), parallel.digest(&parallel_config), "jobs={jobs}");
    }
}

/// An expired deadline stops a parallel campaign before any seed is
/// claimed — same as the serial engine — and the partial result resumes
/// to the full serial digest.
#[test]
fn expired_deadline_stops_parallel_workers_before_claiming() {
    let dir = scratch("deadline");
    let mut config = CampaignConfig::for_kind(VmKind::HotSpotLike, 4).with_jobs(4);
    config.supervisor = SupervisorConfig {
        checkpoint_path: Some(dir.join("campaign.checkpoint")),
        deadline: Some(Duration::ZERO),
        ..SupervisorConfig::default()
    };
    let stopped = run_campaign(&config);
    assert_eq!(stopped.totals.seeds, 0, "an expired deadline admits no new seeds");
    assert!(stopped.totals.partial);

    // Lift the deadline and resume from the checkpoint: the completed
    // campaign must match an uninterrupted serial run bit-for-bit.
    config.supervisor.deadline = None;
    let resumed = run_campaign(&config);
    assert!(!resumed.totals.partial);
    let serial_config = CampaignConfig::for_kind(VmKind::HotSpotLike, 4);
    let serial = run_campaign(&serial_config);
    assert_eq!(serial.digest(&serial_config), resumed.digest(&config));
}

/// Kill/resume cycles with parallel workers: a campaign stopped every
/// few seeds (the supervisor's `stop_after_seeds` kill switch) and
/// resumed with a *different* jobs setting each time still converges to
/// the serial digest — checkpoints are engine-agnostic.
#[test]
fn killed_and_resumed_parallel_campaign_matches_serial() {
    const SEEDS: u64 = 6;
    let serial_config = CampaignConfig::for_kind(VmKind::OpenJ9Like, SEEDS);
    let serial = run_campaign(&serial_config);

    let dir = scratch("resume");
    let base = CampaignConfig::for_kind(VmKind::OpenJ9Like, SEEDS);
    let supervisor = SupervisorConfig {
        checkpoint_path: Some(dir.join("campaign.checkpoint")),
        checkpoint_every: 2,
        stop_after_seeds: Some(2),
        ..SupervisorConfig::default()
    };
    // Alternate engines across the kill/resume cycle: parallel, serial,
    // parallel with a different width.
    let mut final_result = None;
    for (attempt, jobs) in [4, 1, 2].iter().enumerate() {
        let mut config = base.clone().with_jobs(*jobs);
        config.supervisor = supervisor.clone();
        let result = run_campaign(&config);
        assert_eq!(result.totals.seeds, 2 * (attempt as u64 + 1), "attempt {attempt}");
        final_result = Some((result, config));
    }
    let (finished, config) = final_result.unwrap();
    assert!(!finished.totals.partial, "three stints of 2 cover all 6 seeds");
    assert_eq!(serial.digest(&serial_config), finished.digest(&config));
    assert_identical(&serial, &finished, "kill/resume");
}

/// More workers than seeds: the surplus workers find the claim counter
/// exhausted and exit cleanly.
#[test]
fn more_workers_than_seeds() {
    let config = CampaignConfig::for_kind(VmKind::ArtLike, 2).with_jobs(8);
    let serial_config = CampaignConfig::for_kind(VmKind::ArtLike, 2);
    let parallel = run_campaign(&config);
    let serial = run_campaign(&serial_config);
    assert_eq!(serial.digest(&serial_config), parallel.digest(&config));
    assert_eq!(parallel.totals.seeds, 2);
}
