//! A minimal timing harness for the `benches/` entry points.
//!
//! The workspace must build with no network access, so the benches cannot
//! depend on criterion. This module provides the small subset the bench
//! files need: warmup, repeated timed runs, and a median-of-samples
//! report in criterion-like layout. Scale sample counts with
//! `CSE_BENCH_SAMPLES` (default 10).

use std::time::{Duration, Instant};

/// Samples per benchmark (override with `CSE_BENCH_SAMPLES`).
pub fn samples() -> usize {
    std::env::var("CSE_BENCH_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(10).max(1)
}

/// Times `f` repeatedly and prints `name  median ± spread`.
///
/// The return value of `f` is passed through `std::hint::black_box` so
/// the optimizer cannot elide the measured work.
pub fn bench_function<T>(name: &str, mut f: impl FnMut() -> T) {
    // One warmup run so lazy statics / first-touch costs don't skew the
    // first sample.
    std::hint::black_box(f());
    let n = samples();
    let mut times: Vec<Duration> = Vec::with_capacity(n);
    for _ in 0..n {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed());
    }
    times.sort();
    let median = times[times.len() / 2];
    let min = times[0];
    let max = times[times.len() - 1];
    println!("{name:<44} {median:>12.2?}   [{min:.2?} .. {max:.2?}] ({n} samples)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut runs = 0;
        bench_function("stopwatch/self_test", || {
            runs += 1;
            runs
        });
        // warmup + samples() timed runs.
        assert_eq!(runs, 1 + samples());
    }
}
