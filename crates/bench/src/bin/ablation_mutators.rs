//! Ablation: mutator mix (LI-only vs SW-only vs MI-only vs all three).
//!
//! FuzzJIT corresponds roughly to LI-only (§5: "FuzzJIT wraps existing
//! code with a loop template ... specific to the loop template"); the
//! full mix should find at least as many discrepancy seeds.

#![forbid(unsafe_code)]

use cse_bench::campaign_seeds;
use cse_core::mutate::Mutator;
use cse_core::validate::{validate, ValidateConfig};
use cse_vm::{VmConfig, VmKind};

fn run_with(enabled: Vec<Mutator>, seeds: u64) -> (usize, usize) {
    let mut hits = 0;
    let mut discrepancies = 0;
    for seed_value in 0..seeds {
        let seed = cse_fuzz::generate(seed_value, &cse_fuzz::FuzzConfig::default());
        let mut config = ValidateConfig::paper_defaults(VmConfig::for_kind(VmKind::OpenJ9Like));
        config.verify_neutrality = false;
        let outcome = cse_core::validate::validate_with(&seed, &config, seed_value, |artemis| {
            artemis.enabled = enabled.clone();
        });
        let _ = &outcome;
        if outcome.found_bug() {
            hits += 1;
        }
        discrepancies += outcome.discrepancies.len();
    }
    (hits, discrepancies)
}

fn main() {
    let seeds = campaign_seeds(150);
    println!("Ablation: mutator mix (OpenJ9-like, {seeds} seeds x 8 mutants)\n");
    println!("{:<18} {:>12} {:>15}", "Mutators", "seeds w/bug", "discrepancies");
    for (label, enabled) in [
        ("LI only", vec![Mutator::Li]),
        ("SW only", vec![Mutator::Sw]),
        ("MI only", vec![Mutator::Mi]),
        ("LI+SW+MI", Mutator::ALL.to_vec()),
    ] {
        let (hits, total) = run_with(enabled, seeds);
        println!("{label:<18} {hits:>12} {total:>15}");
    }
    let _ = validate; // re-exported driver, used indirectly
}
