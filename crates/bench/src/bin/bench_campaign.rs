//! Campaign-engine throughput: serial (`jobs = 1`) vs parallel
//! (`jobs = N`) execution of the same campaign, with a digest-equality
//! check and a machine-readable `BENCH_campaign.json` report.
//!
//! Knobs:
//!
//! * `CSE_SEEDS` — seeds per campaign (default 24).
//! * `CSE_JOBS` — parallel worker count (default: available parallelism).
//! * `CSE_BENCH_OUT` — output path for the JSON report (default
//!   `results/BENCH_campaign.json`).
//!
//! The ≥ 2× speedup target only applies on multi-core runners; the
//! report records `cores` so single-core results are interpretable.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use cse_bench::campaign_seeds;
use cse_core::campaign::{run_campaign, CampaignConfig, CampaignResult};
use cse_vm::VmKind;

struct Measurement {
    jobs: usize,
    wall: Duration,
    seeds_per_sec: f64,
    mutants_per_sec: f64,
    digest: u64,
}

fn measure(config: &CampaignConfig) -> (CampaignResult, Measurement) {
    let start = Instant::now();
    let result = run_campaign(config);
    let wall = start.elapsed();
    let secs = wall.as_secs_f64().max(1e-9);
    let measurement = Measurement {
        jobs: config.jobs,
        wall,
        seeds_per_sec: result.totals.seeds as f64 / secs,
        mutants_per_sec: result.totals.mutants as f64 / secs,
        digest: result.digest(config),
    };
    (result, measurement)
}

fn main() {
    let seeds = campaign_seeds(24);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let jobs: usize =
        std::env::var("CSE_JOBS").ok().and_then(|s| s.parse().ok()).unwrap_or(cores).max(2);
    let out_path = std::env::var("CSE_BENCH_OUT")
        .unwrap_or_else(|_| "results/BENCH_campaign.json".to_string());

    println!("Campaign engine throughput: jobs=1 vs jobs={jobs} ({cores} cores, {seeds} seeds)");

    let base = CampaignConfig::for_kind(VmKind::HotSpotLike, seeds);
    let (serial_result, serial) = measure(&base);
    let (_, parallel) = measure(&base.clone().with_jobs(jobs));

    assert_eq!(
        serial.digest, parallel.digest,
        "parallel campaign diverged from the serial reference"
    );
    let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9);

    for m in [&serial, &parallel] {
        println!(
            "  jobs={:<2}  {:>10.2?}  {:>8.2} seeds/s  {:>9.2} mutants/s",
            m.jobs, m.wall, m.seeds_per_sec, m.mutants_per_sec
        );
    }
    println!("  speedup: {speedup:.2}x  (digest {:#018x} identical)", serial.digest);
    if cores == 1 {
        println!("  note: single-core runner; the >=2x target applies to multi-core hosts");
    }

    // Hand-rolled JSON (the workspace is dependency-free).
    let emit = |m: &Measurement| {
        format!(
            "{{\"jobs\": {}, \"wall_secs\": {:.6}, \"seeds_per_sec\": {:.4}, \
             \"mutants_per_sec\": {:.4}, \"digest\": \"{:#018x}\"}}",
            m.jobs,
            m.wall.as_secs_f64(),
            m.seeds_per_sec,
            m.mutants_per_sec,
            m.digest
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"campaign_engine\",\n  \"cores\": {cores},\n  \"seeds\": {seeds},\n  \
         \"mutants\": {},\n  \"serial\": {},\n  \"parallel\": {},\n  \"speedup\": {speedup:.4}\n}}\n",
        serial_result.totals.mutants,
        emit(&serial),
        emit(&parallel),
    );
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("  wrote {out_path}"),
        Err(e) => eprintln!("warning: could not write {out_path}: {e}"),
    }
}
