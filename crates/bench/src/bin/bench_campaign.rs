//! Campaign-engine throughput and hot-path benchmarks, with a
//! machine-readable `BENCH_campaign.json` report.
//!
//! Six sections:
//!
//! 1. **Campaign throughput** — serial (`jobs = 1`) vs parallel
//!    (`jobs = N`) execution of the same campaign, digest-checked. Runs
//!    at the historical default workload shape (24 seeds) so
//!    `serial.seeds_per_sec` is comparable across report generations.
//! 2. **Sustained campaign** — the same campaign over a doubled seed
//!    range (serial only). Later seeds are substantially heavier than
//!    the first 24, so this is the endurance number, not a comparable
//!    throughput number.
//! 3. **Per-stage breakdown** — wall time each pipeline stage (parse,
//!    typecheck, compile, execute, validate) spends across the sustained
//!    workload, run serially so the split is attributable.
//! 4. **Interpreter microbench** — a hot integer loop executed with the
//!    JIT disabled, reported as interpreted Mops/s. This is the number
//!    the zero-clone dispatch and compact-value work moves.
//! 5. **Coverage payoff** — uniform (`collect`) vs feedback-scheduled
//!    (`guide`) campaigns at an equal seed budget, compared on merged
//!    JIT-behavior coverage cells (`coverage_cells`,
//!    `new_cells_per_1k_execs`).
//! 6. **Plan-space pruning cross-check** — warmth-aware pruned vs
//!    exhaustive [`cse_core::space`] enumeration over a small corpus;
//!    the process exits nonzero on any digest divergence, so CI can
//!    gate on pruning soundness.
//!
//! Knobs:
//!
//! * `CSE_SEEDS` — seeds for the throughput campaign (default 24; the
//!   sustained section runs `2×` this).
//! * `CSE_JOBS` — parallel worker count (default `min(cores, 4)`, so a
//!   single-core runner benchmarks `jobs = 1` instead of pretending two
//!   workers help).
//! * `CSE_BENCH_OUT` — output path for the JSON report (default
//!   `results/BENCH_campaign.json`).
//! * `CSE_BENCH_TRAJECTORY` — perf-trajectory JSONL path (default
//!   `results/BENCH_trajectory.jsonl`); every run appends a dated,
//!   schema-versioned entry. `CSE_BENCH_GATE=off` disables the
//!   trajectory regression gate and the speedup gate.
//!
//! Gates (process exits non-zero):
//!
//! * plan-space pruning digests must match exhaustive enumeration;
//! * the parallel row must reach a ≥ 2× speedup — enforced only when
//!   `cores ≥ 2` *and* the workload is the primary 24-seed shape
//!   (single-core speedups are meaningless, and tiny smoke workloads
//!   are all scheduling overhead);
//! * serial `seeds_per_sec` must stay within 20% of the last committed
//!   trajectory entry for the same workload shape.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use cse_bench::campaign_seeds;
use cse_core::campaign::{run_campaign, CampaignConfig, CampaignResult};
use cse_core::space::{enumerate_space_with, space_digest, PrunePlans};
use cse_core::validate::{self, ValidateConfig};
use cse_core::CoveragePolicy;
use cse_vm::{Vm, VmConfig, VmKind};

struct Measurement {
    jobs: usize,
    wall: Duration,
    seeds_per_sec: f64,
    mutants_per_sec: f64,
    digest: u64,
}

/// Repetitions per throughput measurement (`CSE_BENCH_REPS`, default 3).
/// The reported wall is the *minimum* across repetitions: campaigns are
/// deterministic (equal digests are asserted), so the fastest run is the
/// least scheduler-disturbed one.
fn bench_reps() -> u32 {
    std::env::var("CSE_BENCH_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(3).max(1)
}

fn measure(config: &CampaignConfig) -> (CampaignResult, Measurement) {
    measure_with_reps(config, bench_reps())
}

fn measure_with_reps(config: &CampaignConfig, reps: u32) -> (CampaignResult, Measurement) {
    let mut best: Option<(CampaignResult, Duration)> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let result = run_campaign(config);
        let wall = start.elapsed();
        if let Some((prev, best_wall)) = &best {
            assert_eq!(
                result.digest(config),
                prev.digest(config),
                "campaign must be deterministic across repetitions"
            );
            if wall >= *best_wall {
                continue;
            }
        }
        best = Some((result, wall));
    }
    let (result, wall) = best.expect("at least one repetition");
    let secs = wall.as_secs_f64().max(1e-9);
    let measurement = Measurement {
        jobs: config.jobs,
        wall,
        seeds_per_sec: result.totals.seeds as f64 / secs,
        mutants_per_sec: result.totals.mutants as f64 / secs,
        digest: result.digest(config),
    };
    (result, measurement)
}

// ----- per-stage breakdown ------------------------------------------------

#[derive(Default)]
struct StageBreakdown {
    parse: Duration,
    typecheck: Duration,
    compile: Duration,
    execute: Duration,
    validate: Duration,
    /// Seeds whose round-tripped source failed a stage (skipped, counted).
    skipped: u64,
}

/// Runs the campaign pipeline stage by stage over the same seed workload,
/// timing each stage separately. The campaign proper fuses these stages
/// per seed; here they run back-to-back so the wall-time split is
/// attributable. `execute` uses the bug-free profile (stage timing should
/// not depend on which injected fault fires); `validate` uses the same
/// buggy profile and `MAX_ITER` as the campaign.
///
/// Like the throughput section, the breakdown runs `CSE_BENCH_REPS`
/// times and keeps the elementwise minimum per stage: the pipeline is
/// deterministic, so the fastest observation of each stage is the least
/// scheduler-disturbed one.
fn measure_stages(config: &CampaignConfig) -> StageBreakdown {
    let mut best: Option<StageBreakdown> = None;
    for _ in 0..bench_reps() {
        let b = measure_stages_once(config);
        best = Some(match best {
            None => b,
            Some(prev) => StageBreakdown {
                parse: prev.parse.min(b.parse),
                typecheck: prev.typecheck.min(b.typecheck),
                compile: prev.compile.min(b.compile),
                execute: prev.execute.min(b.execute),
                validate: prev.validate.min(b.validate),
                skipped: b.skipped,
            },
        });
    }
    best.expect("at least one repetition")
}

/// `cold` + `never`: the auxiliary sections add extra call sites into
/// `validate`/`Vm::run_program`, and letting them participate in the
/// LTO'd hot path's inlining measurably slows the *throughput* section
/// (~15% on the reference runner). Keeping them out-of-line pins the
/// measured campaign to the same code shape the production driver gets.
#[cold]
#[inline(never)]
fn measure_stages_once(config: &CampaignConfig) -> StageBreakdown {
    let mut b = StageBreakdown::default();
    let execute_vm = VmConfig::correct(config.vm.kind);
    let validate_config = ValidateConfig {
        max_iter: config.max_iter,
        vm: config.vm.clone(),
        params: cse_core::SynthParams::for_kind(config.vm.kind),
        verify_neutrality: true,
        exec_cache: cse_core::ExecCachePolicy::Auto,
    };
    // Mirror the campaign driver: one artifact-cache shard shared by
    // every seed the (serial) worker processes, and the already-compiled
    // bytecode handed to validation instead of a per-seed front-end
    // rerun. The `validate` row thus times the production path.
    let shard = cse_vm::SharedArtifactCache::new();
    for seed in config.first_seed..config.first_seed + config.seeds {
        let generated = cse_fuzz::generate(seed, &config.fuzz);
        let source = cse_lang::pretty::print(&generated);

        let t = Instant::now();
        let parsed = cse_lang::parse(&source);
        b.parse += t.elapsed();
        let Ok(mut program) = parsed else {
            b.skipped += 1;
            continue;
        };

        let t = Instant::now();
        let checked = cse_lang::typeck::check(&mut program);
        b.typecheck += t.elapsed();
        if checked.is_err() {
            b.skipped += 1;
            continue;
        }

        let t = Instant::now();
        let compiled = cse_bytecode::compile(&program);
        b.compile += t.elapsed();
        let Ok(bytecode) = compiled else {
            b.skipped += 1;
            continue;
        };
        let bytecode = std::sync::Arc::new(bytecode);

        let t = Instant::now();
        let _ = Vm::run_program(&bytecode, execute_vm.clone());
        b.execute += t.elapsed();

        let t = Instant::now();
        let _ = validate::validate_compiled_in(
            &program,
            Ok(bytecode.clone()),
            &validate_config,
            seed,
            |_| {},
            &shard,
        );
        b.validate += t.elapsed();
    }
    b
}

// ----- interpreter microbench ---------------------------------------------

struct InterpBench {
    interp_ops: u64,
    wall: Duration,
    mops_per_sec: f64,
}

/// A hot integer loop, JIT disabled: every dispatched instruction goes
/// through the interpreter's decoded fetch path. (Out-of-line for the
/// same reason as [`measure_stages`].)
#[cold]
#[inline(never)]
fn interp_microbench() -> InterpBench {
    let src = r#"
        class B {
            static void main() {
                int acc = 0;
                for (int i = 0; i < 400000; i++) {
                    acc = acc + (i ^ (i >> 3)) % 7 - (i & 15);
                }
                println(acc);
            }
        }
    "#;
    let program = cse_lang::parse_and_check(src).expect("microbench source is valid");
    let bytecode = cse_bytecode::compile(&program).expect("microbench compiles");
    let mut config = VmConfig::correct(VmKind::HotSpotLike);
    config.jit_enabled = false;
    let start = Instant::now();
    let result = Vm::run_program(&bytecode, config);
    let wall = start.elapsed();
    assert!(result.outcome.is_completed(), "microbench must finish: {:?}", result.outcome);
    InterpBench {
        interp_ops: result.stats.interp_ops,
        wall,
        mops_per_sec: result.stats.interp_ops as f64 / wall.as_secs_f64().max(1e-9) / 1e6,
    }
}

// ----- plan-space pruning cross-check -------------------------------------

struct PruneCheck {
    name: &'static str,
    points: usize,
    pruned_wall: Duration,
    exhaustive_wall: Duration,
    pruned_digest: u64,
    exhaustive_digest: u64,
}

/// Enumerates each corpus program's space twice — pruned and exhaustive —
/// and digests both. The call lists mix live coordinates with dead ones
/// (invocation indices the program never reaches), so pruning has real
/// work to do; the digests must still match bit for bit. (Out-of-line
/// for the same reason as [`measure_stages`].)
/// A corpus entry: name, source, and forced-plan coordinates as
/// `(method, invocation)` pairs.
type PruneCase = (&'static str, &'static str, &'static [(&'static str, u64)]);

#[cold]
#[inline(never)]
fn prune_cross_check() -> Vec<PruneCheck> {
    let corpus: [PruneCase; 3] = [
        (
            "figure1",
            r#"class T {
                static int baz() { return 1; }
                static int bar() { return 2; }
                static int foo() { return bar() + baz(); }
                static void main() { println(foo()); }
            }"#,
            // (bar, 7) and (foo, 3) are dead: each is called once.
            &[("foo", 0), ("bar", 0), ("bar", 7), ("foo", 3), ("baz", 0)],
        ),
        (
            "loop_calls",
            r#"class T {
                static int step(int x) { return x * 3 + 1; }
                static void main() {
                    int acc = 0;
                    for (int i = 0; i < 6; i++) { acc = acc + step(i); }
                    println(acc);
                }
            }"#,
            // step runs 6 times: invocations 0, 2, 5 are live, 9 is dead.
            &[("step", 0), ("step", 2), ("step", 5), ("step", 9), ("main", 0)],
        ),
        (
            "strings_switch",
            r#"class T {
                static String label(int x) {
                    switch (x) {
                        case 0: return "zero";
                        case 1: return "one";
                        default: return "many:" + x;
                    }
                }
                static void main() {
                    for (int i = 0; i < 4; i++) { println(label(i)); }
                }
            }"#,
            &[("label", 0), ("label", 3), ("label", 8), ("main", 0)],
        ),
    ];
    let config = VmConfig::correct(VmKind::HotSpotLike);
    corpus
        .iter()
        .map(|&(name, src, calls)| {
            let program = cse_lang::parse_and_check(src).expect("corpus source is valid");
            let bytecode = cse_bytecode::compile(&program).expect("corpus compiles");
            let calls: Vec<_> = calls
                .iter()
                .map(|&(method, invocation)| {
                    (bytecode.find_method("T", method).expect("corpus method"), invocation)
                })
                .collect();
            let t = Instant::now();
            let pruned = enumerate_space_with(&bytecode, &calls, &config, PrunePlans::On);
            let pruned_wall = t.elapsed();
            let t = Instant::now();
            let exhaustive = enumerate_space_with(&bytecode, &calls, &config, PrunePlans::Off);
            let exhaustive_wall = t.elapsed();
            PruneCheck {
                name,
                points: pruned.len(),
                pruned_wall,
                exhaustive_wall,
                pruned_digest: space_digest(&pruned),
                exhaustive_digest: space_digest(&exhaustive),
            }
        })
        .collect()
}

// ----- coverage payoff ----------------------------------------------------

struct CoverageBench {
    seeds: u64,
    uniform_cells: u32,
    guided_cells: u32,
    corpus: usize,
    execs: u64,
    new_cells_per_1k_execs: f64,
}

/// Runs the same seed budget twice — uniform sampling under `collect`
/// and feedback scheduling under `guide` — and compares merged
/// coverage-cell counts. Equal budget, so the delta is the payoff of
/// guidance, not of extra work. (Out-of-line for the same reason as
/// [`measure_stages`].)
#[cold]
#[inline(never)]
fn coverage_bench(seeds: u64) -> CoverageBench {
    let uniform = run_campaign(
        &CampaignConfig::for_kind(VmKind::HotSpotLike, seeds)
            .with_coverage(CoveragePolicy::Collect),
    );
    let guided = run_campaign(
        &CampaignConfig::for_kind(VmKind::HotSpotLike, seeds).with_coverage(CoveragePolicy::Guide),
    );
    let uniform_state = uniform.coverage.as_ref().expect("collect carries coverage state");
    let guided_state = guided.coverage.as_ref().expect("guide carries coverage state");
    let cells = guided_state.cells();
    let execs = guided_state.execs;
    CoverageBench {
        seeds,
        uniform_cells: uniform_state.cells(),
        guided_cells: cells,
        corpus: guided_state.corpus.len(),
        execs,
        new_cells_per_1k_execs: if execs == 0 {
            0.0
        } else {
            f64::from(cells) * 1000.0 / execs as f64
        },
    }
}

// ----- perf trajectory ----------------------------------------------------

/// `YYYY-MM-DD` (UTC) from the system clock; civil-from-days, so no
/// date dependency is needed.
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02}")
}

/// Pulls `"key": <number>` out of one trajectory JSONL line. The
/// workspace is dependency-free, so this only ever parses the format
/// the emitter below writes.
fn json_number(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

// ----- main ---------------------------------------------------------------

fn main() {
    let seeds = campaign_seeds(24);
    let sustained_seeds = seeds * 2;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // `min(cores, 4)`: a single-core runner gets an honest `jobs = 1`
    // parallel row (the engine still routes through the work-stealing
    // path) instead of a meaningless 2-worker thrash number.
    let jobs: usize = std::env::var("CSE_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| cores.min(4))
        .max(1);
    let out_path = std::env::var("CSE_BENCH_OUT")
        .unwrap_or_else(|_| "results/BENCH_campaign.json".to_string());
    let gate_on = std::env::var("CSE_BENCH_GATE").map(|v| v != "off" && v != "0").unwrap_or(true);

    println!("Campaign engine throughput: jobs=1 vs jobs={jobs} ({cores} cores, {seeds} seeds)");

    let base = CampaignConfig::for_kind(VmKind::HotSpotLike, seeds);
    let (serial_result, serial) = measure(&base);
    let (_, parallel) = measure(&base.clone().with_jobs(jobs));

    assert_eq!(
        serial.digest, parallel.digest,
        "parallel campaign diverged from the serial reference"
    );
    let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9);

    for m in [&serial, &parallel] {
        println!(
            "  jobs={:<2}  {:>10.2?}  {:>8.2} seeds/s  {:>9.2} mutants/s",
            m.jobs, m.wall, m.seeds_per_sec, m.mutants_per_sec
        );
    }
    println!("  speedup: {speedup:.2}x  (digest {:#018x} identical)", serial.digest);
    println!(
        "  caches: exec memo {} hits / {} misses, artifacts {} hits / {} misses",
        serial_result.totals.exec_cache_hits,
        serial_result.totals.exec_cache_misses,
        serial_result.totals.artifact_cache_hits,
        serial_result.totals.artifact_cache_misses,
    );
    if cores == 1 {
        println!("  note: single-core runner; the >=2x target applies to multi-core hosts");
    }

    // Sustained campaign: a doubled seed range, serial. Seeds beyond the
    // first 24 are substantially heavier (larger generated programs), so
    // its seeds/s is an endurance figure and deliberately *not*
    // comparable with the throughput section above.
    let sustained_base = CampaignConfig::for_kind(VmKind::HotSpotLike, sustained_seeds);
    let (_, sustained) = measure_with_reps(&sustained_base, 1);
    println!(
        "Sustained campaign: {sustained_seeds} seeds serial  {:>10.2?}  {:>8.2} seeds/s  {:>9.2} mutants/s",
        sustained.wall, sustained.seeds_per_sec, sustained.mutants_per_sec
    );

    println!("Per-stage breakdown ({sustained_seeds} seeds, serial):");
    let stages = measure_stages(&sustained_base);
    for (name, wall) in [
        ("parse", stages.parse),
        ("typecheck", stages.typecheck),
        ("compile", stages.compile),
        ("execute", stages.execute),
        ("validate", stages.validate),
    ] {
        println!("  {name:<10} {wall:>10.2?}");
    }
    if stages.skipped > 0 {
        println!("  ({} seeds skipped a stage)", stages.skipped);
    }

    let interp = interp_microbench();
    println!(
        "Interpreter microbench: {} ops in {:.2?} = {:.2} Mops/s (JIT off)",
        interp.interp_ops, interp.wall, interp.mops_per_sec
    );

    // Coverage payoff: capped at 12 seeds — the comparison needs an
    // equal budget on both sides, not the full throughput workload.
    let coverage = coverage_bench(seeds.min(12));
    println!(
        "Coverage payoff ({} seeds, equal budget): uniform {} cells, guided {} cells (+{})",
        coverage.seeds,
        coverage.uniform_cells,
        coverage.guided_cells,
        coverage.guided_cells.saturating_sub(coverage.uniform_cells),
    );
    println!(
        "  guided corpus {} entries over {} execs = {:.2} new cells / 1k execs",
        coverage.corpus, coverage.execs, coverage.new_cells_per_1k_execs
    );

    println!("Plan-space pruning cross-check:");
    let prune_checks = prune_cross_check();
    let mut prune_ok = true;
    for c in &prune_checks {
        let verdict = if c.pruned_digest == c.exhaustive_digest { "identical" } else { "DIVERGED" };
        prune_ok &= c.pruned_digest == c.exhaustive_digest;
        println!(
            "  {:<16} {:>3} points  pruned {:>9.2?}  exhaustive {:>9.2?}  {verdict}",
            c.name, c.points, c.pruned_wall, c.exhaustive_wall
        );
    }

    // Hand-rolled JSON (the workspace is dependency-free).
    let emit = |m: &Measurement| {
        format!(
            "{{\"jobs\": {}, \"wall_secs\": {:.6}, \"seeds_per_sec\": {:.4}, \
             \"mutants_per_sec\": {:.4}, \"digest\": \"{:#018x}\"}}",
            m.jobs,
            m.wall.as_secs_f64(),
            m.seeds_per_sec,
            m.mutants_per_sec,
            m.digest
        )
    };
    // The cache counters ride in the `stages` block: they explain where
    // the `validate_secs` cut comes from (runs served from the execution
    // memo, compiles/decodes served from the artifact cache).
    let totals = &serial_result.totals;
    let stages_json = format!(
        "{{\"parse_secs\": {:.6}, \"typecheck_secs\": {:.6}, \"compile_secs\": {:.6}, \
         \"execute_secs\": {:.6}, \"validate_secs\": {:.6}, \"skipped_seeds\": {}, \
         \"exec_cache_hits\": {}, \"exec_cache_misses\": {}, \
         \"artifact_cache_hits\": {}, \"artifact_cache_misses\": {}}}",
        stages.parse.as_secs_f64(),
        stages.typecheck.as_secs_f64(),
        stages.compile.as_secs_f64(),
        stages.execute.as_secs_f64(),
        stages.validate.as_secs_f64(),
        stages.skipped,
        totals.exec_cache_hits,
        totals.exec_cache_misses,
        totals.artifact_cache_hits,
        totals.artifact_cache_misses,
    );
    let interp_json = format!(
        "{{\"interp_ops\": {}, \"wall_secs\": {:.6}, \"mops_per_sec\": {:.4}}}",
        interp.interp_ops,
        interp.wall.as_secs_f64(),
        interp.mops_per_sec,
    );
    let coverage_json = format!(
        "{{\"seeds\": {}, \"uniform_cells\": {}, \"guided_cells\": {}, \
         \"coverage_cells\": {}, \"corpus\": {}, \"execs\": {}, \
         \"new_cells_per_1k_execs\": {:.4}}}",
        coverage.seeds,
        coverage.uniform_cells,
        coverage.guided_cells,
        coverage.guided_cells,
        coverage.corpus,
        coverage.execs,
        coverage.new_cells_per_1k_execs,
    );
    let prune_json = prune_checks
        .iter()
        .map(|c| {
            format!(
                "{{\"program\": \"{}\", \"points\": {}, \"pruned_wall_secs\": {:.6}, \
                 \"exhaustive_wall_secs\": {:.6}, \"pruned_digest\": \"{:#018x}\", \
                 \"exhaustive_digest\": \"{:#018x}\", \"identical\": {}}}",
                c.name,
                c.points,
                c.pruned_wall.as_secs_f64(),
                c.exhaustive_wall.as_secs_f64(),
                c.pruned_digest,
                c.exhaustive_digest,
                c.pruned_digest == c.exhaustive_digest,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        "{{\n  \"bench\": \"campaign_engine\",\n  \"cores\": {cores},\n  \"seeds\": {seeds},\n  \
         \"mutants\": {},\n  \"serial\": {},\n  \"parallel\": {},\n  \"speedup\": {speedup:.4},\n  \
         \"sustained_seeds\": {sustained_seeds},\n  \"sustained\": {},\n  \
         \"stages\": {stages_json},\n  \"interp_microbench\": {interp_json},\n  \
         \"coverage\": {coverage_json},\n  \
         \"prune_check\": [\n    {prune_json}\n  ]\n}}\n",
        serial_result.totals.mutants,
        emit(&serial),
        emit(&parallel),
        emit(&sustained),
    );
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("  wrote {out_path}"),
        Err(e) => eprintln!("warning: could not write {out_path}: {e}"),
    }

    // Perf trajectory: find the last committed entry for this workload
    // shape (same seeds + cores — smoke and full-size runs are not
    // comparable), then append today's entry.
    let trajectory_path = std::env::var("CSE_BENCH_TRAJECTORY")
        .unwrap_or_else(|_| "results/BENCH_trajectory.jsonl".to_string());
    let committed = std::fs::read_to_string(&trajectory_path).unwrap_or_default();
    let baseline = committed
        .lines()
        .rev()
        .find(|line| {
            json_number(line, "seeds") == Some(seeds as f64)
                && json_number(line, "cores") == Some(cores as f64)
        })
        .and_then(|line| json_number(line, "seeds_per_sec"));
    let entry = format!(
        "{{\"schema\": 1, \"date\": \"{}\", \"cores\": {cores}, \"seeds\": {seeds}, \
         \"jobs\": {jobs}, \"seeds_per_sec\": {:.4}, \"mutants_per_sec\": {:.4}, \
         \"speedup\": {speedup:.4}, \"validate_secs\": {:.6}, \"exec_cache_hits\": {}, \
         \"exec_cache_misses\": {}, \"artifact_cache_hits\": {}, \
         \"artifact_cache_misses\": {}, \"coverage_cells\": {}, \
         \"new_cells_per_1k_execs\": {:.4}, \"digest\": \"{:#018x}\"}}\n",
        today_utc(),
        serial.seeds_per_sec,
        serial.mutants_per_sec,
        stages.validate.as_secs_f64(),
        totals.exec_cache_hits,
        totals.exec_cache_misses,
        totals.artifact_cache_hits,
        totals.artifact_cache_misses,
        coverage.guided_cells,
        coverage.new_cells_per_1k_execs,
        serial.digest,
    );
    let append = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&trajectory_path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, entry.as_bytes()));
    match append {
        Ok(()) => println!("  appended {trajectory_path}"),
        Err(e) => eprintln!("warning: could not append {trajectory_path}: {e}"),
    }

    let mut failed = false;
    if !prune_ok {
        eprintln!("error: warmth-aware plan pruning diverged from exhaustive enumeration");
        eprintln!("       (re-run with CSE_PRUNE_PLANS=off to bypass; this is a soundness bug)");
        failed = true;
    }
    // The ≥ 2× speedup gate: only meaningful with real parallelism
    // (cores ≥ 2) on the primary workload shape (tiny smoke runs are
    // dominated by thread start-up, not seed work).
    if gate_on && cores >= 2 && seeds >= 24 && speedup < 2.0 {
        eprintln!(
            "error: parallel speedup {speedup:.2}x < 2x on a {cores}-core host \
             (CSE_BENCH_GATE=off to bypass)"
        );
        failed = true;
    }
    if gate_on {
        if let Some(prev) = baseline {
            if serial.seeds_per_sec < prev * 0.8 {
                eprintln!(
                    "error: serial throughput regressed >20%: {:.2} seeds/s vs committed {:.2} \
                     (CSE_BENCH_GATE=off to bypass)",
                    serial.seeds_per_sec, prev
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
