//! Table 3 — "Mutation cost of Artemis in seconds".
//!
//! * **Single-run**: one engine boot per mutant — parse the seed source,
//!   resolve/check it, construct the mutation engine, mutate once (the
//!   paper's "complete both source parsing and loop synthesis").
//! * **Large-scale**: the engine and parsed seed are reused across many
//!   mutants, amortizing everything but the mutation itself.
//!
//! The paper reports ~1.65 s single-run vs ~0.16 s large-scale on Spoon;
//! this front end is far lighter, so absolute numbers are milliseconds —
//! the *ratio* (boot cost dominating single runs) is the reproduced shape.

#![forbid(unsafe_code)]

use std::time::Instant;

use cse_bench::campaign_seeds;
use cse_core::mutate::Artemis;
use cse_core::synth::SynthParams;
use cse_vm::VmKind;

fn stats(mut samples: Vec<f64>) -> (f64, f64, f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let median = samples[samples.len() / 2];
    (mean, median, samples[0], *samples.last().expect("nonempty"))
}

fn main() {
    let n = campaign_seeds(300) as usize;
    println!("Table 3: mutation cost (milliseconds; paper reports seconds on Spoon)\n");
    let fuzz = cse_fuzz::FuzzConfig::default();
    // Pre-render seed sources: single-run mode starts from source text,
    // exactly like invoking the tool afresh per mutant.
    let sources: Vec<String> =
        (0..n).map(|i| cse_lang::pretty::print(&cse_fuzz::generate(i as u64, &fuzz))).collect();

    // Single-run: parse + check + boot + one mutation, per mutant.
    let mut single: Vec<f64> = Vec::with_capacity(n);
    for (i, source) in sources.iter().enumerate() {
        let start = Instant::now();
        let seed = cse_lang::parse_and_check(source).expect("seed re-parses");
        let mut artemis = Artemis::new(i as u64, SynthParams::for_kind(VmKind::HotSpotLike));
        let (mutant, _) = artemis.jonm(&seed);
        std::hint::black_box(&mutant);
        single.push(start.elapsed().as_secs_f64() * 1e3);
    }

    // Large-scale: boot once, reuse the parsed seed, generate many mutants.
    let seeds: Vec<cse_lang::Program> =
        sources.iter().map(|s| cse_lang::parse_and_check(s).expect("seed re-parses")).collect();
    let mut artemis = Artemis::new(7, SynthParams::for_kind(VmKind::HotSpotLike));
    let mut large: Vec<f64> = Vec::with_capacity(n);
    for seed in &seeds {
        let start = Instant::now();
        let (mutant, _) = artemis.jonm(seed);
        std::hint::black_box(&mutant);
        large.push(start.elapsed().as_secs_f64() * 1e3);
    }

    println!("{:<12} {:>9} {:>9} {:>9} {:>9}", "", "Mean", "Median", "Min", "Max");
    for (label, samples) in [("Single-run", single), ("Large-scale", large)] {
        let (mean, median, min, max) = stats(samples);
        println!("{label:<12} {mean:>9.3} {median:>9.3} {min:>9.3} {max:>9.3}");
    }
    println!("\n({n} seeds; one mutant each; override count with CSE_SEEDS)");
}
