//! Table 2 — "Affected JIT compiler components by reported crashes".
//!
//! Classifies the crash bugs found by a campaign per affected component
//! for the HotSpot-like and OpenJ9-like profiles (the paper excludes VMs
//! with fewer than 10 crashes; ART is reported for context here).

#![forbid(unsafe_code)]

use cse_bench::{campaign_seeds, row, ALL_KINDS};
use cse_core::campaign::{run_campaign, CampaignConfig};

fn main() {
    let seeds = campaign_seeds(400);
    println!("Table 2: crash bugs per affected JIT component");
    println!("({seeds} seeds per VM; counts are crash *occurrences*, dedup in parens)\n");
    for kind in ALL_KINDS {
        let config = CampaignConfig::for_kind(kind, seeds);
        let result = run_campaign(&config);
        println!("--- {kind} ---");
        let widths = [28, 14, 8];
        println!("{}", row(&["Component", "#crashes", "unique"], &widths));
        let mut by_component: std::collections::BTreeMap<_, (usize, usize)> =
            std::collections::BTreeMap::new();
        for evidence in result.bugs.values() {
            if evidence.symptom == cse_vm::Symptom::Crash {
                let entry = by_component.entry(evidence.component).or_insert((0, 0));
                entry.0 += evidence.occurrences;
                entry.1 += 1;
            }
        }
        for (component, (occurrences, unique)) in &by_component {
            println!(
                "{}",
                row(
                    &[&component.to_string(), &occurrences.to_string(), &unique.to_string()],
                    &widths
                )
            );
        }
        let total: usize = by_component.values().map(|(o, _)| o).sum();
        println!("{}\n", row(&["(total)", &total.to_string(), ""], &widths));
    }
}
