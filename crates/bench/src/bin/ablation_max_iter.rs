//! Ablation: MAX_ITER (mutants per seed). The paper picked 8 as the
//! cost/effectiveness sweet spot (§4.1); this sweep shows the yield curve.

#![forbid(unsafe_code)]

use cse_bench::campaign_seeds;
use cse_core::validate::{validate, ValidateConfig};
use cse_vm::{VmConfig, VmKind};

fn main() {
    let seeds = campaign_seeds(120);
    println!("Ablation: MAX_ITER sweep (OpenJ9-like, {seeds} seeds)\n");
    println!(
        "{:>8} {:>12} {:>14} {:>16}",
        "MAX_ITER", "seeds w/bug", "VM invocations", "bugs/invocation"
    );
    for max_iter in [1usize, 2, 4, 8, 16, 32] {
        let mut hits = 0u64;
        let mut invocations = 0u64;
        for seed_value in 0..seeds {
            let seed = cse_fuzz::generate(seed_value, &cse_fuzz::FuzzConfig::default());
            let mut config = ValidateConfig::paper_defaults(VmConfig::for_kind(VmKind::OpenJ9Like));
            config.max_iter = max_iter;
            config.verify_neutrality = false;
            let outcome = validate(&seed, &config, seed_value);
            if outcome.found_bug() {
                hits += 1;
            }
            invocations += outcome.vm_invocations as u64;
        }
        println!(
            "{max_iter:>8} {hits:>12} {invocations:>14} {:>16.5}",
            hits as f64 / invocations.max(1) as f64
        );
    }
}
