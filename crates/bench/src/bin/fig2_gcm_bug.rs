//! Figure 2 — the JDK-8288975 analog: Global Code Motion sinks a field
//! read-modify-write into a deeper loop whose (buggy) frequency estimate
//! ties with its home block.
//!
//! The seed keeps incrementing `T.l` by 2 inside a nested loop/switch and
//! prints it; it is far too cold to reach any JIT threshold. The mutant
//! carries the paper's Artemis insertions: a control flag `z` with an
//! early-return prologue in `o()`, a 9,676-iteration pre-invocation loop,
//! and a hot strided loop inside the `case 36:` arm. Those heat `T.g()`
//! to the top tier, where the seeded GCM bug moves the `l += 2` chain
//! into the inner loop — and the byte accumulator diverges.

#![forbid(unsafe_code)]

use cse_bench::{FIG2_MUTANT, FIG2_SEED};
use cse_core::space::JitTrace;
use cse_core::validate::compile_checked;
use cse_vm::{BugId, FaultInjector, TraceEvent, Vm, VmConfig, VmKind};

fn main() {
    println!("Figure 2: the GCM store-sink mis-compilation (JDK-8288975 analog)\n");
    let seed = cse_lang::parse_and_check(FIG2_SEED).unwrap();
    let mutant = cse_lang::parse_and_check(FIG2_MUTANT).unwrap();
    let vm = VmConfig::correct(VmKind::HotSpotLike)
        .with_faults(FaultInjector::with([BugId::HsGcmStoreSink]));

    let seed_bc = compile_checked(&seed);
    let mutant_bc = compile_checked(&mutant);

    let seed_run = Vm::run_program(&seed_bc, vm.clone());
    println!(
        "seed   (default trace): output {:?}  [{} compilations — too cold to JIT]",
        seed_run.output.trim().replace('\n', " "),
        seed_run.stats.compilations + seed_run.stats.osr_compilations,
    );

    let mut verbose = vm.clone();
    verbose.record_method_entries = false;
    let mutant_run = Vm::run_program(&mutant_bc, verbose);
    println!(
        "mutant (default trace): output {:?}  [{} JIT + {} OSR compilations, {} deopts]",
        mutant_run.output.trim().replace('\n', " "),
        mutant_run.stats.compilations,
        mutant_run.stats.osr_compilations,
        mutant_run.stats.deopts,
    );

    println!("\nmutant compilation-state transitions (the paper's narrative):");
    let trace = JitTrace::from_events(&mutant_run.events);
    let _ = trace;
    for event in mutant_run.events.iter().take(14) {
        match event {
            TraceEvent::Compiled { method, tier, reason, invocation } => println!(
                "  {} compiled at {tier} ({reason:?}, invocation {invocation})",
                mutant_bc.qualified_name(*method)
            ),
            TraceEvent::Deopt { method, bc_pc, reason, .. } => println!(
                "  {} de-optimized at bytecode {bc_pc} ({reason:?})",
                mutant_bc.qualified_name(*method)
            ),
            _ => {}
        }
    }

    assert_ne!(seed_run.output, mutant_run.output, "the mutant must expose the mis-compilation");
    println!(
        "\n=> DISCREPANCY: seed printed {:?}, mutant printed {:?}.",
        seed_run.output.trim().replace('\n', " "),
        mutant_run.output.trim().replace('\n', " "),
    );

    // Root-cause confirmation: with the GCM bug disabled the mutant agrees.
    let fixed = Vm::run_program(&mutant_bc, VmConfig::correct(VmKind::HotSpotLike));
    assert_eq!(fixed.output, seed_run.output);
    println!(
        "With HsGcmStoreSink disabled (the \"fixed\" compiler), the mutant prints {:?} — matching the seed.",
        fixed.output.trim().replace('\n', " ")
    );
    println!("\nNote: the interpreter-only run of the mutant also matches the seed,");
    let interp = Vm::run_program(&mutant_bc, VmConfig::interpreter_only(VmKind::HotSpotLike));
    assert_eq!(interp.output, seed_run.output);
    println!("so the mutation is semantics-preserving: the JIT compiler is at fault.");
}
