//! Table 5 — the qualitative comparison matrix of JVM-testing tools.
//!
//! The matrix itself is literature data; the Artemis row's properties are
//! *checked live* against this implementation: syntactic validity and
//! semantic preservation of sampled mutants, and compilation-space
//! exploration (distinct JIT-traces across mutants of one seed).

#![forbid(unsafe_code)]

use cse_core::mutate::Artemis;
use cse_core::space::JitTrace;
use cse_core::synth::SynthParams;
use cse_core::validate::compile_checked;
use cse_vm::{Vm, VmConfig, VmKind};

const MATRIX: &[[&str; 8]] = &[
    // name, venue, gen, format, method, syn-valid, sem-pres, space-exploration
    ["Sirer et al.", "DSL '99", "G", "B", "D", "yes", "-", "no"],
    ["Yoshikawa et al.", "QSIC '03", "G", "B", "D", "yes", "-", "no"],
    ["JavaFuzzer", "-", "G", "S", "D", "yes", "-", "no"],
    ["JFuzz", "-", "G", "S", "D", "yes", "-", "no"],
    ["dexfuzz", "VEE '15", "M", "B", "D", "yes", "no", "no"],
    ["classfuzz", "PLDI '16", "M", "B", "D", "no", "no", "no"],
    ["classming", "ICSE '19", "M", "B", "D", "no", "no", "no"],
    ["JavaTailor", "ICSE '22", "M", "B", "D", "yes", "no", "no"],
    ["JAttack", "ASE '22", "G", "S", "D", "yes", "-", "no"],
    ["JITfuzz", "ICSE '23", "M", "S", "D", "yes", "no", "no"],
    ["JOpFuzzer", "ICSE '23", "M", "S", "P", "yes", "yes", "no"],
    ["Artemis (this repo)", "SOSP '23", "M", "S", "P", "checked", "checked", "checked"],
];

fn main() {
    println!("Table 5: closely related JVM-testing tools");
    println!("(G=generation, M=mutation; B=bytecode, S=source; D=differential, P=metamorphic)\n");
    println!(
        "{:<22} {:<9} {:>3} {:>3} {:>3} {:>9} {:>9} {:>9}",
        "Tool", "Venue", "Gen", "Fmt", "Mth", "SynValid", "SemPres", "SpaceExp"
    );
    for r in MATRIX {
        println!(
            "{:<22} {:<9} {:>3} {:>3} {:>3} {:>9} {:>9} {:>9}",
            r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7]
        );
    }

    // Live verification of the Artemis row.
    println!("\nChecking the Artemis row live over sampled seeds ...");
    let fuzz = cse_fuzz::FuzzConfig::default();
    let mut mutants_checked = 0;
    let mut distinct_trace_seeds = 0;
    let sample = 10u64;
    for seed_value in 0..sample {
        let seed = cse_fuzz::generate(seed_value, &fuzz);
        let seed_bc = compile_checked(&seed);
        let reference = Vm::run_program(&seed_bc, VmConfig::interpreter_only(VmKind::HotSpotLike));
        let mut artemis = Artemis::new(seed_value, SynthParams::for_kind(VmKind::HotSpotLike));
        let mut traces: Vec<JitTrace> = Vec::new();
        for _ in 0..4 {
            let (mutant, applied) = artemis.jonm(&seed);
            if applied.is_empty() {
                continue;
            }
            // Syntactic validity: printing and re-checking must succeed.
            let printed = cse_lang::pretty::print(&mutant);
            cse_lang::parse_and_check(&printed).expect("mutant must be syntactically valid");
            // Semantic preservation: identical behavior on the reference
            // interpreter (timeouts discarded, as in §4.3).
            let bc = compile_checked(&mutant);
            let run = Vm::run_program(&bc, VmConfig::interpreter_only(VmKind::HotSpotLike));
            if matches!(run.outcome, cse_vm::Outcome::Timeout) {
                continue;
            }
            assert_eq!(run.observable(), reference.observable(), "mutant must preserve semantics");
            // Space exploration: distinct JIT-traces under the tiered VM.
            let tiered = Vm::run_program(&bc, VmConfig::correct(VmKind::HotSpotLike));
            traces.push(JitTrace::from_events(&tiered.events));
            mutants_checked += 1;
        }
        let mut unique = 0;
        for (i, trace) in traces.iter().enumerate() {
            if !traces[..i].iter().any(|t| t.same_as(trace)) {
                unique += 1;
            }
        }
        if unique >= 2 {
            distinct_trace_seeds += 1;
        }
    }
    println!("  syntactic validity   : {mutants_checked}/{mutants_checked} mutants re-check");
    println!("  semantic preservation: {mutants_checked}/{mutants_checked} mutants agree with their seed");
    println!(
        "  space exploration    : {distinct_trace_seeds}/{sample} seeds produced >=2 distinct JIT-traces"
    );
    assert!(
        distinct_trace_seeds * 2 >= sample,
        "mutants must actually explore the compilation space"
    );
}
