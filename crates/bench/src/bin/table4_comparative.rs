//! Table 4 — the comparative study between CSE and the traditional
//! approach (§4.3), plus the throughput measurement.
//!
//! For each seed on the OpenJ9-like profile (the paper's §4.3 target):
//! run the seed with its default JIT-trace; run it force-compiled
//! (`-Xjit:count=0` — the traditional oracle); run 8 Artemis mutants with
//! their default traces (CSE). Count seeds where each approach spots a
//! discrepancy, and their overlap.

#![forbid(unsafe_code)]

use std::time::Instant;

use cse_bench::campaign_seeds;
use cse_core::baseline;
use cse_core::validate::{validate, ValidateConfig};
use cse_vm::{VmConfig, VmKind};

fn main() {
    let seeds = campaign_seeds(400);
    println!("Table 4: comparative study, CSE vs. the traditional approach");
    println!("(OpenJ9-like profile, {seeds} seeds x 8 mutants; CSE_SEEDS to scale)\n");
    let vm = VmConfig::for_kind(VmKind::OpenJ9Like);
    let start = Instant::now();
    let mut mutants = 0u64;
    let mut vm_invocations = 0u64;
    let mut incidents = 0u64;
    let mut cse_hits = 0u64;
    let mut trad_hits = 0u64;
    let mut both = 0u64;
    for seed_value in 0..seeds {
        let seed = cse_fuzz::generate(seed_value, &cse_fuzz::FuzzConfig::default());
        let mut config = ValidateConfig::paper_defaults(vm.clone());
        // The pure Algorithm-1 driver: no reference-interpreter runs, like
        // the paper's tool (neutrality is enforced by the test suite).
        config.verify_neutrality = false;
        let outcome = validate(&seed, &config, seed_value);
        mutants += outcome.mutants_run as u64;
        vm_invocations += outcome.vm_invocations as u64;
        incidents += outcome.incidents.len() as u64;
        let tra = baseline::traditional(&seed, &vm);
        vm_invocations += tra.vm_invocations as u64;
        let cse_found = outcome.found_bug();
        if cse_found {
            cse_hits += 1;
        }
        if tra.discrepancy {
            trad_hits += 1;
        }
        if cse_found && tra.discrepancy {
            both += 1;
        }
    }
    let wall = start.elapsed();
    println!("{:>8} {:>9} {:>6} {:>6} {:>6}", "#Seeds", "#Mutants", "CSE", "Tra.", "Both");
    println!("{seeds:>8} {mutants:>9} {cse_hits:>6} {trad_hits:>6} {both:>6}");
    let cse_only = cse_hits.saturating_sub(both);
    if cse_hits > 0 {
        println!(
            "\n{:.1}% of CSE-found seeds are invisible to the traditional approach",
            100.0 * cse_only as f64 / cse_hits as f64
        );
    }
    println!("\nThroughput (§4.3):");
    println!(
        "  {vm_invocations} VM invocations in {wall:.1?} = {:.2} invocations/second",
        vm_invocations as f64 / wall.as_secs_f64()
    );
    println!(
        "  {:.2} seeds/second, {:.2} mutants/second",
        seeds as f64 / wall.as_secs_f64(),
        mutants as f64 / wall.as_secs_f64()
    );
    if incidents > 0 {
        println!("\n{incidents} harness incident(s) contained (see validate::ValidationOutcome)");
    }
}
