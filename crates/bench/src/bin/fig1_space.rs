//! Figure 1 — the compilation space of a simple program.
//!
//! The paper's 4-call program (`main` → `foo` → `bar` + `baz`) yields a
//! 16-choice compilation space; every choice must print 3. This harness
//! enumerates all 16 forced plans (`LVM(P, φ)`, Definition 3.3), prints
//! the resulting JIT-trace of each, and cross-validates the outputs —
//! then repeats on a VM with a seeded mis-compilation to show the oracle
//! firing inside the space.

#![forbid(unsafe_code)]

use cse_core::space::{enumerate_space, find_space_discrepancy, JitTrace};
use cse_vm::{VmConfig, VmKind};

const FIGURE1: &str = r#"
class T {
    static int baz() { return 1; }
    static int bar() { return 2; }
    static int foo() { return bar() + baz(); }
    static void main() { println(foo()); }
}
"#;

fn main() {
    let program = cse_lang::parse_and_check(FIGURE1).unwrap();
    let bytecode = cse_bytecode::compile(&program).unwrap();
    let calls = vec![
        (bytecode.find_method("T", "main").unwrap(), 0),
        (bytecode.find_method("T", "foo").unwrap(), 0),
        (bytecode.find_method("T", "bar").unwrap(), 0),
        (bytecode.find_method("T", "baz").unwrap(), 0),
    ];
    println!("Figure 1: compilation space of the 4-call program (2^4 = 16 choices)");
    println!("(I = interpreted, C = compiled at the top tier)\n");
    let config = VmConfig::correct(VmKind::HotSpotLike);
    let points = enumerate_space(&bytecode, &calls, &config);
    println!(
        "{:>3}  {:>4} {:>4} {:>4} {:>4}  {:>7}  trace",
        "#", "main", "foo", "bar", "baz", "output"
    );
    for (i, point) in points.iter().enumerate() {
        let marks: Vec<&str> = point.choices.iter().map(|&c| if c { "C" } else { "I" }).collect();
        let trace = JitTrace::from_events(&point.result.events);
        println!(
            "{:>3}  {:>4} {:>4} {:>4} {:>4}  {:>7}  {}",
            i + 1,
            marks[0],
            marks[1],
            marks[2],
            marks[3],
            point.result.output.trim(),
            trace.render(),
        );
    }
    match find_space_discrepancy(&points) {
        None => println!("\nAll 16 compilation choices agree: the space is consistent."),
        Some((a, b)) => {
            println!("\nJIT-COMPILER BUG: choices #{} and #{} disagree!", a + 1, b + 1);
            std::process::exit(1);
        }
    }

    // The same space on a VM with a seeded mis-compilation: the oracle
    // finds the inconsistency purely by cross-validating the space.
    println!("\n--- same space, VM seeded with HsConstPropRemSign ---");
    let buggy_program = cse_lang::parse_and_check(
        r#"
        class T {
            static int baz() { return -7 % 3; }
            static int bar() { return 2; }
            static int foo() { return bar() + baz(); }
            static void main() { println(foo()); }
        }
        "#,
    )
    .unwrap();
    let buggy_bytecode = cse_bytecode::compile(&buggy_program).unwrap();
    let calls = vec![
        (buggy_bytecode.find_method("T", "foo").unwrap(), 0),
        (buggy_bytecode.find_method("T", "baz").unwrap(), 0),
    ];
    let buggy_vm = VmConfig::correct(VmKind::HotSpotLike)
        .with_faults(cse_vm::FaultInjector::with([cse_vm::BugId::HsConstPropRemSign]));
    let points = enumerate_space(&buggy_bytecode, &calls, &buggy_vm);
    for (i, point) in points.iter().enumerate() {
        let marks: Vec<&str> = point.choices.iter().map(|&c| if c { "C" } else { "I" }).collect();
        println!(
            "  #{:<2} foo={} baz={}  output={:?}",
            i + 1,
            marks[0],
            marks[1],
            point.result.output.trim()
        );
    }
    match find_space_discrepancy(&points) {
        Some((a, b)) => println!(
            "\nCross-validation flags the seeded bug: choices #{} vs #{} disagree.",
            a + 1,
            b + 1
        ),
        None => {
            println!("\nexpected the seeded bug to split the space");
            std::process::exit(1);
        }
    }
}
