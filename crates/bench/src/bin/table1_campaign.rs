//! Table 1 — "Statistics of reported JIT-compiler bugs".
//!
//! Runs a fuzzing campaign against each VM profile with its default seeded
//! bug set and prints the paper's layout: discrepancies reported, unique
//! (ground-truth-deduplicated) bugs, duplicates, and the symptom split
//! (mis-compilation / crash / performance). Scale with `CSE_SEEDS`.

#![forbid(unsafe_code)]

use cse_bench::{campaign_seeds, row, supervisor_from_env, ALL_KINDS};
use cse_core::campaign::{run_campaign, CampaignConfig, CampaignResult};
use cse_vm::Symptom;

fn main() {
    let seeds = campaign_seeds(400);
    println!("Table 1: statistics of found JIT-compiler bugs");
    println!("({seeds} seeds x 8 mutants per VM; override with CSE_SEEDS;");
    println!(" supervision via CSE_CHECKPOINT_DIR / CSE_QUARANTINE_DIR / CSE_DEADLINE_SECS)\n");
    let mut results: Vec<(String, CampaignResult)> = Vec::new();
    for kind in ALL_KINDS {
        let mut config = CampaignConfig::for_kind(kind, seeds);
        config.supervisor = supervisor_from_env(&kind.to_string());
        let result = run_campaign(&config);
        results.push((kind.to_string(), result));
    }
    let widths = [26, 9, 9, 9, 9];
    let names: Vec<&str> = results.iter().map(|(n, _)| n.as_str()).collect();
    println!("{}", row(&["", names[0], names[1], names[2], "Total"], &widths));

    let total = |f: &dyn Fn(&CampaignResult) -> usize| -> Vec<String> {
        let mut cells: Vec<String> = results.iter().map(|(_, r)| f(r).to_string()).collect();
        let sum: usize = results.iter().map(|(_, r)| f(r)).sum();
        cells.push(sum.to_string());
        cells
    };
    let print_row = |label: &str, cells: Vec<String>| {
        let mut all: Vec<&str> = vec![label];
        all.extend(cells.iter().map(String::as_str));
        println!("{}", row(&all, &widths));
    };

    print_row(
        "Reported (discrepancies)",
        total(&|r| r.bugs.values().map(|e| e.occurrences).sum::<usize>() + r.unattributed),
    );
    println!("{}", row(&["--- numbers of bugs ---", "", "", "", ""], &widths));
    print_row("Duplicate", total(&|r| r.duplicates()));
    print_row("Confirmed (unique bugs)", total(&|r| r.bugs.len()));
    println!("{}", row(&["--- types of bugs ---", "", "", "", ""], &widths));
    for (label, symptom) in [
        ("Mis-comp.", Symptom::MisCompilation),
        ("Crash", Symptom::Crash),
        ("Performance", Symptom::Performance),
    ] {
        print_row(label, total(&|r| r.bugs.values().filter(|e| e.symptom == symptom).count()));
    }
    println!();
    for (name, result) in &results {
        println!(
            "{name}: {} seeds with discrepancies, {} mutants ({} completed, {} discarded), \
             {} VM invocations, {:.1?} wall{}",
            result.cse_seeds.len(),
            result.totals.mutants,
            result.totals.completed,
            result.totals.discarded,
            result.totals.vm_invocations,
            result.totals.wall,
            if result.totals.partial { "  [PARTIAL — resume from checkpoint]" } else { "" },
        );
        if !result.incidents.is_empty() {
            println!("  {} harness incident(s) contained:", result.incidents.len());
            for incident in &result.incidents {
                println!(
                    "    seed {} [{}]: {}",
                    incident.seed,
                    incident.phase,
                    incident.payload.lines().next().unwrap_or("")
                );
            }
        }
        assert_eq!(
            result.totals.neutrality_violations, 0,
            "JoNM produced a non-neutral mutant — harness bug"
        );
        for evidence in result.bugs.values() {
            println!(
                "  {:?} [{:?}, {}] first at seed {} x{}",
                evidence.bug,
                evidence.symptom,
                evidence.component,
                evidence.first_seed,
                evidence.occurrences
            );
        }
    }
}
