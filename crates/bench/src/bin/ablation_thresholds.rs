//! Ablation: default thresholds vs the tiny-threshold workaround (§4.5).
//!
//! The paper tried setting very small compilation thresholds for a week
//! without interesting findings and argues the workaround *shrinks* the
//! compilation space (everything compiles immediately, so there is little
//! interleaving left to explore). This ablation compares discrepancy
//! yield under default thresholds vs thresholds divided by 50.

#![forbid(unsafe_code)]

use cse_bench::campaign_seeds;
use cse_core::validate::{validate, ValidateConfig};
use cse_vm::{VmConfig, VmKind};

fn run_with(divide: u64, seeds: u64) -> (usize, u64) {
    let mut vm = VmConfig::for_kind(VmKind::OpenJ9Like);
    for tier in &mut vm.tiers {
        tier.invocations = (tier.invocations / divide).max(1);
        tier.backedge = (tier.backedge / divide).max(1);
    }
    let mut hits = 0;
    let mut discarded = 0;
    for seed_value in 0..seeds {
        let seed = cse_fuzz::generate(seed_value, &cse_fuzz::FuzzConfig::default());
        let mut config = ValidateConfig::paper_defaults(vm.clone());
        config.verify_neutrality = false;
        let outcome = validate(&seed, &config, seed_value);
        if outcome.found_bug() {
            hits += 1;
        }
        discarded += outcome.discarded as u64;
    }
    (hits, discarded)
}

fn main() {
    let seeds = campaign_seeds(150);
    println!("Ablation: compilation thresholds (OpenJ9-like, {seeds} seeds x 8 mutants)\n");
    println!("{:<22} {:>12} {:>10}", "Thresholds", "seeds w/bug", "discarded");
    for (label, divide) in [("default", 1u64), ("default / 50", 50)] {
        let (hits, discarded) = run_with(divide, seeds);
        println!("{label:<22} {hits:>12} {discarded:>10}");
    }
    println!("\nTiny thresholds compile everything immediately: the warm-up-dependent");
    println!("bug classes vanish and discarded (slow) runs increase — matching §4.5.");
}
