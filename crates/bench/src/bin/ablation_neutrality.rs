//! Ablation: semantics-preserving vs non-neutral mutation (§4.5).
//!
//! A non-neutral mutator cannot use the output oracle at all: every
//! output difference may just be the mutation's own effect. This ablation
//! quantifies the false-positive rate a naive non-neutral mutator would
//! have on a *correct* VM — versus JoNM's zero.

#![forbid(unsafe_code)]

use cse_bench::campaign_seeds;
use cse_core::mutate::Artemis;
use cse_core::synth::SynthParams;
use cse_core::validate::compile_checked;
use cse_lang::ast::{Expr, Stmt};
use cse_rng::Rng64;
use cse_vm::{Outcome, Vm, VmConfig, VmKind};

/// A deliberately non-neutral mutator: flips one integer literal.
fn non_neutral_mutate(seed: &cse_lang::Program, rng_seed: u64) -> cse_lang::Program {
    let mut mutant = seed.clone();
    let mut rng = Rng64::seed_from_u64(rng_seed);
    let points = cse_lang::scope::collect_points(&mutant);
    for info in points {
        let stmts = cse_lang::scope::stmts_at_mut(&mut mutant, &info.point);
        if info.point.index < stmts.len() && rng.gen_bool(0.15) {
            if let Stmt::Assign { value: Expr::IntLit(v), .. } = &mut stmts[info.point.index] {
                *v = v.wrapping_add(1);
                return mutant;
            }
        }
    }
    mutant
}

fn main() {
    let seeds = campaign_seeds(100);
    println!("Ablation: neutral (JoNM) vs non-neutral mutation on a CORRECT VM");
    println!("({seeds} seeds; every \"discrepancy\" here is a false positive)\n");
    let vm = VmConfig::correct(VmKind::HotSpotLike);
    let mut jonm_fp = 0u64;
    let mut nonneutral_fp = 0u64;
    for seed_value in 0..seeds {
        let seed = cse_fuzz::generate(seed_value, &cse_fuzz::FuzzConfig::default());
        let seed_bc = compile_checked(&seed);
        let seed_run = Vm::run_program(&seed_bc, vm.clone());
        if matches!(seed_run.outcome, Outcome::Timeout) {
            continue;
        }
        // JoNM mutant.
        let mut artemis = Artemis::new(seed_value, SynthParams::for_kind(VmKind::HotSpotLike));
        let (mutant, _) = artemis.jonm(&seed);
        let run = Vm::run_program(&compile_checked(&mutant), vm.clone());
        if !matches!(run.outcome, Outcome::Timeout) && run.observable() != seed_run.observable() {
            jonm_fp += 1;
        }
        // Non-neutral mutant.
        let mutant = non_neutral_mutate(&seed, seed_value);
        let run = Vm::run_program(&compile_checked(&mutant), vm.clone());
        if !matches!(run.outcome, Outcome::Timeout) && run.observable() != seed_run.observable() {
            nonneutral_fp += 1;
        }
    }
    println!("{:<28} {:>16}", "Mutator", "false positives");
    println!("{:<28} {:>16}", "JoNM (semantics-preserving)", jonm_fp);
    println!("{:<28} {:>16}", "literal-flip (non-neutral)", nonneutral_fp);
    assert_eq!(jonm_fp, 0, "JoNM must never false-positive on a correct VM");
    println!("\nWithout neutrality, the output oracle is unusable (§4.5's design choice).");
}
