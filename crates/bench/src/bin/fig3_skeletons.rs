//! Figure 3 — the loop skeletons of the LI, SW, and MI mutators, plus one
//! live instantiation of each produced by the synthesis engine.

#![forbid(unsafe_code)]

use cse_core::synth::{Synth, SynthParams};
use cse_lang::scope::VarInfo;
use cse_lang::Ty;
use cse_vm::VmKind;

const LI: &str = r#"for (int i = min(MIN, <expr>); i < max(MAX, <expr>); i += STEP) {
    <stmts>;
} // LI.loop_skeleton"#;

const SW: &str = r#"boolean exec = false;
for (int i = min(MIN, <expr>); i < max(MAX, <expr>); i += STEP) {
    <stmts>;
    if (!exec) { <placeholder:stmt>; exec = true; }
    <stmts>;
} // SW.loop_skeleton"#;

const MI: &str = r#"for (int i = min(MIN, <expr>); i < max(MAX, <expr>); i += STEP) {
    <stmts>;
    P.m_ctrl = true; <placeholder:method>; P.m_ctrl = false;
    <stmts>;
} // MI.loop_skeleton"#;

fn main() {
    println!("Figure 3: loop skeletons of LI, SW, and MI");
    println!("(<expr>/<stmts> are synthesis holes; <placeholder:*> is filled by the mutator;");
    println!(" this implementation hoists the min/max bounds into temporaries — see DESIGN.md)\n");
    for (name, skeleton) in [("LI", LI), ("SW", SW), ("MI", MI)] {
        println!("--- {name} ---\n{skeleton}\n");
    }

    println!("--- a live LI instantiation (MIN/MAX/STEP from the HotSpot profile) ---\n");
    let params = SynthParams::for_kind(VmKind::HotSpotLike);
    let mut rng = cse_rng::Rng64::seed_from_u64(42);
    let mut counter = 0u64;
    let mut synth = Synth { rng: &mut rng, params: &params, counter: &mut counter };
    let vars = vec![
        VarInfo { name: "x".into(), ty: Ty::Int, is_param: true },
        VarInfo { name: "flag".into(), ty: Ty::Bool, is_param: false },
    ];
    let mut reused = Vec::new();
    let body = synth.syn_stmts(&vars, &mut reused);
    let l = synth.wrap_loop(&vars, reused, vec![], body, vec![]);
    for stmt in &l {
        print!("{}", cse_lang::pretty::print_stmt(stmt));
    }
    println!("\n(variables in scope at the mutation point were: int x, boolean flag)");
}
