//! Benchmark harnesses reproducing every table and figure of the paper's
//! evaluation (§4), plus the ablations called out in `DESIGN.md`.
//!
//! Each `src/bin/` binary regenerates one table or figure and prints rows
//! in the paper's layout; `EXPERIMENTS.md` records paper-vs-measured for
//! each. Campaign sizes default to laptop-friendly values and scale with
//! the `CSE_SEEDS` environment variable.

#![forbid(unsafe_code)]

use cse_vm::VmKind;

pub mod stopwatch;

/// Supervision settings from the environment, shared by the table
/// binaries: `CSE_CHECKPOINT_DIR` (checkpoint per profile, resume on
/// restart), `CSE_QUARANTINE_DIR` (crash/panic repro files), and
/// `CSE_DEADLINE_SECS` (global wall-clock budget; expired campaigns
/// print partial totals and resume from their checkpoint next run).
pub fn supervisor_from_env(profile: &str) -> cse_core::SupervisorConfig {
    let mut sup = cse_core::SupervisorConfig::default();
    if let Ok(dir) = std::env::var("CSE_CHECKPOINT_DIR") {
        sup.checkpoint_path =
            Some(std::path::Path::new(&dir).join(format!("{profile}.checkpoint")));
        sup.checkpoint_every = 16;
    }
    if let Ok(dir) = std::env::var("CSE_QUARANTINE_DIR") {
        sup.quarantine_dir = Some(std::path::Path::new(&dir).join(profile));
    }
    if let Ok(secs) = std::env::var("CSE_DEADLINE_SECS") {
        if let Ok(secs) = secs.parse() {
            sup.deadline = Some(std::time::Duration::from_secs(secs));
        }
    }
    sup
}

/// Seeds per campaign (override with `CSE_SEEDS`).
pub fn campaign_seeds(default: u64) -> u64 {
    std::env::var("CSE_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// All VM profiles in paper order.
pub const ALL_KINDS: [VmKind; 3] = [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike];

/// Prints a fixed-width table row.
pub fn row(cells: &[&str], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        out.push_str(&format!("{cell:>width$}  "));
    }
    out.trim_end().to_string()
}

/// The paper's Figure 2 seed: cold nested-loop/switch byte accumulation.
/// (An extra outer repetition loop inside `g()` stands in for the paper's
/// larger surrounding program; see `EXPERIMENTS.md`.)
pub const FIG2_SEED: &str = r#"
class T {
    byte l = 0;
    int[] k = new int[] { 80, 41, 60, 81 };
    void g() {
        for (int r = 0; r < 2; r++) {
            for (int zz = 0; zz < this.k.length; zz++) {
                int m = this.k[zz];
                switch ((m >>> 1) % 10 + 36) {
                    case 36:
                        l += 2;
                    case 40: break;
                    case 41: k[1] = 9;
                }
            }
        }
    }
    void o() { g(); }
    void p() {
        for (int q = 2; q < 5; q++) {
            o();
        }
        println(l);
    }
    static void main() {
        T t = new T();
        t.p();
        t.p();
    }
}
"#;

/// The paper's Figure 2 mutant: Artemis-style insertions highlighted in
/// the paper — the control flag `z` with an early-return prologue in
/// `o()`, the 9,676-iteration pre-invocation loop, and the hot strided
/// loop inside the `case 36:` arm.
pub const FIG2_MUTANT: &str = r#"
class T {
    static boolean z = false;
    byte l = 0;
    int[] k = new int[] { 80, 41, 60, 81 };
    void g() {
        for (int r = 0; r < 2; r++) {
            for (int zz = 0; zz < this.k.length; zz++) {
                int m = this.k[zz];
                switch ((m >>> 1) % 10 + 36) {
                    case 36:
                        for (int w = -2967; w < 4342; w += 4) { }
                        l += 2;
                    case 40: break;
                    case 41: k[1] = 9;
                }
            }
        }
    }
    void o() {
        if (T.z) { return; }
        g();
    }
    void p() {
        for (int q = 2; q < 5; q++) {
            T.z = true;
            for (int u = 0; u < 9676; u++) {
                o();
            }
            T.z = false;
            o();
        }
        println(l);
    }
    static void main() {
        T t = new T();
        t.p();
        t.p();
    }
}
"#;

/// A deterministic exhibit for the performance-bug class
/// ([`cse_vm::BugId::HsPerfQuadraticLoop`]): a nested loop with a switch,
/// hot enough for tier 2. On the buggy VM the "optimized" code re-does
/// quadratic work; the paper's single performance bug ("the process is
/// killed on Ubuntu / noticeably slow") maps onto a Timeout outcome or an
/// operation-count blowup.
pub const PERF_EXHIBIT: &str = r#"
class T {
    static long sink = 0L;
    static void churn(int x) {
        for (int i = 0; i < 12; i++) {
            for (int j = 0; j < 10; j++) {
                switch ((i + j + x) % 5) {
                    case 0: T.sink += 1; break;
                    case 1: T.sink ^= 3; break;
                    default: T.sink -= 1;
                }
            }
        }
    }
    static void main() {
        for (int r = 0; r < 12000; r++) {
            churn(r);
        }
        println(T.sink);
    }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_sources_are_valid() {
        cse_lang::parse_and_check(FIG2_SEED).unwrap();
        cse_lang::parse_and_check(FIG2_MUTANT).unwrap();
    }

    #[test]
    fn fig2_mutant_is_neutral_under_the_interpreter() {
        use cse_core::validate::compile_checked;
        use cse_vm::{Vm, VmConfig, VmKind};
        let seed = cse_lang::parse_and_check(FIG2_SEED).unwrap();
        let mutant = cse_lang::parse_and_check(FIG2_MUTANT).unwrap();
        let seed_run = Vm::run_program(
            &compile_checked(&seed),
            VmConfig::interpreter_only(VmKind::HotSpotLike),
        );
        let mutant_run = Vm::run_program(
            &compile_checked(&mutant),
            VmConfig::interpreter_only(VmKind::HotSpotLike),
        );
        assert_eq!(seed_run.output, mutant_run.output);
    }

    #[test]
    fn performance_bug_class_manifests() {
        use cse_core::validate::compile_checked;
        use cse_vm::{BugId, FaultInjector, Outcome, Vm, VmConfig, VmKind};
        let program = cse_lang::parse_and_check(PERF_EXHIBIT).unwrap();
        let bc = compile_checked(&program);
        let clean = Vm::run_program(&bc, VmConfig::correct(VmKind::HotSpotLike));
        assert!(clean.outcome.is_completed());
        let buggy_vm = VmConfig::correct(VmKind::HotSpotLike)
            .with_faults(FaultInjector::with([BugId::HsPerfQuadraticLoop]));
        let buggy = Vm::run_program(&bc, buggy_vm);
        let blown_up = matches!(buggy.outcome, Outcome::Timeout)
            || buggy.stats.total_ops() > clean.stats.total_ops() * 10;
        assert!(
            blown_up,
            "the perf bug must slow compiled code dramatically: {} vs {} ops",
            buggy.stats.total_ops(),
            clean.stats.total_ops()
        );
    }

    #[test]
    fn fig2_bug_reproduces_on_the_buggy_vm() {
        use cse_core::validate::compile_checked;
        use cse_vm::{BugId, FaultInjector, Vm, VmConfig, VmKind};
        let seed = cse_lang::parse_and_check(FIG2_SEED).unwrap();
        let mutant = cse_lang::parse_and_check(FIG2_MUTANT).unwrap();
        let vm = VmConfig::correct(VmKind::HotSpotLike)
            .with_faults(FaultInjector::with([BugId::HsGcmStoreSink]));
        let seed_run = Vm::run_program(&compile_checked(&seed), vm.clone());
        let mutant_run = Vm::run_program(&compile_checked(&mutant), vm.clone());
        assert_ne!(
            seed_run.output, mutant_run.output,
            "the GCM store sink must corrupt the mutant's byte accumulator"
        );
        // With the bug disabled, seed and mutant agree again.
        let correct = VmConfig::correct(VmKind::HotSpotLike);
        let fixed_run = Vm::run_program(&compile_checked(&mutant), correct);
        assert_eq!(seed_run.output, fixed_run.output);
    }
}
