//! End-to-end Algorithm 1 cost: one seed, 8 mutants, both with and
//! without the reference-interpreter neutrality runs.

#![forbid(unsafe_code)]

use cse_bench::stopwatch::bench_function;
use cse_core::validate::{validate, ValidateConfig};
use cse_vm::{VmConfig, VmKind};

fn main() {
    let seed = cse_fuzz::generate(5, &cse_fuzz::FuzzConfig::default());
    {
        let mut config = ValidateConfig::paper_defaults(VmConfig::for_kind(VmKind::OpenJ9Like));
        config.verify_neutrality = false;
        bench_function("validate/paper_pipeline_8_mutants", || validate(&seed, &config, 9));
    }
    {
        let config = ValidateConfig::paper_defaults(VmConfig::for_kind(VmKind::OpenJ9Like));
        bench_function("validate/with_neutrality_verification", || validate(&seed, &config, 9));
    }
}
