//! End-to-end Algorithm 1 cost: one seed, 8 mutants, both with and
//! without the reference-interpreter neutrality runs.

use criterion::{criterion_group, criterion_main, Criterion};
use cse_core::validate::{validate, ValidateConfig};
use cse_vm::{VmConfig, VmKind};

fn bench_validation(c: &mut Criterion) {
    let seed = cse_fuzz::generate(5, &cse_fuzz::FuzzConfig::default());
    let mut group = c.benchmark_group("validate");
    group.sample_size(10);
    group.bench_function("paper_pipeline_8_mutants", |b| {
        let mut config = ValidateConfig::paper_defaults(VmConfig::for_kind(VmKind::OpenJ9Like));
        config.verify_neutrality = false;
        b.iter(|| validate(&seed, &config, 9));
    });
    group.bench_function("with_neutrality_verification", |b| {
        let config = ValidateConfig::paper_defaults(VmConfig::for_kind(VmKind::OpenJ9Like));
        b.iter(|| validate(&seed, &config, 9));
    });
    group.finish();
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
