//! VM engine throughput: the same hot kernel under interpreter-only,
//! tiered-JIT, and force-compile-all execution. The tiered run must not
//! be slower than interpretation (our JIT "speedup" shows up as fewer
//! executed operations; wall time tracks it).

#![forbid(unsafe_code)]

use cse_bench::stopwatch::bench_function;
use cse_vm::{Vm, VmConfig, VmKind};

const KERNEL: &str = r#"
class T {
    static int mix(int x) { return (x * 31 + 17) ^ (x >>> 3); }
    static void main() {
        int acc = 0;
        for (int i = 0; i < 30000; i++) {
            acc = acc + mix(i) % 1000;
        }
        println(acc);
    }
}
"#;

fn main() {
    let program = cse_lang::parse_and_check(KERNEL).unwrap();
    let bytecode = cse_bytecode::compile(&program).unwrap();
    bench_function("vm_throughput/interpreter_only", || {
        Vm::run_program(&bytecode, VmConfig::interpreter_only(VmKind::HotSpotLike))
    });
    bench_function("vm_throughput/tiered_jit", || {
        Vm::run_program(&bytecode, VmConfig::correct(VmKind::HotSpotLike))
    });
    bench_function("vm_throughput/force_compile_all", || {
        Vm::run_program(
            &bytecode,
            VmConfig::force_compile_all(VmKind::HotSpotLike).with_faults(Default::default()),
        )
    });
}
