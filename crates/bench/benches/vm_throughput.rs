//! VM engine throughput: the same hot kernel under interpreter-only,
//! tiered-JIT, and force-compile-all execution. The tiered run must not
//! be slower than interpretation (our JIT "speedup" shows up as fewer
//! executed operations; wall time tracks it).

use criterion::{criterion_group, criterion_main, Criterion};
use cse_vm::{Vm, VmConfig, VmKind};

const KERNEL: &str = r#"
class T {
    static int mix(int x) { return (x * 31 + 17) ^ (x >>> 3); }
    static void main() {
        int acc = 0;
        for (int i = 0; i < 30000; i++) {
            acc = acc + mix(i) % 1000;
        }
        println(acc);
    }
}
"#;

fn bench_vm(c: &mut Criterion) {
    let program = cse_lang::parse_and_check(KERNEL).unwrap();
    let bytecode = cse_bytecode::compile(&program).unwrap();
    let mut group = c.benchmark_group("vm_throughput");
    group.sample_size(20);
    group.bench_function("interpreter_only", |b| {
        b.iter(|| Vm::run_program(&bytecode, VmConfig::interpreter_only(VmKind::HotSpotLike)));
    });
    group.bench_function("tiered_jit", |b| {
        b.iter(|| Vm::run_program(&bytecode, VmConfig::correct(VmKind::HotSpotLike)));
    });
    group.bench_function("force_compile_all", |b| {
        b.iter(|| {
            Vm::run_program(
                &bytecode,
                VmConfig::force_compile_all(VmKind::HotSpotLike).with_faults(Default::default()),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_vm);
criterion_main!(benches);
