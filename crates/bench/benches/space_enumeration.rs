//! Cost of exhaustively enumerating a small compilation space (Figure 1).

#![forbid(unsafe_code)]

use cse_bench::stopwatch::bench_function;
use cse_core::space::enumerate_space;
use cse_vm::{VmConfig, VmKind};

fn main() {
    let program = cse_lang::parse_and_check(
        r#"
        class T {
            static int baz() { return 1; }
            static int bar() { return 2; }
            static int foo() { return bar() + baz(); }
            static void main() { println(foo()); }
        }
        "#,
    )
    .unwrap();
    let bytecode = cse_bytecode::compile(&program).unwrap();
    let calls = vec![
        (bytecode.find_method("T", "main").unwrap(), 0),
        (bytecode.find_method("T", "foo").unwrap(), 0),
        (bytecode.find_method("T", "bar").unwrap(), 0),
        (bytecode.find_method("T", "baz").unwrap(), 0),
    ];
    let config = VmConfig::correct(VmKind::HotSpotLike);
    bench_function("space/enumerate_2^4_choices", || enumerate_space(&bytecode, &calls, &config));
}
