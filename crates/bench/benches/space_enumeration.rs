//! Cost of exhaustively enumerating a small compilation space (Figure 1).

use criterion::{criterion_group, criterion_main, Criterion};
use cse_core::space::enumerate_space;
use cse_vm::{VmConfig, VmKind};

fn bench_space(c: &mut Criterion) {
    let program = cse_lang::parse_and_check(
        r#"
        class T {
            static int baz() { return 1; }
            static int bar() { return 2; }
            static int foo() { return bar() + baz(); }
            static void main() { println(foo()); }
        }
        "#,
    )
    .unwrap();
    let bytecode = cse_bytecode::compile(&program).unwrap();
    let calls = vec![
        (bytecode.find_method("T", "main").unwrap(), 0),
        (bytecode.find_method("T", "foo").unwrap(), 0),
        (bytecode.find_method("T", "bar").unwrap(), 0),
        (bytecode.find_method("T", "baz").unwrap(), 0),
    ];
    let config = VmConfig::correct(VmKind::HotSpotLike);
    c.bench_function("space/enumerate_2^4_choices", |b| {
        b.iter(|| enumerate_space(&bytecode, &calls, &config));
    });
}

criterion_group!(benches, bench_space);
criterion_main!(benches);
