//! Timing counterpart of Table 3: JoNM mutation cost, single-run
//! (parse + boot + mutate) vs large-scale (mutate only).

#![forbid(unsafe_code)]

use cse_bench::stopwatch::bench_function;
use cse_core::mutate::Artemis;
use cse_core::synth::SynthParams;
use cse_vm::VmKind;

fn main() {
    let seed_program = cse_fuzz::generate(11, &cse_fuzz::FuzzConfig::default());
    let source = cse_lang::pretty::print(&seed_program);

    let mut n = 0u64;
    bench_function("mutation/single_run_parse_boot_mutate", || {
        n += 1;
        let seed = cse_lang::parse_and_check(&source).unwrap();
        let mut artemis = Artemis::new(n, SynthParams::for_kind(VmKind::HotSpotLike));
        artemis.jonm(&seed)
    });

    let seed = cse_lang::parse_and_check(&source).unwrap();
    let mut artemis = Artemis::new(3, SynthParams::for_kind(VmKind::HotSpotLike));
    bench_function("mutation/large_scale_mutate_only", || artemis.jonm(&seed));

    bench_function("mutation/parse_and_check_seed", || cse_lang::parse_and_check(&source).unwrap());
}
