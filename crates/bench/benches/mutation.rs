//! Criterion counterpart of Table 3: JoNM mutation cost, single-run
//! (parse + boot + mutate) vs large-scale (mutate only).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cse_core::mutate::Artemis;
use cse_core::synth::SynthParams;
use cse_vm::VmKind;

fn bench_mutation(c: &mut Criterion) {
    let seed_program = cse_fuzz::generate(11, &cse_fuzz::FuzzConfig::default());
    let source = cse_lang::pretty::print(&seed_program);

    c.bench_function("mutation/single_run_parse_boot_mutate", |b| {
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let seed = cse_lang::parse_and_check(&source).unwrap();
            let mut artemis = Artemis::new(n, SynthParams::for_kind(VmKind::HotSpotLike));
            artemis.jonm(&seed)
        });
    });

    c.bench_function("mutation/large_scale_mutate_only", |b| {
        let seed = cse_lang::parse_and_check(&source).unwrap();
        let mut artemis = Artemis::new(3, SynthParams::for_kind(VmKind::HotSpotLike));
        b.iter(|| artemis.jonm(&seed));
    });

    c.bench_function("mutation/parse_and_check_seed", |b| {
        b.iter_batched(
            || source.clone(),
            |s| cse_lang::parse_and_check(&s).unwrap(),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_mutation);
criterion_main!(benches);
