//! AST-to-bytecode lowering.

use std::collections::HashMap;

use cse_lang::ast::*;
use cse_lang::ty::Ty;
use cse_lang::typeck::ClassTable;
use cse_lang::FrontError;

use crate::insn::{ArrKind, CmpOp, Insn, PrintKind};
use crate::program::*;

/// Compiles a checked program to bytecode.
///
/// The input must have passed [`cse_lang::typeck::check`]; unresolved names
/// or type errors surface here as [`FrontError`]s (they indicate a caller
/// bug, not a user error).
pub fn compile(program: &Program) -> Result<BProgram, FrontError> {
    // Validate shape invariants (duplicates, reserved names) once more.
    ClassTable::build(program)?;
    let mut layout = Layout::new(program)?;
    layout.compile_all(program)?;
    layout.finish()
}

/// The element kind used by array instructions for a given element type.
fn arr_kind(ty: &Ty) -> ArrKind {
    match ty {
        Ty::Int => ArrKind::I32,
        Ty::Long => ArrKind::I64,
        Ty::Byte => ArrKind::I8,
        Ty::Bool => ArrKind::Bool,
        Ty::Str => ArrKind::Str,
        _ => ArrKind::Ref,
    }
}

struct FieldSlot {
    index: u32,
    is_static: bool,
    ty: Ty,
}

struct Layout {
    classes: Vec<BClass>,
    methods: Vec<BMethod>,
    strings: Vec<String>,
    string_ids: HashMap<String, StrId>,
    class_ids: HashMap<String, ClassId>,
    method_ids: HashMap<(String, String), MethodId>,
    field_slots: HashMap<(String, String), FieldSlot>,
    entry: MethodId,
    clinit: Option<MethodId>,
}

impl Layout {
    fn new(program: &Program) -> Result<Self, FrontError> {
        let mut layout = Layout {
            classes: Vec::new(),
            methods: Vec::new(),
            strings: Vec::new(),
            string_ids: HashMap::new(),
            class_ids: HashMap::new(),
            method_ids: HashMap::new(),
            field_slots: HashMap::new(),
            entry: MethodId(0),
            clinit: None,
        };
        // Pass 1: assign class ids, field slots, and method ids (including
        // synthetic `$init` / `$clinit`).
        for (class_idx, class) in program.classes.iter().enumerate() {
            let class_id = ClassId(class_idx as u32);
            layout.class_ids.insert(class.name.clone(), class_id);
            let mut static_fields = Vec::new();
            let mut inst_fields = Vec::new();
            for field in &class.fields {
                let (list, is_static) = if field.is_static {
                    (&mut static_fields, true)
                } else {
                    (&mut inst_fields, false)
                };
                layout.field_slots.insert(
                    (class.name.clone(), field.name.clone()),
                    FieldSlot { index: list.len() as u32, is_static, ty: field.ty.clone() },
                );
                list.push(BField { name: field.name.clone(), ty: field.ty.clone() });
            }
            layout.classes.push(BClass {
                name: class.name.clone(),
                static_fields,
                inst_fields,
                init: None,
                methods: Vec::new(),
            });
        }
        for (class_idx, class) in program.classes.iter().enumerate() {
            let class_id = ClassId(class_idx as u32);
            for method in &class.methods {
                let id = MethodId(layout.methods.len() as u32);
                layout.method_ids.insert((class.name.clone(), method.name.clone()), id);
                layout.classes[class_idx].methods.push(id);
                layout.methods.push(BMethod {
                    name: method.name.clone(),
                    class: class_id,
                    is_static: method.is_static,
                    params: method.params.iter().map(|p| p.ty.clone()).collect(),
                    ret: method.ret.clone(),
                    num_locals: 0,
                    local_types: Vec::new(),
                    code: Vec::new(),
                    handlers: Vec::new(),
                    loop_headers: Vec::new(),
                });
            }
            if class.fields.iter().any(|f| !f.is_static && f.init.is_some()) {
                let id = MethodId(layout.methods.len() as u32);
                layout.classes[class_idx].init = Some(id);
                layout.classes[class_idx].methods.push(id);
                layout.methods.push(BMethod {
                    name: "$init".into(),
                    class: class_id,
                    is_static: false,
                    params: vec![],
                    ret: Ty::Void,
                    num_locals: 0,
                    local_types: Vec::new(),
                    code: Vec::new(),
                    handlers: Vec::new(),
                    loop_headers: Vec::new(),
                });
            }
        }
        let (entry_class, _) =
            program.entry().ok_or_else(|| FrontError::msg("program has no entry point"))?;
        layout.entry = layout.method_ids[&(entry_class.name.clone(), "main".to_string())];
        if program.classes.iter().any(|c| c.fields.iter().any(|f| f.is_static && f.init.is_some()))
        {
            let id = MethodId(layout.methods.len() as u32);
            layout.clinit = Some(id);
            let entry_class_id = layout.class_ids[&entry_class.name];
            layout.classes[entry_class_id.0 as usize].methods.push(id);
            layout.methods.push(BMethod {
                name: "$clinit".into(),
                class: entry_class_id,
                is_static: true,
                params: vec![],
                ret: Ty::Void,
                num_locals: 0,
                local_types: Vec::new(),
                code: Vec::new(),
                handlers: Vec::new(),
                loop_headers: Vec::new(),
            });
        }
        Ok(layout)
    }

    fn intern(&mut self, text: &str) -> StrId {
        if let Some(id) = self.string_ids.get(text) {
            return *id;
        }
        let id = StrId(self.strings.len() as u32);
        self.strings.push(text.to_string());
        self.string_ids.insert(text.to_string(), id);
        id
    }

    fn compile_all(&mut self, program: &Program) -> Result<(), FrontError> {
        // Method bodies.
        for class in &program.classes {
            for method in &class.methods {
                let id = self.method_ids[&(class.name.clone(), method.name.clone())];
                let compiled = self.compile_method(class, method)?;
                self.install(id, compiled);
            }
            // Synthetic `$init`.
            if let Some(init_id) = self.classes[self.class_ids[&class.name].0 as usize].init {
                let mut ctx = MethodCtx::new(self, false, &[], Some(&class.name), Ty::Void);
                for field in &class.fields {
                    if field.is_static {
                        continue;
                    }
                    if let Some(init) = &field.init {
                        ctx.emit(Insn::Load(0));
                        let ty = ctx.expr(init)?;
                        ctx.coerce(&ty, &field.ty);
                        let slot =
                            &ctx.layout.field_slots[&(class.name.clone(), field.name.clone())];
                        let index = slot.index;
                        ctx.emit(Insn::PutField { field: index });
                    }
                }
                ctx.emit(Insn::Return);
                let compiled = ctx.finish();
                self.install(init_id, compiled);
            }
        }
        // Synthetic `$clinit` running all static initializers in program
        // order.
        if let Some(clinit_id) = self.clinit {
            let mut ctx = MethodCtx::new(self, true, &[], None, Ty::Void);
            for class in &program.classes {
                for field in &class.fields {
                    if !field.is_static {
                        continue;
                    }
                    if let Some(init) = &field.init {
                        let ty = ctx.expr(init)?;
                        ctx.coerce(&ty, &field.ty);
                        let class_id = ctx.layout.class_ids[&class.name];
                        let index =
                            ctx.layout.field_slots[&(class.name.clone(), field.name.clone())].index;
                        ctx.emit(Insn::PutStatic { class: class_id, field: index });
                    }
                }
            }
            ctx.emit(Insn::Return);
            let compiled = ctx.finish();
            self.install(clinit_id, compiled);
        }
        Ok(())
    }

    fn install(&mut self, id: MethodId, compiled: CompiledBody) {
        let method = &mut self.methods[id.0 as usize];
        method.code = compiled.code;
        method.handlers = compiled.handlers;
        method.num_locals = compiled.num_locals;
        method.local_types = compiled.local_types;
        method.compute_loop_headers();
    }

    fn compile_method(
        &mut self,
        class: &ClassDecl,
        method: &MethodDecl,
    ) -> Result<CompiledBody, FrontError> {
        let this_class = if method.is_static { None } else { Some(class.name.as_str()) };
        let mut ctx =
            MethodCtx::new(self, method.is_static, &method.params, this_class, method.ret.clone());
        ctx.block(&method.body)?;
        // Pad the method end when control can fall off it, or when an
        // (unreachable) branch was patched to one-past-the-end — e.g. the
        // jump-over-catch of a `try` whose body always returns. Non-void
        // methods passed the definite-exit check, so the non-void pad is
        // unreachable, but every branch target must index real code.
        let end = ctx.pc();
        let last_terminates = ctx.code.last().map(Insn::is_terminator).unwrap_or(false);
        let dangling = ctx.code.iter().any(|i| i.targets().contains(&end));
        if method.ret == Ty::Void {
            if !last_terminates || dangling {
                ctx.emit(Insn::Return);
            }
        } else if !last_terminates || dangling {
            ctx.emit(Insn::IConst(i32::MIN));
            ctx.emit(Insn::ThrowUser);
        }
        Ok(ctx.finish())
    }

    fn finish(self) -> Result<BProgram, FrontError> {
        Ok(BProgram {
            classes: self.classes,
            methods: self.methods,
            strings: self.strings,
            entry: self.entry,
            clinit: self.clinit,
        })
    }
}

struct CompiledBody {
    code: Vec<Insn>,
    handlers: Vec<Handler>,
    num_locals: u16,
    local_types: Vec<Option<Ty>>,
}

/// A loop or switch on the break/continue resolution stack.
struct Frame {
    is_loop: bool,
    break_patches: Vec<usize>,
    continue_patches: Vec<usize>,
}

struct MethodCtx<'l> {
    layout: &'l mut Layout,
    code: Vec<Insn>,
    handlers: Vec<Handler>,
    scopes: Vec<HashMap<String, (u16, Ty)>>,
    local_types: Vec<Option<Ty>>,
    frames: Vec<Frame>,
    /// Static type of `this`, for instance methods.
    this_class: Option<String>,
    ret: Ty,
}

impl<'l> MethodCtx<'l> {
    fn new(
        layout: &'l mut Layout,
        is_static: bool,
        params: &[Param],
        this_class: Option<&str>,
        ret: Ty,
    ) -> Self {
        let mut ctx = MethodCtx {
            layout,
            code: Vec::new(),
            handlers: Vec::new(),
            scopes: vec![HashMap::new()],
            local_types: Vec::new(),
            frames: Vec::new(),
            this_class: this_class.map(str::to_string),
            ret,
        };
        if !is_static {
            let class = this_class.expect("instance methods have a class").to_string();
            ctx.declare("this", Ty::Class(class));
        }
        for param in params {
            ctx.declare(&param.name, param.ty.clone());
        }
        ctx
    }

    fn finish(self) -> CompiledBody {
        CompiledBody {
            code: self.code,
            handlers: self.handlers,
            num_locals: self.local_types.len() as u16,
            local_types: self.local_types,
        }
    }

    // ----- low-level emission ----------------------------------------------

    fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    fn emit(&mut self, insn: Insn) {
        self.code.push(insn);
    }

    /// Emits a jump with a placeholder target; returns its index for
    /// [`MethodCtx::patch`].
    fn emit_patch(&mut self, insn: Insn) -> usize {
        let at = self.code.len();
        self.code.push(insn);
        at
    }

    fn patch(&mut self, at: usize, target: u32) {
        self.code[at].map_targets(|_| target);
    }

    fn patch_all(&mut self, patches: &[usize], target: u32) {
        for &at in patches {
            self.patch(at, target);
        }
    }

    // ----- locals -----------------------------------------------------------

    fn declare(&mut self, name: &str, ty: Ty) -> u16 {
        let slot = self.local_types.len() as u16;
        self.local_types.push(Some(ty.clone()));
        self.scopes
            .last_mut()
            .expect("method context always has a scope")
            .insert(name.to_string(), (slot, ty));
        slot
    }

    /// A fresh anonymous slot (exception saves, desugaring temporaries).
    fn fresh_slot(&mut self) -> u16 {
        let slot = self.local_types.len() as u16;
        self.local_types.push(None);
        slot
    }

    fn lookup(&self, name: &str) -> Option<(u16, Ty)> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).cloned()
    }

    fn local(&self, name: &str) -> Result<(u16, Ty), FrontError> {
        self.lookup(name)
            .ok_or_else(|| FrontError::msg(format!("internal: unresolved local `{name}`")))
    }

    // ----- type plumbing ----------------------------------------------------

    fn field_slot(&self, class: &str, field: &str) -> Result<(u32, bool, Ty), FrontError> {
        let slot =
            self.layout.field_slots.get(&(class.to_string(), field.to_string())).ok_or_else(
                || FrontError::msg(format!("internal: unknown field `{class}.{field}`")),
            )?;
        Ok((slot.index, slot.is_static, slot.ty.clone()))
    }

    fn method_id(&self, class: &str, method: &str) -> Result<MethodId, FrontError> {
        self.layout
            .method_ids
            .get(&(class.to_string(), method.to_string()))
            .copied()
            .ok_or_else(|| FrontError::msg(format!("internal: unknown method `{class}.{method}`")))
    }

    /// Emits the conversion from `from` to `to` (widening or equal kinds).
    fn coerce(&mut self, from: &Ty, to: &Ty) {
        match (from, to) {
            (Ty::Int | Ty::Byte, Ty::Long) => self.emit(Insn::I2L),
            (Ty::Int, Ty::Byte) => self.emit(Insn::I2B),
            (Ty::Long, Ty::Int) => self.emit(Insn::L2I),
            (Ty::Long, Ty::Byte) => {
                self.emit(Insn::L2I);
                self.emit(Insn::I2B);
            }
            _ => {}
        }
    }

    /// Converts the value on top of the stack to a string for concatenation.
    fn emit_to_str(&mut self, ty: &Ty) {
        match ty {
            Ty::Int | Ty::Byte => self.emit(Insn::I2S),
            Ty::Long => self.emit(Insn::L2S),
            Ty::Bool => self.emit(Insn::Bool2S),
            Ty::Str => {}
            other => unreachable!("to_str on non-primitive {other}"),
        }
    }

    // ----- statements -------------------------------------------------------

    fn block(&mut self, block: &Block) -> Result<(), FrontError> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), FrontError> {
        match stmt {
            Stmt::VarDecl { name, ty, init } => {
                let from = self.expr(init)?;
                self.coerce(&from, ty);
                let slot = self.declare(name, ty.clone());
                self.emit(Insn::Store(slot));
                Ok(())
            }
            Stmt::Assign { target, op, value } => self.assign(target, *op, value),
            Stmt::IncDec { target, inc } => {
                let op = if *inc { AssignOp::Add } else { AssignOp::Sub };
                self.assign(target, op, &Expr::IntLit(1))
            }
            Stmt::If { cond, then_blk, else_blk } => {
                self.expr(cond)?;
                let to_else = self.emit_patch(Insn::JumpIfFalse(0));
                self.block(then_blk)?;
                match else_blk {
                    Some(else_blk) => {
                        let to_end = self.emit_patch(Insn::Jump(0));
                        let else_pc = self.pc();
                        self.patch(to_else, else_pc);
                        self.block(else_blk)?;
                        let end = self.pc();
                        self.patch(to_end, end);
                    }
                    None => {
                        let end = self.pc();
                        self.patch(to_else, end);
                    }
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let cond_pc = self.pc();
                self.expr(cond)?;
                let to_end = self.emit_patch(Insn::JumpIfFalse(0));
                self.frames.push(Frame {
                    is_loop: true,
                    break_patches: vec![],
                    continue_patches: vec![],
                });
                self.block(body)?;
                self.emit(Insn::Jump(cond_pc));
                let end = self.pc();
                let frame = self.frames.pop().expect("frame pushed above");
                self.patch(to_end, end);
                self.patch_all(&frame.break_patches, end);
                self.patch_all(&frame.continue_patches, cond_pc);
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                let body_pc = self.pc();
                self.frames.push(Frame {
                    is_loop: true,
                    break_patches: vec![],
                    continue_patches: vec![],
                });
                self.block(body)?;
                let cond_pc = self.pc();
                self.expr(cond)?;
                self.emit(Insn::JumpIfTrue(body_pc));
                let end = self.pc();
                let frame = self.frames.pop().expect("frame pushed above");
                self.patch_all(&frame.break_patches, end);
                self.patch_all(&frame.continue_patches, cond_pc);
                Ok(())
            }
            Stmt::For { init, cond, step, body } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                let cond_pc = self.pc();
                let to_end = match cond {
                    Some(cond) => {
                        self.expr(cond)?;
                        Some(self.emit_patch(Insn::JumpIfFalse(0)))
                    }
                    None => None,
                };
                self.frames.push(Frame {
                    is_loop: true,
                    break_patches: vec![],
                    continue_patches: vec![],
                });
                self.block(body)?;
                let step_pc = self.pc();
                if let Some(step) = step {
                    self.stmt(step)?;
                }
                self.emit(Insn::Jump(cond_pc));
                let end = self.pc();
                let frame = self.frames.pop().expect("frame pushed above");
                if let Some(to_end) = to_end {
                    self.patch(to_end, end);
                }
                self.patch_all(&frame.break_patches, end);
                self.patch_all(&frame.continue_patches, step_pc);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Switch { scrutinee, cases } => {
                self.expr(scrutinee)?;
                let switch_at = self.emit_patch(Insn::TableSwitch { cases: vec![], default: 0 });
                self.frames.push(Frame {
                    is_loop: false,
                    break_patches: vec![],
                    continue_patches: vec![],
                });
                let mut case_targets: Vec<(Vec<i32>, u32)> = Vec::new();
                let mut default_target: Option<u32> = None;
                for case in cases {
                    let target = self.pc();
                    case_targets.push((case.labels.clone(), target));
                    if case.is_default {
                        default_target = Some(target);
                    }
                    self.scopes.push(HashMap::new());
                    for inner in &case.body {
                        self.stmt(inner)?;
                    }
                    self.scopes.pop();
                }
                let end = self.pc();
                let mut pairs = Vec::new();
                for (labels, target) in case_targets {
                    for label in labels {
                        pairs.push((label, target));
                    }
                }
                self.code[switch_at] =
                    Insn::TableSwitch { cases: pairs, default: default_target.unwrap_or(end) };
                let frame = self.frames.pop().expect("frame pushed above");
                self.patch_all(&frame.break_patches, end);
                Ok(())
            }
            Stmt::Break => {
                let at = self.emit_patch(Insn::Jump(0));
                let frame = self
                    .frames
                    .last_mut()
                    .ok_or_else(|| FrontError::msg("internal: break without frame"))?;
                frame.break_patches.push(at);
                Ok(())
            }
            Stmt::Continue => {
                let at = self.emit_patch(Insn::Jump(0));
                let frame = self
                    .frames
                    .iter_mut()
                    .rev()
                    .find(|f| f.is_loop)
                    .ok_or_else(|| FrontError::msg("internal: continue without loop frame"))?;
                frame.continue_patches.push(at);
                Ok(())
            }
            Stmt::Return(value) => {
                match value {
                    Some(value) => {
                        let from = self.expr(value)?;
                        let ret = self.ret.clone();
                        self.coerce(&from, &ret);
                        self.emit(Insn::ReturnVal);
                    }
                    None => self.emit(Insn::Return),
                }
                Ok(())
            }
            Stmt::ExprStmt(expr) => {
                let ty = self.expr(expr)?;
                if ty != Ty::Void {
                    self.emit(Insn::Pop);
                }
                Ok(())
            }
            Stmt::Block(block) => self.block(block),
            Stmt::Try { body, catch, finally } => {
                self.try_stmt(body, catch.as_ref(), finally.as_ref())
            }
            Stmt::Throw(code) => {
                let ty = self.expr(code)?;
                self.coerce(&ty, &Ty::Int);
                self.emit(Insn::ThrowUser);
                Ok(())
            }
            Stmt::Println(value) => {
                let ty = self.expr(value)?;
                let kind = match ty {
                    Ty::Int | Ty::Byte => PrintKind::Int,
                    Ty::Long => PrintKind::Long,
                    Ty::Bool => PrintKind::Bool,
                    Ty::Str => PrintKind::Str,
                    other => {
                        return Err(FrontError::msg(format!("internal: println of `{other}`")));
                    }
                };
                self.emit(Insn::Println(kind));
                Ok(())
            }
            Stmt::Mute => {
                self.emit(Insn::Mute);
                Ok(())
            }
            Stmt::Unmute => {
                self.emit(Insn::Unmute);
                Ok(())
            }
        }
    }

    fn try_stmt(
        &mut self,
        body: &Block,
        catch: Option<&Block>,
        finally: Option<&Block>,
    ) -> Result<(), FrontError> {
        match (catch, finally) {
            (Some(catch), None) => {
                let start = self.pc();
                self.block(body)?;
                let end = self.pc();
                let to_after = self.emit_patch(Insn::Jump(0));
                let target = self.pc();
                self.block(catch)?;
                let after = self.pc();
                self.patch(to_after, after);
                if end > start {
                    self.handlers.push(Handler { start, end, target, save_slot: None });
                }
                Ok(())
            }
            (None, Some(finally)) => {
                let start = self.pc();
                self.block(body)?;
                let end = self.pc();
                self.block(finally)?;
                let to_after = self.emit_patch(Insn::Jump(0));
                let target = self.pc();
                let save = self.fresh_slot();
                self.block(finally)?;
                self.emit(Insn::Rethrow(save));
                let after = self.pc();
                self.patch(to_after, after);
                if end > start {
                    self.handlers.push(Handler { start, end, target, save_slot: Some(save) });
                }
                Ok(())
            }
            (Some(catch), Some(finally)) => {
                let body_start = self.pc();
                self.block(body)?;
                let body_end = self.pc();
                // Normal path: finally then continue.
                self.block(finally)?;
                let to_after1 = self.emit_patch(Insn::Jump(0));
                // Exception in body: catch, then finally, then continue.
                let catch_start = self.pc();
                self.block(catch)?;
                let catch_end = self.pc();
                self.block(finally)?;
                let to_after2 = self.emit_patch(Insn::Jump(0));
                // Exception in catch: finally, then re-raise.
                let rethrow_start = self.pc();
                let save = self.fresh_slot();
                self.block(finally)?;
                self.emit(Insn::Rethrow(save));
                let after = self.pc();
                self.patch(to_after1, after);
                self.patch(to_after2, after);
                if body_end > body_start {
                    self.handlers.push(Handler {
                        start: body_start,
                        end: body_end,
                        target: catch_start,
                        save_slot: None,
                    });
                }
                if catch_end > catch_start {
                    self.handlers.push(Handler {
                        start: catch_start,
                        end: catch_end,
                        target: rethrow_start,
                        save_slot: Some(save),
                    });
                }
                Ok(())
            }
            (None, None) => Err(FrontError::msg("internal: try without catch or finally")),
        }
    }

    // ----- assignments ------------------------------------------------------

    fn assign(&mut self, target: &LValue, op: AssignOp, value: &Expr) -> Result<(), FrontError> {
        match op.binop() {
            None => self.assign_set(target, value),
            Some(binop) => self.assign_compound(target, binop, value),
        }
    }

    fn assign_set(&mut self, target: &LValue, value: &Expr) -> Result<(), FrontError> {
        match target {
            LValue::Local(name) => {
                let (slot, ty) = self.local(name)?;
                let from = self.expr(value)?;
                self.coerce(&from, &ty);
                self.emit(Insn::Store(slot));
            }
            LValue::StaticField { class, field } => {
                let (index, _, ty) = self.field_slot(class, field)?;
                let from = self.expr(value)?;
                self.coerce(&from, &ty);
                let class_id = self.layout.class_ids[class];
                self.emit(Insn::PutStatic { class: class_id, field: index });
            }
            LValue::InstField { recv, field } => {
                let recv_ty = self.expr(recv)?;
                let class = class_name(&recv_ty)?;
                let (index, _, ty) = self.field_slot(&class, field)?;
                let from = self.expr(value)?;
                self.coerce(&from, &ty);
                self.emit(Insn::PutField { field: index });
            }
            LValue::Index { array, index } => {
                let arr_ty = self.expr(array)?;
                let elem = arr_ty
                    .elem()
                    .ok_or_else(|| FrontError::msg("internal: indexing non-array"))?
                    .clone();
                let idx_ty = self.expr(index)?;
                self.coerce(&idx_ty, &Ty::Int);
                let from = self.expr(value)?;
                self.coerce(&from, &elem);
                self.emit(Insn::ArrStore(arr_kind(&elem)));
            }
            LValue::Name(name) => {
                return Err(FrontError::msg(format!("internal: unresolved lvalue `{name}`")));
            }
        }
        Ok(())
    }

    /// `target op= value`: loads the target, applies the operator at the
    /// promoted type, narrows back to the target type (Java's implicit
    /// compound-assignment cast), and stores.
    fn assign_compound(
        &mut self,
        target: &LValue,
        op: BinOp,
        value: &Expr,
    ) -> Result<(), FrontError> {
        // Phase 1: push any address components and the current value.
        let target_ty: Ty;
        enum Addr {
            Local(u16),
            Static { class: ClassId, field: u32 },
            Field { field: u32 },
            Index(ArrKind),
        }
        let addr: Addr;
        match target {
            LValue::Local(name) => {
                let (slot, ty) = self.local(name)?;
                target_ty = ty;
                addr = Addr::Local(slot);
                self.emit(Insn::Load(slot));
            }
            LValue::StaticField { class, field } => {
                let (index, _, ty) = self.field_slot(class, field)?;
                target_ty = ty;
                let class_id = self.layout.class_ids[class];
                addr = Addr::Static { class: class_id, field: index };
                self.emit(Insn::GetStatic { class: class_id, field: index });
            }
            LValue::InstField { recv, field } => {
                let recv_ty = self.expr(recv)?;
                let class = class_name(&recv_ty)?;
                let (index, _, ty) = self.field_slot(&class, field)?;
                target_ty = ty;
                addr = Addr::Field { field: index };
                self.emit(Insn::Dup);
                self.emit(Insn::GetField { field: index });
            }
            LValue::Index { array, index } => {
                let arr_ty = self.expr(array)?;
                let elem = arr_ty
                    .elem()
                    .ok_or_else(|| FrontError::msg("internal: indexing non-array"))?
                    .clone();
                let idx_ty = self.expr(index)?;
                self.coerce(&idx_ty, &Ty::Int);
                target_ty = elem.clone();
                addr = Addr::Index(arr_kind(&elem));
                self.emit(Insn::Dup2);
                self.emit(Insn::ArrLoad(arr_kind(&elem)));
            }
            LValue::Name(name) => {
                return Err(FrontError::msg(format!("internal: unresolved lvalue `{name}`")));
            }
        }
        // Phase 2: apply the operator.
        let result_ty = self.binary_on_loaded(&target_ty, op, value)?;
        // Phase 3: narrow back to the target type.
        self.coerce(&result_ty, &target_ty);
        // Phase 4: store.
        match addr {
            Addr::Local(slot) => self.emit(Insn::Store(slot)),
            Addr::Static { class, field } => self.emit(Insn::PutStatic { class, field }),
            Addr::Field { field } => self.emit(Insn::PutField { field }),
            Addr::Index(kind) => self.emit(Insn::ArrStore(kind)),
        }
        Ok(())
    }

    /// With the left operand (of type `lhs_ty`) already on the stack,
    /// compiles `value` and the operator, returning the result type.
    fn binary_on_loaded(&mut self, lhs_ty: &Ty, op: BinOp, value: &Expr) -> Result<Ty, FrontError> {
        // String concatenation.
        if op == BinOp::Add && *lhs_ty == Ty::Str {
            self.emit_to_str(lhs_ty);
            let rhs_ty = self.expr(value)?;
            self.emit_to_str(&rhs_ty);
            self.emit(Insn::SConcat);
            return Ok(Ty::Str);
        }
        match op {
            BinOp::Shl | BinOp::Shr | BinOp::Ushr => {
                let result = if *lhs_ty == Ty::Long { Ty::Long } else { Ty::Int };
                // Left operand is already promoted as stored (byte is
                // int-represented). Shift distance is an int.
                let rhs_ty = self.expr(value)?;
                self.coerce(&rhs_ty, &Ty::Int);
                let insn = match (op, &result) {
                    (BinOp::Shl, Ty::Int) => Insn::IShl,
                    (BinOp::Shr, Ty::Int) => Insn::IShr,
                    (BinOp::Ushr, Ty::Int) => Insn::IUshr,
                    (BinOp::Shl, Ty::Long) => Insn::LShl,
                    (BinOp::Shr, Ty::Long) => Insn::LShr,
                    (BinOp::Ushr, Ty::Long) => Insn::LUshr,
                    _ => unreachable!(),
                };
                self.emit(insn);
                Ok(result)
            }
            _ => {
                // Boolean bitwise ops share the int instructions.
                if *lhs_ty == Ty::Bool {
                    self.expr(value)?;
                    let insn = match op {
                        BinOp::And => Insn::IAnd,
                        BinOp::Or => Insn::IOr,
                        BinOp::Xor => Insn::IXor,
                        other => {
                            return Err(FrontError::msg(format!("internal: bool op {other:?}")));
                        }
                    };
                    self.emit(insn);
                    return Ok(Ty::Bool);
                }
                let rhs_static = self.type_of(value)?;
                let promoted = lhs_ty
                    .promote(&rhs_static)
                    .ok_or_else(|| FrontError::msg("internal: non-numeric compound operands"))?;
                self.coerce(lhs_ty, &promoted);
                let rhs_ty = self.expr(value)?;
                self.coerce(&rhs_ty, &promoted);
                let insn = match (&promoted, op) {
                    (Ty::Int, BinOp::Add) => Insn::IAdd,
                    (Ty::Int, BinOp::Sub) => Insn::ISub,
                    (Ty::Int, BinOp::Mul) => Insn::IMul,
                    (Ty::Int, BinOp::Div) => Insn::IDiv,
                    (Ty::Int, BinOp::Rem) => Insn::IRem,
                    (Ty::Int, BinOp::And) => Insn::IAnd,
                    (Ty::Int, BinOp::Or) => Insn::IOr,
                    (Ty::Int, BinOp::Xor) => Insn::IXor,
                    (Ty::Long, BinOp::Add) => Insn::LAdd,
                    (Ty::Long, BinOp::Sub) => Insn::LSub,
                    (Ty::Long, BinOp::Mul) => Insn::LMul,
                    (Ty::Long, BinOp::Div) => Insn::LDiv,
                    (Ty::Long, BinOp::Rem) => Insn::LRem,
                    (Ty::Long, BinOp::And) => Insn::LAnd,
                    (Ty::Long, BinOp::Or) => Insn::LOr,
                    (Ty::Long, BinOp::Xor) => Insn::LXor,
                    other => {
                        return Err(FrontError::msg(format!("internal: compound op {other:?}")));
                    }
                };
                self.emit(insn);
                Ok(promoted)
            }
        }
    }

    // ----- expressions ------------------------------------------------------

    /// Compiles an expression, returning its static type.
    fn expr(&mut self, expr: &Expr) -> Result<Ty, FrontError> {
        match expr {
            Expr::IntLit(v) => {
                self.emit(Insn::IConst(*v));
                Ok(Ty::Int)
            }
            Expr::LongLit(v) => {
                self.emit(Insn::LConst(*v));
                Ok(Ty::Long)
            }
            Expr::BoolLit(b) => {
                self.emit(Insn::IConst(i32::from(*b)));
                Ok(Ty::Bool)
            }
            Expr::StrLit(s) => {
                let id = self.layout.intern(s);
                self.emit(Insn::SConst(id));
                Ok(Ty::Str)
            }
            Expr::Null => {
                self.emit(Insn::NullConst);
                Ok(Ty::Class("null".into()))
            }
            Expr::Local(name) => {
                let (slot, ty) = self.local(name)?;
                self.emit(Insn::Load(slot));
                Ok(ty)
            }
            Expr::This => {
                self.emit(Insn::Load(0));
                let class = self
                    .this_class
                    .clone()
                    .ok_or_else(|| FrontError::msg("internal: `this` in static method"))?;
                Ok(Ty::Class(class))
            }
            Expr::Name(name) => Err(FrontError::msg(format!("internal: unresolved name `{name}`"))),
            Expr::FreeCall { name, .. } => {
                Err(FrontError::msg(format!("internal: unresolved call `{name}`")))
            }
            Expr::StaticField { class, field } => {
                let (index, _, ty) = self.field_slot(class, field)?;
                let class_id = self.layout.class_ids[class];
                self.emit(Insn::GetStatic { class: class_id, field: index });
                Ok(ty)
            }
            Expr::InstField { recv, field } => {
                let recv_ty = self.expr(recv)?;
                let class = class_name(&recv_ty)?;
                let (index, _, ty) = self.field_slot(&class, field)?;
                self.emit(Insn::GetField { field: index });
                Ok(ty)
            }
            Expr::Index { array, index } => {
                let arr_ty = self.expr(array)?;
                let elem = arr_ty
                    .elem()
                    .ok_or_else(|| FrontError::msg("internal: indexing non-array"))?
                    .clone();
                let idx_ty = self.expr(index)?;
                self.coerce(&idx_ty, &Ty::Int);
                self.emit(Insn::ArrLoad(arr_kind(&elem)));
                Ok(elem)
            }
            Expr::Length(array) => {
                self.expr(array)?;
                self.emit(Insn::ArrLen);
                Ok(Ty::Int)
            }
            Expr::NewObject(class) => {
                let class_id = self.layout.class_ids[class];
                self.emit(Insn::NewObject(class_id));
                if let Some(init) = self.layout.classes[class_id.0 as usize].init {
                    self.emit(Insn::Dup);
                    self.emit(Insn::InvokeInstance(init));
                }
                Ok(Ty::Class(class.clone()))
            }
            Expr::NewArray { elem, dims, extra_dims } => {
                for dim in dims {
                    let ty = self.expr(dim)?;
                    self.coerce(&ty, &Ty::Int);
                }
                let total_dims = dims.len() + extra_dims;
                // The innermost *allocated* level holds elements with
                // `extra_dims` residual dimensions.
                let innermost = if *extra_dims == 0 { arr_kind(elem) } else { ArrKind::Ref };
                if dims.len() == 1 {
                    self.emit(Insn::NewArray(innermost));
                } else {
                    self.emit(Insn::NewMultiArray { kind: innermost, dims: dims.len() as u8 });
                }
                let mut ty = elem.clone();
                for _ in 0..total_dims {
                    ty = ty.array_of();
                }
                Ok(ty)
            }
            Expr::NewArrayInit { elem, elems } => {
                self.emit(Insn::IConst(elems.len() as i32));
                self.emit(Insn::NewArray(arr_kind(elem)));
                for (i, e) in elems.iter().enumerate() {
                    self.emit(Insn::Dup);
                    self.emit(Insn::IConst(i as i32));
                    let ty = self.expr(e)?;
                    self.coerce(&ty, elem);
                    self.emit(Insn::ArrStore(arr_kind(elem)));
                }
                Ok(elem.clone().array_of())
            }
            Expr::StaticCall { class, method, args } => {
                let id = self.method_id(class, method)?;
                let params = self.layout.methods[id.0 as usize].params.clone();
                let ret = self.layout.methods[id.0 as usize].ret.clone();
                for (arg, param) in args.iter().zip(&params) {
                    let ty = self.expr(arg)?;
                    self.coerce(&ty, param);
                }
                self.emit(Insn::InvokeStatic(id));
                Ok(ret)
            }
            Expr::InstCall { recv, method, args } => {
                let recv_ty = self.expr(recv)?;
                let class = class_name(&recv_ty)?;
                let id = self.method_id(&class, method)?;
                let params = self.layout.methods[id.0 as usize].params.clone();
                let ret = self.layout.methods[id.0 as usize].ret.clone();
                for (arg, param) in args.iter().zip(&params) {
                    let ty = self.expr(arg)?;
                    self.coerce(&ty, param);
                }
                self.emit(Insn::InvokeInstance(id));
                Ok(ret)
            }
            Expr::IntrinsicCall { which, args } => {
                let mut result = Ty::Int;
                for arg in args {
                    let ty = self.type_of(arg)?;
                    result = result.promote(&ty).unwrap_or(Ty::Long);
                }
                for arg in args {
                    let ty = self.expr(arg)?;
                    self.coerce(&ty, &result);
                }
                // min/max/abs lower to compare-and-select sequences using a
                // scratch local, keeping the instruction set lean.
                self.intrinsic(*which, &result)?;
                Ok(result)
            }
            Expr::Unary { op, expr } => match op {
                UnOp::Neg => {
                    let ty = self.expr(expr)?;
                    match ty {
                        Ty::Long => {
                            self.emit(Insn::LNeg);
                            Ok(Ty::Long)
                        }
                        _ => {
                            self.emit(Insn::INeg);
                            Ok(Ty::Int)
                        }
                    }
                }
                UnOp::Not => {
                    self.expr(expr)?;
                    self.emit(Insn::IConst(1));
                    self.emit(Insn::IXor);
                    Ok(Ty::Bool)
                }
                UnOp::BitNot => {
                    let ty = self.expr(expr)?;
                    match ty {
                        Ty::Long => {
                            self.emit(Insn::LConst(-1));
                            self.emit(Insn::LXor);
                            Ok(Ty::Long)
                        }
                        _ => {
                            self.emit(Insn::IConst(-1));
                            self.emit(Insn::IXor);
                            Ok(Ty::Int)
                        }
                    }
                }
            },
            Expr::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs),
            Expr::Cast { ty, expr } => {
                let from = self.expr(expr)?;
                match (from.clone(), ty.clone()) {
                    (Ty::Int | Ty::Byte, Ty::Long) => self.emit(Insn::I2L),
                    (Ty::Int, Ty::Byte) => self.emit(Insn::I2B),
                    (Ty::Long, Ty::Int) => self.emit(Insn::L2I),
                    (Ty::Long, Ty::Byte) => {
                        self.emit(Insn::L2I);
                        self.emit(Insn::I2B);
                    }
                    _ => {}
                }
                Ok(ty.clone())
            }
        }
    }

    fn binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Ty, FrontError> {
        match op {
            BinOp::LAnd => {
                self.expr(lhs)?;
                let to_false = self.emit_patch(Insn::JumpIfFalse(0));
                self.expr(rhs)?;
                let to_end = self.emit_patch(Insn::Jump(0));
                let false_pc = self.pc();
                self.patch(to_false, false_pc);
                self.emit(Insn::IConst(0));
                let end = self.pc();
                self.patch(to_end, end);
                Ok(Ty::Bool)
            }
            BinOp::LOr => {
                self.expr(lhs)?;
                let to_true = self.emit_patch(Insn::JumpIfTrue(0));
                self.expr(rhs)?;
                let to_end = self.emit_patch(Insn::Jump(0));
                let true_pc = self.pc();
                self.patch(to_true, true_pc);
                self.emit(Insn::IConst(1));
                let end = self.pc();
                self.patch(to_end, end);
                Ok(Ty::Bool)
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let cmp = match op {
                    BinOp::Eq => CmpOp::Eq,
                    BinOp::Ne => CmpOp::Ne,
                    BinOp::Lt => CmpOp::Lt,
                    BinOp::Le => CmpOp::Le,
                    BinOp::Gt => CmpOp::Gt,
                    _ => CmpOp::Ge,
                };
                let lhs_static = self.type_of(lhs)?;
                if lhs_static.is_numeric() {
                    let promoted = self.compile_promoted_pair(lhs, rhs)?;
                    match promoted {
                        Ty::Long => self.emit(Insn::LCmp(cmp)),
                        _ => self.emit(Insn::ICmp(cmp)),
                    }
                    return Ok(Ty::Bool);
                }
                // Bool equality or reference identity.
                let lhs_ty = self.expr(lhs)?;
                let _rhs_ty = self.expr(rhs)?;
                if lhs_ty == Ty::Bool {
                    self.emit(Insn::ICmp(cmp));
                } else if cmp == CmpOp::Eq {
                    self.emit(Insn::RefEq);
                } else {
                    self.emit(Insn::RefNe);
                }
                Ok(Ty::Bool)
            }
            BinOp::Add => {
                let lhs_hint = self.type_of(lhs)?;
                let rhs_hint = self.type_of(rhs)?;
                if lhs_hint == Ty::Str || rhs_hint == Ty::Str {
                    let lt = self.expr(lhs)?;
                    self.emit_to_str(&lt);
                    let rt = self.expr(rhs)?;
                    self.emit_to_str(&rt);
                    self.emit(Insn::SConcat);
                    return Ok(Ty::Str);
                }
                self.arith(op, lhs, rhs)
            }
            BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => self.arith(op, lhs, rhs),
            BinOp::And | BinOp::Or | BinOp::Xor => {
                let hint = self.type_of(lhs)?;
                if hint == Ty::Bool {
                    self.expr(lhs)?;
                    self.expr(rhs)?;
                    let insn = match op {
                        BinOp::And => Insn::IAnd,
                        BinOp::Or => Insn::IOr,
                        _ => Insn::IXor,
                    };
                    self.emit(insn);
                    return Ok(Ty::Bool);
                }
                self.arith(op, lhs, rhs)
            }
            BinOp::Shl | BinOp::Shr | BinOp::Ushr => {
                let lhs_ty = self.expr(lhs)?;
                let result = if lhs_ty == Ty::Long { Ty::Long } else { Ty::Int };
                let rhs_ty = self.expr(rhs)?;
                self.coerce(&rhs_ty, &Ty::Int);
                let insn = match (op, &result) {
                    (BinOp::Shl, Ty::Int) => Insn::IShl,
                    (BinOp::Shr, Ty::Int) => Insn::IShr,
                    (BinOp::Ushr, Ty::Int) => Insn::IUshr,
                    (BinOp::Shl, Ty::Long) => Insn::LShl,
                    (BinOp::Shr, Ty::Long) => Insn::LShr,
                    (BinOp::Ushr, Ty::Long) => Insn::LUshr,
                    _ => unreachable!(),
                };
                self.emit(insn);
                Ok(result)
            }
        }
    }

    /// Compiles `lhs` and `rhs` with both widened to their promoted type;
    /// returns the promoted type.
    fn compile_promoted_pair(&mut self, lhs: &Expr, rhs: &Expr) -> Result<Ty, FrontError> {
        let rhs_static = self.type_of(rhs)?;
        let lhs_ty = self.expr(lhs)?;
        let promoted = lhs_ty
            .promote(&rhs_static)
            .ok_or_else(|| FrontError::msg("internal: non-numeric operands"))?;
        self.coerce(&lhs_ty, &promoted);
        let rhs_ty = self.expr(rhs)?;
        self.coerce(&rhs_ty, &promoted);
        Ok(promoted)
    }

    fn arith(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Ty, FrontError> {
        let promoted = self.compile_promoted_pair(lhs, rhs)?;
        let insn = match (&promoted, op) {
            (Ty::Int, BinOp::Add) => Insn::IAdd,
            (Ty::Int, BinOp::Sub) => Insn::ISub,
            (Ty::Int, BinOp::Mul) => Insn::IMul,
            (Ty::Int, BinOp::Div) => Insn::IDiv,
            (Ty::Int, BinOp::Rem) => Insn::IRem,
            (Ty::Int, BinOp::And) => Insn::IAnd,
            (Ty::Int, BinOp::Or) => Insn::IOr,
            (Ty::Int, BinOp::Xor) => Insn::IXor,
            (Ty::Long, BinOp::Add) => Insn::LAdd,
            (Ty::Long, BinOp::Sub) => Insn::LSub,
            (Ty::Long, BinOp::Mul) => Insn::LMul,
            (Ty::Long, BinOp::Div) => Insn::LDiv,
            (Ty::Long, BinOp::Rem) => Insn::LRem,
            (Ty::Long, BinOp::And) => Insn::LAnd,
            (Ty::Long, BinOp::Or) => Insn::LOr,
            (Ty::Long, BinOp::Xor) => Insn::LXor,
            other => return Err(FrontError::msg(format!("internal: arith {other:?}"))),
        };
        self.emit(insn);
        Ok(promoted)
    }

    /// Lowers `Math.min/max/abs` to branch-free-ish compare sequences using
    /// scratch locals.
    fn intrinsic(&mut self, which: Intrinsic, ty: &Ty) -> Result<(), FrontError> {
        let is_long = *ty == Ty::Long;
        match which {
            Intrinsic::Min | Intrinsic::Max => {
                // Stack: [a, b]. Keep b in a scratch local, compare, select.
                let b_slot = self.fresh_slot();
                let a_slot = self.fresh_slot();
                self.emit(Insn::Store(b_slot));
                self.emit(Insn::Store(a_slot));
                self.emit(Insn::Load(a_slot));
                self.emit(Insn::Load(b_slot));
                let cmp = if which == Intrinsic::Min { CmpOp::Le } else { CmpOp::Ge };
                if is_long {
                    self.emit(Insn::LCmp(cmp));
                } else {
                    self.emit(Insn::ICmp(cmp));
                }
                let to_a = self.emit_patch(Insn::JumpIfTrue(0));
                self.emit(Insn::Load(b_slot));
                let to_end = self.emit_patch(Insn::Jump(0));
                let a_pc = self.pc();
                self.patch(to_a, a_pc);
                self.emit(Insn::Load(a_slot));
                let end = self.pc();
                self.patch(to_end, end);
            }
            Intrinsic::Abs => {
                let slot = self.fresh_slot();
                self.emit(Insn::Store(slot));
                self.emit(Insn::Load(slot));
                if is_long {
                    self.emit(Insn::LConst(0));
                    self.emit(Insn::LCmp(CmpOp::Ge));
                } else {
                    self.emit(Insn::IConst(0));
                    self.emit(Insn::ICmp(CmpOp::Ge));
                }
                let to_pos = self.emit_patch(Insn::JumpIfTrue(0));
                self.emit(Insn::Load(slot));
                if is_long {
                    self.emit(Insn::LNeg);
                } else {
                    self.emit(Insn::INeg);
                }
                let to_end = self.emit_patch(Insn::Jump(0));
                let pos_pc = self.pc();
                self.patch(to_pos, pos_pc);
                self.emit(Insn::Load(slot));
                let end = self.pc();
                self.patch(to_end, end);
            }
        }
        Ok(())
    }
}

impl MethodCtx<'_> {
    /// Pure (non-emitting) static type inference, mirroring the type
    /// checker's rules. The input already passed `typeck::check`, so this
    /// never needs to report type errors — only unresolved internals.
    fn type_of(&self, expr: &Expr) -> Result<Ty, FrontError> {
        Ok(match expr {
            Expr::IntLit(_) => Ty::Int,
            Expr::LongLit(_) => Ty::Long,
            Expr::BoolLit(_) => Ty::Bool,
            Expr::StrLit(_) => Ty::Str,
            Expr::Null => Ty::Class("null".into()),
            Expr::Local(name) => self.local(name)?.1,
            Expr::This => Ty::Class(
                self.this_class
                    .clone()
                    .ok_or_else(|| FrontError::msg("internal: `this` in static method"))?,
            ),
            Expr::Name(name) => {
                return Err(FrontError::msg(format!("internal: unresolved name `{name}`")));
            }
            Expr::FreeCall { name, .. } => {
                return Err(FrontError::msg(format!("internal: unresolved call `{name}`")));
            }
            Expr::StaticField { class, field } => self.field_slot(class, field)?.2,
            Expr::InstField { recv, field } => {
                let class = class_name(&self.type_of(recv)?)?;
                self.field_slot(&class, field)?.2
            }
            Expr::Index { array, .. } => self
                .type_of(array)?
                .elem()
                .ok_or_else(|| FrontError::msg("internal: indexing non-array"))?
                .clone(),
            Expr::Length(_) => Ty::Int,
            Expr::NewObject(class) => Ty::Class(class.clone()),
            Expr::NewArray { elem, dims, extra_dims } => {
                let mut ty = elem.clone();
                for _ in 0..(dims.len() + extra_dims) {
                    ty = ty.array_of();
                }
                ty
            }
            Expr::NewArrayInit { elem, .. } => elem.clone().array_of(),
            Expr::StaticCall { class, method, .. } => {
                let id = self.method_id(class, method)?;
                self.layout.methods[id.0 as usize].ret.clone()
            }
            Expr::InstCall { recv, method, .. } => {
                let class = class_name(&self.type_of(recv)?)?;
                let id = self.method_id(&class, method)?;
                self.layout.methods[id.0 as usize].ret.clone()
            }
            Expr::IntrinsicCall { args, .. } => {
                let mut ty = Ty::Int;
                for arg in args {
                    let at = self.type_of(arg)?;
                    ty = ty.promote(&at).unwrap_or(Ty::Long);
                }
                ty
            }
            Expr::Unary { op, expr } => match op {
                UnOp::Not => Ty::Bool,
                UnOp::Neg | UnOp::BitNot => {
                    if self.type_of(expr)? == Ty::Long {
                        Ty::Long
                    } else {
                        Ty::Int
                    }
                }
            },
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::LAnd
                | BinOp::LOr => Ty::Bool,
                BinOp::Shl | BinOp::Shr | BinOp::Ushr => {
                    if self.type_of(lhs)? == Ty::Long {
                        Ty::Long
                    } else {
                        Ty::Int
                    }
                }
                BinOp::Add => {
                    let lt = self.type_of(lhs)?;
                    let rt = self.type_of(rhs)?;
                    if lt == Ty::Str || rt == Ty::Str {
                        Ty::Str
                    } else {
                        lt.promote(&rt)
                            .ok_or_else(|| FrontError::msg("internal: bad operand types"))?
                    }
                }
                BinOp::And | BinOp::Or | BinOp::Xor => {
                    let lt = self.type_of(lhs)?;
                    if lt == Ty::Bool {
                        Ty::Bool
                    } else {
                        let rt = self.type_of(rhs)?;
                        lt.promote(&rt)
                            .ok_or_else(|| FrontError::msg("internal: bad operand types"))?
                    }
                }
                _ => {
                    let lt = self.type_of(lhs)?;
                    let rt = self.type_of(rhs)?;
                    lt.promote(&rt).ok_or_else(|| FrontError::msg("internal: bad operand types"))?
                }
            },
            Expr::Cast { ty, .. } => ty.clone(),
        })
    }
}

fn class_name(ty: &Ty) -> Result<String, FrontError> {
    match ty {
        Ty::Class(name) => Ok(name.clone()),
        other => Err(FrontError::msg(format!("internal: `{other}` is not a class type"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_program;

    fn compile_src(src: &str) -> BProgram {
        let program = cse_lang::parse_and_check(src).unwrap();
        let compiled = compile(&program).unwrap();
        verify_program(&compiled).unwrap_or_else(|e| panic!("verify failed: {e}"));
        compiled
    }

    #[test]
    fn compiles_and_verifies_basics() {
        let p = compile_src(
            r#"
            class T {
                static int f(int a, long b) {
                    int c = a + (int) b;
                    long d = a + b;
                    byte e = (byte) (c * 3);
                    return c + (int) d + e;
                }
                static void main() { println(f(1, 2L)); }
            }
            "#,
        );
        assert_eq!(p.classes.len(), 1);
        assert!(p.clinit.is_none());
        let main = p.method(p.entry);
        assert_eq!(main.name, "main");
    }

    #[test]
    fn widens_int_variable_against_long_variable() {
        let p = compile_src(
            r#"
            class T {
                static void main() {
                    int a = 3;
                    long b = 4L;
                    long c = a + b;
                    println(c);
                }
            }
            "#,
        );
        // The int operand must be widened before LAdd.
        let main = p.method(p.entry);
        assert!(main.code.contains(&Insn::I2L), "missing I2L in {:?}", main.code);
        assert!(main.code.contains(&Insn::LAdd));
    }

    #[test]
    fn control_flow_compiles_with_loop_headers() {
        let p = compile_src(
            r#"
            class T {
                static int f(int n) {
                    int acc = 0;
                    for (int i = 0; i < n; i++) {
                        if (i % 2 == 0) { acc += i; } else { acc -= 1; }
                        while (acc > 50) { acc /= 2; }
                    }
                    do { acc++; } while (acc < 0);
                    return acc;
                }
                static void main() { println(f(5)); }
            }
            "#,
        );
        let f = p.find_method("T", "f").unwrap();
        assert!(p.method(f).loop_headers.len() >= 3);
    }

    #[test]
    fn switch_compiles_with_fallthrough() {
        let p = compile_src(
            r#"
            class T {
                static int f(int x) {
                    int r = 0;
                    switch (x) {
                        case 1: r += 1;
                        case 2: r += 2; break;
                        case 3: r += 3; break;
                        default: r = -1;
                    }
                    return r;
                }
                static void main() { println(f(1)); }
            }
            "#,
        );
        let f = p.method(p.find_method("T", "f").unwrap());
        let has_switch =
            f.code.iter().any(|i| matches!(i, Insn::TableSwitch { cases, .. } if cases.len() == 3));
        assert!(has_switch);
    }

    #[test]
    fn try_catch_finally_lowering_duplicates_finally() {
        let p = compile_src(
            r#"
            class T {
                static void main() {
                    int x = 1;
                    try { x = 10 / x; } catch { x = -1; } finally { x += 100; }
                    try { x += 1; } finally { x += 2; }
                    try { x /= 0; } catch { x = 7; }
                    println(x);
                }
            }
            "#,
        );
        let main = p.method(p.entry);
        // try/catch/finally => 2 handler entries, try/finally => 1,
        // try/catch => 1.
        assert_eq!(main.handlers.len(), 4);
        assert!(main.handlers.iter().filter(|h| h.save_slot.is_some()).count() >= 2);
        assert!(main.code.iter().any(|i| matches!(i, Insn::Rethrow(_))));
    }

    #[test]
    fn field_initializers_become_synthetic_methods() {
        let p = compile_src(
            r#"
            class A { static int s = 5; int f = 6; static void main() { println(new A().f + A.s); } }
            "#,
        );
        assert!(p.clinit.is_some());
        assert!(p.find_method("A", "$init").is_some());
        let a = &p.classes[0];
        assert!(a.init.is_some());
    }

    #[test]
    fn string_concat_lowers_to_sconcat() {
        let p = compile_src(r#"class T { static void main() { println("x=" + 1 + true + 2L); } }"#);
        let main = p.method(p.entry);
        assert!(main.code.iter().filter(|i| matches!(i, Insn::SConcat)).count() >= 3);
        assert!(main.code.contains(&Insn::I2S));
        assert!(main.code.contains(&Insn::L2S));
        assert!(main.code.contains(&Insn::Bool2S));
    }

    #[test]
    fn compound_assign_on_array_uses_dup2() {
        let p = compile_src(
            r#"
            class T {
                static void main() {
                    int[] a = new int[3];
                    a[1] += 5;
                    byte[] b = new byte[2];
                    b[0] += 1;
                    println(a[1] + b[0]);
                }
            }
            "#,
        );
        let main = p.method(p.entry);
        assert!(main.code.iter().filter(|i| matches!(i, Insn::Dup2)).count() >= 2);
        // Byte compound must narrow back.
        assert!(main.code.contains(&Insn::I2B));
    }

    #[test]
    fn multi_dim_arrays() {
        compile_src(
            r#"
            class T {
                static void main() {
                    int[][] m = new int[2][3];
                    long[][] n = new long[4][];
                    n[0] = new long[1];
                    m[1][2] = 9;
                    println(m[1][2] + n[0][0]);
                }
            }
            "#,
        );
    }

    #[test]
    fn intrinsics_lower_to_branches() {
        let p = compile_src(
            r#"
            class T {
                static void main() {
                    println(Math.min(3, 4) + Math.max(5L, 6L) + Math.abs(-7));
                }
            }
            "#,
        );
        let main = p.method(p.entry);
        assert!(main.code.iter().any(|i| matches!(i, Insn::LCmp(_))));
        assert!(main.code.iter().any(|i| matches!(i, Insn::ICmp(_))));
    }

    #[test]
    fn instance_dispatch_and_this() {
        compile_src(
            r#"
            class P { int v = 2; int get() { return v; } }
            class T {
                int w = 3;
                int sum(P p) { return w + p.get(); }
                static void main() {
                    T t = new T();
                    println(t.sum(new P()));
                }
            }
            "#,
        );
    }

    #[test]
    fn throw_and_user_exceptions() {
        let p = compile_src(
            r#"
            class T {
                static void main() {
                    try { throw 42; } catch { println("caught"); }
                }
            }
            "#,
        );
        let main = p.method(p.entry);
        assert!(main.code.contains(&Insn::ThrowUser));
    }

    #[test]
    fn mute_unmute_emit_insns() {
        let p =
            compile_src(r#"class T { static void main() { __mute(); println(1); __unmute(); } }"#);
        let main = p.method(p.entry);
        assert!(main.code.contains(&Insn::Mute));
        assert!(main.code.contains(&Insn::Unmute));
    }

    #[test]
    fn logical_operators_short_circuit_shape() {
        let p = compile_src(
            r#"
            class T {
                static boolean t() { return true; }
                static void main() {
                    boolean b = t() && (1 / 0 > 0) || t();
                    println(b);
                }
            }
            "#,
        );
        let main = p.method(p.entry);
        assert!(main.code.iter().any(|i| matches!(i, Insn::JumpIfFalse(_))));
        assert!(main.code.iter().any(|i| matches!(i, Insn::JumpIfTrue(_))));
    }
}
