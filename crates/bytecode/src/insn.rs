//! The bytecode instruction set.

/// Comparison operators shared by `ICmp`/`LCmp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on an [`std::cmp::Ordering`]-comparable pair.
    pub fn eval<T: PartialOrd + PartialEq>(self, a: T, b: T) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The comparison with swapped operands (`a op b == b op.swap() a`).
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation of the comparison.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// Runtime array element kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrKind {
    /// `int[]`
    I32,
    /// `long[]`
    I64,
    /// `byte[]`
    I8,
    /// `boolean[]`
    Bool,
    /// `String[]`
    Str,
    /// arrays of arrays or of objects
    Ref,
}

/// The value category a `Println` instruction formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrintKind {
    Int,
    Long,
    Bool,
    Str,
}

/// A bytecode instruction.
///
/// Jump targets are absolute instruction indices within the method. The
/// operand stack holds dynamically-tagged [`cse-vm` values]; the verifier
/// proves tag discipline statically so the interpreter's tag checks never
/// fire on verified code.
#[derive(Debug, Clone, PartialEq)]
pub enum Insn {
    // Constants.
    IConst(i32),
    LConst(i64),
    SConst(crate::program::StrId),
    NullConst,

    // Locals.
    Load(u16),
    Store(u16),

    // Stack shuffling.
    Pop,
    Dup,
    /// Duplicates the top *two* slots as a pair: `.. a b -> .. a b a b`.
    Dup2,

    // Fields.
    GetStatic {
        class: crate::program::ClassId,
        field: u32,
    },
    PutStatic {
        class: crate::program::ClassId,
        field: u32,
    },
    GetField {
        field: u32,
    },
    PutField {
        field: u32,
    },

    // Allocation.
    NewObject(crate::program::ClassId),
    /// Pops a length, pushes a new array of `kind`.
    NewArray(ArrKind),
    /// Pops `dims` lengths (outermost first on the bottom), allocates a
    /// rectangular nested array whose innermost elements have `kind`.
    NewMultiArray {
        kind: ArrKind,
        dims: u8,
    },

    // Arrays.
    ArrLoad(ArrKind),
    ArrStore(ArrKind),
    ArrLen,

    // Int arithmetic (operands and result are `int`).
    IAdd,
    ISub,
    IMul,
    IDiv,
    IRem,
    INeg,
    IShl,
    IShr,
    IUshr,
    IAnd,
    IOr,
    IXor,

    // Long arithmetic.
    LAdd,
    LSub,
    LMul,
    LDiv,
    LRem,
    LNeg,
    /// Shift distance is an `int` on top of the stack.
    LShl,
    LShr,
    LUshr,
    LAnd,
    LOr,
    LXor,

    // Conversions.
    I2L,
    L2I,
    /// Truncate to 8 bits and sign-extend (Java's `(byte)` cast).
    I2B,
    I2S,
    L2S,
    Bool2S,

    // Comparisons (push an int 0/1).
    ICmp(CmpOp),
    LCmp(CmpOp),
    RefEq,
    RefNe,

    // Strings.
    /// Pops two strings, pushes their concatenation; a null operand prints
    /// as `"null"`, as in Java.
    SConcat,

    // Control flow.
    Jump(u32),
    JumpIfTrue(u32),
    JumpIfFalse(u32),
    /// Dense or sparse switch: pairs of (label, target), plus default.
    TableSwitch {
        cases: Vec<(i32, u32)>,
        default: u32,
    },

    // Calls.
    InvokeStatic(crate::program::MethodId),
    /// Receiver below the arguments; null receiver raises NPE.
    InvokeInstance(crate::program::MethodId),
    Return,
    ReturnVal,

    // Exceptions.
    /// Pops an `int` user code and raises `ExcKind::User`.
    ThrowUser,
    /// Re-raises the exception stored in the given local slot by a handler
    /// with a `save_slot` (used for `finally` lowering).
    Rethrow(u16),

    // Output.
    Println(PrintKind),
    Mute,
    Unmute,
}

impl Insn {
    /// Whether this instruction unconditionally transfers control.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Insn::Jump(_)
                | Insn::TableSwitch { .. }
                | Insn::Return
                | Insn::ReturnVal
                | Insn::ThrowUser
                | Insn::Rethrow(_)
        )
    }

    /// Branch targets of this instruction (empty for fall-through-only).
    pub fn targets(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_targets(&mut out);
        out
    }

    /// Appends branch targets to `out` without allocating. The verifier
    /// walks every instruction of every compiled mutant; letting it reuse
    /// one buffer keeps its inner loop allocation-free.
    pub fn collect_targets(&self, out: &mut Vec<u32>) {
        match self {
            Insn::Jump(t) | Insn::JumpIfTrue(t) | Insn::JumpIfFalse(t) => out.push(*t),
            Insn::TableSwitch { cases, default } => {
                out.extend(cases.iter().map(|(_, t)| *t));
                out.push(*default);
            }
            _ => {}
        }
    }

    /// Rewrites branch targets through `f` (used by the JIT inliner and the
    /// compiler's backpatching).
    pub fn map_targets(&mut self, f: impl Fn(u32) -> u32) {
        match self {
            Insn::Jump(t) | Insn::JumpIfTrue(t) | Insn::JumpIfFalse(t) => *t = f(*t),
            Insn::TableSwitch { cases, default } => {
                for (_, t) in cases.iter_mut() {
                    *t = f(*t);
                }
                *default = f(*default);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(!CmpOp::Ge.eval(1, 2));
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(CmpOp::Ne.eval(3, 4));
    }

    #[test]
    fn cmp_negate_is_involution() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.swap().swap(), op);
        }
    }

    #[test]
    fn terminators_and_targets() {
        assert!(Insn::Jump(3).is_terminator());
        assert!(!Insn::JumpIfTrue(3).is_terminator());
        assert_eq!(Insn::JumpIfFalse(7).targets(), vec![7]);
        let sw = Insn::TableSwitch { cases: vec![(1, 10), (2, 20)], default: 30 };
        assert_eq!(sw.targets(), vec![10, 20, 30]);
        let mut j = Insn::Jump(5);
        j.map_targets(|t| t + 100);
        assert_eq!(j, Insn::Jump(105));
    }
}
