//! Pre-decoded, flat instruction form for the interpreter hot path.
//!
//! [`Insn`] is the canonical bytecode representation, but it is not `Copy`:
//! `TableSwitch` owns a `Vec` of cases, so a naive fetch loop must
//! `clone()` every instruction it dispatches — an allocation per switch
//! dispatch and a memcpy-plus-branch for everything else. [`DecodedProgram`]
//! is decoded once per [`BProgram`] (and cached alongside the JIT code
//! cache) into [`DInsn`], a bit-for-bit mirror of [`Insn`] whose switch
//! cases live out-of-line in a per-method pool so every decoded
//! instruction is a small `Copy` word pair. String literals are interned
//! as `Rc<String>` at decode time so `SConst` (and the JIT's `ConstS`)
//! is a refcount bump instead of a fresh heap allocation per execution.
//!
//! Decoding is a pure re-layout: there is exactly one [`DInsn`] per
//! [`Insn`] at the same pc, so profiling indices, jump targets, handler
//! ranges, and OSR entry pcs all carry over unchanged. On top of the
//! re-layout, a peephole pass fuses compare-and-branch pairs into
//! [`DInsn::CmpBr`] superinstructions without disturbing the pc layout
//! (see [`DecodedMethod::fuse`]).

use std::rc::Rc;

use crate::insn::{ArrKind, CmpOp, Insn, PrintKind};
use crate::program::{BProgram, ClassId, MethodId, StrId};

/// A `Copy` mirror of [`Insn`]; see the module docs.
///
/// Only `TableSwitch` differs in layout: its cases are stored as a
/// `(start, len)` window into [`DecodedMethod::switch_pool`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DInsn {
    IConst(i32),
    LConst(i64),
    SConst(StrId),
    NullConst,
    Load(u16),
    Store(u16),
    Pop,
    Dup,
    Dup2,
    GetStatic {
        class: ClassId,
        field: u32,
    },
    PutStatic {
        class: ClassId,
        field: u32,
    },
    GetField {
        field: u32,
    },
    PutField {
        field: u32,
    },
    NewObject(ClassId),
    NewArray(ArrKind),
    NewMultiArray {
        kind: ArrKind,
        dims: u8,
    },
    ArrLoad(ArrKind),
    ArrStore(ArrKind),
    ArrLen,
    IAdd,
    ISub,
    IMul,
    IDiv,
    IRem,
    INeg,
    IShl,
    IShr,
    IUshr,
    IAnd,
    IOr,
    IXor,
    LAdd,
    LSub,
    LMul,
    LDiv,
    LRem,
    LNeg,
    LShl,
    LShr,
    LUshr,
    LAnd,
    LOr,
    LXor,
    I2L,
    L2I,
    I2B,
    I2S,
    L2S,
    Bool2S,
    ICmp(CmpOp),
    LCmp(CmpOp),
    /// Superinstruction: an `ICmp`/`LCmp` immediately followed by a
    /// conditional jump, fused into one dispatch (`long_operands` picks
    /// the comparison width). Branches to `target` when the comparison
    /// equals `want`, else falls through to `pc + 2`. The following slot
    /// still holds the original `JumpIfTrue`/`JumpIfFalse`, so jumps
    /// landing there behave exactly as unfused code; the branch's
    /// profile/back-edge pc is `pc + 1`.
    CmpBr {
        op: CmpOp,
        long_operands: bool,
        want: bool,
        target: u32,
    },
    RefEq,
    RefNe,
    SConcat,
    Jump(u32),
    JumpIfTrue(u32),
    JumpIfFalse(u32),
    /// `cases_start..cases_start + cases_len` indexes the owning method's
    /// [`DecodedMethod::switch_pool`].
    TableSwitch {
        cases_start: u32,
        cases_len: u32,
        default: u32,
    },
    InvokeStatic(MethodId),
    InvokeInstance(MethodId),
    Return,
    ReturnVal,
    ThrowUser,
    Rethrow(u16),
    Println(PrintKind),
    Mute,
    Unmute,
}

/// One method's code in decoded form.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedMethod {
    /// One [`DInsn`] per bytecode instruction, same pcs as `BMethod::code`.
    pub code: Vec<DInsn>,
    /// Flattened `TableSwitch` cases for this method, windowed by
    /// [`DInsn::TableSwitch`].
    pub switch_pool: Vec<(i32, u32)>,
}

impl DecodedMethod {
    /// Decodes one method's code; a pure re-layout plus the
    /// [`DecodedMethod::fuse`] peephole. Public so content-addressed
    /// caches can decode (and share) single methods across programs.
    pub fn decode(code: &[Insn]) -> DecodedMethod {
        let mut switch_pool: Vec<(i32, u32)> = Vec::new();
        let decoded = code
            .iter()
            .map(|insn| match *insn {
                Insn::IConst(v) => DInsn::IConst(v),
                Insn::LConst(v) => DInsn::LConst(v),
                Insn::SConst(s) => DInsn::SConst(s),
                Insn::NullConst => DInsn::NullConst,
                Insn::Load(slot) => DInsn::Load(slot),
                Insn::Store(slot) => DInsn::Store(slot),
                Insn::Pop => DInsn::Pop,
                Insn::Dup => DInsn::Dup,
                Insn::Dup2 => DInsn::Dup2,
                Insn::GetStatic { class, field } => DInsn::GetStatic { class, field },
                Insn::PutStatic { class, field } => DInsn::PutStatic { class, field },
                Insn::GetField { field } => DInsn::GetField { field },
                Insn::PutField { field } => DInsn::PutField { field },
                Insn::NewObject(class) => DInsn::NewObject(class),
                Insn::NewArray(kind) => DInsn::NewArray(kind),
                Insn::NewMultiArray { kind, dims } => DInsn::NewMultiArray { kind, dims },
                Insn::ArrLoad(kind) => DInsn::ArrLoad(kind),
                Insn::ArrStore(kind) => DInsn::ArrStore(kind),
                Insn::ArrLen => DInsn::ArrLen,
                Insn::IAdd => DInsn::IAdd,
                Insn::ISub => DInsn::ISub,
                Insn::IMul => DInsn::IMul,
                Insn::IDiv => DInsn::IDiv,
                Insn::IRem => DInsn::IRem,
                Insn::INeg => DInsn::INeg,
                Insn::IShl => DInsn::IShl,
                Insn::IShr => DInsn::IShr,
                Insn::IUshr => DInsn::IUshr,
                Insn::IAnd => DInsn::IAnd,
                Insn::IOr => DInsn::IOr,
                Insn::IXor => DInsn::IXor,
                Insn::LAdd => DInsn::LAdd,
                Insn::LSub => DInsn::LSub,
                Insn::LMul => DInsn::LMul,
                Insn::LDiv => DInsn::LDiv,
                Insn::LRem => DInsn::LRem,
                Insn::LNeg => DInsn::LNeg,
                Insn::LShl => DInsn::LShl,
                Insn::LShr => DInsn::LShr,
                Insn::LUshr => DInsn::LUshr,
                Insn::LAnd => DInsn::LAnd,
                Insn::LOr => DInsn::LOr,
                Insn::LXor => DInsn::LXor,
                Insn::I2L => DInsn::I2L,
                Insn::L2I => DInsn::L2I,
                Insn::I2B => DInsn::I2B,
                Insn::I2S => DInsn::I2S,
                Insn::L2S => DInsn::L2S,
                Insn::Bool2S => DInsn::Bool2S,
                Insn::ICmp(op) => DInsn::ICmp(op),
                Insn::LCmp(op) => DInsn::LCmp(op),
                Insn::RefEq => DInsn::RefEq,
                Insn::RefNe => DInsn::RefNe,
                Insn::SConcat => DInsn::SConcat,
                Insn::Jump(t) => DInsn::Jump(t),
                Insn::JumpIfTrue(t) => DInsn::JumpIfTrue(t),
                Insn::JumpIfFalse(t) => DInsn::JumpIfFalse(t),
                Insn::TableSwitch { ref cases, default } => {
                    let cases_start = switch_pool.len() as u32;
                    switch_pool.extend_from_slice(cases);
                    DInsn::TableSwitch { cases_start, cases_len: cases.len() as u32, default }
                }
                Insn::InvokeStatic(id) => DInsn::InvokeStatic(id),
                Insn::InvokeInstance(id) => DInsn::InvokeInstance(id),
                Insn::Return => DInsn::Return,
                Insn::ReturnVal => DInsn::ReturnVal,
                Insn::ThrowUser => DInsn::ThrowUser,
                Insn::Rethrow(slot) => DInsn::Rethrow(slot),
                Insn::Println(kind) => DInsn::Println(kind),
                Insn::Mute => DInsn::Mute,
                Insn::Unmute => DInsn::Unmute,
            })
            .collect();
        let mut method = DecodedMethod { code: decoded, switch_pool };
        method.fuse();
        method
    }

    /// Peephole superinstruction pass: rewrites each `ICmp`/`LCmp` whose
    /// successor is a conditional jump into [`DInsn::CmpBr`], saving one
    /// dispatch per compare-and-branch — the once-per-iteration pattern
    /// of every counted loop.
    ///
    /// Fusion is unconditionally sound because it never disturbs the 1:1
    /// pc layout: the successor slot keeps its original `JumpIfTrue`/
    /// `JumpIfFalse`, so control transfers into the middle of a fused
    /// pair execute the plain branch, and only straight-line execution
    /// (which by construction just ran the comparison) takes the fused
    /// fast path. Neither fused instruction can raise, so exception
    /// handler ranges are unaffected.
    fn fuse(&mut self) {
        for pc in 0..self.code.len().saturating_sub(1) {
            let (op, long_operands) = match self.code[pc] {
                DInsn::ICmp(op) => (op, false),
                DInsn::LCmp(op) => (op, true),
                _ => continue,
            };
            let (want, target) = match self.code[pc + 1] {
                DInsn::JumpIfTrue(target) => (true, target),
                DInsn::JumpIfFalse(target) => (false, target),
                _ => continue,
            };
            self.code[pc] = DInsn::CmpBr { op, long_operands, want, target };
        }
    }

    /// The case window of the `TableSwitch` described by `(start, len)`.
    pub fn switch_cases(&self, cases_start: u32, cases_len: u32) -> &[(i32, u32)] {
        &self.switch_pool[cases_start as usize..(cases_start + cases_len) as usize]
    }
}

/// A whole program in decoded form, plus its interned string pool.
///
/// Not `Send`: the interned strings are `Rc`, matching the deliberately
/// single-threaded JIT artifact cache this is cached next to (each campaign
/// worker thread decodes its own copy).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedProgram {
    /// Per-method decoded code, refcounted so a content-addressed cache
    /// can share unchanged methods across near-identical programs.
    pub methods: Vec<Rc<DecodedMethod>>,
    /// String literal pool, interned once; indexed by [`StrId`].
    pub strings: Vec<Rc<String>>,
}

impl DecodedProgram {
    /// Decodes every method of `program`; a pure re-layout, see module docs.
    pub fn decode(program: &BProgram) -> DecodedProgram {
        DecodedProgram {
            methods: program
                .methods
                .iter()
                .map(|m| Rc::new(DecodedMethod::decode(&m.code)))
                .collect(),
            strings: program.strings.iter().map(|s| Rc::new(s.clone())).collect(),
        }
    }

    /// Looks up a method's decoded code.
    pub fn method(&self, id: MethodId) -> &DecodedMethod {
        &self.methods[id.0 as usize]
    }

    /// The interned literal for `id`.
    pub fn string(&self, id: StrId) -> &Rc<String> {
        &self.strings[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dinsn_is_small_and_copy() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<DInsn>();
        assert!(std::mem::size_of::<DInsn>() <= 16, "DInsn grew past 16 bytes");
    }

    #[test]
    fn loops_fuse_compare_and_branch() {
        let program = cse_lang::parse_and_check(
            "class T { static void main() { int s = 0; \
             for (int i = 0; i < 9; i++) { s = s + i; } println(s); } }",
        )
        .unwrap();
        let compiled = crate::compile(&program).unwrap();
        let decoded = DecodedProgram::decode(&compiled);
        let main = &decoded.methods[compiled.find_method("T", "main").unwrap().0 as usize];
        let fused: Vec<usize> = main
            .code
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, DInsn::CmpBr { .. }))
            .map(|(pc, _)| pc)
            .collect();
        assert!(!fused.is_empty(), "loop condition must fuse: {:?}", main.code);
        for pc in fused {
            // The successor slot keeps the plain branch so jumps into the
            // middle of the pair still work.
            assert!(
                matches!(main.code[pc + 1], DInsn::JumpIfTrue(_) | DInsn::JumpIfFalse(_)),
                "slot after a fused pair must keep the original branch"
            );
        }
    }

    #[test]
    fn decode_is_a_pure_relayout() {
        let program = cse_lang::parse_and_check(
            "class T { static void main() { int i = 0; int s = 0; \
             while (i < 5) { switch (i) { case 0: s = s + 1; break; \
             case 3: s = s + 10; break; default: s = s + 100; } i = i + 1; } \
             println(\"s=\" + s); } }",
        )
        .unwrap();
        let compiled = crate::compile(&program).unwrap();
        let decoded = DecodedProgram::decode(&compiled);
        assert_eq!(decoded.methods.len(), compiled.methods.len());
        assert_eq!(decoded.strings.len(), compiled.strings.len());
        for (bm, dm) in compiled.methods.iter().zip(&decoded.methods) {
            assert_eq!(bm.code.len(), dm.code.len(), "{}: pc mapping must be 1:1", bm.name);
            for (pc, (insn, dinsn)) in bm.code.iter().zip(&dm.code).enumerate() {
                match (insn, dinsn) {
                    (
                        Insn::TableSwitch { cases, default },
                        DInsn::TableSwitch { cases_start, cases_len, default: ddefault },
                    ) => {
                        assert_eq!(dm.switch_cases(*cases_start, *cases_len), cases.as_slice());
                        assert_eq!(ddefault, default);
                    }
                    (Insn::Jump(t), DInsn::Jump(dt)) => assert_eq!(t, dt),
                    (
                        Insn::ICmp(op) | Insn::LCmp(op),
                        DInsn::CmpBr { op: dop, long_operands, want, target },
                    ) => {
                        assert_eq!(op, dop);
                        assert_eq!(*long_operands, matches!(insn, Insn::LCmp(_)));
                        // A fused pair: the next slot must hold the matching
                        // unfused branch.
                        match (&bm.code[pc + 1], want) {
                            (Insn::JumpIfTrue(t), true) | (Insn::JumpIfFalse(t), false) => {
                                assert_eq!(t, target);
                            }
                            other => panic!("bad fusion at pc {pc}: {other:?}"),
                        }
                    }
                    (Insn::SConst(s), DInsn::SConst(ds)) => {
                        assert_eq!(s, ds);
                        assert_eq!(
                            decoded.string(*ds).as_str(),
                            compiled.strings[s.0 as usize].as_str()
                        );
                    }
                    // Every other variant carries the same payload in both
                    // forms, so the Debug renderings must match exactly.
                    _ => assert_eq!(format!("{insn:?}"), format!("{dinsn:?}"), "pc {pc}"),
                }
            }
        }
    }
}
