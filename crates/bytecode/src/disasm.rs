//! Human-readable bytecode listings, for debugging and bug reports.

use crate::insn::Insn;
use crate::program::{BMethod, BProgram, MethodId};

/// Disassembles a whole program.
pub fn disasm_program(program: &BProgram) -> String {
    let mut out = String::new();
    for (idx, method) in program.methods.iter().enumerate() {
        out.push_str(&disasm_method(program, MethodId(idx as u32), method));
        out.push('\n');
    }
    out
}

/// Disassembles a single method.
pub fn disasm_method(program: &BProgram, id: MethodId, method: &BMethod) -> String {
    let mut out = String::new();
    let params: Vec<String> = method.params.iter().map(|t| t.to_string()).collect();
    out.push_str(&format!(
        "{} {}({}) [{} locals]{}\n",
        method.ret,
        program.qualified_name(id),
        params.join(", "),
        method.num_locals,
        if method.is_static { " static" } else { "" },
    ));
    for (pc, insn) in method.code.iter().enumerate() {
        let marker = if method.loop_headers.contains(&(pc as u32)) { "*" } else { " " };
        out.push_str(&format!("  {marker}{pc:4}: {}\n", render(program, insn)));
    }
    for handler in &method.handlers {
        out.push_str(&format!(
            "  handler [{}, {}) -> {}{}\n",
            handler.start,
            handler.end,
            handler.target,
            handler.save_slot.map(|s| format!(" (save {s})")).unwrap_or_default()
        ));
    }
    out
}

fn render(program: &BProgram, insn: &Insn) -> String {
    match insn {
        Insn::SConst(id) => format!("SConst {:?}", program.strings[id.0 as usize]),
        Insn::InvokeStatic(id) => format!("InvokeStatic {}", program.qualified_name(*id)),
        Insn::InvokeInstance(id) => format!("InvokeInstance {}", program.qualified_name(*id)),
        Insn::GetStatic { class, field } => {
            let c = &program.classes[class.0 as usize];
            format!("GetStatic {}.{}", c.name, c.static_fields[*field as usize].name)
        }
        Insn::PutStatic { class, field } => {
            let c = &program.classes[class.0 as usize];
            format!("PutStatic {}.{}", c.name, c.static_fields[*field as usize].name)
        }
        Insn::NewObject(class) => format!("NewObject {}", program.classes[class.0 as usize].name),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn disassembles_without_panicking() {
        let program = cse_lang::parse_and_check(
            r#"
            class T {
                static int s = 3;
                int f = 4;
                static int twice(int x) { return x * 2; }
                int get() { return f; }
                static void main() {
                    T t = new T();
                    println(twice(t.get()) + T.s + "!");
                }
            }
            "#,
        )
        .unwrap();
        let compiled = compile(&program).unwrap();
        let text = disasm_program(&compiled);
        assert!(text.contains("T.twice"));
        assert!(text.contains("T.$init"));
        assert!(text.contains("T.$clinit"));
        assert!(text.contains("InvokeStatic T.twice"));
        assert!(text.contains("PutStatic T.s"));
    }
}
