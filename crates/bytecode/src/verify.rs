//! Bytecode verification by abstract interpretation.
//!
//! The verifier proves the stack discipline the interpreter and the JIT's
//! IR builder rely on: every pc has a consistent stack shape regardless of
//! the path that reaches it, slots are in range, branch targets are valid,
//! exception handlers are entered with an empty stack, and control never
//! falls off the end of the code.

use cse_lang::Ty;

use crate::insn::{ArrKind, Insn, PrintKind};
use crate::program::{BMethod, BProgram};

/// Verification error with method context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub method: String,
    pub pc: u32,
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @{}: {}", self.method, self.pc, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Abstract value categories tracked on the verification stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AType {
    /// int / byte / boolean.
    I,
    /// long.
    L,
    /// string (possibly null).
    S,
    /// object or array reference (possibly null).
    R,
    /// the `null` constant — joins with S and R.
    Null,
    /// statically unknown (field loads); merges with anything.
    Any,
}

impl AType {
    fn merge(self, other: AType) -> Option<AType> {
        use AType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Null, S) | (S, Null) => Some(S),
            (Null, R) | (R, Null) => Some(R),
            (Any, _) | (_, Any) => Some(Any),
            _ => None,
        }
    }

    fn of_ty(ty: &Ty) -> AType {
        match ty {
            Ty::Int | Ty::Byte | Ty::Bool => AType::I,
            Ty::Long => AType::L,
            Ty::Str => AType::S,
            _ => AType::R,
        }
    }

    fn of_elem(kind: ArrKind) -> AType {
        match kind {
            ArrKind::I32 | ArrKind::I8 | ArrKind::Bool => AType::I,
            ArrKind::I64 => AType::L,
            ArrKind::Str => AType::S,
            ArrKind::Ref => AType::R,
        }
    }

    fn is_ref_like(self) -> bool {
        matches!(self, AType::R | AType::S | AType::Null | AType::Any)
    }
}

/// Verifies every method of the program.
pub fn verify_program(program: &BProgram) -> Result<(), VerifyError> {
    for (idx, method) in program.methods.iter().enumerate() {
        verify_method(program, method).map_err(|mut e| {
            e.method = program.qualified_name(crate::program::MethodId(idx as u32));
            e
        })?;
    }
    Ok(())
}

/// Verifies a single method.
pub fn verify_method(program: &BProgram, method: &BMethod) -> Result<(), VerifyError> {
    Verifier { program, method }.run()
}

struct Verifier<'a> {
    program: &'a BProgram,
    method: &'a BMethod,
}

impl Verifier<'_> {
    fn err(&self, pc: u32, message: impl Into<String>) -> VerifyError {
        VerifyError { method: String::new(), pc, message: message.into() }
    }

    fn run(&self) -> Result<(), VerifyError> {
        let code = &self.method.code;
        if code.is_empty() {
            return Err(self.err(0, "empty code"));
        }
        if !code.last().map(Insn::is_terminator).unwrap_or(false)
            && !matches!(code.last(), Some(Insn::Return | Insn::ReturnVal))
        {
            return Err(self.err(code.len() as u32 - 1, "code may fall off the end"));
        }
        let mut states: Vec<Option<Vec<AType>>> = vec![None; code.len()];
        let mut worklist: Vec<u32> = vec![0];
        states[0] = Some(Vec::new());
        // Exception handler entries start with an empty stack.
        for handler in &self.method.handlers {
            if handler.target as usize >= code.len()
                || handler.start as usize >= code.len()
                || handler.end as usize > code.len()
                || handler.start >= handler.end
            {
                return Err(self.err(handler.target, "handler range out of bounds"));
            }
            if let Some(slot) = handler.save_slot {
                if slot >= self.method.num_locals {
                    return Err(self.err(handler.target, "handler save slot out of range"));
                }
            }
            if states[handler.target as usize].is_none() {
                states[handler.target as usize] = Some(Vec::new());
                worklist.push(handler.target);
            }
        }
        // Scratch buffers reused across the whole fixpoint loop: the
        // verifier runs over every compiled mutant, so its inner loop
        // stays allocation-free.
        let mut stack: Vec<AType> = Vec::new();
        let mut succs: Vec<u32> = Vec::new();
        while let Some(pc) = worklist.pop() {
            stack.clear();
            stack.extend_from_slice(
                states[pc as usize].as_deref().expect("worklist entries have state"),
            );
            let insn = &code[pc as usize];
            self.step(pc, insn, &mut stack)?;
            // Propagate to successors.
            succs.clear();
            insn.collect_targets(&mut succs);
            let falls_through = !insn.is_terminator();
            if falls_through {
                succs.push(pc + 1);
            }
            for &succ in &succs {
                if succ as usize >= code.len() {
                    return Err(self.err(pc, format!("branch target {succ} out of range")));
                }
                match &states[succ as usize] {
                    None => {
                        states[succ as usize] = Some(stack.clone());
                        worklist.push(succ);
                    }
                    Some(existing) => {
                        if existing.len() != stack.len() {
                            return Err(self.err(
                                pc,
                                format!(
                                    "stack height mismatch at {succ}: {} vs {}",
                                    existing.len(),
                                    stack.len()
                                ),
                            ));
                        }
                        let mut merged = Vec::with_capacity(stack.len());
                        let mut changed = false;
                        for (a, b) in existing.iter().zip(&stack) {
                            let m = a.merge(*b).ok_or_else(|| {
                                self.err(
                                    pc,
                                    format!("stack type mismatch at {succ}: {a:?} vs {b:?}"),
                                )
                            })?;
                            if m != *a {
                                changed = true;
                            }
                            merged.push(m);
                        }
                        if changed {
                            states[succ as usize] = Some(merged);
                            worklist.push(succ);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn pop(&self, pc: u32, stack: &mut Vec<AType>) -> Result<AType, VerifyError> {
        stack.pop().ok_or_else(|| self.err(pc, "stack underflow"))
    }

    fn pop_expect(&self, pc: u32, stack: &mut Vec<AType>, want: AType) -> Result<(), VerifyError> {
        let got = self.pop(pc, stack)?;
        if got != AType::Any && got.merge(want).is_none() {
            return Err(self.err(pc, format!("expected {want:?}, found {got:?}")));
        }
        Ok(())
    }

    fn pop_ref(&self, pc: u32, stack: &mut Vec<AType>) -> Result<(), VerifyError> {
        let got = self.pop(pc, stack)?;
        if !got.is_ref_like() {
            return Err(self.err(pc, format!("expected reference, found {got:?}")));
        }
        Ok(())
    }

    fn check_slot(&self, pc: u32, slot: u16) -> Result<(), VerifyError> {
        if slot >= self.method.num_locals {
            return Err(self.err(pc, format!("local slot {slot} out of range")));
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn step(&self, pc: u32, insn: &Insn, stack: &mut Vec<AType>) -> Result<(), VerifyError> {
        use AType::*;
        match insn {
            Insn::IConst(_) => stack.push(I),
            Insn::LConst(_) => stack.push(L),
            Insn::SConst(id) => {
                if id.0 as usize >= self.program.strings.len() {
                    return Err(self.err(pc, "string id out of range"));
                }
                stack.push(S);
            }
            Insn::NullConst => stack.push(Null),
            Insn::Load(slot) => {
                self.check_slot(pc, *slot)?;
                // Slot types are dynamic; treat as unknown by deriving from
                // the declared local type when available.
                let ty = self
                    .method
                    .local_types
                    .get(*slot as usize)
                    .and_then(|t| t.as_ref())
                    .map(AType::of_ty)
                    .unwrap_or(AType::Any);
                stack.push(ty);
            }
            Insn::Store(slot) => {
                self.check_slot(pc, *slot)?;
                self.pop(pc, stack)?;
            }
            Insn::Pop => {
                self.pop(pc, stack)?;
            }
            Insn::Dup => {
                let top = *stack.last().ok_or_else(|| self.err(pc, "stack underflow"))?;
                stack.push(top);
            }
            Insn::Dup2 => {
                if stack.len() < 2 {
                    return Err(self.err(pc, "stack underflow"));
                }
                let b = stack[stack.len() - 1];
                let a = stack[stack.len() - 2];
                stack.push(a);
                stack.push(b);
            }
            Insn::GetStatic { class, field } => {
                let class_def = self
                    .program
                    .classes
                    .get(class.0 as usize)
                    .ok_or_else(|| self.err(pc, "class id out of range"))?;
                let field_def = class_def
                    .static_fields
                    .get(*field as usize)
                    .ok_or_else(|| self.err(pc, "static field out of range"))?;
                stack.push(AType::of_ty(&field_def.ty));
            }
            Insn::PutStatic { class, field } => {
                let class_def = self
                    .program
                    .classes
                    .get(class.0 as usize)
                    .ok_or_else(|| self.err(pc, "class id out of range"))?;
                let field_def = class_def
                    .static_fields
                    .get(*field as usize)
                    .ok_or_else(|| self.err(pc, "static field out of range"))?;
                self.pop_expect(pc, stack, AType::of_ty(&field_def.ty))?;
            }
            Insn::GetField { .. } => {
                self.pop_ref(pc, stack)?;
                // The verifier does not track receiver classes, so a field
                // load has a statically unknown category.
                stack.push(Any);
            }
            Insn::PutField { .. } => {
                self.pop(pc, stack)?;
                self.pop_ref(pc, stack)?;
            }
            Insn::NewObject(class) => {
                if class.0 as usize >= self.program.classes.len() {
                    return Err(self.err(pc, "class id out of range"));
                }
                stack.push(R);
            }
            Insn::NewArray(_) => {
                self.pop_expect(pc, stack, I)?;
                stack.push(R);
            }
            Insn::NewMultiArray { dims, .. } => {
                if *dims < 2 {
                    return Err(self.err(pc, "multiarray needs at least 2 dims"));
                }
                for _ in 0..*dims {
                    self.pop_expect(pc, stack, I)?;
                }
                stack.push(R);
            }
            Insn::ArrLoad(kind) => {
                self.pop_expect(pc, stack, I)?;
                self.pop_ref(pc, stack)?;
                stack.push(AType::of_elem(*kind));
            }
            Insn::ArrStore(kind) => {
                self.pop_expect(pc, stack, AType::of_elem(*kind))?;
                self.pop_expect(pc, stack, I)?;
                self.pop_ref(pc, stack)?;
            }
            Insn::ArrLen => {
                self.pop_ref(pc, stack)?;
                stack.push(I);
            }
            Insn::IAdd
            | Insn::ISub
            | Insn::IMul
            | Insn::IDiv
            | Insn::IRem
            | Insn::IShl
            | Insn::IShr
            | Insn::IUshr
            | Insn::IAnd
            | Insn::IOr
            | Insn::IXor => {
                self.pop_expect(pc, stack, I)?;
                self.pop_expect(pc, stack, I)?;
                stack.push(I);
            }
            Insn::INeg => {
                self.pop_expect(pc, stack, I)?;
                stack.push(I);
            }
            Insn::LAdd
            | Insn::LSub
            | Insn::LMul
            | Insn::LDiv
            | Insn::LRem
            | Insn::LAnd
            | Insn::LOr
            | Insn::LXor => {
                self.pop_expect(pc, stack, L)?;
                self.pop_expect(pc, stack, L)?;
                stack.push(L);
            }
            Insn::LShl | Insn::LShr | Insn::LUshr => {
                self.pop_expect(pc, stack, I)?;
                self.pop_expect(pc, stack, L)?;
                stack.push(L);
            }
            Insn::LNeg => {
                self.pop_expect(pc, stack, L)?;
                stack.push(L);
            }
            Insn::I2L => {
                self.pop_expect(pc, stack, I)?;
                stack.push(L);
            }
            Insn::L2I => {
                self.pop_expect(pc, stack, L)?;
                stack.push(I);
            }
            Insn::I2B => {
                self.pop_expect(pc, stack, I)?;
                stack.push(I);
            }
            Insn::I2S => {
                self.pop_expect(pc, stack, I)?;
                stack.push(S);
            }
            Insn::L2S => {
                self.pop_expect(pc, stack, L)?;
                stack.push(S);
            }
            Insn::Bool2S => {
                self.pop_expect(pc, stack, I)?;
                stack.push(S);
            }
            Insn::ICmp(_) => {
                self.pop_expect(pc, stack, I)?;
                self.pop_expect(pc, stack, I)?;
                stack.push(I);
            }
            Insn::LCmp(_) => {
                self.pop_expect(pc, stack, L)?;
                self.pop_expect(pc, stack, L)?;
                stack.push(I);
            }
            Insn::RefEq | Insn::RefNe => {
                self.pop_ref(pc, stack)?;
                self.pop_ref(pc, stack)?;
                stack.push(I);
            }
            Insn::SConcat => {
                self.pop_expect(pc, stack, S)?;
                self.pop_expect(pc, stack, S)?;
                stack.push(S);
            }
            Insn::Jump(_) => {}
            Insn::JumpIfTrue(_) | Insn::JumpIfFalse(_) => {
                self.pop_expect(pc, stack, I)?;
            }
            Insn::TableSwitch { .. } => {
                self.pop_expect(pc, stack, I)?;
            }
            Insn::InvokeStatic(id) | Insn::InvokeInstance(id) => {
                let callee = self
                    .program
                    .methods
                    .get(id.0 as usize)
                    .ok_or_else(|| self.err(pc, "method id out of range"))?;
                for param in callee.params.iter().rev() {
                    self.pop_expect(pc, stack, AType::of_ty(param))?;
                }
                if matches!(insn, Insn::InvokeInstance(_)) {
                    if callee.is_static {
                        return Err(self.err(pc, "InvokeInstance on a static method"));
                    }
                    self.pop_ref(pc, stack)?;
                } else if !callee.is_static {
                    return Err(self.err(pc, "InvokeStatic on an instance method"));
                }
                if callee.ret != Ty::Void {
                    stack.push(AType::of_ty(&callee.ret));
                }
            }
            Insn::Return => {
                if self.method.ret != Ty::Void {
                    return Err(self.err(pc, "Return in a non-void method"));
                }
                if !stack.is_empty() {
                    return Err(self.err(pc, "Return with a non-empty stack"));
                }
            }
            Insn::ReturnVal => {
                if self.method.ret == Ty::Void {
                    return Err(self.err(pc, "ReturnVal in a void method"));
                }
                self.pop_expect(pc, stack, AType::of_ty(&self.method.ret.clone()))?;
                if !stack.is_empty() {
                    return Err(self.err(pc, "ReturnVal with extra stack values"));
                }
            }
            Insn::ThrowUser => {
                self.pop_expect(pc, stack, I)?;
            }
            Insn::Rethrow(slot) => {
                self.check_slot(pc, *slot)?;
            }
            Insn::Println(kind) => match kind {
                PrintKind::Int | PrintKind::Bool => self.pop_expect(pc, stack, I)?,
                PrintKind::Long => self.pop_expect(pc, stack, L)?,
                PrintKind::Str => self.pop_expect(pc, stack, S)?,
            },
            Insn::Mute | Insn::Unmute => {}
        }
        Ok(())
    }
}
