//! The compiled program representation consumed by the VM.

use cse_lang::Ty;

use crate::insn::Insn;

/// Index of a class in [`BProgram::classes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Index of a method in [`BProgram::methods`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u32);

/// Index of a string in [`BProgram::strings`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrId(pub u32);

/// Index of a field within its class (static and instance fields are
/// numbered separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldId(pub u32);

/// Exception kinds. MiniJava has a single flat exception "hierarchy": the
/// built-in runtime exceptions plus user exceptions carrying an `int` code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExcKind {
    Arithmetic,
    IndexOutOfBounds,
    NegativeArraySize,
    NullPointer,
    StackOverflow,
    User,
}

impl ExcKind {
    /// The message printed for an uncaught exception of this kind.
    pub fn describe(self, code: i32) -> String {
        match self {
            ExcKind::Arithmetic => "ArithmeticException: / by zero".to_string(),
            ExcKind::IndexOutOfBounds => format!("ArrayIndexOutOfBoundsException: {code}"),
            ExcKind::NegativeArraySize => format!("NegativeArraySizeException: {code}"),
            ExcKind::NullPointer => "NullPointerException".to_string(),
            ExcKind::StackOverflow => "StackOverflowError".to_string(),
            ExcKind::User => format!("UserException: {code}"),
        }
    }

    /// Packs the kind and code into an `i64` so an in-flight exception can
    /// be parked in a local slot by `finally` lowering.
    pub fn pack(self, code: i32) -> i64 {
        let tag = match self {
            ExcKind::Arithmetic => 0i64,
            ExcKind::IndexOutOfBounds => 1,
            ExcKind::NegativeArraySize => 2,
            ExcKind::NullPointer => 3,
            ExcKind::StackOverflow => 4,
            ExcKind::User => 5,
        };
        (tag << 32) | (code as u32 as i64)
    }

    /// Inverse of [`ExcKind::pack`].
    pub fn unpack(packed: i64) -> (ExcKind, i32) {
        let kind = match packed >> 32 {
            0 => ExcKind::Arithmetic,
            1 => ExcKind::IndexOutOfBounds,
            2 => ExcKind::NegativeArraySize,
            3 => ExcKind::NullPointer,
            4 => ExcKind::StackOverflow,
            _ => ExcKind::User,
        };
        (kind, packed as u32 as i32)
    }
}

/// An exception-table entry: if an exception is raised at
/// `start <= pc < end`, control transfers to `target` with an empty operand
/// stack. Entries are searched in order; the compiler emits inner regions
/// before outer ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handler {
    pub start: u32,
    pub end: u32,
    pub target: u32,
    /// When set, the dispatched exception is packed (see [`ExcKind::pack`])
    /// into this local before control transfers — used by `finally` regions
    /// that must re-raise via [`Insn::Rethrow`].
    pub save_slot: Option<u16>,
}

/// A field of a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BField {
    pub name: String,
    pub ty: Ty,
}

/// A compiled class.
#[derive(Debug, Clone, PartialEq)]
pub struct BClass {
    pub name: String,
    pub static_fields: Vec<BField>,
    pub inst_fields: Vec<BField>,
    /// Synthetic `$init` instance method running field initializers, if any.
    pub init: Option<MethodId>,
    /// All method ids declared by this class (including synthetic ones).
    pub methods: Vec<MethodId>,
}

/// A compiled method.
#[derive(Debug, Clone, PartialEq)]
pub struct BMethod {
    pub name: String,
    pub class: ClassId,
    pub is_static: bool,
    /// Parameter types, excluding the implicit `this`.
    pub params: Vec<Ty>,
    pub ret: Ty,
    /// Total local slots (params — plus `this` for instance methods — first).
    pub num_locals: u16,
    /// Static type of each local slot where known (`None` for the internal
    /// exception-save slots introduced by `finally` lowering).
    pub local_types: Vec<Option<Ty>>,
    pub code: Vec<Insn>,
    pub handlers: Vec<Handler>,
    /// Unique back-edge target pcs (loop headers), in ascending order.
    /// The position in this vector is the loop's back-edge counter index —
    /// the `c_1 .. c_M` of the paper's Definition 3.2.
    pub loop_headers: Vec<u32>,
}

impl BMethod {
    /// The back-edge counter index for a branch from `from` to `to`, or
    /// `None` when the branch is not a back-edge.
    pub fn back_edge_index(&self, from: u32, to: u32) -> Option<usize> {
        if to <= from {
            self.loop_headers.binary_search(&to).ok()
        } else {
            None
        }
    }

    /// Number of argument slots including the implicit receiver.
    pub fn arg_slots(&self) -> usize {
        self.params.len() + usize::from(!self.is_static)
    }

    /// Computes and stores [`BMethod::loop_headers`] from the code.
    pub fn compute_loop_headers(&mut self) {
        let mut headers: Vec<u32> = Vec::new();
        for (pc, insn) in self.code.iter().enumerate() {
            for target in insn.targets() {
                if target <= pc as u32 {
                    headers.push(target);
                }
            }
        }
        headers.sort_unstable();
        headers.dedup();
        self.loop_headers = headers;
    }
}

/// A compiled program.
#[derive(Debug, Clone, PartialEq)]
pub struct BProgram {
    pub classes: Vec<BClass>,
    pub methods: Vec<BMethod>,
    /// String literal pool.
    pub strings: Vec<String>,
    /// `static void main()`.
    pub entry: MethodId,
    /// Synthetic static-initializer method run before `main`, if any
    /// class declares static field initializers.
    pub clinit: Option<MethodId>,
}

impl BProgram {
    /// Looks up a method.
    pub fn method(&self, id: MethodId) -> &BMethod {
        &self.methods[id.0 as usize]
    }

    /// Looks up a class.
    pub fn class(&self, id: ClassId) -> &BClass {
        &self.classes[id.0 as usize]
    }

    /// Finds a method id by class and method name.
    pub fn find_method(&self, class: &str, method: &str) -> Option<MethodId> {
        self.methods
            .iter()
            .position(|m| m.name == method && self.classes[m.class.0 as usize].name == class)
            .map(|i| MethodId(i as u32))
    }

    /// A human-readable method name `Class.method`.
    pub fn qualified_name(&self, id: MethodId) -> String {
        let m = self.method(id);
        format!("{}.{}", self.class(m.class).name, m.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exc_pack_round_trip() {
        for kind in [
            ExcKind::Arithmetic,
            ExcKind::IndexOutOfBounds,
            ExcKind::NegativeArraySize,
            ExcKind::NullPointer,
            ExcKind::StackOverflow,
            ExcKind::User,
        ] {
            for code in [0, 1, -1, i32::MAX, i32::MIN] {
                assert_eq!(ExcKind::unpack(kind.pack(code)), (kind, code));
            }
        }
    }

    #[test]
    fn loop_headers_from_back_edges() {
        let mut method = BMethod {
            name: "m".into(),
            class: ClassId(0),
            is_static: true,
            params: vec![],
            ret: Ty::Void,
            num_locals: 0,
            local_types: vec![],
            code: vec![
                Insn::IConst(0),     // 0
                Insn::Jump(3),       // 1 (forward)
                Insn::Jump(0),       // 2 (back to 0)
                Insn::JumpIfTrue(2), // 3 (back to 2)
                Insn::Return,        // 4
            ],
            handlers: vec![],
            loop_headers: vec![],
        };
        method.compute_loop_headers();
        assert_eq!(method.loop_headers, vec![0, 2]);
        assert_eq!(method.back_edge_index(2, 0), Some(0));
        assert_eq!(method.back_edge_index(3, 2), Some(1));
        assert_eq!(method.back_edge_index(1, 3), None);
    }
}
