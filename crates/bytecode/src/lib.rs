//! Stack bytecode for the MiniJava virtual machine.
//!
//! This crate plays `javac`'s role: it lowers a checked
//! [`cse_lang::Program`] into a compact stack-machine bytecode
//! ([`BProgram`]) that the VM interprets, profiles, and JIT-compiles.
//! Field initializers become synthetic `$clinit`/`$init` methods that are
//! profiled and JIT-compiled like ordinary code, and `try`/`finally` is
//! lowered by duplicating the finally block on every exit edge (with
//! front-end restrictions that forbid jumps escaping a `finally` region).
//!
//! # Examples
//!
//! ```
//! let program = cse_lang::parse_and_check(
//!     "class T { static void main() { println(2 + 3); } }",
//! ).unwrap();
//! let compiled = cse_bytecode::compile(&program).unwrap();
//! assert!(compiled.methods.len() >= 1);
//! cse_bytecode::verify::verify_program(&compiled).unwrap();
//! ```

#![forbid(unsafe_code)]

pub mod compile;
pub mod decoded;
pub mod digest;
pub mod disasm;
pub mod insn;
pub mod program;
pub mod verify;

pub use compile::compile;
pub use decoded::{DInsn, DecodedMethod, DecodedProgram};
pub use digest::{MethodDigest, ProgramDigests};
pub use insn::{ArrKind, CmpOp, Insn, PrintKind};
pub use program::{BClass, BMethod, BProgram, ClassId, ExcKind, FieldId, Handler, MethodId, StrId};
