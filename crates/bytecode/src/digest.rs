//! Content-addressed structural digests for methods and programs.
//!
//! JoNM mutants differ from their seed in exactly one method body, so a
//! campaign re-compiles and re-decodes thousands of methods that are
//! byte-for-byte unchanged — they merely live in a different [`BProgram`].
//! This module assigns every method a *stable structural digest* that is
//! identical whenever the method would behave identically, letting caches
//! upstream (the JIT code cache, the decode cache, execution memoization)
//! share work across program boundaries.
//!
//! # The two layers
//!
//! Each method gets a [`MethodDigest`] with two components:
//!
//! * **`content`** — the semantic shape: opcodes, constants, the exception
//!   table, local layout, loop headers, and every *referenced entity by
//!   name and structure* (string literal bytes, callee qualified names and
//!   signatures, class/field names and types). No numeric table index
//!   enters this hash, so it is independent of method/string/class
//!   *ordering*: an unmutated method hashes identically in the seed and in
//!   every mutant, and `content` equality implies disassembly equality
//!   (the disassembler renders exactly these names).
//! * **`linkage`** — the id binding: the method's own index plus every
//!   numeric `MethodId`/`ClassId`/`StrId`/field-slot operand in occurrence
//!   order. Compiled IR embeds these raw ids and resolves them against the
//!   *executing* program at run time, so sharing compiled artifacts is
//!   only sound between programs that agree on the binding. (Counter-
//!   example: inserting one string literal shifts every later `StrId`;
//!   `content` still matches — the literals are equal — but reusing IR
//!   compiled against the old ids would print the wrong strings.)
//!
//! Caches key on [`MethodDigest::key`], which folds both layers. The
//! split is kept (rather than hashing one combined value) so tests and
//! diagnostics can distinguish "same shape, different binding" from
//! "different shape".
//!
//! # Compilation units
//!
//! The JIT inlines callees, so a compiled artifact depends on more than
//! the root method body. [`ProgramDigests::units`] digests the *static
//! call closure* to [`INLINE_CLOSURE_DEPTH`] edges — a superset of
//! everything the compiler can read while translating the root — and
//! [`ProgramDigests::closure`] exposes the member lists so the VM can fold
//! profile fingerprints over the same footprint.

use std::collections::BTreeSet;

use cse_lang::Ty;

use crate::insn::Insn;
use crate::program::{BMethod, BProgram, MethodId};

/// Maximum call-edge depth the JIT's inliner can reach from a compilation
/// root (the inline chain is bounded at four frames, and rejected
/// candidates one level deeper still have their code length inspected).
/// The unit digest conservatively covers this whole closure.
pub const INLINE_CLOSURE_DEPTH: usize = 4;

/// FNV-1a, the same construction the rest of the workspace uses for
/// deterministic digests (duplicated here because `cse-bytecode` sits at
/// the bottom of the crate graph).
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn bytes(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    fn ty(&mut self, ty: &Ty) {
        match ty {
            Ty::Int => self.u64(1),
            Ty::Long => self.u64(2),
            Ty::Byte => self.u64(3),
            Ty::Bool => self.u64(4),
            Ty::Str => self.u64(5),
            Ty::Void => self.u64(6),
            Ty::Array(elem) => {
                self.u64(7);
                self.ty(elem);
            }
            Ty::Class(name) => {
                self.u64(8);
                self.str(name);
            }
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// The two-layer digest of one method; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodDigest {
    /// Order-independent structural digest (names, not indices).
    pub content: u64,
    /// Id-binding digest (own index + numeric operand ids in order).
    pub linkage: u64,
}

impl MethodDigest {
    /// The cache key: a method may share cached artifacts with another
    /// occurrence of itself exactly when both layers agree.
    pub fn key(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.content);
        h.u64(self.linkage);
        h.finish()
    }
}

/// All digests of one [`BProgram`], computed once per compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramDigests {
    /// Per-method digests, indexed by `MethodId`.
    pub methods: Vec<MethodDigest>,
    /// Per-method *compilation unit* digests: the method's own key folded
    /// with every member of its static call closure (to
    /// [`INLINE_CLOSURE_DEPTH`] edges). Two equal unit digests mean the
    /// JIT, starting from either root, can only ever read identical code.
    pub units: Vec<u64>,
    /// The sorted method indices of each method's static call closure
    /// (including the root), to [`INLINE_CLOSURE_DEPTH`] edges — the
    /// footprint over which profile fingerprints must be folded to key
    /// speculative compilations.
    pub closure: Vec<Vec<u32>>,
    /// Whole-program digest: full string table, all class shapes, every
    /// method (both layers), entry and clinit bindings. Two programs with
    /// equal `program` digests are behaviorally interchangeable, which
    /// keys whole-`DecodedProgram` sharing and duplicate-mutant detection.
    pub program: u64,
}

impl ProgramDigests {
    /// Computes every digest for `program`.
    pub fn compute(program: &BProgram) -> ProgramDigests {
        let methods: Vec<MethodDigest> = (0..program.methods.len())
            .map(|idx| MethodDigest {
                content: method_content(program, idx),
                linkage: method_linkage(program, idx),
            })
            .collect();

        let closure: Vec<Vec<u32>> =
            (0..program.methods.len()).map(|idx| call_closure(program, idx)).collect();

        let units: Vec<u64> = (0..program.methods.len())
            .map(|idx| {
                let mut h = Fnv::new();
                h.u64(methods[idx].key());
                for &member in &closure[idx] {
                    h.u64(u64::from(member));
                    h.u64(methods[member as usize].key());
                }
                h.finish()
            })
            .collect();

        let program_digest = {
            let mut h = Fnv::new();
            h.u64(program.strings.len() as u64);
            for s in &program.strings {
                h.str(s);
            }
            h.u64(program.classes.len() as u64);
            for class in &program.classes {
                h.str(&class.name);
                h.u64(class.static_fields.len() as u64);
                for field in &class.static_fields {
                    h.str(&field.name);
                    h.ty(&field.ty);
                }
                h.u64(class.inst_fields.len() as u64);
                for field in &class.inst_fields {
                    h.str(&field.name);
                    h.ty(&field.ty);
                }
                h.u64(class.init.map_or(u64::MAX, |m| u64::from(m.0)));
                h.u64(class.methods.len() as u64);
                for &m in &class.methods {
                    h.u64(u64::from(m.0));
                }
            }
            h.u64(program.methods.len() as u64);
            for digest in &methods {
                h.u64(digest.content);
                h.u64(digest.linkage);
            }
            h.u64(u64::from(program.entry.0));
            h.u64(program.clinit.map_or(u64::MAX, |m| u64::from(m.0)));
            h.finish()
        };

        ProgramDigests { methods, units, closure, program: program_digest }
    }
}

/// The sorted static call closure of `root`, to [`INLINE_CLOSURE_DEPTH`]
/// call edges (breadth-first over `InvokeStatic`/`InvokeInstance` edges).
fn call_closure(program: &BProgram, root: usize) -> Vec<u32> {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    seen.insert(root as u32);
    let mut frontier: Vec<u32> = vec![root as u32];
    let mut next: Vec<u32> = Vec::new();
    for _ in 0..INLINE_CLOSURE_DEPTH {
        if frontier.is_empty() {
            break;
        }
        for &m in &frontier {
            for insn in &program.methods[m as usize].code {
                if let Insn::InvokeStatic(callee) | Insn::InvokeInstance(callee) = insn {
                    if seen.insert(callee.0) {
                        next.push(callee.0);
                    }
                }
            }
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
    }
    seen.into_iter().collect()
}

/// Hashes a method signature by name and structure (no indices): the
/// everything a *caller* can observe statically about the callee.
fn hash_signature(h: &mut Fnv, program: &BProgram, method: &BMethod) {
    h.str(&program.classes[method.class.0 as usize].name);
    h.str(&method.name);
    h.u64(u64::from(method.is_static));
    h.u64(method.params.len() as u64);
    for ty in &method.params {
        h.ty(ty);
    }
    h.ty(&method.ret);
}

fn method_content(program: &BProgram, idx: usize) -> u64 {
    let method = &program.methods[idx];
    let mut h = Fnv::new();
    hash_signature(&mut h, program, method);
    h.u64(u64::from(method.num_locals));
    h.u64(method.local_types.len() as u64);
    for slot in &method.local_types {
        match slot {
            None => h.u64(0),
            Some(ty) => {
                h.u64(1);
                h.ty(ty);
            }
        }
    }
    h.u64(method.handlers.len() as u64);
    for handler in &method.handlers {
        h.u64(u64::from(handler.start));
        h.u64(u64::from(handler.end));
        h.u64(u64::from(handler.target));
        h.u64(handler.save_slot.map_or(u64::MAX, u64::from));
    }
    h.u64(method.loop_headers.len() as u64);
    for &pc in &method.loop_headers {
        h.u64(u64::from(pc));
    }
    h.u64(method.code.len() as u64);
    for insn in &method.code {
        hash_insn_content(&mut h, program, insn);
    }
    h.finish()
}

/// Hashes one instruction by opcode tag and *resolved* operands: numeric
/// ids are replaced by what they name (string bytes, class/field names and
/// types, callee signatures). Tags are explicit so the hash is stable
/// under enum reordering.
fn hash_insn_content(h: &mut Fnv, program: &BProgram, insn: &Insn) {
    match insn {
        Insn::IConst(v) => {
            h.u64(1);
            h.u64(*v as u32 as u64);
        }
        Insn::LConst(v) => {
            h.u64(2);
            h.u64(*v as u64);
        }
        Insn::SConst(s) => {
            h.u64(3);
            h.str(&program.strings[s.0 as usize]);
        }
        Insn::NullConst => h.u64(4),
        Insn::Load(slot) => {
            h.u64(5);
            h.u64(u64::from(*slot));
        }
        Insn::Store(slot) => {
            h.u64(6);
            h.u64(u64::from(*slot));
        }
        Insn::Pop => h.u64(7),
        Insn::Dup => h.u64(8),
        Insn::Dup2 => h.u64(9),
        Insn::GetStatic { class, field } | Insn::PutStatic { class, field } => {
            h.u64(if matches!(insn, Insn::GetStatic { .. }) { 10 } else { 11 });
            let c = &program.classes[class.0 as usize];
            h.str(&c.name);
            let f = &c.static_fields[*field as usize];
            h.str(&f.name);
            h.ty(&f.ty);
        }
        Insn::GetField { field } => {
            h.u64(12);
            h.u64(u64::from(*field));
        }
        Insn::PutField { field } => {
            h.u64(13);
            h.u64(u64::from(*field));
        }
        Insn::NewObject(class) => {
            h.u64(14);
            let c = &program.classes[class.0 as usize];
            h.str(&c.name);
            h.u64(c.inst_fields.len() as u64);
            for f in &c.inst_fields {
                h.str(&f.name);
                h.ty(&f.ty);
            }
        }
        Insn::NewArray(kind) => {
            h.u64(15);
            h.u64(*kind as u64);
        }
        Insn::NewMultiArray { kind, dims } => {
            h.u64(16);
            h.u64(*kind as u64);
            h.u64(u64::from(*dims));
        }
        Insn::ArrLoad(kind) => {
            h.u64(17);
            h.u64(*kind as u64);
        }
        Insn::ArrStore(kind) => {
            h.u64(18);
            h.u64(*kind as u64);
        }
        Insn::ArrLen => h.u64(19),
        Insn::IAdd => h.u64(20),
        Insn::ISub => h.u64(21),
        Insn::IMul => h.u64(22),
        Insn::IDiv => h.u64(23),
        Insn::IRem => h.u64(24),
        Insn::INeg => h.u64(25),
        Insn::IShl => h.u64(26),
        Insn::IShr => h.u64(27),
        Insn::IUshr => h.u64(28),
        Insn::IAnd => h.u64(29),
        Insn::IOr => h.u64(30),
        Insn::IXor => h.u64(31),
        Insn::LAdd => h.u64(32),
        Insn::LSub => h.u64(33),
        Insn::LMul => h.u64(34),
        Insn::LDiv => h.u64(35),
        Insn::LRem => h.u64(36),
        Insn::LNeg => h.u64(37),
        Insn::LShl => h.u64(38),
        Insn::LShr => h.u64(39),
        Insn::LUshr => h.u64(40),
        Insn::LAnd => h.u64(41),
        Insn::LOr => h.u64(42),
        Insn::LXor => h.u64(43),
        Insn::I2L => h.u64(44),
        Insn::L2I => h.u64(45),
        Insn::I2B => h.u64(46),
        Insn::I2S => h.u64(47),
        Insn::L2S => h.u64(48),
        Insn::Bool2S => h.u64(49),
        Insn::ICmp(op) => {
            h.u64(50);
            h.u64(*op as u64);
        }
        Insn::LCmp(op) => {
            h.u64(51);
            h.u64(*op as u64);
        }
        Insn::RefEq => h.u64(52),
        Insn::RefNe => h.u64(53),
        Insn::SConcat => h.u64(54),
        Insn::Jump(t) => {
            h.u64(55);
            h.u64(u64::from(*t));
        }
        Insn::JumpIfTrue(t) => {
            h.u64(56);
            h.u64(u64::from(*t));
        }
        Insn::JumpIfFalse(t) => {
            h.u64(57);
            h.u64(u64::from(*t));
        }
        Insn::TableSwitch { cases, default } => {
            h.u64(58);
            h.u64(cases.len() as u64);
            for &(val, target) in cases {
                h.u64(val as u32 as u64);
                h.u64(u64::from(target));
            }
            h.u64(u64::from(*default));
        }
        Insn::InvokeStatic(callee) => {
            h.u64(59);
            hash_signature(h, program, program.method(*callee));
        }
        Insn::InvokeInstance(callee) => {
            h.u64(60);
            hash_signature(h, program, program.method(*callee));
        }
        Insn::Return => h.u64(61),
        Insn::ReturnVal => h.u64(62),
        Insn::ThrowUser => h.u64(63),
        Insn::Rethrow(slot) => {
            h.u64(64);
            h.u64(u64::from(*slot));
        }
        Insn::Println(kind) => {
            h.u64(65);
            h.u64(*kind as u64);
        }
        Insn::Mute => h.u64(66),
        Insn::Unmute => h.u64(67),
    }
}

/// The id-binding layer: the method's own index and every numeric id
/// operand in occurrence order.
fn method_linkage(program: &BProgram, idx: usize) -> u64 {
    let method = &program.methods[idx];
    let mut h = Fnv::new();
    h.u64(idx as u64);
    h.u64(u64::from(method.class.0));
    for insn in &method.code {
        match insn {
            Insn::SConst(s) => h.u64(u64::from(s.0)),
            Insn::GetStatic { class, field } | Insn::PutStatic { class, field } => {
                h.u64(u64::from(class.0));
                h.u64(u64::from(*field));
            }
            Insn::NewObject(class) => h.u64(u64::from(class.0)),
            Insn::InvokeStatic(callee) | Insn::InvokeInstance(callee) => {
                h.u64(u64::from(callee.0));
            }
            _ => {}
        }
    }
    h.finish()
}

/// Convenience: the digest of one method inside `program`, for callers
/// that do not need the whole table. `ProgramDigests::compute` is the
/// batch form.
pub fn method_digest(program: &BProgram, id: MethodId) -> MethodDigest {
    MethodDigest {
        content: method_content(program, id.0 as usize),
        linkage: method_linkage(program, id.0 as usize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::disasm::disasm_method;

    fn compiled(src: &str) -> BProgram {
        compile(&cse_lang::parse_and_check(src).unwrap()).unwrap()
    }

    const BASE: &str = r#"
        class T {
            static int s = 7;
            static int helper(int x) { try { return 100 / x; } catch { return -1; } }
            static void main() { println(helper(4) + T.s + "tail"); }
        }
    "#;

    #[test]
    fn digest_is_deterministic() {
        let a = ProgramDigests::compute(&compiled(BASE));
        let b = ProgramDigests::compute(&compiled(BASE));
        assert_eq!(a, b);
    }

    #[test]
    fn one_constant_changes_the_digest() {
        let a = ProgramDigests::compute(&compiled(BASE));
        let b = ProgramDigests::compute(&compiled(&BASE.replace("100 / x", "101 / x")));
        let helper_a = compiled(BASE);
        let id = helper_a.find_method("T", "helper").unwrap().0 as usize;
        assert_ne!(a.methods[id].content, b.methods[id].content);
        assert_ne!(a.units[id], b.units[id]);
        assert_ne!(a.program, b.program);
        // main inlines helper, so its *unit* moves while its body digest
        // stays put.
        let main = helper_a.find_method("T", "main").unwrap().0 as usize;
        assert_eq!(a.methods[main].content, b.methods[main].content);
        assert_ne!(a.units[main], b.units[main]);
    }

    #[test]
    fn one_opcode_changes_the_digest() {
        let a = ProgramDigests::compute(&compiled(BASE));
        let b = ProgramDigests::compute(&compiled(&BASE.replace("100 / x", "100 * x")));
        let p = compiled(BASE);
        let id = p.find_method("T", "helper").unwrap().0 as usize;
        assert_ne!(a.methods[id].content, b.methods[id].content);
    }

    #[test]
    fn exception_range_changes_the_digest() {
        // Identical code; only one handler's guarded range differs.
        let p = compiled(BASE);
        let id = p.find_method("T", "helper").unwrap().0 as usize;
        assert!(!p.methods[id].handlers.is_empty(), "helper must have a handler");
        let a = ProgramDigests::compute(&p);
        let mut widened = p.clone();
        widened.methods[id].handlers[0].start += 1;
        let b = ProgramDigests::compute(&widened);
        assert_ne!(a.methods[id].content, b.methods[id].content);
        assert_ne!(a.program, b.program);
    }

    #[test]
    fn permuted_declaration_order_preserves_content() {
        // Declaring the methods in a different order permutes MethodIds;
        // content digests must not move, linkage must.
        let permuted = r#"
            class T {
                static int s = 7;
                static void main() { println(helper(4) + T.s + "tail"); }
                static int helper(int x) { try { return 100 / x; } catch { return -1; } }
            }
        "#;
        let a_prog = compiled(BASE);
        let b_prog = compiled(permuted);
        let a = ProgramDigests::compute(&a_prog);
        let b = ProgramDigests::compute(&b_prog);
        for name in ["main", "helper"] {
            let ia = a_prog.find_method("T", name).unwrap();
            let ib = b_prog.find_method("T", name).unwrap();
            assert_eq!(
                a.methods[ia.0 as usize].content, b.methods[ib.0 as usize].content,
                "{name}: content must survive reordering"
            );
        }
        let ia = a_prog.find_method("T", "helper").unwrap();
        let ib = b_prog.find_method("T", "helper").unwrap();
        if ia != ib {
            assert_ne!(
                a.methods[ia.0 as usize].linkage, b.methods[ib.0 as usize].linkage,
                "linkage must bind the index"
            );
        }
        assert_ne!(a.program, b.program, "program digest must see the reordering");
    }

    #[test]
    fn string_table_shift_changes_linkage_not_content() {
        // An extra literal *before* the shared one shifts StrIds: the
        // tail method's content must hold, its linkage must move —
        // this is exactly the case where sharing compiled IR would be
        // unsound.
        let shifted = BASE.replace("println(", "println(\"pre\"); println(");
        let a_prog = compiled(BASE);
        let b_prog = compiled(&shifted);
        let a = ProgramDigests::compute(&a_prog);
        let b = ProgramDigests::compute(&b_prog);
        let ha = a_prog.find_method("T", "helper").unwrap().0 as usize;
        let hb = b_prog.find_method("T", "helper").unwrap().0 as usize;
        // helper has no string operands, so both layers hold for it...
        assert_eq!(a.methods[ha].content, b.methods[hb].content);
        // ...but main gained a literal: both layers move there.
        let ma = a_prog.find_method("T", "main").unwrap().0 as usize;
        let mb = b_prog.find_method("T", "main").unwrap().0 as usize;
        assert_ne!(a.methods[ma].content, b.methods[mb].content);
        assert_ne!(a.methods[ma].linkage, b.methods[mb].linkage);
    }

    #[test]
    fn digest_equality_implies_disassembly_equality() {
        // The adversarial pairs above plus identical twins: wherever the
        // *content* digests agree, the disassembly (modulo the numeric
        // header name, which content covers via the qualified name) must
        // agree byte for byte.
        let sources = [
            BASE.to_string(),
            BASE.replace("100 / x", "101 / x"),
            BASE.replace("100 / x", "100 * x"),
            BASE.replace("return -1;", "return -2;"),
            BASE.to_string(),
        ];
        let programs: Vec<BProgram> = sources.iter().map(|s| compiled(s)).collect();
        let digests: Vec<ProgramDigests> = programs.iter().map(ProgramDigests::compute).collect();
        let mut compared = 0usize;
        for (pi, pa) in programs.iter().enumerate() {
            for (qi, pb) in programs.iter().enumerate() {
                for (ia, da) in digests[pi].methods.iter().enumerate() {
                    for (ib, db) in digests[qi].methods.iter().enumerate() {
                        if da.content == db.content {
                            compared += 1;
                            assert_eq!(
                                disasm_method(pa, MethodId(ia as u32), &pa.methods[ia]),
                                disasm_method(pb, MethodId(ib as u32), &pb.methods[ib]),
                                "content collision with differing disassembly"
                            );
                        }
                    }
                }
            }
        }
        assert!(compared > programs.len(), "expected cross-program matches");
    }

    #[test]
    fn closure_reaches_transitive_callees() {
        let src = r#"
            class T {
                static int d(int x) { return x + 1; }
                static int c(int x) { return d(x); }
                static int b(int x) { return c(x); }
                static int a(int x) { return b(x); }
                static void main() { println(a(1)); }
            }
        "#;
        let p = compiled(src);
        let d = ProgramDigests::compute(&p);
        let main = p.find_method("T", "main").unwrap().0 as usize;
        for name in ["a", "b", "c", "d"] {
            let id = p.find_method("T", name).unwrap().0;
            assert!(
                d.closure[main].contains(&id),
                "main's closure must contain {name} (depth {INLINE_CLOSURE_DEPTH})"
            );
        }
    }
}
