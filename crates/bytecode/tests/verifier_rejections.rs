//! The verifier must reject malformed bytecode the compiler would never
//! emit — the safety net under the JIT's IR builder.

use cse_bytecode::verify::verify_method;
use cse_bytecode::{BMethod, BProgram, ClassId, Insn};
use cse_lang::Ty;

fn base_program() -> BProgram {
    let p = cse_lang::parse_and_check("class T { static void main() { } }").unwrap();
    cse_bytecode::compile(&p).unwrap()
}

fn method(code: Vec<Insn>, num_locals: u16, ret: Ty) -> BMethod {
    let mut m = BMethod {
        name: "bad".into(),
        class: ClassId(0),
        is_static: true,
        params: vec![],
        ret,
        num_locals,
        local_types: vec![None; num_locals as usize],
        code,
        handlers: vec![],
        loop_headers: vec![],
    };
    m.compute_loop_headers();
    m
}

#[test]
fn rejects_stack_underflow() {
    let program = base_program();
    let m = method(vec![Insn::Pop, Insn::Return], 0, Ty::Void);
    let err = verify_method(&program, &m).unwrap_err();
    assert!(err.message.contains("underflow"), "{err}");
}

#[test]
fn rejects_type_confusion() {
    let program = base_program();
    let m = method(vec![Insn::IConst(1), Insn::LConst(2), Insn::IAdd, Insn::Return], 0, Ty::Void);
    let err = verify_method(&program, &m).unwrap_err();
    assert!(err.message.contains("expected"), "{err}");
}

#[test]
fn rejects_out_of_range_slot_and_target() {
    let program = base_program();
    let m = method(vec![Insn::Load(3), Insn::Pop, Insn::Return], 1, Ty::Void);
    assert!(verify_method(&program, &m).is_err());
    let m = method(vec![Insn::Jump(99)], 0, Ty::Void);
    assert!(verify_method(&program, &m).is_err());
}

#[test]
fn rejects_fallthrough_and_bad_merges() {
    let program = base_program();
    // Code not ending in a terminator.
    let m = method(vec![Insn::IConst(1), Insn::Pop], 0, Ty::Void);
    assert!(verify_method(&program, &m).is_err());
    // Inconsistent stack heights at a join: path A pushes, path B doesn't.
    let m = method(
        vec![
            Insn::IConst(1),     // 0: cond
            Insn::JumpIfTrue(3), // 1
            Insn::IConst(7),     // 2: push on fallthrough only
            Insn::Return,        // 3: join with differing heights
        ],
        0,
        Ty::Void,
    );
    assert!(verify_method(&program, &m).is_err());
}

#[test]
fn rejects_wrong_return_arity() {
    let program = base_program();
    let m = method(vec![Insn::Return], 0, Ty::Int);
    assert!(verify_method(&program, &m).is_err());
    let m = method(vec![Insn::IConst(1), Insn::IConst(2), Insn::ReturnVal], 0, Ty::Int);
    assert!(verify_method(&program, &m).is_err(), "extra stack values at return");
}
