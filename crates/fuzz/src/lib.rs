//! Random, type-correct, terminating MiniJava seed programs — the
//! JavaFuzzer analog (paper §4.1).
//!
//! Matching the shapes the paper relies on:
//!
//! * programs are *complex* (nested loops, switches with fall-through,
//!   field traffic, byte arithmetic, arrays, try/catch), giving JoNM rich
//!   mutation opportunities;
//! * loops are *short* — "existing LVM testing techniques like JavaFuzzer
//!   intentionally try to avoid lengthy loops" (§2.2) — so seeds rarely
//!   reach any JIT threshold on their own, which is exactly the blind spot
//!   CSE exploits;
//! * every generated program is valid by construction (the crate tests
//!   re-check each one), terminates (all loops are bounded counters, the
//!   call graph is acyclic), and ends by printing a field checksum.
//!
//! # Examples
//!
//! ```
//! use cse_fuzz::{FuzzConfig, generate};
//!
//! let program = generate(42, &FuzzConfig::default());
//! // Generated programs always pass the front end.
//! let printed = cse_lang::pretty::print(&program);
//! cse_lang::parse_and_check(&printed).unwrap();
//! ```

#![forbid(unsafe_code)]

mod gen;

pub use gen::{generate, FuzzConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use cse_vm::{Outcome, Vm, VmConfig, VmKind};

    #[test]
    fn seeds_are_valid_and_round_trip() {
        for seed in 0..60 {
            let program = generate(seed, &FuzzConfig::default());
            let printed = cse_lang::pretty::print(&program);
            let reparsed = cse_lang::parse_and_check(&printed)
                .unwrap_or_else(|e| panic!("seed {seed} invalid: {e}\n---\n{printed}"));
            assert_eq!(program, reparsed, "print/parse must round-trip (seed {seed})");
        }
    }

    #[test]
    fn seeds_compile_verify_and_terminate() {
        for seed in 0..40 {
            let program = generate(seed, &FuzzConfig::default());
            let compiled = cse_bytecode::compile(&program).unwrap();
            cse_bytecode::verify::verify_program(&compiled)
                .unwrap_or_else(|e| panic!("seed {seed} failed verification: {e}"));
            let result =
                Vm::run_program(&compiled, VmConfig::interpreter_only(VmKind::HotSpotLike));
            assert!(
                matches!(result.outcome, Outcome::Completed { .. }),
                "seed {seed} did not complete: {:?}",
                result.outcome
            );
            assert!(!result.output.is_empty(), "seed {seed} printed no checksum");
        }
    }

    #[test]
    fn seeds_are_deterministic_and_diverse() {
        let a = generate(7, &FuzzConfig::default());
        let b = generate(7, &FuzzConfig::default());
        assert_eq!(a, b, "same seed, same program");
        let c = generate(8, &FuzzConfig::default());
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn seeds_rarely_reach_jit_thresholds() {
        // The JavaFuzzer property the paper leans on: cold seeds. A few
        // may warm into the quick tier, but the optimizing tier — where
        // the deep bugs live — must stay out of reach for most seeds.
        let mut top_tier_runs = 0;
        let total = 30;
        for seed in 0..total {
            let program = generate(seed, &FuzzConfig::default());
            let bprog = cse_bytecode::compile(&program).unwrap();
            let result = Vm::run_program(&bprog, VmConfig::correct(VmKind::HotSpotLike));
            let reached_top = result.events.iter().any(|e| {
                matches!(
                    e,
                    cse_vm::TraceEvent::Compiled { tier, .. } if tier.0 >= 2
                )
            });
            if reached_top {
                top_tier_runs += 1;
            }
        }
        assert!(
            top_tier_runs * 4 < total,
            "{top_tier_runs}/{total} seeds reached the optimizing tier — seeds are too hot"
        );
    }

    #[test]
    fn interpreter_and_jit_agree_on_seeds_without_bugs() {
        // Substrate soundness over random programs (not just hand-written
        // tests): fuzzed seeds must behave identically in every mode.
        for seed in 100..130 {
            let program = generate(seed, &FuzzConfig::default());
            let bprog = cse_bytecode::compile(&program).unwrap();
            let reference =
                Vm::run_program(&bprog, VmConfig::interpreter_only(VmKind::HotSpotLike));
            for kind in [VmKind::HotSpotLike, VmKind::OpenJ9Like, VmKind::ArtLike] {
                let jit = Vm::run_program(
                    &bprog,
                    VmConfig::force_compile_all(kind).with_faults(Default::default()),
                );
                assert_eq!(
                    jit.observable(),
                    reference.observable(),
                    "seed {seed} diverged under force-compile-all {kind}"
                );
            }
        }
    }
}
