//! The seed-program generator.

use cse_lang::ast::*;
use cse_lang::ty::Ty;
use cse_rng::Rng64;

/// Tunable generation parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of non-`main` methods.
    pub methods: std::ops::RangeInclusive<usize>,
    /// Number of fields.
    pub fields: std::ops::RangeInclusive<usize>,
    /// Statements per generated block.
    pub stmts_per_block: std::ops::RangeInclusive<usize>,
    /// Maximum statement nesting depth.
    pub max_depth: usize,
    /// Maximum loop trip count (kept short, like JavaFuzzer's seeds).
    pub max_loop_iters: i32,
    /// Probability (percent) of emitting the Figure-2-like nested
    /// loop/switch/byte-accumulator pattern in a method body.
    pub fig2_pattern_pct: u32,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            methods: 3..=6,
            fields: 4..=8,
            stmts_per_block: 2..=5,
            max_depth: 3,
            max_loop_iters: 12,
            fig2_pattern_pct: 25,
        }
    }
}

/// Generates a deterministic random program for `seed`.
pub fn generate(seed: u64, config: &FuzzConfig) -> Program {
    let mut g = Gen {
        rng: Rng64::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
        config: config.clone(),
        fields: Vec::new(),
        methods: Vec::new(),
        local_counter: 0,
    };
    g.program()
}

#[derive(Debug, Clone)]
struct FieldInfo {
    name: String,
    ty: Ty,
    is_static: bool,
}

#[derive(Debug, Clone)]
struct MethodInfo {
    name: String,
    is_static: bool,
    params: Vec<Param>,
    ret: Ty,
}

/// A local variable in scope during generation.
#[derive(Debug, Clone)]
struct LocalInfo {
    name: String,
    ty: Ty,
    /// Loop counters are read-only so loops stay bounded.
    mutable: bool,
}

struct Gen {
    rng: Rng64,
    config: FuzzConfig,
    fields: Vec<FieldInfo>,
    methods: Vec<MethodInfo>,
    local_counter: u32,
}

/// Generation context for one method body.
struct Ctx {
    /// Call statements emitted so far (capped to keep call trees shallow —
    /// uncapped calls inside nested loops make seeds hot and long-running,
    /// which JavaFuzzer-style seed generators deliberately avoid).
    calls_emitted: usize,
    /// Index of the method being generated (may only call lower indices).
    method_idx: usize,
    is_static: bool,
    locals: Vec<LocalInfo>,
    /// Current loop nesting (break/continue legality).
    loop_depth: usize,
    /// Whether `continue` is currently forbidden (counter `while` loops).
    no_continue: bool,
    /// Nesting depth budget.
    depth: usize,
}

impl Gen {
    fn pct(&mut self, p: u32) -> bool {
        self.rng.gen_range(0u32..100) < p
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.local_counter += 1;
        format!("{prefix}{}", self.local_counter)
    }

    fn scalar_ty(&mut self) -> Ty {
        match self.rng.gen_range(0..10) {
            0..=3 => Ty::Int,
            4..=5 => Ty::Long,
            6..=7 => Ty::Byte,
            _ => Ty::Bool,
        }
    }

    // ----- program skeleton -------------------------------------------------

    fn program(&mut self) -> Program {
        // Fields: a mix of scalars and one or two int arrays.
        let field_count = self.rng.gen_range(self.config.fields.clone());
        for i in 0..field_count {
            let ty = if i == 0 {
                // Guarantee at least one byte field (Figure-2 patterns).
                Ty::Byte
            } else if i == 1 {
                Ty::Int.array_of()
            } else if i == 2 {
                Ty::Class("P".into())
            } else {
                self.scalar_ty()
            };
            let is_static = self.rng.gen_bool(0.4);
            let name = format!("f{i}");
            self.fields.push(FieldInfo { name, ty, is_static });
        }
        // Method signatures first (bodies may call lower-index methods).
        let method_count = self.rng.gen_range(self.config.methods.clone());
        for i in 0..method_count {
            let is_static = self.rng.gen_bool(0.35);
            let params: Vec<Param> = (0..self.rng.gen_range(0..=2))
                .map(|j| Param {
                    name: format!("p{i}_{j}"),
                    ty: match self.rng.gen_range(0..3) {
                        0 => Ty::Int,
                        1 => Ty::Long,
                        _ => Ty::Int,
                    },
                })
                .collect();
            let ret = match self.rng.gen_range(0..4) {
                0 => Ty::Void,
                1 => Ty::Long,
                _ => Ty::Int,
            };
            self.methods.push(MethodInfo { name: format!("m{i}"), is_static, params, ret });
        }
        // A small helper class gives seeds object allocation and pointer
        // traffic (JavaFuzzer programs allocate too), which exercises the
        // VM's escape analysis and GC interplay.
        let helper = {
            let mut p = ClassDecl::new("P");
            p.fields.push(FieldDecl {
                name: "x".into(),
                ty: Ty::Int,
                is_static: false,
                init: None,
            });
            p.fields.push(FieldDecl {
                name: "y".into(),
                ty: Ty::Long,
                is_static: false,
                init: Some(Expr::LongLit(1)),
            });
            p
        };
        let mut class = ClassDecl::new("T");
        for f in self.fields.clone() {
            // Arrays are always initialized: a null array field would kill
            // most runs with an early NPE, starving the rest of the
            // program (and every mutation site in it) of execution.
            let init = if matches!(f.ty, Ty::Array(_)) || self.rng.gen_bool(0.5) {
                Some(self.field_init(&f.ty))
            } else {
                None
            };
            class.fields.push(FieldDecl { name: f.name, ty: f.ty, is_static: f.is_static, init });
        }
        for i in 0..method_count {
            let info = self.methods[i].clone();
            let body = self.method_body(i, &info);
            class.methods.push(MethodDecl {
                name: info.name,
                is_static: info.is_static,
                params: info.params,
                ret: info.ret,
                body,
            });
        }
        class.methods.push(self.main_method());
        Program { classes: vec![helper, class] }
    }

    fn field_init(&mut self, ty: &Ty) -> Expr {
        match ty {
            Ty::Int => Expr::IntLit(self.rng.gen_range(-100..100)),
            Ty::Long => Expr::LongLit(self.rng.gen_range(-1000..1000)),
            Ty::Byte => Expr::IntLit(self.rng.gen_range(-128..=127)),
            Ty::Bool => Expr::BoolLit(self.rng.gen_bool(0.5)),
            Ty::Array(_) => {
                let elems = (0..self.rng.gen_range(4..=8))
                    .map(|_| Expr::IntLit(self.rng.gen_range(0..100)))
                    .collect();
                Expr::NewArrayInit { elem: Ty::Int, elems }
            }
            Ty::Class(name) => Expr::NewObject(name.clone()),
            _ => Expr::Null,
        }
    }

    fn main_method(&mut self) -> MethodDecl {
        let mut stmts = vec![Stmt::VarDecl {
            name: "t".into(),
            ty: Ty::Class("T".into()),
            init: Expr::NewObject("T".into()),
        }];
        // Call every method once (JavaFuzzer's mainTest convention keeps
        // all generated code live), plus a couple of random repeats like
        // the paper's `t.p(); t.p();`.
        let mut order: Vec<usize> = (0..self.methods.len()).collect();
        for _ in 0..self.rng.gen_range(1..=3) {
            if self.methods.is_empty() {
                break;
            }
            order.push(self.rng.gen_range(0..self.methods.len()));
        }
        for idx in order {
            let info = self.methods[idx].clone();
            let args: Vec<Expr> = info.params.iter().map(|p| self.literal(&p.ty)).collect();
            let call = if info.is_static {
                Expr::StaticCall { class: "T".into(), method: info.name.clone(), args }
            } else {
                Expr::InstCall { recv: Box::new(Expr::local("t")), method: info.name.clone(), args }
            };
            let stmt = if info.ret == Ty::Void {
                Stmt::ExprStmt(call)
            } else if info.ret.is_primitive_alike() && self.pct(40) {
                Stmt::Println(call)
            } else {
                Stmt::ExprStmt(call)
            };
            let guarded = self.pct(30);
            if guarded {
                stmts.push(Stmt::Try {
                    body: Block::of(vec![stmt]),
                    catch: Some(Block::of(vec![Stmt::Println(Expr::StrLit("exc".into()))])),
                    finally: None,
                });
            } else {
                stmts.push(stmt);
            }
        }
        // Checksum: print every field (the JavaFuzzer convention).
        for f in self.fields.clone() {
            let read = if f.is_static {
                Expr::StaticField { class: "T".into(), field: f.name.clone() }
            } else {
                Expr::InstField { recv: Box::new(Expr::local("t")), field: f.name.clone() }
            };
            match &f.ty {
                Ty::Class(_) => {
                    // Object checksum: nullness plus a field read, guarded.
                    stmts.push(Stmt::Println(Expr::bin(BinOp::Eq, read.clone(), Expr::Null)));
                    stmts.push(Stmt::Try {
                        body: Block::of(vec![Stmt::Println(Expr::InstField {
                            recv: Box::new(read),
                            field: "x".into(),
                        })]),
                        catch: Some(Block::of(vec![Stmt::Println(Expr::StrLit("nobj".into()))])),
                        finally: None,
                    });
                }
                Ty::Array(_) => {
                    // Print one element and the length, guarded.
                    stmts.push(Stmt::Try {
                        body: Block::of(vec![Stmt::Println(Expr::bin(
                            BinOp::Add,
                            Expr::Index {
                                array: Box::new(read.clone()),
                                index: Box::new(Expr::IntLit(0)),
                            },
                            Expr::Length(Box::new(read)),
                        ))]),
                        catch: Some(Block::of(vec![Stmt::Println(Expr::StrLit("narr".into()))])),
                        finally: None,
                    });
                }
                _ => stmts.push(Stmt::Println(read)),
            }
        }
        MethodDecl {
            name: "main".into(),
            is_static: true,
            params: vec![],
            ret: Ty::Void,
            body: Block::of(stmts),
        }
    }

    fn method_body(&mut self, method_idx: usize, info: &MethodInfo) -> Block {
        let mut ctx = Ctx {
            calls_emitted: 0,
            method_idx,
            is_static: info.is_static,
            locals: info
                .params
                .iter()
                .map(|p| LocalInfo { name: p.name.clone(), ty: p.ty.clone(), mutable: true })
                .collect(),
            loop_depth: 0,
            no_continue: false,
            depth: 0,
        };
        let mut stmts = self.block_stmts(&mut ctx);
        if self.pct(self.config.fig2_pattern_pct) {
            let pattern = self.fig2_pattern(&mut ctx);
            stmts.extend(pattern);
        }
        if info.ret != Ty::Void {
            let value = self.expr(&mut ctx, &info.ret, 2);
            stmts.push(Stmt::Return(Some(value)));
        }
        Block::of(stmts)
    }

    // ----- statements -------------------------------------------------------

    fn block_stmts(&mut self, ctx: &mut Ctx) -> Vec<Stmt> {
        let n = self.rng.gen_range(self.config.stmts_per_block.clone());
        let local_mark = ctx.locals.len();
        let mut stmts = Vec::with_capacity(n);
        for _ in 0..n {
            stmts.push(self.stmt(ctx));
        }
        ctx.locals.truncate(local_mark);
        stmts
    }

    fn stmt(&mut self, ctx: &mut Ctx) -> Stmt {
        let deep = ctx.depth >= self.config.max_depth;
        let choice = if deep { self.rng.gen_range(0..50) } else { self.rng.gen_range(0..100) };
        match choice {
            0..=17 => self.assign_stmt(ctx),
            18..=29 => self.decl_stmt(ctx),
            30..=37 => self.incdec_stmt(ctx),
            38..=43 => self.call_stmt(ctx),
            44..=46 => self.alloc_stmt(ctx),
            47..=49 => self.throwy_stmt(ctx),
            50..=62 => self.if_stmt(ctx),
            63..=77 => self.for_stmt(ctx),
            78..=84 => self.while_stmt(ctx),
            85..=93 => self.switch_stmt(ctx),
            _ => self.try_stmt(ctx),
        }
    }

    fn decl_stmt(&mut self, ctx: &mut Ctx) -> Stmt {
        let ty = self.scalar_ty();
        let name = self.fresh("v");
        let init = self.expr(ctx, &ty, 2);
        ctx.locals.push(LocalInfo { name: name.clone(), ty: ty.clone(), mutable: true });
        Stmt::VarDecl { name, ty, init }
    }

    /// A writable location plus its type, if any is in scope.
    fn lvalue(&mut self, ctx: &mut Ctx) -> Option<(LValue, Ty)> {
        let mut options: Vec<(LValue, Ty)> = Vec::new();
        for l in ctx.locals.iter().filter(|l| l.mutable && l.ty.is_primitive_alike()) {
            options.push((LValue::Local(l.name.clone()), l.ty.clone()));
        }
        for f in &self.fields {
            if f.ty.is_primitive_alike() && (f.is_static || !ctx.is_static) {
                let lv = if f.is_static {
                    LValue::StaticField { class: "T".into(), field: f.name.clone() }
                } else {
                    LValue::InstField { recv: Box::new(Expr::This), field: f.name.clone() }
                };
                options.push((lv, f.ty.clone()));
            }
        }
        if options.is_empty() {
            return None;
        }
        let pick = self.rng.gen_range(0..options.len());
        Some(options.swap_remove(pick))
    }

    fn assign_stmt(&mut self, ctx: &mut Ctx) -> Stmt {
        // Occasionally store into the int array instead.
        if self.pct(20) {
            if let Some(read) = self.array_read_base(ctx) {
                let index = self.bounded_index(ctx);
                let value = self.expr(ctx, &Ty::Int, 2);
                let op = if self.pct(40) { AssignOp::Add } else { AssignOp::Set };
                return Stmt::Assign {
                    target: LValue::Index { array: Box::new(read), index: Box::new(index) },
                    op,
                    value,
                };
            }
        }
        let Some((target, ty)) = self.lvalue(ctx) else {
            return Stmt::Println(Expr::IntLit(0));
        };
        let op = if ty.is_numeric() && self.pct(55) {
            match self.rng.gen_range(0..8) {
                0 => AssignOp::Add,
                1 => AssignOp::Sub,
                2 => AssignOp::Mul,
                3 => AssignOp::Xor,
                4 => AssignOp::Or,
                5 => AssignOp::And,
                6 => AssignOp::Shl,
                _ => AssignOp::Shr,
            }
        } else {
            AssignOp::Set
        };
        let value = if op == AssignOp::Set {
            self.expr(ctx, &ty, 2)
        } else if ty == Ty::Bool {
            self.expr(ctx, &Ty::Bool, 1)
        } else {
            // Compound numeric: any numeric operand works (implicit
            // narrowing back to the target).
            self.expr(ctx, &Ty::Int, 2)
        };
        if op != AssignOp::Set && ty == Ty::Bool {
            // Bool compound is only &=, |=, ^=.
            let op = match self.rng.gen_range(0..3) {
                0 => AssignOp::And,
                1 => AssignOp::Or,
                _ => AssignOp::Xor,
            };
            return Stmt::Assign { target, op, value };
        }
        Stmt::Assign { target, op, value }
    }

    fn incdec_stmt(&mut self, ctx: &mut Ctx) -> Stmt {
        match self.lvalue(ctx) {
            Some((target, ty)) if ty.is_numeric() => {
                Stmt::IncDec { target, inc: self.rng.gen_bool(0.5) }
            }
            _ => Stmt::Println(Expr::IntLit(1)),
        }
    }

    fn call_stmt(&mut self, ctx: &mut Ctx) -> Stmt {
        // Calls only outside loops, a few per method: cold seeds by
        // construction (§2.2's observation about JavaFuzzer).
        if ctx.loop_depth > 0 || ctx.calls_emitted >= 3 {
            return self.assign_stmt(ctx);
        }
        match self.callable(ctx) {
            Some(call) => {
                ctx.calls_emitted += 1;
                Stmt::ExprStmt(call)
            }
            None => self.assign_stmt(ctx),
        }
    }

    /// Allocates a helper object, writes through it, and sometimes parks
    /// it in the `P`-typed field (escape) for GC/EA-relevant traffic.
    fn alloc_stmt(&mut self, ctx: &mut Ctx) -> Stmt {
        let var = self.fresh("o");
        let mut stmts = vec![
            Stmt::VarDecl {
                name: var.clone(),
                ty: Ty::Class("P".into()),
                init: Expr::NewObject("P".into()),
            },
            Stmt::Assign {
                target: LValue::InstField { recv: Box::new(Expr::local(&var)), field: "x".into() },
                op: AssignOp::Set,
                value: self.expr(ctx, &Ty::Int, 1),
            },
        ];
        let p_field = self
            .fields
            .iter()
            .find(|f| f.ty == Ty::Class("P".into()) && (f.is_static || !ctx.is_static))
            .cloned();
        match p_field {
            Some(f) if self.pct(50) => {
                let target = if f.is_static {
                    LValue::StaticField { class: "T".into(), field: f.name }
                } else {
                    LValue::InstField { recv: Box::new(Expr::This), field: f.name }
                };
                stmts.push(Stmt::Assign { target, op: AssignOp::Set, value: Expr::local(&var) });
            }
            _ => {
                let read = Expr::InstField { recv: Box::new(Expr::local(&var)), field: "x".into() };
                stmts.push(Stmt::Println(Expr::bin(BinOp::Add, read, Expr::IntLit(0))));
            }
        }
        Stmt::Block(Block::of(stmts))
    }

    fn throwy_stmt(&mut self, ctx: &mut Ctx) -> Stmt {
        // A throw wrapped so the program still completes deterministically.
        let code = self.expr(ctx, &Ty::Int, 1);
        Stmt::Try {
            body: Block::of(vec![Stmt::Throw(code)]),
            catch: Some(Block::of(vec![self.assign_stmt(ctx)])),
            finally: None,
        }
    }

    fn if_stmt(&mut self, ctx: &mut Ctx) -> Stmt {
        let cond = self.expr(ctx, &Ty::Bool, 2);
        ctx.depth += 1;
        let then_blk = Block::of(self.block_stmts(ctx));
        let else_blk = if self.pct(45) { Some(Block::of(self.block_stmts(ctx))) } else { None };
        ctx.depth -= 1;
        Stmt::If { cond, then_blk, else_blk }
    }

    fn for_stmt(&mut self, ctx: &mut Ctx) -> Stmt {
        let var = self.fresh("i");
        let lo = self.rng.gen_range(-3..3);
        let hi = lo + self.rng.gen_range(1..=self.config.max_loop_iters);
        let step = if self.pct(25) { self.rng.gen_range(2..=4) } else { 1 };
        ctx.locals.push(LocalInfo { name: var.clone(), ty: Ty::Int, mutable: false });
        ctx.depth += 1;
        ctx.loop_depth += 1;
        let mut body = self.block_stmts(ctx);
        if ctx.loop_depth >= 1 && self.pct(15) {
            body.push(Stmt::If {
                cond: self.expr(ctx, &Ty::Bool, 1),
                then_blk: Block::of(vec![if self.pct(60) || ctx.no_continue {
                    Stmt::Break
                } else {
                    Stmt::Continue
                }]),
                else_blk: None,
            });
        }
        ctx.loop_depth -= 1;
        ctx.depth -= 1;
        ctx.locals.pop();
        let step_stmt = if step == 1 {
            Stmt::IncDec { target: LValue::Local(var.clone()), inc: true }
        } else {
            Stmt::Assign {
                target: LValue::Local(var.clone()),
                op: AssignOp::Add,
                value: Expr::IntLit(step),
            }
        };
        Stmt::For {
            init: Some(Box::new(Stmt::VarDecl {
                name: var.clone(),
                ty: Ty::Int,
                init: Expr::IntLit(lo),
            })),
            cond: Some(Expr::bin(BinOp::Lt, Expr::local(&var), Expr::IntLit(hi))),
            step: Some(Box::new(step_stmt)),
            body: Block::of(body),
        }
    }

    fn while_stmt(&mut self, ctx: &mut Ctx) -> Stmt {
        // `int c = 0; while (c < N) { ...; c++; }` — `continue` is
        // forbidden inside so the counter always advances.
        let var = self.fresh("w");
        let bound = self.rng.gen_range(1..=self.config.max_loop_iters);
        ctx.locals.push(LocalInfo { name: var.clone(), ty: Ty::Int, mutable: false });
        ctx.depth += 1;
        ctx.loop_depth += 1;
        let saved = ctx.no_continue;
        ctx.no_continue = true;
        let mut body = self.block_stmts(ctx);
        ctx.no_continue = saved;
        ctx.loop_depth -= 1;
        ctx.depth -= 1;
        ctx.locals.pop();
        body.push(Stmt::IncDec { target: LValue::Local(var.clone()), inc: true });
        Stmt::Block(Block::of(vec![
            Stmt::VarDecl { name: var.clone(), ty: Ty::Int, init: Expr::IntLit(0) },
            Stmt::While {
                cond: Expr::bin(BinOp::Lt, Expr::local(&var), Expr::IntLit(bound)),
                body: Block::of(body),
            },
        ]))
    }

    fn switch_stmt(&mut self, ctx: &mut Ctx) -> Stmt {
        let modulus = self.rng.gen_range(3..=6);
        let scrutinee = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Rem, self.expr(ctx, &Ty::Int, 2), Expr::IntLit(modulus)),
            Expr::IntLit(self.rng.gen_range(0..40)),
        );
        let arm_count = self.rng.gen_range(2..=6);
        let base = self.rng.gen_range(0..40);
        ctx.depth += 1;
        let mut cases = Vec::new();
        for a in 0..arm_count {
            let mut body = self.block_stmts(ctx);
            // Fall through sometimes (Figure 2's `case 36:` does).
            if self.pct(65) {
                body.push(Stmt::Break);
            }
            cases.push(SwitchCase { labels: vec![base + a], is_default: false, body });
        }
        if self.pct(60) {
            let mut body = self.block_stmts(ctx);
            body.push(Stmt::Break);
            cases.push(SwitchCase { labels: vec![], is_default: true, body });
        }
        ctx.depth -= 1;
        Stmt::Switch { scrutinee, cases }
    }

    fn try_stmt(&mut self, ctx: &mut Ctx) -> Stmt {
        ctx.depth += 1;
        // Risky body: a raw division or array access that may throw.
        let denom = self.expr(ctx, &Ty::Int, 1);
        let risky = match self.lvalue(ctx) {
            Some((target, ty)) if ty.is_numeric() => Stmt::Assign {
                target,
                op: AssignOp::Set,
                value: Expr::Cast {
                    ty,
                    expr: Box::new(Expr::bin(BinOp::Div, self.expr(ctx, &Ty::Int, 1), denom)),
                },
            },
            _ => Stmt::Println(Expr::bin(BinOp::Div, Expr::IntLit(100), denom)),
        };
        let mut body = self.block_stmts(ctx);
        body.push(risky);
        let catch = Block::of(self.block_stmts(ctx));
        ctx.depth -= 1;
        Stmt::Try { body: Block::of(body), catch: Some(catch), finally: None }
    }

    /// The Figure-2-like shape: iterate an array, switch on a masked
    /// element, run a short inner loop, accumulate into the byte field.
    fn fig2_pattern(&mut self, ctx: &mut Ctx) -> Vec<Stmt> {
        let Some(array) = self.array_read_base(ctx) else {
            return vec![];
        };
        let idx = self.fresh("z");
        let elem = self.fresh("e");
        let inner = self.fresh("q");
        let byte_field = self.fields.iter().find(|f| f.ty == Ty::Byte).cloned();
        let accum: Stmt = match byte_field {
            Some(f) if f.is_static || !ctx.is_static => Stmt::Assign {
                target: if f.is_static {
                    LValue::StaticField { class: "T".into(), field: f.name }
                } else {
                    LValue::InstField { recv: Box::new(Expr::This), field: f.name }
                },
                op: AssignOp::Add,
                value: Expr::IntLit(2),
            },
            _ => Stmt::Println(Expr::StrLit("acc".into())),
        };
        let base = self.rng.gen_range(30..40);
        let inner_loop = Stmt::For {
            init: Some(Box::new(Stmt::VarDecl {
                name: inner.clone(),
                ty: Ty::Int,
                init: Expr::IntLit(self.rng.gen_range(-8..0)),
            })),
            cond: Some(Expr::bin(
                BinOp::Lt,
                Expr::local(&inner),
                Expr::IntLit(self.rng.gen_range(1..8)),
            )),
            step: Some(Box::new(Stmt::IncDec { target: LValue::Local(inner.clone()), inc: true })),
            body: Block::default(),
        };
        let switch = Stmt::Switch {
            scrutinee: Expr::bin(
                BinOp::Add,
                Expr::bin(
                    BinOp::Rem,
                    Expr::bin(BinOp::Ushr, Expr::local(&elem), Expr::IntLit(1)),
                    Expr::IntLit(10),
                ),
                Expr::IntLit(base),
            ),
            cases: vec![
                SwitchCase { labels: vec![base], is_default: false, body: vec![inner_loop, accum] },
                SwitchCase { labels: vec![base + 4], is_default: false, body: vec![Stmt::Break] },
                SwitchCase {
                    labels: vec![base + 5],
                    is_default: false,
                    body: vec![Stmt::Assign {
                        target: LValue::Index {
                            array: Box::new(array.clone()),
                            index: Box::new(Expr::IntLit(1)),
                        },
                        op: AssignOp::Set,
                        value: Expr::IntLit(9),
                    }],
                },
            ],
        };
        let body = Block::of(vec![
            Stmt::VarDecl {
                name: elem.clone(),
                ty: Ty::Int,
                init: Expr::Index {
                    array: Box::new(array.clone()),
                    index: Box::new(Expr::local(&idx)),
                },
            },
            switch,
        ]);
        let loop_stmt = Stmt::For {
            init: Some(Box::new(Stmt::VarDecl {
                name: idx.clone(),
                ty: Ty::Int,
                init: Expr::IntLit(0),
            })),
            cond: Some(Expr::bin(
                BinOp::Lt,
                Expr::local(&idx),
                Expr::Length(Box::new(array.clone())),
            )),
            step: Some(Box::new(Stmt::IncDec { target: LValue::Local(idx), inc: true })),
            body,
        };
        // Guard against a null array field; sometimes wrap the whole
        // pattern in an outer repetition loop (deepening the nest, like
        // the method under Figure 2's caller loop).
        let guarded = Stmt::If {
            cond: Expr::bin(BinOp::Ne, array, Expr::Null),
            then_blk: Block::of(vec![loop_stmt]),
            else_blk: None,
        };
        if self.pct(50) {
            let rep = self.fresh("rr");
            vec![Stmt::For {
                init: Some(Box::new(Stmt::VarDecl {
                    name: rep.clone(),
                    ty: Ty::Int,
                    init: Expr::IntLit(0),
                })),
                cond: Some(Expr::bin(BinOp::Lt, Expr::local(&rep), Expr::IntLit(2))),
                step: Some(Box::new(Stmt::IncDec { target: LValue::Local(rep), inc: true })),
                body: Block::of(vec![guarded]),
            }]
        } else {
            vec![guarded]
        }
    }

    // ----- expressions ------------------------------------------------------

    /// A readable int-array expression (field), if one exists and is
    /// accessible from this context.
    fn array_read_base(&mut self, ctx: &Ctx) -> Option<Expr> {
        let f = self
            .fields
            .iter()
            .find(|f| matches!(f.ty, Ty::Array(_)) && (f.is_static || !ctx.is_static))?
            .clone();
        Some(if f.is_static {
            Expr::StaticField { class: "T".into(), field: f.name }
        } else {
            Expr::InstField { recv: Box::new(Expr::This), field: f.name }
        })
    }

    /// An index expression that is *usually* in bounds (`x & 3`), with an
    /// occasional raw index for exception diversity.
    fn bounded_index(&mut self, ctx: &mut Ctx) -> Expr {
        if self.pct(95) {
            Expr::bin(BinOp::And, self.expr(ctx, &Ty::Int, 1), Expr::IntLit(3))
        } else {
            self.expr(ctx, &Ty::Int, 1)
        }
    }

    fn literal(&mut self, ty: &Ty) -> Expr {
        match ty {
            Ty::Int => Expr::IntLit(self.rng.gen_range(-50..50)),
            Ty::Long => Expr::LongLit(self.rng.gen_range(-500..500)),
            Ty::Byte => Expr::IntLit(self.rng.gen_range(-128..=127)),
            Ty::Bool => Expr::BoolLit(self.rng.gen_bool(0.5)),
            _ => Expr::Null,
        }
    }

    /// A call expression to a lower-index method, legal in this context.
    fn callable(&mut self, ctx: &mut Ctx) -> Option<Expr> {
        if ctx.method_idx == 0 {
            return None;
        }
        let callee_idx = self.rng.gen_range(0..ctx.method_idx);
        let info = self.methods[callee_idx].clone();
        // Static callers may only call static callees (no receiver).
        if ctx.is_static && !info.is_static {
            return None;
        }
        let args: Vec<Expr> = info
            .params
            .iter()
            .map(|p| if self.pct(60) { self.expr_shallow(ctx, &p.ty) } else { self.literal(&p.ty) })
            .collect();
        Some(if info.is_static {
            Expr::StaticCall { class: "T".into(), method: info.name, args }
        } else {
            Expr::InstCall { recv: Box::new(Expr::This), method: info.name, args }
        })
    }

    fn expr_shallow(&mut self, ctx: &mut Ctx, ty: &Ty) -> Expr {
        self.expr(ctx, ty, 0)
    }

    /// A type-correct random expression with the given depth budget.
    fn expr(&mut self, ctx: &mut Ctx, ty: &Ty, depth: usize) -> Expr {
        if depth == 0 {
            return self.leaf(ctx, ty);
        }
        match ty {
            Ty::Int => match self.rng.gen_range(0..10) {
                0..=2 => self.leaf(ctx, ty),
                3..=5 => {
                    let op = match self.rng.gen_range(0..8) {
                        0 => BinOp::Add,
                        1 => BinOp::Sub,
                        2 => BinOp::Mul,
                        3 => BinOp::And,
                        4 => BinOp::Or,
                        5 => BinOp::Xor,
                        6 => BinOp::Shl,
                        _ => BinOp::Ushr,
                    };
                    Expr::bin(
                        op,
                        self.expr(ctx, &Ty::Int, depth - 1),
                        self.expr(ctx, &Ty::Int, depth - 1),
                    )
                }
                6 => Expr::bin(
                    BinOp::Rem,
                    self.expr(ctx, &Ty::Int, depth - 1),
                    // Division by `x | 1` cannot trap.
                    Expr::bin(BinOp::Or, self.expr(ctx, &Ty::Int, depth - 1), Expr::IntLit(1)),
                ),
                7 => {
                    Expr::Cast { ty: Ty::Int, expr: Box::new(self.expr(ctx, &Ty::Long, depth - 1)) }
                }
                8 => Expr::Unary {
                    op: if self.pct(50) { UnOp::Neg } else { UnOp::BitNot },
                    expr: Box::new(self.expr(ctx, &Ty::Int, depth - 1)),
                },
                _ => match self.array_read_base(ctx) {
                    Some(array) => Expr::Index {
                        array: Box::new(array),
                        index: Box::new(self.bounded_index(ctx)),
                    },
                    None => self.leaf(ctx, ty),
                },
            },
            Ty::Long => match self.rng.gen_range(0..6) {
                0..=1 => self.leaf(ctx, ty),
                2..=3 => {
                    let op = match self.rng.gen_range(0..5) {
                        0 => BinOp::Add,
                        1 => BinOp::Sub,
                        2 => BinOp::Mul,
                        3 => BinOp::Xor,
                        _ => BinOp::And,
                    };
                    Expr::bin(
                        op,
                        self.expr(ctx, &Ty::Long, depth - 1),
                        self.expr(ctx, &Ty::Long, depth - 1),
                    )
                }
                4 => {
                    Expr::Cast { ty: Ty::Long, expr: Box::new(self.expr(ctx, &Ty::Int, depth - 1)) }
                }
                _ => Expr::bin(
                    BinOp::Shr,
                    self.expr(ctx, &Ty::Long, depth - 1),
                    Expr::IntLit(self.rng.gen_range(0..8)),
                ),
            },
            Ty::Byte => {
                Expr::Cast { ty: Ty::Byte, expr: Box::new(self.expr(ctx, &Ty::Int, depth - 1)) }
            }
            Ty::Bool => match self.rng.gen_range(0..6) {
                0 => self.leaf(ctx, ty),
                1..=3 => {
                    let op = match self.rng.gen_range(0..4) {
                        0 => BinOp::Lt,
                        1 => BinOp::Gt,
                        2 => BinOp::Eq,
                        _ => BinOp::Ne,
                    };
                    Expr::bin(
                        op,
                        self.expr(ctx, &Ty::Int, depth - 1),
                        self.expr(ctx, &Ty::Int, depth - 1),
                    )
                }
                4 => Expr::bin(
                    if self.rng.gen_bool(0.5) { BinOp::LAnd } else { BinOp::LOr },
                    self.expr(ctx, &Ty::Bool, depth - 1),
                    self.expr(ctx, &Ty::Bool, depth - 1),
                ),
                _ => Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(self.expr(ctx, &Ty::Bool, depth - 1)),
                },
            },
            _ => self.leaf(ctx, ty),
        }
    }

    /// A leaf expression: literal, local, or field of the right type.
    fn leaf(&mut self, ctx: &mut Ctx, ty: &Ty) -> Expr {
        let mut options: Vec<Expr> = vec![self.literal(ty)];
        for l in &ctx.locals {
            if &l.ty == ty {
                options.push(Expr::local(&l.name));
            }
        }
        for f in &self.fields {
            if &f.ty == ty && (f.is_static || !ctx.is_static) {
                options.push(if f.is_static {
                    Expr::StaticField { class: "T".into(), field: f.name.clone() }
                } else {
                    Expr::InstField { recv: Box::new(Expr::This), field: f.name.clone() }
                });
            }
        }
        // Int contexts also accept byte variables (implicit widening).
        if *ty == Ty::Int {
            for l in &ctx.locals {
                if l.ty == Ty::Byte {
                    options.push(Expr::local(&l.name));
                }
            }
        }
        let pick = self.rng.gen_range(0..options.len());
        options.swap_remove(pick)
    }
}
