//! Front-end robustness: the lexer/parser/checker must never panic —
//! arbitrary input yields `Ok` or a clean `FrontError`.
//!
//! Formerly proptest-based; now a deterministic sweep driven by the
//! in-repo PRNG so the suite builds and runs with no network access.

use cse_rng::Rng64;

/// A printable-ish random string including plenty of operator characters.
fn arbitrary_string(rng: &mut Rng64, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| {
            // Mix full printable ASCII with a few multi-byte and control
            // characters so the lexer sees genuinely hostile input.
            match rng.gen_range(0u32..20) {
                0 => '\u{0}',
                1 => '\n',
                2 => '\t',
                3 => 'λ',
                4 => '√',
                _ => char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap(),
            }
        })
        .collect()
}

#[test]
fn lexer_total_on_arbitrary_strings() {
    let mut rng = Rng64::seed_from_u64(0x1e8e);
    for _ in 0..512 {
        let input = arbitrary_string(&mut rng, 200);
        let _ = cse_lang::lexer::lex(&input);
    }
}

#[test]
fn parser_total_on_arbitrary_strings() {
    let mut rng = Rng64::seed_from_u64(0x9a45);
    for _ in 0..512 {
        let input = arbitrary_string(&mut rng, 200);
        let _ = cse_lang::parse(&input);
    }
}

#[test]
fn checker_total_on_arbitrary_strings() {
    let mut rng = Rng64::seed_from_u64(0xc4ec);
    for _ in 0..512 {
        let input = arbitrary_string(&mut rng, 300);
        let _ = cse_lang::parse_and_check(&input);
    }
}

/// Token-soup built from plausible Java fragments: far more likely to
/// reach deep parser states than raw character noise.
#[test]
fn parser_total_on_token_soup() {
    const PARTS: &[&str] = &[
        "class", "T", "{", "}", "(", ")", "int", "long", "x", "=", ";", "if", "for", "while",
        "switch", "case", "try", "catch", "finally", "return", "1", "+", "-", "*", "[", "]", ".",
        ",", "new", "static", "void", "main", "<<", ">>>", "&&", "%", "byte", "boolean",
    ];
    let mut rng = Rng64::seed_from_u64(0x50f7);
    for _ in 0..512 {
        let n = rng.gen_range(0..60usize);
        let input =
            (0..n).map(|_| PARTS[rng.gen_range(0..PARTS.len())]).collect::<Vec<_>>().join(" ");
        let _ = cse_lang::parse_and_check(&input);
    }
}
