//! Front-end robustness: the lexer/parser/checker must never panic —
//! arbitrary input yields `Ok` or a clean `FrontError`.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn lexer_total_on_arbitrary_strings(input in ".{0,200}") {
        let _ = cse_lang::lexer::lex(&input);
    }

    #[test]
    fn parser_total_on_arbitrary_strings(input in ".{0,200}") {
        let _ = cse_lang::parse(&input);
    }

    #[test]
    fn checker_total_on_arbitrary_strings(input in ".{0,300}") {
        let _ = cse_lang::parse_and_check(&input);
    }

    /// Token-soup built from plausible Java fragments: far more likely to
    /// reach deep parser states than raw character noise.
    #[test]
    fn parser_total_on_token_soup(parts in proptest::collection::vec(
        prop_oneof![
            Just("class"), Just("T"), Just("{"), Just("}"), Just("("), Just(")"),
            Just("int"), Just("long"), Just("x"), Just("="), Just(";"), Just("if"),
            Just("for"), Just("while"), Just("switch"), Just("case"), Just("try"),
            Just("catch"), Just("finally"), Just("return"), Just("1"), Just("+"),
            Just("-"), Just("*"), Just("["), Just("]"), Just("."), Just(","),
            Just("new"), Just("static"), Just("void"), Just("main"), Just("<<"),
            Just(">>>"), Just("&&"), Just("%"), Just("byte"), Just("boolean"),
        ],
        0..60,
    )) {
        let input = parts.join(" ");
        let _ = cse_lang::parse_and_check(&input);
    }
}
