//! Recursive-descent parser for the MiniJava subset.
//!
//! The grammar is LL(2): one token of lookahead plus a peek distinguishes
//! declarations (`Foo x = ..`) from expression statements (`foo[x] = ..`).
//! `for (T v : arr)` loops are desugared here into indexed `for` loops, so
//! the rest of the pipeline never sees a for-each construct.

use crate::ast::*;
use crate::token::{Tok, Token};
use crate::ty::Ty;
use crate::FrontError;

/// Parses a token stream (as produced by [`crate::lexer::lex`]).
pub fn parse_tokens(tokens: &[Token]) -> Result<Program, FrontError> {
    let mut parser = Parser { tokens, pos: 0, foreach_counter: 0 };
    parser.program()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    /// Counter for fresh names introduced by for-each desugaring.
    foreach_counter: u32,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        let idx = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> &Tok {
        let tok = &self.tokens[self.pos].kind;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn eat(&mut self, kind: &Tok) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: Tok) -> Result<(), FrontError> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(FrontError::at(
                self.line(),
                format!("expected {}, found {}", kind.describe(), self.peek().describe()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, FrontError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(FrontError::at(
                self.line(),
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    // ----- declarations ---------------------------------------------------

    fn program(&mut self) -> Result<Program, FrontError> {
        let mut classes = Vec::new();
        while self.peek() != &Tok::Eof {
            classes.push(self.class_decl()?);
        }
        if classes.is_empty() {
            return Err(FrontError::msg("empty program: expected at least one class"));
        }
        Ok(Program { classes })
    }

    fn class_decl(&mut self) -> Result<ClassDecl, FrontError> {
        self.expect(Tok::KwClass)?;
        let name = self.expect_ident()?;
        self.expect(Tok::LBrace)?;
        let mut class = ClassDecl::new(name);
        while !self.eat(&Tok::RBrace) {
            self.member(&mut class)?;
        }
        Ok(class)
    }

    fn member(&mut self, class: &mut ClassDecl) -> Result<(), FrontError> {
        let is_static = self.eat(&Tok::KwStatic);
        let ty = self.parse_type(true)?;
        let name = self.expect_ident()?;
        if self.peek() == &Tok::LParen {
            let method = self.method_rest(name, is_static, ty)?;
            class.methods.push(method);
        } else {
            if ty == Ty::Void {
                return Err(FrontError::at(self.line(), "fields cannot have type void"));
            }
            let init = if self.eat(&Tok::Assign) { Some(self.expr()?) } else { None };
            self.expect(Tok::Semi)?;
            class.fields.push(FieldDecl { name, ty, is_static, init });
        }
        Ok(())
    }

    fn method_rest(
        &mut self,
        name: String,
        is_static: bool,
        ret: Ty,
    ) -> Result<MethodDecl, FrontError> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                let ty = self.parse_type(false)?;
                let pname = self.expect_ident()?;
                params.push(Param { name: pname, ty });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        Ok(MethodDecl { name, is_static, params, ret, body })
    }

    /// Parses a type. `allow_void` permits the `void` return type.
    fn parse_type(&mut self, allow_void: bool) -> Result<Ty, FrontError> {
        let base = match self.peek().clone() {
            Tok::KwInt => {
                self.bump();
                Ty::Int
            }
            Tok::KwLong => {
                self.bump();
                Ty::Long
            }
            Tok::KwByte => {
                self.bump();
                Ty::Byte
            }
            Tok::KwBoolean => {
                self.bump();
                Ty::Bool
            }
            Tok::KwString => {
                self.bump();
                Ty::Str
            }
            Tok::KwVoid if allow_void => {
                self.bump();
                return Ok(Ty::Void);
            }
            Tok::Ident(name) => {
                self.bump();
                Ty::Class(name)
            }
            other => {
                return Err(FrontError::at(
                    self.line(),
                    format!("expected a type, found {}", other.describe()),
                ));
            }
        };
        let mut ty = base;
        while self.peek() == &Tok::LBracket && self.peek2() == &Tok::RBracket {
            self.bump();
            self.bump();
            ty = ty.array_of();
        }
        Ok(ty)
    }

    /// Whether the current position starts a local-variable declaration.
    fn starts_decl(&self) -> bool {
        match self.peek() {
            Tok::KwInt | Tok::KwLong | Tok::KwByte | Tok::KwBoolean | Tok::KwString => true,
            Tok::Ident(_) => {
                // `Foo x` or `Foo[] x` begins a declaration; `foo[i]` and
                // `foo.bar` and `foo =` do not.
                match self.peek2() {
                    Tok::Ident(_) => true,
                    Tok::LBracket => {
                        let idx = (self.pos + 2).min(self.tokens.len() - 1);
                        self.tokens[idx].kind == Tok::RBracket
                    }
                    _ => false,
                }
            }
            _ => false,
        }
    }

    // ----- statements -----------------------------------------------------

    fn block(&mut self) -> Result<Block, FrontError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    /// Parses a block, or a single statement as a one-statement block.
    fn block_or_stmt(&mut self) -> Result<Block, FrontError> {
        if self.peek() == &Tok::LBrace {
            self.block()
        } else {
            Ok(Block::of(vec![self.stmt()?]))
        }
    }

    fn stmt(&mut self) -> Result<Stmt, FrontError> {
        match self.peek().clone() {
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Block(Block::default()))
            }
            Tok::KwIf => self.if_stmt(),
            Tok::KwWhile => self.while_stmt(),
            Tok::KwDo => self.do_while_stmt(),
            Tok::KwFor => self.for_stmt(),
            Tok::KwSwitch => self.switch_stmt(),
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break)
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue)
            }
            Tok::KwReturn => {
                self.bump();
                let value = if self.peek() == &Tok::Semi { None } else { Some(self.expr()?) };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return(value))
            }
            Tok::KwTry => self.try_stmt(),
            Tok::KwThrow => {
                self.bump();
                let code = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Throw(code))
            }
            Tok::Ident(name) if name == "println" && self.peek2() == &Tok::LParen => {
                self.bump();
                self.bump();
                let value = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Println(value))
            }
            Tok::Ident(name) if name == "__mute" && self.peek2() == &Tok::LParen => {
                self.bump();
                self.bump();
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Mute)
            }
            Tok::Ident(name) if name == "__unmute" && self.peek2() == &Tok::LParen => {
                self.bump();
                self.bump();
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Unmute)
            }
            _ if self.starts_decl() => {
                let stmt = self.var_decl()?;
                self.expect(Tok::Semi)?;
                Ok(stmt)
            }
            _ => {
                let stmt = self.simple_stmt()?;
                self.expect(Tok::Semi)?;
                Ok(stmt)
            }
        }
    }

    fn var_decl(&mut self) -> Result<Stmt, FrontError> {
        let ty = self.parse_type(false)?;
        let name = self.expect_ident()?;
        self.expect(Tok::Assign)?;
        let init = self.expr()?;
        Ok(Stmt::VarDecl { name, ty, init })
    }

    /// An assignment, increment/decrement, or call — the statement forms
    /// allowed without a keyword (also used for `for` init/step clauses).
    fn simple_stmt(&mut self) -> Result<Stmt, FrontError> {
        let line = self.line();
        let expr = self.expr()?;
        let op = match self.peek() {
            Tok::Assign => Some(AssignOp::Set),
            Tok::PlusAssign => Some(AssignOp::Add),
            Tok::MinusAssign => Some(AssignOp::Sub),
            Tok::StarAssign => Some(AssignOp::Mul),
            Tok::SlashAssign => Some(AssignOp::Div),
            Tok::PercentAssign => Some(AssignOp::Rem),
            Tok::AmpAssign => Some(AssignOp::And),
            Tok::PipeAssign => Some(AssignOp::Or),
            Tok::CaretAssign => Some(AssignOp::Xor),
            Tok::ShlAssign => Some(AssignOp::Shl),
            Tok::ShrAssign => Some(AssignOp::Shr),
            Tok::UshrAssign => Some(AssignOp::Ushr),
            Tok::PlusPlus => {
                self.bump();
                let target = expr_to_lvalue(expr, line)?;
                return Ok(Stmt::IncDec { target, inc: true });
            }
            Tok::MinusMinus => {
                self.bump();
                let target = expr_to_lvalue(expr, line)?;
                return Ok(Stmt::IncDec { target, inc: false });
            }
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let value = self.expr()?;
                let target = expr_to_lvalue(expr, line)?;
                Ok(Stmt::Assign { target, op, value })
            }
            None => match expr {
                Expr::StaticCall { .. } | Expr::InstCall { .. } | Expr::FreeCall { .. } => {
                    Ok(Stmt::ExprStmt(expr))
                }
                _ => Err(FrontError::at(line, "expression statements must be method calls")),
            },
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, FrontError> {
        self.expect(Tok::KwIf)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let then_blk = self.block_or_stmt()?;
        let else_blk = if self.eat(&Tok::KwElse) { Some(self.block_or_stmt()?) } else { None };
        Ok(Stmt::If { cond, then_blk, else_blk })
    }

    fn while_stmt(&mut self) -> Result<Stmt, FrontError> {
        self.expect(Tok::KwWhile)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let body = self.block_or_stmt()?;
        Ok(Stmt::While { cond, body })
    }

    fn do_while_stmt(&mut self) -> Result<Stmt, FrontError> {
        self.expect(Tok::KwDo)?;
        let body = self.block_or_stmt()?;
        self.expect(Tok::KwWhile)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        self.expect(Tok::Semi)?;
        Ok(Stmt::DoWhile { body, cond })
    }

    fn for_stmt(&mut self) -> Result<Stmt, FrontError> {
        self.expect(Tok::KwFor)?;
        self.expect(Tok::LParen)?;
        // Detect `for (T v : arr)` for-each form.
        if self.starts_decl() {
            let checkpoint = self.pos;
            let ty = self.parse_type(false)?;
            let name = self.expect_ident()?;
            if self.eat(&Tok::Colon) {
                let array = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block_or_stmt()?;
                return Ok(self.desugar_foreach(ty, name, array, body));
            }
            self.pos = checkpoint;
        }
        let init = if self.peek() == &Tok::Semi {
            None
        } else if self.starts_decl() {
            Some(Box::new(self.var_decl()?))
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(Tok::Semi)?;
        let cond = if self.peek() == &Tok::Semi { None } else { Some(self.expr()?) };
        self.expect(Tok::Semi)?;
        let step =
            if self.peek() == &Tok::RParen { None } else { Some(Box::new(self.simple_stmt()?)) };
        self.expect(Tok::RParen)?;
        let body = self.block_or_stmt()?;
        Ok(Stmt::For { init, cond, step, body })
    }

    /// Desugars `for (T v : arr) body` into an indexed loop over a temporary
    /// holding `arr`, so the array expression is evaluated exactly once.
    fn desugar_foreach(&mut self, ty: Ty, name: String, array: Expr, mut body: Block) -> Stmt {
        self.foreach_counter += 1;
        let arr_tmp = format!("$fe_a{}", self.foreach_counter);
        let idx_tmp = format!("$fe_i{}", self.foreach_counter);
        body.stmts.insert(
            0,
            Stmt::VarDecl {
                name,
                ty: ty.clone(),
                init: Expr::Index {
                    array: Box::new(Expr::local(&arr_tmp)),
                    index: Box::new(Expr::local(&idx_tmp)),
                },
            },
        );
        let loop_stmt = Stmt::For {
            init: Some(Box::new(Stmt::VarDecl {
                name: idx_tmp.clone(),
                ty: Ty::Int,
                init: Expr::IntLit(0),
            })),
            cond: Some(Expr::bin(
                BinOp::Lt,
                Expr::local(&idx_tmp),
                Expr::Length(Box::new(Expr::local(&arr_tmp))),
            )),
            step: Some(Box::new(Stmt::IncDec { target: LValue::Local(idx_tmp), inc: true })),
            body,
        };
        Stmt::Block(Block::of(vec![
            Stmt::VarDecl { name: arr_tmp, ty: ty.array_of(), init: array },
            loop_stmt,
        ]))
    }

    fn switch_stmt(&mut self) -> Result<Stmt, FrontError> {
        self.expect(Tok::KwSwitch)?;
        self.expect(Tok::LParen)?;
        let scrutinee = self.expr()?;
        self.expect(Tok::RParen)?;
        self.expect(Tok::LBrace)?;
        let mut cases: Vec<SwitchCase> = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let mut labels = Vec::new();
            let mut is_default = false;
            loop {
                match self.peek() {
                    Tok::KwCase => {
                        self.bump();
                        labels.push(self.case_label()?);
                        self.expect(Tok::Colon)?;
                    }
                    Tok::KwDefault => {
                        self.bump();
                        self.expect(Tok::Colon)?;
                        is_default = true;
                    }
                    _ => break,
                }
            }
            if labels.is_empty() && !is_default {
                return Err(FrontError::at(self.line(), "expected `case` or `default` label"));
            }
            let mut body = Vec::new();
            while !matches!(self.peek(), Tok::KwCase | Tok::KwDefault | Tok::RBrace) {
                body.push(self.stmt()?);
            }
            cases.push(SwitchCase { labels, is_default, body });
        }
        Ok(Stmt::Switch { scrutinee, cases })
    }

    fn case_label(&mut self) -> Result<i32, FrontError> {
        let negative = self.eat(&Tok::Minus);
        match self.peek().clone() {
            Tok::IntLit(v) => {
                self.bump();
                let v = if negative { -v } else { v };
                i32::try_from(v)
                    .map_err(|_| FrontError::at(self.line(), "case label out of int range"))
            }
            other => Err(FrontError::at(
                self.line(),
                format!("expected integer case label, found {}", other.describe()),
            )),
        }
    }

    fn try_stmt(&mut self) -> Result<Stmt, FrontError> {
        self.expect(Tok::KwTry)?;
        let body = self.block()?;
        let catch = if self.eat(&Tok::KwCatch) {
            // Optional `(Exception e)` style binder is accepted and ignored;
            // the catch-all clause has no binding in MiniJava.
            if self.eat(&Tok::LParen) {
                let _ = self.expect_ident();
                let _ = self.expect_ident();
                self.expect(Tok::RParen)?;
            }
            Some(self.block()?)
        } else {
            None
        };
        let finally = if self.eat(&Tok::KwFinally) { Some(self.block()?) } else { None };
        if catch.is_none() && finally.is_none() {
            return Err(FrontError::at(self.line(), "try requires a catch or finally clause"));
        }
        Ok(Stmt::Try { body, catch, finally })
    }

    // ----- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, FrontError> {
        self.binary_expr(0)
    }

    /// Precedence-climbing binary-expression parser.
    fn binary_expr(&mut self, min_level: u8) -> Result<Expr, FrontError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, level) = match self.peek() {
                Tok::PipePipe => (BinOp::LOr, 1),
                Tok::AmpAmp => (BinOp::LAnd, 2),
                Tok::Pipe => (BinOp::Or, 3),
                Tok::Caret => (BinOp::Xor, 4),
                Tok::Amp => (BinOp::And, 5),
                Tok::EqEq => (BinOp::Eq, 6),
                Tok::BangEq => (BinOp::Ne, 6),
                Tok::Lt => (BinOp::Lt, 7),
                Tok::Le => (BinOp::Le, 7),
                Tok::Gt => (BinOp::Gt, 7),
                Tok::Ge => (BinOp::Ge, 7),
                Tok::Shl => (BinOp::Shl, 8),
                Tok::Shr => (BinOp::Shr, 8),
                Tok::Ushr => (BinOp::Ushr, 8),
                Tok::Plus => (BinOp::Add, 9),
                Tok::Minus => (BinOp::Sub, 9),
                Tok::Star => (BinOp::Mul, 10),
                Tok::Slash => (BinOp::Div, 10),
                Tok::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if level < min_level {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(level + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, FrontError> {
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                // Fold `-literal` immediately so i32::MIN / i64::MIN parse.
                match self.peek().clone() {
                    Tok::IntLit(v) => {
                        self.bump();
                        let v = -v;
                        let v = i32::try_from(v)
                            .map_err(|_| FrontError::at(self.line(), "int literal out of range"))?;
                        Ok(self.postfix(Expr::IntLit(v))?)
                    }
                    Tok::LongLit(v) => {
                        self.bump();
                        Ok(Expr::LongLit(v.wrapping_neg()))
                    }
                    _ => {
                        let inner = self.unary_expr()?;
                        Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(inner) })
                    }
                }
            }
            Tok::Bang => {
                self.bump();
                let inner = self.unary_expr()?;
                Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(inner) })
            }
            Tok::Tilde => {
                self.bump();
                let inner = self.unary_expr()?;
                Ok(Expr::Unary { op: UnOp::BitNot, expr: Box::new(inner) })
            }
            Tok::LParen => {
                // Cast or parenthesized expression. Casts are restricted to
                // primitive target types, so one token of lookahead decides.
                match self.peek2() {
                    Tok::KwInt | Tok::KwLong | Tok::KwByte | Tok::KwBoolean => {
                        self.bump();
                        let ty = self.parse_type(false)?;
                        self.expect(Tok::RParen)?;
                        let inner = self.unary_expr()?;
                        Ok(Expr::Cast { ty, expr: Box::new(inner) })
                    }
                    _ => {
                        self.bump();
                        let inner = self.expr()?;
                        self.expect(Tok::RParen)?;
                        self.postfix(inner)
                    }
                }
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, FrontError> {
        let expr = match self.peek().clone() {
            Tok::IntLit(v) => {
                self.bump();
                let v = i32::try_from(v)
                    .map_err(|_| FrontError::at(self.line(), "int literal out of range"))?;
                Expr::IntLit(v)
            }
            Tok::LongLit(v) => {
                self.bump();
                Expr::LongLit(v)
            }
            Tok::StrLit(s) => {
                self.bump();
                Expr::StrLit(s)
            }
            Tok::KwTrue => {
                self.bump();
                Expr::BoolLit(true)
            }
            Tok::KwFalse => {
                self.bump();
                Expr::BoolLit(false)
            }
            Tok::KwNull => {
                self.bump();
                Expr::Null
            }
            Tok::KwThis => {
                self.bump();
                Expr::This
            }
            Tok::KwNew => return self.new_expr(),
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    let args = self.call_args()?;
                    Expr::FreeCall { name, args }
                } else {
                    Expr::Name(name)
                }
            }
            other => {
                return Err(FrontError::at(
                    self.line(),
                    format!("expected expression, found {}", other.describe()),
                ));
            }
        };
        self.postfix(expr)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, FrontError> {
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(args)
    }

    fn postfix(&mut self, mut expr: Expr) -> Result<Expr, FrontError> {
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    let name = self.expect_ident()?;
                    if self.peek() == &Tok::LParen {
                        let args = self.call_args()?;
                        // `Math.min(..)` and friends become intrinsics here;
                        // other `name.method(..)` forms are resolved later.
                        if let Expr::Name(recv) = &expr {
                            if recv == "Math" {
                                let which = match name.as_str() {
                                    "min" => Intrinsic::Min,
                                    "max" => Intrinsic::Max,
                                    "abs" => Intrinsic::Abs,
                                    other => {
                                        return Err(FrontError::at(
                                            self.line(),
                                            format!("unknown Math intrinsic `{other}`"),
                                        ));
                                    }
                                };
                                expr = Expr::IntrinsicCall { which, args };
                                continue;
                            }
                        }
                        expr = Expr::InstCall { recv: Box::new(expr), method: name, args };
                    } else if name == "length" {
                        expr = Expr::Length(Box::new(expr));
                    } else {
                        expr = Expr::InstField { recv: Box::new(expr), field: name };
                    }
                }
                Tok::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    expr = Expr::Index { array: Box::new(expr), index: Box::new(index) };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn new_expr(&mut self) -> Result<Expr, FrontError> {
        self.expect(Tok::KwNew)?;
        let base = match self.peek().clone() {
            Tok::KwInt => {
                self.bump();
                Ty::Int
            }
            Tok::KwLong => {
                self.bump();
                Ty::Long
            }
            Tok::KwByte => {
                self.bump();
                Ty::Byte
            }
            Tok::KwBoolean => {
                self.bump();
                Ty::Bool
            }
            Tok::KwString => {
                self.bump();
                Ty::Str
            }
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    self.expect(Tok::LParen)?;
                    self.expect(Tok::RParen)?;
                    return self.postfix(Expr::NewObject(name));
                }
                Ty::Class(name)
            }
            other => {
                return Err(FrontError::at(
                    self.line(),
                    format!("expected type after `new`, found {}", other.describe()),
                ));
            }
        };
        if self.peek() != &Tok::LBracket {
            return Err(FrontError::at(self.line(), "expected `[` or `(` after `new T`"));
        }
        // `new T[] { .. }` initializer form.
        if self.peek2() == &Tok::RBracket {
            self.bump();
            self.bump();
            self.expect(Tok::LBrace)?;
            let mut elems = Vec::new();
            if self.peek() != &Tok::RBrace {
                loop {
                    elems.push(self.expr()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(Tok::RBrace)?;
            return self.postfix(Expr::NewArrayInit { elem: base, elems });
        }
        // `new T[e0][e1]..[][]..` sized dimensions then optional empty ones.
        let mut dims = Vec::new();
        while self.peek() == &Tok::LBracket && self.peek2() != &Tok::RBracket {
            self.bump();
            dims.push(self.expr()?);
            self.expect(Tok::RBracket)?;
        }
        let mut extra_dims = 0;
        while self.peek() == &Tok::LBracket && self.peek2() == &Tok::RBracket {
            self.bump();
            self.bump();
            extra_dims += 1;
        }
        self.postfix(Expr::NewArray { elem: base, dims, extra_dims })
    }
}

/// Converts a parsed expression into an assignable location.
fn expr_to_lvalue(expr: Expr, line: u32) -> Result<LValue, FrontError> {
    match expr {
        Expr::Name(name) => Ok(LValue::Name(name)),
        Expr::Local(name) => Ok(LValue::Local(name)),
        Expr::InstField { recv, field } => Ok(LValue::InstField { recv, field }),
        Expr::StaticField { class, field } => Ok(LValue::StaticField { class, field }),
        Expr::Index { array, index } => Ok(LValue::Index { array, index }),
        _ => Err(FrontError::at(line, "invalid assignment target")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn parses_minimal_program() {
        let p = parse("class T { static void main() { } }").unwrap();
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.classes[0].methods.len(), 1);
    }

    #[test]
    fn parses_fields_and_initializers() {
        let p =
            parse("class T { int x; static long y = 7L; boolean z = true; byte b = 1; }").unwrap();
        let c = &p.classes[0];
        assert_eq!(c.fields.len(), 4);
        assert!(c.fields[1].is_static);
        assert_eq!(c.fields[1].init, Some(Expr::LongLit(7)));
    }

    #[test]
    fn precedence_is_java_like() {
        let p = parse("class T { static int f() { return 1 + 2 * 3 << 1 & 7; } }").unwrap();
        let body = &p.classes[0].methods[0].body.stmts[0];
        // ((1 + (2*3)) << 1) & 7
        let Stmt::Return(Some(Expr::Binary { op: BinOp::And, lhs, .. })) = body else {
            panic!("unexpected shape: {body:?}");
        };
        let Expr::Binary { op: BinOp::Shl, lhs: add, .. } = lhs.as_ref() else {
            panic!("expected shl under and");
        };
        assert!(matches!(add.as_ref(), Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            class T {
                static int f(int n) {
                    int acc = 0;
                    for (int i = 0; i < n; i++) {
                        if (i % 2 == 0) { acc += i; } else acc--;
                    }
                    while (acc > 100) { acc /= 2; }
                    do { acc++; } while (acc < 0);
                    switch (acc % 3) {
                        case 0: acc += 1; break;
                        case 1:
                        case 2: acc += 2; break;
                        default: acc = 0;
                    }
                    return acc;
                }
                static void main() { println(f(10)); }
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.classes[0].methods[0].params.len(), 1);
    }

    #[test]
    fn parses_foreach_desugared() {
        let src = "class T { static int f(int[] k) { int s = 0; for (int m : k) { s += m; } return s; } }";
        let p = parse(src).unwrap();
        let Stmt::Block(b) = &p.classes[0].methods[0].body.stmts[1] else {
            panic!("expected desugared block");
        };
        assert!(matches!(b.stmts[0], Stmt::VarDecl { .. }));
        assert!(matches!(b.stmts[1], Stmt::For { .. }));
    }

    #[test]
    fn parses_negative_literals_at_extremes() {
        let p = parse("class T { static void main() { println(-2147483648); println(-9223372036854775808L); } }");
        assert!(p.is_ok(), "{p:?}");
    }

    #[test]
    fn parses_new_forms() {
        let src = r#"
            class P { int v; }
            class T {
                static void main() {
                    int[] a = new int[3];
                    int[][] b = new int[2][4];
                    long[][] c = new long[5][];
                    int[] d = new int[] { 1, 2, 3 };
                    P p = new P();
                }
            }
        "#;
        parse(src).unwrap();
    }

    #[test]
    fn parses_try_catch_finally_and_throw() {
        let src = r#"
            class T {
                static void main() {
                    try { throw 3; } catch { println(1); } finally { println(2); }
                    try { println(0); } finally { println(9); }
                }
            }
        "#;
        parse(src).unwrap();
        assert!(parse("class T { static void main() { try { } } }").is_err());
    }

    #[test]
    fn parses_math_intrinsics() {
        let src = "class T { static void main() { println(Math.min(1, Math.max(2, 3))); } }";
        let p = parse(src).unwrap();
        let Stmt::Println(Expr::IntrinsicCall { which: Intrinsic::Min, .. }) =
            &p.classes[0].methods[0].body.stmts[0]
        else {
            panic!("expected intrinsic call");
        };
    }

    #[test]
    fn rejects_non_call_expression_statement() {
        assert!(parse("class T { static void main() { 1 + 2; } }").is_err());
    }

    #[test]
    fn parses_casts_vs_parens() {
        let src = "class T { static void main() { int x = (int) 5L; int y = (x) + 1; byte b = (byte) x; } }";
        parse(src).unwrap();
    }

    #[test]
    fn parses_compound_assignments() {
        let src =
            "class T { static void main() { int x = 1; x += 2; x <<= 1; x >>>= 2; x ^= 3; x--; } }";
        let p = parse(src).unwrap();
        assert_eq!(p.classes[0].methods[0].body.stmts.len(), 6);
    }

    #[test]
    fn parses_mute_intrinsics() {
        let src = "class T { static void main() { __mute(); println(1); __unmute(); } }";
        let p = parse(src).unwrap();
        assert_eq!(p.classes[0].methods[0].body.stmts[0], Stmt::Mute);
        assert_eq!(p.classes[0].methods[0].body.stmts[2], Stmt::Unmute);
    }
}
