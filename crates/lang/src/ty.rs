//! Static types of the MiniJava subset.

/// A MiniJava static type.
///
/// The numeric tower is `byte < int < long` with Java promotion rules:
/// `byte` promotes to `int` in any arithmetic context, and mixing `int` with
/// `long` promotes to `long`. There is deliberately no floating point — the
/// paper's Artemis excludes it as well (§4.5).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 32-bit two's-complement integer with wrapping arithmetic.
    Int,
    /// 64-bit two's-complement integer with wrapping arithmetic.
    Long,
    /// 8-bit two's-complement integer; promotes to `int` in arithmetic.
    Byte,
    /// Boolean; never mixes with the numeric tower.
    Bool,
    /// Immutable string; supports `+` concatenation and `println`.
    Str,
    /// The return "type" of `void` methods; not a value type.
    Void,
    /// Array of the element type (arrays of arrays give multi-dim arrays).
    Array(Box<Ty>),
    /// A user-declared class.
    Class(String),
}

impl Ty {
    /// Returns `true` for `byte`, `int`, and `long`.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Ty::Int | Ty::Long | Ty::Byte)
    }

    /// Returns `true` for types that occupy a value slot (everything but
    /// `void`).
    pub fn is_value(&self) -> bool {
        !matches!(self, Ty::Void)
    }

    /// Returns `true` for reference types (arrays, classes, strings).
    pub fn is_reference(&self) -> bool {
        matches!(self, Ty::Array(_) | Ty::Class(_) | Ty::Str)
    }

    /// Returns `true` for the "primitive-alike" types of the paper's
    /// `SynExpr` (Algorithm 2): the numeric tower, booleans, and strings.
    pub fn is_primitive_alike(&self) -> bool {
        matches!(self, Ty::Int | Ty::Long | Ty::Byte | Ty::Bool | Ty::Str)
    }

    /// Wraps `self` in one array dimension.
    pub fn array_of(self) -> Ty {
        Ty::Array(Box::new(self))
    }

    /// The element type if `self` is an array.
    pub fn elem(&self) -> Option<&Ty> {
        match self {
            Ty::Array(e) => Some(e),
            _ => None,
        }
    }

    /// The number of array dimensions (0 for non-arrays).
    pub fn dimensions(&self) -> usize {
        match self {
            Ty::Array(e) => 1 + e.dimensions(),
            _ => 0,
        }
    }

    /// The scalar type at the bottom of an array type.
    pub fn base(&self) -> &Ty {
        match self {
            Ty::Array(e) => e.base(),
            other => other,
        }
    }

    /// The binary numeric promotion of two numeric types.
    ///
    /// Returns `None` when either side is non-numeric.
    pub fn promote(&self, other: &Ty) -> Option<Ty> {
        if !self.is_numeric() || !other.is_numeric() {
            return None;
        }
        if *self == Ty::Long || *other == Ty::Long {
            Some(Ty::Long)
        } else {
            // `byte op byte` still yields `int`, as in Java.
            Some(Ty::Int)
        }
    }

    /// Whether a value of type `from` is implicitly assignable to `self`.
    ///
    /// Widening (`byte -> int -> long`) is implicit; narrowing requires an
    /// explicit cast. `null` assignability is handled by the type checker.
    pub fn accepts(&self, from: &Ty) -> bool {
        if self == from {
            return true;
        }
        matches!((self, from), (Ty::Int, Ty::Byte) | (Ty::Long, Ty::Byte) | (Ty::Long, Ty::Int))
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Long => write!(f, "long"),
            Ty::Byte => write!(f, "byte"),
            Ty::Bool => write!(f, "boolean"),
            Ty::Str => write!(f, "String"),
            Ty::Void => write!(f, "void"),
            Ty::Array(e) => write!(f, "{e}[]"),
            Ty::Class(name) => write!(f, "{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_follows_java_rules() {
        assert_eq!(Ty::Byte.promote(&Ty::Byte), Some(Ty::Int));
        assert_eq!(Ty::Int.promote(&Ty::Byte), Some(Ty::Int));
        assert_eq!(Ty::Int.promote(&Ty::Long), Some(Ty::Long));
        assert_eq!(Ty::Long.promote(&Ty::Long), Some(Ty::Long));
        assert_eq!(Ty::Bool.promote(&Ty::Int), None);
        assert_eq!(Ty::Str.promote(&Ty::Str), None);
    }

    #[test]
    fn widening_is_implicit_narrowing_is_not() {
        assert!(Ty::Long.accepts(&Ty::Int));
        assert!(Ty::Int.accepts(&Ty::Byte));
        assert!(!Ty::Byte.accepts(&Ty::Int));
        assert!(!Ty::Int.accepts(&Ty::Long));
        assert!(Ty::Int.accepts(&Ty::Int));
    }

    #[test]
    fn array_helpers() {
        let t = Ty::Int.array_of().array_of();
        assert_eq!(t.dimensions(), 2);
        assert_eq!(t.base(), &Ty::Int);
        assert_eq!(t.elem(), Some(&Ty::Int.array_of()));
        assert_eq!(t.to_string(), "int[][]");
    }

    #[test]
    fn classification() {
        assert!(Ty::Str.is_primitive_alike());
        assert!(Ty::Str.is_reference());
        assert!(!Ty::Class("T".into()).is_primitive_alike());
        assert!(!Ty::Void.is_value());
    }
}
