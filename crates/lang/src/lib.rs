//! MiniJava front end: the source-level substrate for JIT-op neutral mutation.
//!
//! This crate plays the role that the Spoon framework plays for the paper's
//! Artemis implementation: it parses a statically-typed Java subset into a
//! mutable AST, type-checks and name-resolves it, and prints it back to
//! source. The subset deliberately covers everything the JoNM mutators need
//! (loops, method calls, fields, control flags, `try`/`catch`/`finally`) and
//! deliberately excludes floating point and concurrency, exactly as the
//! paper's Artemis does (§4.5).
//!
//! # Examples
//!
//! ```
//! let src = r#"
//!     class T {
//!         static int f(int x) { return x * 2; }
//!         static void main() { println(f(21)); }
//!     }
//! "#;
//! let program = cse_lang::parse_and_check(src).unwrap();
//! assert_eq!(program.classes.len(), 1);
//! let printed = cse_lang::pretty::print(&program);
//! // The printed program re-parses to the same AST.
//! let reparsed = cse_lang::parse_and_check(&printed).unwrap();
//! assert_eq!(program, reparsed);
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod scope;
pub mod token;
pub mod ty;
pub mod typeck;

pub use ast::Program;
pub use ty::Ty;

/// A front-end error: lexing, parsing, or type checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number the error was detected at, when known.
    pub line: Option<u32>,
}

impl std::fmt::Display for FrontError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for FrontError {}

impl FrontError {
    /// Creates an error with no line information.
    pub fn msg(message: impl Into<String>) -> Self {
        FrontError { message: message.into(), line: None }
    }

    /// Creates an error attached to a 1-based source line.
    pub fn at(line: u32, message: impl Into<String>) -> Self {
        FrontError { message: message.into(), line: Some(line) }
    }
}

/// Parses source text and returns the raw (unresolved) AST.
pub fn parse(src: &str) -> Result<Program, FrontError> {
    let tokens = lexer::lex(src)?;
    parser::parse_tokens(&tokens)
}

/// Parses, name-resolves, and type-checks source text.
///
/// The returned program has every bare name resolved to a local, parameter,
/// or field access, so downstream consumers (the bytecode compiler and the
/// JoNM mutators) never see an ambiguous [`ast::Expr::Name`].
pub fn parse_and_check(src: &str) -> Result<Program, FrontError> {
    let mut program = parse(src)?;
    typeck::check(&mut program)?;
    Ok(program)
}
