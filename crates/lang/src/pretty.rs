//! Precedence-aware pretty printer.
//!
//! Printing a checked program and re-checking the printed text yields an
//! identical AST (a property test in the crate root enforces this); the JoNM
//! pipeline relies on it to emit reproducer sources for bug reports.

use crate::ast::*;

/// Prints a whole program as compilable MiniJava source.
pub fn print(program: &Program) -> String {
    let mut p = Printer::default();
    for class in &program.classes {
        p.class(class);
    }
    p.out
}

/// Prints a single expression (used in diagnostics and tests).
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(expr, 0);
    p.out
}

/// Prints a single statement at indentation level zero.
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::default();
    p.stmt(stmt);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn open(&mut self, text: &str) {
        self.line(text);
        self.indent += 1;
    }

    fn close(&mut self, text: &str) {
        self.indent -= 1;
        self.line(text);
    }

    fn class(&mut self, class: &ClassDecl) {
        self.open(&format!("class {} {{", class.name));
        for field in &class.fields {
            let stat = if field.is_static { "static " } else { "" };
            match &field.init {
                Some(init) => {
                    let mut e = Printer::default();
                    e.expr(init, 0);
                    self.line(&format!("{stat}{} {} = {};", field.ty, field.name, e.out));
                }
                None => self.line(&format!("{stat}{} {};", field.ty, field.name)),
            }
        }
        for method in &class.methods {
            self.method(method);
        }
        self.close("}");
    }

    fn method(&mut self, method: &MethodDecl) {
        let stat = if method.is_static { "static " } else { "" };
        let params: Vec<String> =
            method.params.iter().map(|p| format!("{} {}", p.ty, p.name)).collect();
        self.open(&format!("{stat}{} {}({}) {{", method.ret, method.name, params.join(", ")));
        for stmt in &method.body.stmts {
            self.stmt(stmt);
        }
        self.close("}");
    }

    fn block_body(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::VarDecl { name, ty, init } => {
                let init = render(init);
                self.line(&format!("{ty} {name} = {init};"));
            }
            Stmt::Assign { target, op, value } => {
                let op_text = match op {
                    AssignOp::Set => "=",
                    AssignOp::Add => "+=",
                    AssignOp::Sub => "-=",
                    AssignOp::Mul => "*=",
                    AssignOp::Div => "/=",
                    AssignOp::Rem => "%=",
                    AssignOp::And => "&=",
                    AssignOp::Or => "|=",
                    AssignOp::Xor => "^=",
                    AssignOp::Shl => "<<=",
                    AssignOp::Shr => ">>=",
                    AssignOp::Ushr => ">>>=",
                };
                self.line(&format!("{} {op_text} {};", self.lvalue(target), render(value)));
            }
            Stmt::IncDec { target, inc } => {
                let op = if *inc { "++" } else { "--" };
                self.line(&format!("{}{op};", self.lvalue(target)));
            }
            Stmt::If { cond, then_blk, else_blk } => {
                self.open(&format!("if ({}) {{", render(cond)));
                self.block_body(then_blk);
                match else_blk {
                    Some(else_blk) => {
                        self.indent -= 1;
                        self.line("} else {");
                        self.indent += 1;
                        self.block_body(else_blk);
                        self.close("}");
                    }
                    None => self.close("}"),
                }
            }
            Stmt::While { cond, body } => {
                self.open(&format!("while ({}) {{", render(cond)));
                self.block_body(body);
                self.close("}");
            }
            Stmt::DoWhile { body, cond } => {
                self.open("do {");
                self.block_body(body);
                self.close(&format!("}} while ({});", render(cond)));
            }
            Stmt::For { init, cond, step, body } => {
                let init_text = init.as_ref().map(|s| inline_stmt(s)).unwrap_or_default();
                let cond_text = cond.as_ref().map(render).unwrap_or_default();
                let step_text = step.as_ref().map(|s| inline_stmt(s)).unwrap_or_default();
                self.open(&format!("for ({init_text}; {cond_text}; {step_text}) {{"));
                self.block_body(body);
                self.close("}");
            }
            Stmt::Switch { scrutinee, cases } => {
                self.open(&format!("switch ({}) {{", render(scrutinee)));
                for case in cases {
                    for label in &case.labels {
                        self.line(&format!("case {label}:"));
                    }
                    if case.is_default {
                        self.line("default:");
                    }
                    self.indent += 1;
                    for stmt in &case.body {
                        self.stmt(stmt);
                    }
                    self.indent -= 1;
                }
                self.close("}");
            }
            Stmt::Break => self.line("break;"),
            Stmt::Continue => self.line("continue;"),
            Stmt::Return(None) => self.line("return;"),
            Stmt::Return(Some(value)) => self.line(&format!("return {};", render(value))),
            Stmt::ExprStmt(expr) => self.line(&format!("{};", render(expr))),
            Stmt::Block(block) => {
                self.open("{");
                self.block_body(block);
                self.close("}");
            }
            Stmt::Try { body, catch, finally } => {
                self.open("try {");
                self.block_body(body);
                if let Some(catch) = catch {
                    self.indent -= 1;
                    self.line("} catch {");
                    self.indent += 1;
                    self.block_body(catch);
                }
                if let Some(finally) = finally {
                    self.indent -= 1;
                    self.line("} finally {");
                    self.indent += 1;
                    self.block_body(finally);
                }
                self.close("}");
            }
            Stmt::Throw(code) => self.line(&format!("throw {};", render(code))),
            Stmt::Println(value) => self.line(&format!("println({});", render(value))),
            Stmt::Mute => self.line("__mute();"),
            Stmt::Unmute => self.line("__unmute();"),
        }
    }

    fn lvalue(&self, lvalue: &LValue) -> String {
        match lvalue {
            LValue::Local(name) | LValue::Name(name) => name.clone(),
            LValue::StaticField { class, field } => format!("{class}.{field}"),
            LValue::InstField { recv, field } => format!("{}.{field}", render_at(recv, POSTFIX)),
            LValue::Index { array, index } => {
                format!("{}[{}]", render_at(array, POSTFIX), render(index))
            }
        }
    }

    fn expr(&mut self, expr: &Expr, min_level: u8) {
        let text = render_at(expr, min_level);
        self.out.push_str(&text);
    }
}

/// Renders a statement without trailing newline/semicolon handling suitable
/// for `for (init; cond; step)` headers.
fn inline_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::default();
    p.stmt(stmt);
    let text = p.out.trim_end().to_string();
    text.strip_suffix(';').map(str::to_string).unwrap_or(text)
}

const POSTFIX: u8 = 12;
const UNARY: u8 = 11;

fn level_of(expr: &Expr) -> u8 {
    match expr {
        Expr::Binary { op, .. } => match op {
            BinOp::LOr => 1,
            BinOp::LAnd => 2,
            BinOp::Or => 3,
            BinOp::Xor => 4,
            BinOp::And => 5,
            BinOp::Eq | BinOp::Ne => 6,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 7,
            BinOp::Shl | BinOp::Shr | BinOp::Ushr => 8,
            BinOp::Add | BinOp::Sub => 9,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 10,
        },
        Expr::Unary { .. } | Expr::Cast { .. } => UNARY,
        _ => POSTFIX + 1,
    }
}

/// Renders `expr`, parenthesizing when its precedence is below `min_level`.
fn render_at(expr: &Expr, min_level: u8) -> String {
    let level = level_of(expr);
    let text = render_inner(expr, level);
    if level < min_level {
        format!("({text})")
    } else {
        text
    }
}

fn render(expr: &Expr) -> String {
    render_at(expr, 0)
}

fn render_inner(expr: &Expr, level: u8) -> String {
    match expr {
        Expr::IntLit(v) => v.to_string(),
        Expr::LongLit(v) => format!("{v}L"),
        Expr::BoolLit(b) => b.to_string(),
        Expr::StrLit(s) => {
            let mut text = String::from("\"");
            for c in s.chars() {
                match c {
                    '\n' => text.push_str("\\n"),
                    '\t' => text.push_str("\\t"),
                    '\\' => text.push_str("\\\\"),
                    '"' => text.push_str("\\\""),
                    other => text.push(other),
                }
            }
            text.push('"');
            text
        }
        Expr::Null => "null".to_string(),
        Expr::Name(name) | Expr::Local(name) => name.clone(),
        Expr::This => "this".to_string(),
        Expr::StaticField { class, field } => format!("{class}.{field}"),
        Expr::InstField { recv, field } => format!("{}.{field}", render_at(recv, POSTFIX)),
        Expr::Index { array, index } => {
            format!("{}[{}]", render_at(array, POSTFIX), render(index))
        }
        Expr::Length(array) => format!("{}.length", render_at(array, POSTFIX)),
        Expr::NewObject(class) => format!("new {class}()"),
        Expr::NewArray { elem, dims, extra_dims } => {
            let mut text = format!("new {elem}");
            for dim in dims {
                text.push_str(&format!("[{}]", render(dim)));
            }
            for _ in 0..*extra_dims {
                text.push_str("[]");
            }
            text
        }
        Expr::NewArrayInit { elem, elems } => {
            let elems: Vec<String> = elems.iter().map(render).collect();
            format!("new {elem}[] {{ {} }}", elems.join(", "))
        }
        Expr::StaticCall { class, method, args } => {
            format!("{class}.{method}({})", args.iter().map(render).collect::<Vec<_>>().join(", "))
        }
        Expr::InstCall { recv, method, args } => {
            format!(
                "{}.{method}({})",
                render_at(recv, POSTFIX),
                args.iter().map(render).collect::<Vec<_>>().join(", ")
            )
        }
        Expr::FreeCall { name, args } => {
            format!("{name}({})", args.iter().map(render).collect::<Vec<_>>().join(", "))
        }
        Expr::IntrinsicCall { which, args } => {
            let name = match which {
                Intrinsic::Min => "min",
                Intrinsic::Max => "max",
                Intrinsic::Abs => "abs",
            };
            format!("Math.{name}({})", args.iter().map(render).collect::<Vec<_>>().join(", "))
        }
        Expr::Unary { op, expr } => {
            let symbol = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            };
            // `Neg` always parenthesizes its operand so that `-(5)` does not
            // re-parse as the folded literal `-5` (which would change the
            // AST shape on a round trip).
            match op {
                UnOp::Neg => format!("{symbol}({})", render(expr)),
                _ => format!("{symbol}{}", render_at(expr, level)),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let symbol = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Xor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Ushr => ">>>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::LAnd => "&&",
                BinOp::LOr => "||",
            };
            format!("{} {symbol} {}", render_at(lhs, level), render_at(rhs, level + 1))
        }
        Expr::Cast { ty, expr } => format!("({ty}) {}", render_at(expr, level)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_check;

    fn round_trip(src: &str) {
        let p1 = parse_and_check(src).unwrap();
        let printed = print(&p1);
        let p2 = parse_and_check(&printed).unwrap_or_else(|e| {
            panic!("printed source failed to parse: {e}\n---\n{printed}");
        });
        assert_eq!(p1, p2, "round trip changed the AST:\n---\n{printed}");
    }

    #[test]
    fn round_trips_expressions() {
        round_trip(
            r#"
            class T {
                static int f(int a, int b) {
                    int c = (a + b) * 3 - a % (b | 1);
                    long d = ((long) c << 3) >>> 2;
                    boolean e = !(a < b) && (b >= 0 || a == 3);
                    byte g = (byte) (c + 1);
                    int h = -(a) + ~b;
                    if (e) { return (int) d; }
                    return c + g + h;
                }
                static void main() { println(f(3, 4)); }
            }
        "#,
        );
    }

    #[test]
    fn round_trips_control_flow() {
        round_trip(
            r#"
            class T {
                static int s;
                int inst = 4;
                static void main() {
                    int acc = 0;
                    for (int i = 0; i < 10; i++) {
                        switch (i % 4) {
                            case 0: acc += 1; break;
                            case 1:
                            case 2: acc -= 1;
                            default: acc ^= 3;
                        }
                    }
                    while (acc > 0) { acc--; }
                    do { acc++; } while (acc < 3);
                    try { T.s = 9 / acc; } catch { T.s = -1; } finally { acc = 0; }
                    T t = new T();
                    println(t.inst + T.s + acc);
                }
            }
        "#,
        );
    }

    #[test]
    fn round_trips_arrays_and_strings() {
        round_trip(
            r#"
            class T {
                static void main() {
                    int[] a = new int[] { 1, 2, 3 };
                    int[][] m = new int[2][3];
                    long[][] n = new long[4][];
                    n[0] = new long[2];
                    String s = "x\n\"y\"\\";
                    println(s + a[1] + m[1][2] + a.length);
                }
            }
        "#,
        );
    }

    #[test]
    fn round_trips_extreme_literals() {
        round_trip(
            r#"
            class T {
                static void main() {
                    println(-2147483648 + 1);
                    println(-9223372036854775808L + 1L);
                }
            }
        "#,
        );
    }

    #[test]
    fn neg_of_variable_survives() {
        round_trip("class T { static void main() { int x = 3; println(-(x) * 2); } }");
    }
}
