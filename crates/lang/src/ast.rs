//! The MiniJava abstract syntax tree.
//!
//! The AST is deliberately plain data (`Clone + PartialEq`) so that the JoNM
//! mutators can cheaply clone a seed program, splice synthesized code into
//! it, and print the result. Bare names parse as [`Expr::Name`] and are
//! rewritten by the type checker into [`Expr::Local`] or field accesses;
//! every later stage may assume resolution already happened.

use crate::ty::Ty;

/// A whole program: one or more classes, one of which holds
/// `static void main()`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Declared classes, in source order.
    pub classes: Vec<ClassDecl>,
}

impl Program {
    /// Finds a class by name.
    pub fn class(&self, name: &str) -> Option<&ClassDecl> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Finds a class by name, mutably.
    pub fn class_mut(&mut self, name: &str) -> Option<&mut ClassDecl> {
        self.classes.iter_mut().find(|c| c.name == name)
    }

    /// Locates the entry point: the first `static void main()` method.
    pub fn entry(&self) -> Option<(&ClassDecl, &MethodDecl)> {
        self.classes.iter().find_map(|c| {
            c.methods
                .iter()
                .find(|m| m.name == "main" && m.is_static && m.params.is_empty())
                .map(|m| (c, m))
        })
    }

    /// Total number of methods across all classes.
    pub fn method_count(&self) -> usize {
        self.classes.iter().map(|c| c.methods.len()).sum()
    }
}

/// A class declaration. MiniJava has no inheritance; every class implicitly
/// extends a featureless `Object` and has exactly the implicit no-argument
/// constructor (which runs the instance-field initializers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDecl {
    pub name: String,
    pub fields: Vec<FieldDecl>,
    pub methods: Vec<MethodDecl>,
}

impl ClassDecl {
    /// Creates an empty class.
    pub fn new(name: impl Into<String>) -> Self {
        ClassDecl { name: name.into(), fields: Vec::new(), methods: Vec::new() }
    }

    /// Finds a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldDecl> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Finds a method by name (methods are not overloadable).
    pub fn method(&self, name: &str) -> Option<&MethodDecl> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Finds a method by name, mutably.
    pub fn method_mut(&mut self, name: &str) -> Option<&mut MethodDecl> {
        self.methods.iter_mut().find(|m| m.name == name)
    }
}

/// A field declaration with an optional initializer expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    pub name: String,
    pub ty: Ty,
    pub is_static: bool,
    /// Evaluated in declaration order by `<clinit>` (static) or the implicit
    /// constructor (instance). `None` means the type's default value.
    pub init: Option<Expr>,
}

/// A method declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDecl {
    pub name: String,
    pub is_static: bool,
    pub params: Vec<Param>,
    /// [`Ty::Void`] for `void` methods.
    pub ret: Ty,
    pub body: Block,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    pub name: String,
    pub ty: Ty,
}

/// A `{ ... }` statement sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// A block holding the given statements.
    pub fn of(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }
}

/// Compound-assignment operators (`x op= e`), including plain `=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    Set,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Ushr,
}

impl AssignOp {
    /// The underlying binary operator for compound assignments.
    pub fn binop(self) -> Option<BinOp> {
        Some(match self {
            AssignOp::Set => return None,
            AssignOp::Add => BinOp::Add,
            AssignOp::Sub => BinOp::Sub,
            AssignOp::Mul => BinOp::Mul,
            AssignOp::Div => BinOp::Div,
            AssignOp::Rem => BinOp::Rem,
            AssignOp::And => BinOp::And,
            AssignOp::Or => BinOp::Or,
            AssignOp::Xor => BinOp::Xor,
            AssignOp::Shl => BinOp::Shl,
            AssignOp::Shr => BinOp::Shr,
            AssignOp::Ushr => BinOp::Ushr,
        })
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `ty name = init;` — locals are block-scoped and must be initialized.
    VarDecl {
        name: String,
        ty: Ty,
        init: Expr,
    },
    /// `target op= value;`
    Assign {
        target: LValue,
        op: AssignOp,
        value: Expr,
    },
    /// `target++;` / `target--;`
    IncDec {
        target: LValue,
        inc: bool,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        cond: Expr,
        then_blk: Block,
        else_blk: Option<Block>,
    },
    /// `while (cond) { .. }`
    While {
        cond: Expr,
        body: Block,
    },
    /// `do { .. } while (cond);`
    DoWhile {
        body: Block,
        cond: Expr,
    },
    /// `for (init; cond; step) { .. }`; all three pieces optional.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Block,
    },
    /// `switch (scrutinee) { case .. }` with C-style fall-through.
    Switch {
        scrutinee: Expr,
        cases: Vec<SwitchCase>,
    },
    Break,
    Continue,
    /// `return;` or `return expr;`
    Return(Option<Expr>),
    /// An expression evaluated for its side effect (a call).
    ExprStmt(Expr),
    /// A nested block.
    Block(Block),
    /// `try { .. } catch { .. } finally { .. }`. The catch clause is
    /// catch-all (MiniJava has a single exception hierarchy root); at least
    /// one of `catch`/`finally` is present.
    Try {
        body: Block,
        catch: Option<Block>,
        finally: Option<Block>,
    },
    /// `throw expr;` — raises a user exception carrying an `int` code.
    Throw(Expr),
    /// `println(expr);` — prints a primitive-alike value and a newline.
    Println(Expr),
    /// `__mute();` — pushes a null output sink (the paper's `System.out`
    /// replacement trick, §3.4 "other considerations").
    Mute,
    /// `__unmute();` — pops the output sink pushed by the matching `__mute()`.
    Unmute,
}

/// One `case`/`default` arm of a `switch`. Execution falls through to the
/// next arm unless the body ends in `break`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchCase {
    /// `case` labels for this arm (several labels may share a body).
    pub labels: Vec<i32>,
    /// Whether this arm is (also) the `default` arm.
    pub is_default: bool,
    pub body: Vec<Stmt>,
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A local variable or parameter (post-resolution).
    Local(String),
    /// A bare name the parser could not resolve; eliminated by the checker.
    Name(String),
    /// `Class.field`
    StaticField { class: String, field: String },
    /// `expr.field`
    InstField { recv: Box<Expr>, field: String },
    /// `expr[expr]`
    Index { array: Box<Expr>, index: Box<Expr> },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Ushr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Short-circuiting `&&`.
    LAnd,
    /// Short-circuiting `||`.
    LOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean `!`.
    Not,
    /// Bitwise `~`.
    BitNot,
}

/// Built-in static functions (parsed from `Math.min`/`Math.max`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    Min,
    Max,
    Abs,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    IntLit(i32),
    LongLit(i64),
    BoolLit(bool),
    StrLit(String),
    Null,
    /// A bare name; eliminated by the resolver.
    Name(String),
    /// A local variable or parameter (post-resolution).
    Local(String),
    This,
    /// `Class.field`
    StaticField {
        class: String,
        field: String,
    },
    /// `expr.field`
    InstField {
        recv: Box<Expr>,
        field: String,
    },
    /// `expr[expr]`
    Index {
        array: Box<Expr>,
        index: Box<Expr>,
    },
    /// `expr.length`
    Length(Box<Expr>),
    /// `new C()`
    NewObject(String),
    /// `new T[e0][e1]...` — `elem` is the *scalar* base type; the number of
    /// sized dimensions is `dims.len()`.
    NewArray {
        elem: Ty,
        dims: Vec<Expr>,
        extra_dims: usize,
    },
    /// `new T[] { e, e, .. }` (single dimension).
    NewArrayInit {
        elem: Ty,
        elems: Vec<Expr>,
    },
    /// `Class.method(args)` (post-resolution for static calls).
    StaticCall {
        class: String,
        method: String,
        args: Vec<Expr>,
    },
    /// `recv.method(args)`; receiver is `This` for unqualified calls to
    /// instance methods of the enclosing class.
    InstCall {
        recv: Box<Expr>,
        method: String,
        args: Vec<Expr>,
    },
    /// An unresolved unqualified call `name(args)`; eliminated by the
    /// resolver into `StaticCall`/`InstCall`.
    FreeCall {
        name: String,
        args: Vec<Expr>,
    },
    /// `Math.min` / `Math.max` / `Math.abs`.
    IntrinsicCall {
        which: Intrinsic,
        args: Vec<Expr>,
    },
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `(ty) expr` — numeric casts only.
    Cast {
        ty: Ty,
        expr: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for binary expressions.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Convenience constructor for a local-variable read.
    pub fn local(name: impl Into<String>) -> Expr {
        Expr::Local(name.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_entry_lookup() {
        let mut program = Program::default();
        let mut class = ClassDecl::new("Main");
        class.methods.push(MethodDecl {
            name: "main".into(),
            is_static: true,
            params: vec![],
            ret: Ty::Void,
            body: Block::default(),
        });
        program.classes.push(class);
        let (c, m) = program.entry().unwrap();
        assert_eq!(c.name, "Main");
        assert_eq!(m.name, "main");
        assert_eq!(program.method_count(), 1);
    }

    #[test]
    fn entry_requires_static_and_no_params() {
        let mut program = Program::default();
        let mut class = ClassDecl::new("Main");
        class.methods.push(MethodDecl {
            name: "main".into(),
            is_static: false,
            params: vec![],
            ret: Ty::Void,
            body: Block::default(),
        });
        program.classes.push(class);
        assert!(program.entry().is_none());
    }

    #[test]
    fn assign_op_to_binop() {
        assert_eq!(AssignOp::Set.binop(), None);
        assert_eq!(AssignOp::Add.binop(), Some(BinOp::Add));
        assert_eq!(AssignOp::Ushr.binop(), Some(BinOp::Ushr));
    }
}
