//! Name resolution and type checking.
//!
//! [`check`] rewrites the AST in place: every [`Expr::Name`],
//! [`Expr::FreeCall`], and [`LValue::Name`] is replaced by its resolved form
//! (local, static field/call, or instance field/call through `this`), and
//! every expression is verified against Java-like typing rules (numeric
//! promotion, implicit widening, explicit narrowing casts, boolean
//! conditions, single-name method resolution without overloading).

use std::collections::{HashMap, HashSet};

use crate::ast::*;
use crate::ty::Ty;
use crate::FrontError;

/// Method signature in the class table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSig {
    pub is_static: bool,
    pub params: Vec<Ty>,
    pub ret: Ty,
}

/// Field signature in the class table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSig {
    pub is_static: bool,
    pub ty: Ty,
}

/// A summary of every class, used by the checker, the bytecode compiler, and
/// the JoNM mutators.
#[derive(Debug, Clone, Default)]
pub struct ClassTable {
    classes: HashMap<String, ClassInfo>,
}

#[derive(Debug, Clone, Default)]
struct ClassInfo {
    fields: HashMap<String, FieldSig>,
    methods: HashMap<String, MethodSig>,
}

impl ClassTable {
    /// Builds the table, rejecting duplicate classes/fields/methods and
    /// reserved names.
    pub fn build(program: &Program) -> Result<ClassTable, FrontError> {
        let mut table = ClassTable::default();
        for class in &program.classes {
            if class.name == "Math" {
                return Err(FrontError::msg("class name `Math` is reserved"));
            }
            if table.classes.contains_key(&class.name) {
                return Err(FrontError::msg(format!("duplicate class `{}`", class.name)));
            }
            let mut info = ClassInfo::default();
            for field in &class.fields {
                if info
                    .fields
                    .insert(
                        field.name.clone(),
                        FieldSig { is_static: field.is_static, ty: field.ty.clone() },
                    )
                    .is_some()
                {
                    return Err(FrontError::msg(format!(
                        "duplicate field `{}` in class `{}`",
                        field.name, class.name
                    )));
                }
            }
            for method in &class.methods {
                if matches!(method.name.as_str(), "println" | "__mute" | "__unmute" | "length") {
                    return Err(FrontError::msg(format!(
                        "method name `{}` is reserved",
                        method.name
                    )));
                }
                let sig = MethodSig {
                    is_static: method.is_static,
                    params: method.params.iter().map(|p| p.ty.clone()).collect(),
                    ret: method.ret.clone(),
                };
                if info.methods.insert(method.name.clone(), sig).is_some() {
                    return Err(FrontError::msg(format!(
                        "duplicate method `{}` in class `{}` (overloading is not supported)",
                        method.name, class.name
                    )));
                }
            }
            table.classes.insert(class.name.clone(), info);
        }
        Ok(table)
    }

    /// Whether `name` is a declared class.
    pub fn has_class(&self, name: &str) -> bool {
        self.classes.contains_key(name)
    }

    /// Looks up a field signature.
    pub fn field(&self, class: &str, field: &str) -> Option<&FieldSig> {
        self.classes.get(class)?.fields.get(field)
    }

    /// Looks up a method signature.
    pub fn method(&self, class: &str, method: &str) -> Option<&MethodSig> {
        self.classes.get(class)?.methods.get(method)
    }

    /// Validates that a class type name refers to a declared class.
    fn check_ty(&self, ty: &Ty) -> Result<(), FrontError> {
        match ty.base() {
            Ty::Class(name) if !self.has_class(name) => {
                Err(FrontError::msg(format!("unknown class `{name}`")))
            }
            _ => Ok(()),
        }
    }
}

/// Resolves names and type-checks the program in place.
pub fn check(program: &mut Program) -> Result<(), FrontError> {
    let table = ClassTable::build(program)?;
    if program.entry().is_none() {
        return Err(FrontError::msg("program has no `static void main()` entry point"));
    }
    let class_names: Vec<String> = program.classes.iter().map(|c| c.name.clone()).collect();
    for (class_idx, class_name) in class_names.iter().enumerate() {
        // Field initializers.
        let mut field_inits: Vec<(usize, bool, Ty, Option<Expr>)> = program.classes[class_idx]
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| (i, f.is_static, f.ty.clone(), f.init.clone()))
            .collect();
        for (_, is_static, ty, init) in &mut field_inits {
            table.check_ty(ty)?;
            if let Some(init) = init {
                let mut ck = Checker::new(&table, class_name, *is_static);
                let init_ty = ck.expr(init)?;
                ck.require_assignable(ty, &init_ty, init)?;
            }
        }
        for (i, _, _, init) in field_inits {
            program.classes[class_idx].fields[i].init = init;
        }
        // Method bodies.
        let method_count = program.classes[class_idx].methods.len();
        for method_idx in 0..method_count {
            check_method(program, &table, class_idx, method_idx)?;
        }
    }
    Ok(())
}

/// Resolves and type-checks a single method body in place against an
/// existing [`ClassTable`]. [`check`] runs this over every method; the
/// incremental mutant front end in `cse-core` runs it over *only* the
/// JoNM-mutated methods — mutations are body-local, so every other
/// method keeps its seed-run annotations and the table stays valid.
pub fn check_method(
    program: &mut Program,
    table: &ClassTable,
    class_idx: usize,
    method_idx: usize,
) -> Result<(), FrontError> {
    let class_name = program.classes[class_idx].name.clone();
    let method = &program.classes[class_idx].methods[method_idx];
    let is_static = method.is_static;
    let ret = method.ret.clone();
    let params = method.params.clone();
    let mut body = method.body.clone();
    table.check_ty(&ret)?;
    let mut ck = Checker::new(table, &class_name, is_static);
    ck.ret = ret.clone();
    ck.push_scope();
    let mut seen = HashSet::new();
    for param in &params {
        table.check_ty(&param.ty)?;
        if !seen.insert(param.name.clone()) {
            return Err(FrontError::msg(format!("duplicate parameter `{}`", param.name)));
        }
        ck.declare(&param.name, param.ty.clone())?;
    }
    ck.block(&mut body)?;
    ck.pop_scope();
    if ret != Ty::Void && !block_definitely_exits(&body) {
        return Err(FrontError::msg(format!(
            "method `{}.{}` may fall off the end without returning",
            class_name, program.classes[class_idx].methods[method_idx].name
        )));
    }
    program.classes[class_idx].methods[method_idx].body = body;
    Ok(())
}

/// Conservative definite-exit analysis: does this block always `return`
/// or `throw` (directly or through an exhaustive `if`/`else`)?
pub fn block_definitely_exits(block: &Block) -> bool {
    block.stmts.iter().any(stmt_definitely_exits)
}

fn stmt_definitely_exits(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Return(_) | Stmt::Throw(_) => true,
        Stmt::Block(b) => block_definitely_exits(b),
        Stmt::If { then_blk, else_blk: Some(else_blk), .. } => {
            block_definitely_exits(then_blk) && block_definitely_exits(else_blk)
        }
        Stmt::While { cond: Expr::BoolLit(true), body } => !block_breaks(body),
        Stmt::Switch { cases, .. } => switch_definitely_exits(cases),
        Stmt::Try { body, catch, finally } => {
            if let Some(finally) = finally {
                if block_definitely_exits(finally) {
                    return true;
                }
            }
            match catch {
                Some(catch) => block_definitely_exits(body) && block_definitely_exits(catch),
                None => block_definitely_exits(body),
            }
        }
        _ => false,
    }
}

/// A switch definitely exits when it has a `default` arm, no arm contains
/// a `break` targeting the switch itself, and from every arm the
/// fall-through suffix of arm bodies reaches an exiting statement.
fn switch_definitely_exits(cases: &[SwitchCase]) -> bool {
    if !cases.iter().any(|c| c.is_default) {
        return false;
    }
    // A `break` at switch top level (not inside a nested loop/switch)
    // escapes without exiting.
    let escapes = |stmts: &[Stmt]| -> bool {
        let block = Block { stmts: stmts.to_vec() };
        block_breaks(&block)
    };
    for start in 0..cases.len() {
        let mut exits = false;
        for case in &cases[start..] {
            if escapes(&case.body) {
                return false;
            }
            if case.body.iter().any(stmt_definitely_exits) {
                exits = true;
                break;
            }
        }
        if !exits {
            return false;
        }
    }
    true
}

/// Whether a loop body contains a `break` that targets the enclosing loop.
fn block_breaks(block: &Block) -> bool {
    block.stmts.iter().any(|s| match s {
        Stmt::Break => true,
        Stmt::Block(b) => block_breaks(b),
        Stmt::If { then_blk, else_blk, .. } => {
            block_breaks(then_blk) || else_blk.as_ref().is_some_and(block_breaks)
        }
        Stmt::Try { body, catch, finally } => {
            block_breaks(body)
                || catch.as_ref().is_some_and(block_breaks)
                || finally.as_ref().is_some_and(block_breaks)
        }
        // `break` inside nested loops/switch targets the inner construct.
        _ => false,
    })
}

struct Checker<'a> {
    table: &'a ClassTable,
    class: &'a str,
    is_static: bool,
    ret: Ty,
    scopes: Vec<HashMap<String, Ty>>,
    loop_depth: usize,
    switch_depth: usize,
    /// Loop/switch depths recorded when entering a `try` (or `catch`)
    /// protected by a `finally`. Control transfers that would escape the
    /// protected region are rejected so the bytecode compiler can lower
    /// `finally` by duplicating the block on each exit edge.
    finally_barriers: Vec<(usize, usize)>,
}

impl<'a> Checker<'a> {
    fn new(table: &'a ClassTable, class: &'a str, is_static: bool) -> Self {
        Checker {
            table,
            class,
            is_static,
            ret: Ty::Void,
            scopes: vec![HashMap::new()],
            loop_depth: 0,
            switch_depth: 0,
            finally_barriers: Vec::new(),
        }
    }

    /// Whether a `break` (`for_continue = false`) or `continue` at the
    /// current depth would jump out of a `finally`-protected region.
    fn escapes_finally(&self, for_continue: bool) -> bool {
        match self.finally_barriers.last() {
            None => false,
            Some(&(loops, switches)) => {
                if for_continue {
                    self.loop_depth <= loops
                } else {
                    self.loop_depth + self.switch_depth <= loops + switches
                }
            }
        }
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, ty: Ty) -> Result<(), FrontError> {
        if self.lookup(name).is_some() {
            return Err(FrontError::msg(format!("variable `{name}` shadows an existing variable")));
        }
        self.scopes.last_mut().expect("checker always has a scope").insert(name.to_string(), ty);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&Ty> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn require_assignable(&self, target: &Ty, from: &Ty, value: &Expr) -> Result<(), FrontError> {
        if target.accepts(from) {
            return Ok(());
        }
        // `null` is assignable to any reference type.
        if target.is_reference() && matches!(value, Expr::Null) {
            return Ok(());
        }
        // Constant int literals in range implicitly narrow to byte (Java's
        // constant-expression narrowing rule, simplified to literals).
        if *target == Ty::Byte {
            if let Expr::IntLit(v) = value {
                if i8::try_from(*v).is_ok() {
                    return Ok(());
                }
            }
        }
        Err(FrontError::msg(format!("cannot assign `{from}` to `{target}`")))
    }

    fn block(&mut self, block: &mut Block) -> Result<(), FrontError> {
        self.push_scope();
        for stmt in &mut block.stmts {
            self.stmt(stmt)?;
        }
        self.pop_scope();
        Ok(())
    }

    fn stmt(&mut self, stmt: &mut Stmt) -> Result<(), FrontError> {
        match stmt {
            Stmt::VarDecl { name, ty, init } => {
                self.table.check_ty(ty)?;
                let init_ty = self.expr(init)?;
                self.require_assignable(ty, &init_ty, init)?;
                self.declare(name, ty.clone())
            }
            Stmt::Assign { target, op, value } => {
                let target_ty = self.lvalue(target)?;
                let value_ty = self.expr(value)?;
                match op.binop() {
                    None => self.require_assignable(&target_ty, &value_ty, value),
                    Some(binop) => {
                        // Compound assignment implicitly narrows back to the
                        // target type (Java `b += x` semantics); the operand
                        // types must still be compatible with the operator.
                        let result =
                            self.binop_result(binop, &target_ty, &value_ty, target_ty.clone())?;
                        // Numeric targets accept any numeric result via the
                        // implicit cast; booleans and strings must match.
                        if (target_ty.is_numeric() && result.is_numeric()) || target_ty == result {
                            Ok(())
                        } else {
                            Err(FrontError::msg(format!(
                                "compound assignment result `{result}` does not fit `{target_ty}`"
                            )))
                        }
                    }
                }
            }
            Stmt::IncDec { target, .. } => {
                let ty = self.lvalue(target)?;
                if ty.is_numeric() {
                    Ok(())
                } else {
                    Err(FrontError::msg(format!("cannot increment value of type `{ty}`")))
                }
            }
            Stmt::If { cond, then_blk, else_blk } => {
                self.require_bool(cond)?;
                self.block(then_blk)?;
                if let Some(else_blk) = else_blk {
                    self.block(else_blk)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                self.require_bool(cond)?;
                self.loop_depth += 1;
                self.block(body)?;
                self.loop_depth -= 1;
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                self.loop_depth += 1;
                self.block(body)?;
                self.loop_depth -= 1;
                self.require_bool(cond)
            }
            Stmt::For { init, cond, step, body } => {
                self.push_scope();
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                if let Some(cond) = cond {
                    self.require_bool(cond)?;
                }
                self.loop_depth += 1;
                self.block(body)?;
                if let Some(step) = step {
                    self.stmt(step)?;
                }
                self.loop_depth -= 1;
                self.pop_scope();
                Ok(())
            }
            Stmt::Switch { scrutinee, cases } => {
                let ty = self.expr(scrutinee)?;
                if !matches!(ty, Ty::Int | Ty::Byte) {
                    return Err(FrontError::msg(format!(
                        "switch scrutinee must be int, found `{ty}`"
                    )));
                }
                let mut seen_labels = HashSet::new();
                let mut seen_default = false;
                self.switch_depth += 1;
                for case in cases.iter_mut() {
                    for label in &case.labels {
                        if !seen_labels.insert(*label) {
                            self.switch_depth -= 1;
                            return Err(FrontError::msg(format!("duplicate case label {label}")));
                        }
                    }
                    if case.is_default {
                        if seen_default {
                            self.switch_depth -= 1;
                            return Err(FrontError::msg("duplicate default label"));
                        }
                        seen_default = true;
                    }
                    self.push_scope();
                    for stmt in &mut case.body {
                        if let Err(e) = self.stmt(stmt) {
                            self.switch_depth -= 1;
                            return Err(e);
                        }
                    }
                    self.pop_scope();
                }
                self.switch_depth -= 1;
                Ok(())
            }
            Stmt::Break => {
                if self.loop_depth == 0 && self.switch_depth == 0 {
                    Err(FrontError::msg("`break` outside of a loop or switch"))
                } else if self.escapes_finally(false) {
                    Err(FrontError::msg("`break` may not jump out of a try..finally body"))
                } else {
                    Ok(())
                }
            }
            Stmt::Continue => {
                if self.loop_depth == 0 {
                    Err(FrontError::msg("`continue` outside of a loop"))
                } else if self.escapes_finally(true) {
                    Err(FrontError::msg("`continue` may not jump out of a try..finally body"))
                } else {
                    Ok(())
                }
            }
            Stmt::Return(_) if !self.finally_barriers.is_empty() => {
                Err(FrontError::msg("`return` inside a try..finally body is not supported"))
            }
            Stmt::Return(value) => match (&self.ret, value) {
                (Ty::Void, None) => Ok(()),
                (Ty::Void, Some(_)) => Err(FrontError::msg("void method cannot return a value")),
                (ret, None) => Err(FrontError::msg(format!("method must return `{ret}`"))),
                (ret, Some(value)) => {
                    let ret = ret.clone();
                    let value_ty = self.expr(value)?;
                    self.require_assignable(&ret, &value_ty, value)
                }
            },
            Stmt::ExprStmt(expr) => {
                let resolved_is_call = {
                    self.expr(expr)?;
                    matches!(expr, Expr::StaticCall { .. } | Expr::InstCall { .. })
                };
                if resolved_is_call {
                    Ok(())
                } else {
                    Err(FrontError::msg("expression statements must be method calls"))
                }
            }
            Stmt::Block(block) => self.block(block),
            Stmt::Try { body, catch, finally } => {
                let protected = finally.is_some();
                if protected {
                    self.finally_barriers.push((self.loop_depth, self.switch_depth));
                }
                let mut result = self.block(body);
                if result.is_ok() {
                    if let Some(catch) = catch {
                        result = self.block(catch);
                    }
                }
                if protected {
                    self.finally_barriers.pop();
                }
                result?;
                if let Some(finally) = finally {
                    self.block(finally)?;
                }
                Ok(())
            }
            Stmt::Throw(code) => {
                let ty = self.expr(code)?;
                if matches!(ty, Ty::Int | Ty::Byte) {
                    Ok(())
                } else {
                    Err(FrontError::msg(format!("throw requires an int code, found `{ty}`")))
                }
            }
            Stmt::Println(value) => {
                let ty = self.expr(value)?;
                if ty.is_primitive_alike() {
                    Ok(())
                } else {
                    Err(FrontError::msg(format!(
                        "println argument must be a primitive or String, found `{ty}`"
                    )))
                }
            }
            Stmt::Mute | Stmt::Unmute => Ok(()),
        }
    }

    fn require_bool(&mut self, expr: &mut Expr) -> Result<(), FrontError> {
        let ty = self.expr(expr)?;
        if ty == Ty::Bool {
            Ok(())
        } else {
            Err(FrontError::msg(format!("condition must be boolean, found `{ty}`")))
        }
    }

    fn lvalue(&mut self, lvalue: &mut LValue) -> Result<Ty, FrontError> {
        // Resolve a bare-name target the same way expressions are resolved.
        if let LValue::Name(name) = lvalue {
            let name = name.clone();
            if let Some(ty) = self.lookup(&name) {
                let ty = ty.clone();
                *lvalue = LValue::Local(name);
                return Ok(ty);
            }
            if let Some(sig) = self.table.field(self.class, &name) {
                let sig = sig.clone();
                if sig.is_static {
                    *lvalue = LValue::StaticField { class: self.class.to_string(), field: name };
                } else {
                    if self.is_static {
                        return Err(FrontError::msg(format!(
                            "instance field `{name}` referenced from a static context"
                        )));
                    }
                    *lvalue = LValue::InstField { recv: Box::new(Expr::This), field: name };
                }
                return Ok(sig.ty);
            }
            return Err(FrontError::msg(format!("unknown variable `{name}`")));
        }
        match lvalue {
            LValue::Name(_) => unreachable!("handled above"),
            LValue::Local(name) => self
                .lookup(name)
                .cloned()
                .ok_or_else(|| FrontError::msg(format!("unknown local `{name}`"))),
            LValue::StaticField { class, field } => {
                let sig = self
                    .table
                    .field(class, field)
                    .ok_or_else(|| FrontError::msg(format!("unknown field `{class}.{field}`")))?;
                if !sig.is_static {
                    return Err(FrontError::msg(format!("field `{class}.{field}` is not static")));
                }
                Ok(sig.ty.clone())
            }
            LValue::InstField { recv, field } => {
                let field = field.clone();
                let mut recv_expr = std::mem::replace(recv.as_mut(), Expr::Null);
                // A bare class name as receiver means a static field access.
                if let Expr::Name(name) = &recv_expr {
                    if self.lookup(name).is_none()
                        && self.table.field(self.class, name).is_none()
                        && self.table.has_class(name)
                    {
                        let class = name.clone();
                        let sig = self.table.field(&class, &field).cloned().ok_or_else(|| {
                            FrontError::msg(format!("unknown field `{class}.{field}`"))
                        })?;
                        if !sig.is_static {
                            return Err(FrontError::msg(format!(
                                "field `{class}.{field}` is not static"
                            )));
                        }
                        *lvalue = LValue::StaticField { class, field };
                        return Ok(sig.ty);
                    }
                }
                let recv_ty = self.expr(&mut recv_expr)?;
                let Ty::Class(class) = &recv_ty else {
                    return Err(FrontError::msg(format!("type `{recv_ty}` has no fields")));
                };
                let sig = self
                    .table
                    .field(class, &field)
                    .ok_or_else(|| FrontError::msg(format!("unknown field `{class}.{field}`")))?
                    .clone();
                if sig.is_static {
                    return Err(FrontError::msg(format!(
                        "static field `{class}.{field}` accessed through an instance"
                    )));
                }
                *lvalue = LValue::InstField { recv: Box::new(recv_expr), field };
                Ok(sig.ty)
            }
            LValue::Index { array, index } => {
                let array_ty = self.expr(array)?;
                let index_ty = self.expr(index)?;
                if !matches!(index_ty, Ty::Int | Ty::Byte) {
                    return Err(FrontError::msg(format!(
                        "array index must be int, found `{index_ty}`"
                    )));
                }
                match array_ty.elem() {
                    Some(elem) => Ok(elem.clone()),
                    None => {
                        Err(FrontError::msg(format!("cannot index non-array type `{array_ty}`")))
                    }
                }
            }
        }
    }

    /// Type-checks and resolves an expression in place, returning its type.
    fn expr(&mut self, expr: &mut Expr) -> Result<Ty, FrontError> {
        let ty = match expr {
            Expr::IntLit(_) => Ty::Int,
            Expr::LongLit(_) => Ty::Long,
            Expr::BoolLit(_) => Ty::Bool,
            Expr::StrLit(_) => Ty::Str,
            Expr::Null => {
                // `null` only appears where the context supplies a reference
                // type; the pseudo-type is reported as a class named `null`
                // and handled specially in assignability/equality checks.
                Ty::Class("null".into())
            }
            Expr::Name(name) => {
                let name = name.clone();
                if let Some(ty) = self.lookup(&name) {
                    let ty = ty.clone();
                    *expr = Expr::Local(name);
                    return Ok(ty);
                }
                if let Some(sig) = self.table.field(self.class, &name) {
                    let sig = sig.clone();
                    if sig.is_static {
                        *expr = Expr::StaticField { class: self.class.to_string(), field: name };
                    } else {
                        if self.is_static {
                            return Err(FrontError::msg(format!(
                                "instance field `{name}` referenced from a static context"
                            )));
                        }
                        *expr = Expr::InstField { recv: Box::new(Expr::This), field: name };
                    }
                    return Ok(sig.ty);
                }
                return Err(FrontError::msg(format!("unknown variable `{name}`")));
            }
            Expr::Local(name) => self
                .lookup(name)
                .cloned()
                .ok_or_else(|| FrontError::msg(format!("unknown local `{name}`")))?,
            Expr::This => {
                if self.is_static {
                    return Err(FrontError::msg("`this` used in a static context"));
                }
                Ty::Class(self.class.to_string())
            }
            Expr::StaticField { class, field } => {
                let sig = self
                    .table
                    .field(class, field)
                    .ok_or_else(|| FrontError::msg(format!("unknown field `{class}.{field}`")))?;
                if !sig.is_static {
                    return Err(FrontError::msg(format!("field `{class}.{field}` is not static")));
                }
                sig.ty.clone()
            }
            Expr::InstField { .. } => {
                // Reuse the lvalue resolution logic, then convert back.
                let mut lv = match std::mem::replace(expr, Expr::Null) {
                    Expr::InstField { recv, field } => LValue::InstField { recv, field },
                    _ => unreachable!(),
                };
                let ty = self.lvalue(&mut lv)?;
                *expr = match lv {
                    LValue::InstField { recv, field } => Expr::InstField { recv, field },
                    LValue::StaticField { class, field } => Expr::StaticField { class, field },
                    _ => unreachable!(),
                };
                ty
            }
            Expr::Index { array, index } => {
                let array_ty = self.expr(array)?;
                let index_ty = self.expr(index)?;
                if !matches!(index_ty, Ty::Int | Ty::Byte) {
                    return Err(FrontError::msg(format!(
                        "array index must be int, found `{index_ty}`"
                    )));
                }
                match array_ty.elem() {
                    Some(elem) => elem.clone(),
                    None => {
                        return Err(FrontError::msg(format!(
                            "cannot index non-array type `{array_ty}`"
                        )));
                    }
                }
            }
            Expr::Length(array) => {
                let ty = self.expr(array)?;
                if ty.elem().is_none() {
                    return Err(FrontError::msg(format!(
                        "`.length` requires an array, found `{ty}`"
                    )));
                }
                Ty::Int
            }
            Expr::NewObject(class) => {
                if !self.table.has_class(class) {
                    return Err(FrontError::msg(format!("unknown class `{class}`")));
                }
                Ty::Class(class.clone())
            }
            Expr::NewArray { elem, dims, extra_dims } => {
                self.table.check_ty(elem)?;
                if dims.is_empty() {
                    return Err(FrontError::msg(
                        "array creation needs at least one sized dimension",
                    ));
                }
                for dim in dims.iter_mut() {
                    let dim_ty = self.expr(dim)?;
                    if !matches!(dim_ty, Ty::Int | Ty::Byte) {
                        return Err(FrontError::msg(format!(
                            "array size must be int, found `{dim_ty}`"
                        )));
                    }
                }
                let mut ty = elem.clone();
                for _ in 0..(dims.len() + *extra_dims) {
                    ty = ty.array_of();
                }
                ty
            }
            Expr::NewArrayInit { elem, elems } => {
                self.table.check_ty(elem)?;
                let elem_ty = elem.clone();
                for e in elems.iter_mut() {
                    let t = self.expr(e)?;
                    self.require_assignable(&elem_ty, &t, e)?;
                }
                elem_ty.array_of()
            }
            Expr::FreeCall { name, args } => {
                let name = name.clone();
                let mut args = std::mem::take(args);
                let sig = self
                    .table
                    .method(self.class, &name)
                    .cloned()
                    .ok_or_else(|| FrontError::msg(format!("unknown method `{name}`")))?;
                self.check_args(&name, &sig, &mut args)?;
                let ret = sig.ret.clone();
                if sig.is_static {
                    *expr = Expr::StaticCall { class: self.class.to_string(), method: name, args };
                } else {
                    if self.is_static {
                        return Err(FrontError::msg(format!(
                            "instance method `{name}` called from a static context"
                        )));
                    }
                    *expr = Expr::InstCall { recv: Box::new(Expr::This), method: name, args };
                }
                return Ok(ret);
            }
            Expr::StaticCall { class, method, args } => {
                let sig =
                    self.table.method(class, method).cloned().ok_or_else(|| {
                        FrontError::msg(format!("unknown method `{class}.{method}`"))
                    })?;
                if !sig.is_static {
                    return Err(FrontError::msg(format!(
                        "method `{class}.{method}` is not static"
                    )));
                }
                let method = method.clone();
                self.check_args(&method, &sig, args)?;
                sig.ret
            }
            Expr::InstCall { recv, method, args } => {
                let method_name = method.clone();
                // A bare class name as receiver means a static call.
                if let Expr::Name(name) = recv.as_ref() {
                    if self.lookup(name).is_none()
                        && self.table.field(self.class, name).is_none()
                        && self.table.has_class(name)
                    {
                        let class = name.clone();
                        let args = std::mem::take(args);
                        *expr = Expr::StaticCall { class, method: method_name, args };
                        return self.expr(expr);
                    }
                }
                let recv_ty = self.expr(recv)?;
                let Ty::Class(class) = &recv_ty else {
                    return Err(FrontError::msg(format!("type `{recv_ty}` has no methods")));
                };
                let sig = self.table.method(class, &method_name).cloned().ok_or_else(|| {
                    FrontError::msg(format!("unknown method `{class}.{method_name}`"))
                })?;
                if sig.is_static {
                    return Err(FrontError::msg(format!(
                        "static method `{class}.{method_name}` called through an instance"
                    )));
                }
                self.check_args(&method_name, &sig, args)?;
                sig.ret
            }
            Expr::IntrinsicCall { which, args } => {
                let expected = match which {
                    Intrinsic::Min | Intrinsic::Max => 2,
                    Intrinsic::Abs => 1,
                };
                if args.len() != expected {
                    return Err(FrontError::msg(format!(
                        "Math intrinsic expects {expected} arguments, found {}",
                        args.len()
                    )));
                }
                let mut ty = Ty::Int;
                for arg in args.iter_mut() {
                    let t = self.expr(arg)?;
                    if !t.is_numeric() {
                        return Err(FrontError::msg(format!(
                            "Math intrinsic requires numeric args, found `{t}`"
                        )));
                    }
                    ty = ty.promote(&t).expect("both numeric");
                }
                ty
            }
            Expr::Unary { op, expr: inner } => {
                let ty = self.expr(inner)?;
                match op {
                    UnOp::Neg | UnOp::BitNot => {
                        if !ty.is_numeric() {
                            return Err(FrontError::msg(format!("numeric operator on `{ty}`")));
                        }
                        // Unary numeric promotion: byte -> int.
                        if ty == Ty::Byte {
                            Ty::Int
                        } else {
                            ty
                        }
                    }
                    UnOp::Not => {
                        if ty != Ty::Bool {
                            return Err(FrontError::msg(format!(
                                "`!` requires boolean, found `{ty}`"
                            )));
                        }
                        Ty::Bool
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let op = *op;
                let lhs_ty = self.expr(lhs)?;
                let rhs_ty = self.expr(rhs)?;
                self.binop_result(op, &lhs_ty, &rhs_ty, Ty::Void)?
            }
            Expr::Cast { ty, expr: inner } => {
                let from = self.expr(inner)?;
                if !ty.is_numeric() || !from.is_numeric() {
                    return Err(FrontError::msg(format!(
                        "unsupported cast from `{from}` to `{ty}`"
                    )));
                }
                ty.clone()
            }
        };
        Ok(ty)
    }

    fn check_args(
        &mut self,
        name: &str,
        sig: &MethodSig,
        args: &mut [Expr],
    ) -> Result<(), FrontError> {
        if args.len() != sig.params.len() {
            return Err(FrontError::msg(format!(
                "method `{name}` expects {} arguments, found {}",
                sig.params.len(),
                args.len()
            )));
        }
        for (arg, param_ty) in args.iter_mut().zip(&sig.params) {
            let arg_ty = self.expr(arg)?;
            self.require_assignable(param_ty, &arg_ty, arg)?;
        }
        Ok(())
    }

    /// Computes the result type of a binary operator, or an error.
    ///
    /// `_compound_hint` carries the target type for compound assignments
    /// (currently only used for error-message purposes).
    fn binop_result(
        &self,
        op: BinOp,
        lhs: &Ty,
        rhs: &Ty,
        _compound_hint: Ty,
    ) -> Result<Ty, FrontError> {
        let err =
            || FrontError::msg(format!("operator `{op:?}` not applicable to `{lhs}` and `{rhs}`"));
        match op {
            BinOp::Add if *lhs == Ty::Str || *rhs == Ty::Str => {
                let other = if *lhs == Ty::Str { rhs } else { lhs };
                if other.is_primitive_alike() {
                    Ok(Ty::Str)
                } else {
                    Err(err())
                }
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                lhs.promote(rhs).ok_or_else(err)
            }
            BinOp::And | BinOp::Or | BinOp::Xor => {
                if *lhs == Ty::Bool && *rhs == Ty::Bool {
                    Ok(Ty::Bool)
                } else {
                    lhs.promote(rhs).ok_or_else(err)
                }
            }
            BinOp::Shl | BinOp::Shr | BinOp::Ushr => {
                if !lhs.is_numeric() || !rhs.is_numeric() {
                    return Err(err());
                }
                // The result type is the promoted *left* operand only.
                Ok(if *lhs == Ty::Long { Ty::Long } else { Ty::Int })
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                if lhs.promote(rhs).is_some() {
                    Ok(Ty::Bool)
                } else {
                    Err(err())
                }
            }
            BinOp::Eq | BinOp::Ne => {
                let null = Ty::Class("null".into());
                if lhs.promote(rhs).is_some()
                    || (*lhs == Ty::Bool && *rhs == Ty::Bool)
                    || (lhs.is_reference() && *rhs == null)
                    || (*lhs == null && rhs.is_reference())
                    || (*lhs == null && *rhs == null)
                    || (lhs == rhs && lhs.is_reference() && *lhs != Ty::Str)
                {
                    Ok(Ty::Bool)
                } else {
                    Err(err())
                }
            }
            BinOp::LAnd | BinOp::LOr => {
                if *lhs == Ty::Bool && *rhs == Ty::Bool {
                    Ok(Ty::Bool)
                } else {
                    Err(err())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_check;

    fn ok(src: &str) -> Program {
        parse_and_check(src).unwrap()
    }

    fn fails(src: &str) -> String {
        parse_and_check(src).unwrap_err().message
    }

    #[test]
    fn resolves_locals_fields_and_calls() {
        let p = ok(r#"
            class T {
                int f;
                static int s;
                int get() { return f + T.s; }
                static void main() {
                    T t = new T();
                    t.f = 3;
                    T.s = 4;
                    println(t.get());
                }
            }
        "#);
        // `f` resolved to this.f inside get().
        let get = p.classes[0].method("get").unwrap();
        let Stmt::Return(Some(Expr::Binary { lhs, rhs, .. })) = &get.body.stmts[0] else {
            panic!();
        };
        assert!(matches!(lhs.as_ref(), Expr::InstField { .. }));
        assert!(matches!(rhs.as_ref(), Expr::StaticField { .. }));
    }

    #[test]
    fn resolves_unqualified_calls() {
        let p = ok(r#"
            class T {
                int a() { return 1; }
                static int b() { return 2; }
                int c() { return a() + b(); }
                static void main() { println(new T().c()); }
            }
        "#);
        let c = p.classes[0].method("c").unwrap();
        let Stmt::Return(Some(Expr::Binary { lhs, rhs, .. })) = &c.body.stmts[0] else {
            panic!();
        };
        assert!(matches!(lhs.as_ref(), Expr::InstCall { .. }));
        assert!(matches!(rhs.as_ref(), Expr::StaticCall { .. }));
    }

    #[test]
    fn rejects_type_errors() {
        assert!(fails("class T { static void main() { int x = true; } }").contains("assign"));
        assert!(fails("class T { static void main() { if (1) { } } }").contains("boolean"));
        assert!(
            fails("class T { static void main() { long l = 1L; int x = l; } }").contains("assign")
        );
        assert!(fails("class T { static void main() { byte b = 200; } }").contains("assign"));
        assert!(fails("class T { static void main() { int x = y; } }").contains("unknown variable"));
        assert!(fails("class T { static void main() { boolean b = true << 2 > 1; } }")
            .contains("not applicable"));
    }

    #[test]
    fn byte_rules() {
        // Literal in range narrows implicitly; arithmetic promotes to int.
        ok("class T { static void main() { byte b = 127; b += 5; b++; int x = b * b; } }");
        assert!(fails("class T { static void main() { byte b = 1; byte c = b + b; } }")
            .contains("assign"));
        ok("class T { static void main() { byte b = 1; byte c = (byte) (b + b); } }");
    }

    #[test]
    fn static_context_rules() {
        assert!(
            fails("class T { int f; static void main() { f = 1; } }").contains("static context")
        );
        assert!(fails("class T { static void main() { this.x(); } int x() { return 1; } }")
            .contains("`this`"));
        assert!(fails("class T { int a() { return 1; } static void main() { a(); } }")
            .contains("static context"));
    }

    #[test]
    fn requires_entry_point() {
        assert!(fails("class T { static void f() { } }").contains("entry point"));
    }

    #[test]
    fn requires_definite_return() {
        assert!(fails("class T { static int f() { int x = 1; } static void main() { } }")
            .contains("fall off"));
        ok("class T { static int f(boolean b) { if (b) { return 1; } else { return 2; } } static void main() { } }");
        ok("class T { static int f() { while (true) { } } static void main() { } }");
        assert!(fails(
            "class T { static int f() { while (true) { break; } } static void main() { } }"
        )
        .contains("fall off"));
        ok("class T { static int f() { throw 3; } static void main() { } }");
    }

    #[test]
    fn switch_rules() {
        assert!(fails(
            "class T { static void main() { switch (1) { case 1: break; case 1: break; } } }"
        )
        .contains("duplicate case"));
        assert!(fails("class T { static void main() { switch (true) { default: break; } } }")
            .contains("scrutinee"));
    }

    #[test]
    fn break_continue_placement() {
        assert!(fails("class T { static void main() { break; } }").contains("break"));
        assert!(fails("class T { static void main() { continue; } }").contains("continue"));
        assert!(fails("class T { static void main() { switch (1) { default: continue; } } }")
            .contains("continue"));
        ok("class T { static void main() { while (true) { switch (1) { default: break; } break; } } }");
    }

    #[test]
    fn null_and_reference_equality() {
        ok(r#"
            class P { int v; }
            class T {
                static void main() {
                    P p = new P();
                    P q = null;
                    int[] a = new int[2];
                    if (p == q || a != null) { println(1); }
                }
            }
        "#);
        assert!(fails(r#"class T { static void main() { String s = "a"; if (s == "a") { } } }"#)
            .contains("not applicable"));
    }

    #[test]
    fn string_concat() {
        ok(r#"class T { static void main() { println("v=" + 3 + ";" + true + 7L); } }"#);
        assert!(fails(
            r#"class T { static void main() { int[] a = new int[1]; println("x" + a); } }"#
        )
        .contains("not applicable"));
    }

    #[test]
    fn shadowing_rejected() {
        assert!(fails("class T { static void main() { int x = 1; { int x = 2; } } }")
            .contains("shadows"));
        // Non-overlapping scopes may reuse names.
        ok("class T { static void main() { { int x = 1; } { int x = 2; } } }");
    }

    #[test]
    fn reserved_names_rejected() {
        assert!(fails("class Math { static void main() { } }").contains("reserved"));
        assert!(fails("class T { static void println() { } static void main() { } }")
            .contains("reserved"));
    }

    #[test]
    fn duplicate_members_rejected() {
        assert!(
            fails("class T { int x; int x; static void main() { } }").contains("duplicate field")
        );
        assert!(fails(
            "class T { static void f() { } static void f() { } static void main() { } }"
        )
        .contains("duplicate method"));
        assert!(fails("class T { static void main() { } } class T { }").contains("duplicate class"));
    }

    #[test]
    fn field_initializers_checked() {
        ok("class T { static int a = 3; static int b = a + 1; static void main() { } }");
        assert!(fails("class T { static int a = true; static void main() { } }").contains("assign"));
        assert!(fails("class T { int f; static int a = f; static void main() { } }")
            .contains("static context"));
    }

    #[test]
    fn finally_escape_rules() {
        assert!(fails(
            "class T { static int f() { try { return 1; } finally { } } static void main() { } }"
        )
        .contains("finally"));
        assert!(fails(
            "class T { static void main() { while (true) { try { break; } finally { } } } }"
        )
        .contains("finally"));
        assert!(fails(
            "class T { static void main() { while (true) { try { continue; } finally { } } } }"
        )
        .contains("finally"));
        // Breaks whose target loop is inside the protected region are fine.
        ok("class T { static void main() { try { while (true) { break; } } finally { } } }");
        // Code inside the finally block itself is unrestricted.
        ok("class T { static void main() { try { } finally { while (true) { break; } } } }");
        // try..catch without finally is unrestricted.
        ok("class T { static int f() { try { return 1; } catch { } return 2; } static void main() { } }");
    }

    #[test]
    fn foreach_resolves_after_desugaring() {
        ok(r#"
            class T {
                static int sum(int[] k) {
                    int s = 0;
                    for (int m : k) { s += m; }
                    return s;
                }
                static void main() { println(sum(new int[] { 1, 2, 3 })); }
            }
        "#);
    }
}
