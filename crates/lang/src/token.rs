//! Tokens produced by the lexer.

/// A lexical token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// 1-based line the token starts on, for diagnostics.
    pub line: u32,
}

/// Token kinds of the MiniJava subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // Literals and identifiers.
    Ident(String),
    IntLit(i64),
    LongLit(i64),
    StrLit(String),

    // Keywords.
    KwClass,
    KwStatic,
    KwInt,
    KwLong,
    KwByte,
    KwBoolean,
    KwString,
    KwVoid,
    KwIf,
    KwElse,
    KwWhile,
    KwDo,
    KwFor,
    KwSwitch,
    KwCase,
    KwDefault,
    KwBreak,
    KwContinue,
    KwReturn,
    KwNew,
    KwTrue,
    KwFalse,
    KwNull,
    KwThis,
    KwTry,
    KwCatch,
    KwFinally,
    KwThrow,

    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Colon,

    // Operators.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    BangEq,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Ushr,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    UshrAssign,
    PlusPlus,
    MinusMinus,

    /// End of input sentinel.
    Eof,
}

impl Tok {
    /// A short human-readable name used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(name) => format!("identifier `{name}`"),
            Tok::IntLit(v) => format!("integer literal `{v}`"),
            Tok::StrLit(_) => "string literal".to_string(),
            Tok::Eof => "end of input".to_string(),
            other => format!("{other:?}"),
        }
    }
}
