//! Hand-written lexer for the MiniJava subset.

use crate::token::{Tok, Token};
use crate::FrontError;

/// Lexes source text into a token stream ending with [`Tok::Eof`].
///
/// Supports `//` line comments and `/* ... */` block comments, decimal
/// integer literals with an optional `L`/`l` suffix, and double-quoted
/// string literals with `\n`, `\t`, `\\`, and `\"` escapes.
pub fn lex(src: &str) -> Result<Vec<Token>, FrontError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { chars: src.chars().peekable(), line: 1, tokens: Vec::new() }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn eat(&mut self, expected: char) -> bool {
        if self.peek() == Some(expected) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn push(&mut self, kind: Tok) {
        let line = self.line;
        self.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Result<Vec<Token>, FrontError> {
        while let Some(c) = self.peek() {
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '/' => {
                    self.bump();
                    if self.eat('/') {
                        while let Some(c) = self.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.bump();
                        }
                    } else if self.eat('*') {
                        self.block_comment()?;
                    } else if self.eat('=') {
                        self.push(Tok::SlashAssign);
                    } else {
                        self.push(Tok::Slash);
                    }
                }
                '0'..='9' => self.number()?,
                'a'..='z' | 'A'..='Z' | '_' | '$' => self.word(),
                '"' => self.string()?,
                _ => self.symbol()?,
            }
        }
        self.push(Tok::Eof);
        Ok(self.tokens)
    }

    fn block_comment(&mut self) -> Result<(), FrontError> {
        let start = self.line;
        loop {
            match self.bump() {
                Some('*') if self.eat('/') => return Ok(()),
                Some(_) => {}
                None => {
                    return Err(FrontError::at(start, "unterminated block comment"));
                }
            }
        }
    }

    fn number(&mut self) -> Result<(), FrontError> {
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    digits.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        let long_suffix = matches!(self.peek(), Some('L') | Some('l'));
        if long_suffix {
            self.bump();
        }
        // Parse as u64 first so that `2147483648` (i32::MIN magnitude) and
        // `9223372036854775808` survive until the parser applies unary minus.
        let value: u64 = digits.parse().map_err(|_| {
            FrontError::at(self.line, format!("integer literal `{digits}` too large"))
        })?;
        let kind = if long_suffix {
            if value > i64::MAX as u64 + 1 {
                return Err(FrontError::at(
                    self.line,
                    format!("long literal `{digits}` out of range"),
                ));
            }
            // Stored as wrapped i64 bits; the parser range-checks after
            // folding a leading unary minus.
            Tok::LongLit(value as i64)
        } else {
            if value > i32::MAX as u64 + 1 {
                return Err(FrontError::at(
                    self.line,
                    format!("int literal `{digits}` out of range (use an `L` suffix for long)"),
                ));
            }
            Tok::IntLit(value as i64)
        };
        self.push(kind);
        Ok(())
    }

    fn word(&mut self) {
        let mut ident = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                ident.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let kind = match ident.as_str() {
            "class" => Tok::KwClass,
            "static" => Tok::KwStatic,
            "int" => Tok::KwInt,
            "long" => Tok::KwLong,
            "byte" => Tok::KwByte,
            "boolean" => Tok::KwBoolean,
            "String" => Tok::KwString,
            "void" => Tok::KwVoid,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "while" => Tok::KwWhile,
            "do" => Tok::KwDo,
            "for" => Tok::KwFor,
            "switch" => Tok::KwSwitch,
            "case" => Tok::KwCase,
            "default" => Tok::KwDefault,
            "break" => Tok::KwBreak,
            "continue" => Tok::KwContinue,
            "return" => Tok::KwReturn,
            "new" => Tok::KwNew,
            "true" => Tok::KwTrue,
            "false" => Tok::KwFalse,
            "null" => Tok::KwNull,
            "this" => Tok::KwThis,
            "try" => Tok::KwTry,
            "catch" => Tok::KwCatch,
            "finally" => Tok::KwFinally,
            "throw" => Tok::KwThrow,
            _ => Tok::Ident(ident),
        };
        self.push(kind);
    }

    fn string(&mut self) -> Result<(), FrontError> {
        let start = self.line;
        self.bump(); // Opening quote.
        let mut text = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => text.push('\n'),
                    Some('t') => text.push('\t'),
                    Some('\\') => text.push('\\'),
                    Some('"') => text.push('"'),
                    other => {
                        return Err(FrontError::at(
                            start,
                            format!(
                                "unsupported escape `\\{}`",
                                other.map(String::from).unwrap_or_default()
                            ),
                        ));
                    }
                },
                Some('\n') | None => {
                    return Err(FrontError::at(start, "unterminated string literal"));
                }
                Some(c) => text.push(c),
            }
        }
        self.push(Tok::StrLit(text));
        Ok(())
    }

    fn symbol(&mut self) -> Result<(), FrontError> {
        let c = self.bump().expect("symbol() called with a pending char");
        let kind = match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            ';' => Tok::Semi,
            ',' => Tok::Comma,
            '.' => Tok::Dot,
            ':' => Tok::Colon,
            '~' => Tok::Tilde,
            '+' => {
                if self.eat('+') {
                    Tok::PlusPlus
                } else if self.eat('=') {
                    Tok::PlusAssign
                } else {
                    Tok::Plus
                }
            }
            '-' => {
                if self.eat('-') {
                    Tok::MinusMinus
                } else if self.eat('=') {
                    Tok::MinusAssign
                } else {
                    Tok::Minus
                }
            }
            '*' => {
                if self.eat('=') {
                    Tok::StarAssign
                } else {
                    Tok::Star
                }
            }
            '%' => {
                if self.eat('=') {
                    Tok::PercentAssign
                } else {
                    Tok::Percent
                }
            }
            '&' => {
                if self.eat('&') {
                    Tok::AmpAmp
                } else if self.eat('=') {
                    Tok::AmpAssign
                } else {
                    Tok::Amp
                }
            }
            '|' => {
                if self.eat('|') {
                    Tok::PipePipe
                } else if self.eat('=') {
                    Tok::PipeAssign
                } else {
                    Tok::Pipe
                }
            }
            '^' => {
                if self.eat('=') {
                    Tok::CaretAssign
                } else {
                    Tok::Caret
                }
            }
            '!' => {
                if self.eat('=') {
                    Tok::BangEq
                } else {
                    Tok::Bang
                }
            }
            '=' => {
                if self.eat('=') {
                    Tok::EqEq
                } else {
                    Tok::Assign
                }
            }
            '<' => {
                if self.eat('<') {
                    if self.eat('=') {
                        Tok::ShlAssign
                    } else {
                        Tok::Shl
                    }
                } else if self.eat('=') {
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            '>' => {
                if self.eat('>') {
                    if self.eat('>') {
                        if self.eat('=') {
                            Tok::UshrAssign
                        } else {
                            Tok::Ushr
                        }
                    } else if self.eat('=') {
                        Tok::ShrAssign
                    } else {
                        Tok::Shr
                    }
                } else if self.eat('=') {
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            other => {
                return Err(FrontError::at(self.line, format!("unexpected character `{other}`")));
            }
        };
        self.push(kind);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_tokens() {
        assert_eq!(
            kinds("class T { int x = 42; }"),
            vec![
                Tok::KwClass,
                Tok::Ident("T".into()),
                Tok::LBrace,
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::IntLit(42),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn distinguishes_shift_operators() {
        assert_eq!(
            kinds("a >> b >>> c << d >>= e >>>= f <<= g"),
            vec![
                Tok::Ident("a".into()),
                Tok::Shr,
                Tok::Ident("b".into()),
                Tok::Ushr,
                Tok::Ident("c".into()),
                Tok::Shl,
                Tok::Ident("d".into()),
                Tok::ShrAssign,
                Tok::Ident("e".into()),
                Tok::UshrAssign,
                Tok::Ident("f".into()),
                Tok::ShlAssign,
                Tok::Ident("g".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn long_literal_is_tagged() {
        assert_eq!(kinds("900000000000L")[0], Tok::LongLit(900000000000));
        assert_eq!(kinds("7l")[0], Tok::LongLit(7));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n /* block\n over lines */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn tracks_lines() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#""a\n\t\"\\""#), vec![Tok::StrLit("a\n\t\"\\".into()), Tok::Eof]);
    }

    #[test]
    fn rejects_oversized_int_literal() {
        assert!(lex("99999999999").is_err());
        // But i32::MIN magnitude is fine (parser folds the minus sign).
        assert!(lex("2147483648").is_ok());
    }

    #[test]
    fn rejects_bad_characters() {
        assert!(lex("#").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
