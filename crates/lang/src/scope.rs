//! Program points, scopes, and AST navigation for mutation.
//!
//! The JoNM mutators (paper §3.4, Algorithm 1) pick "an arbitrary program
//! point ρ within method m" and need the set of variables `V` available at
//! ρ (Algorithm 2, line 3). This module enumerates every insertion point of
//! a checked program together with its in-scope variables, and navigates a
//! mutable AST back to a chosen point so synthesized code can be spliced in.

use crate::ast::*;
use crate::ty::Ty;

/// One navigation step from a block into a nested block of its `index`-th
/// statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seg {
    /// Into the `then` block of an `if`.
    Then(usize),
    /// Into the `else` block of an `if`.
    Else(usize),
    /// Into the body of a `while`/`do`/`for` loop.
    Body(usize),
    /// Into the statements of the `case`-th arm of a `switch`.
    Case { stmt: usize, case: usize },
    /// Into the body of a `try`.
    TryBody(usize),
    /// Into a `catch` block.
    Catch(usize),
    /// Into a `finally` block.
    Finally(usize),
    /// Into a bare nested block.
    Inner(usize),
}

/// A statement-granularity program point: "before the `index`-th statement
/// of the block reached by `path` inside method `method` of class `class`".
/// `index` may equal the block length, meaning "at the end of the block".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgPoint {
    pub class: usize,
    pub method: usize,
    pub path: Vec<Seg>,
    pub index: usize,
}

/// A variable visible at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    pub name: String,
    pub ty: Ty,
    /// `true` for method parameters.
    pub is_param: bool,
}

/// A program point plus its static context.
#[derive(Debug, Clone)]
pub struct PointInfo {
    pub point: ProgPoint,
    /// Locals and parameters in scope, in declaration order.
    pub vars: Vec<VarInfo>,
    /// Nesting depth of enclosing loops (0 = not inside a loop).
    pub loop_depth: usize,
    /// Whether the point sits inside a `switch` arm.
    pub in_switch: bool,
}

/// Enumerates every insertion point of every method body in the program.
pub fn collect_points(program: &Program) -> Vec<PointInfo> {
    let mut points = Vec::new();
    for (class_idx, class) in program.classes.iter().enumerate() {
        for method_idx in 0..class.methods.len() {
            collect_method_points(program, class_idx, method_idx, &mut points);
        }
    }
    points
}

/// Enumerates the insertion points of a single method body. Mutators that
/// target one method at a time use this instead of [`collect_points`]:
/// walking the whole program once per mutated method made JoNM quadratic
/// in program size.
pub fn collect_points_in(program: &Program, class_idx: usize, method_idx: usize) -> Vec<PointInfo> {
    let mut points = Vec::new();
    collect_method_points(program, class_idx, method_idx, &mut points);
    points
}

fn collect_method_points(
    program: &Program,
    class_idx: usize,
    method_idx: usize,
    points: &mut Vec<PointInfo>,
) {
    let method = &program.classes[class_idx].methods[method_idx];
    let mut vars: Vec<VarInfo> = method
        .params
        .iter()
        .map(|p| VarInfo { name: p.name.clone(), ty: p.ty.clone(), is_param: true })
        .collect();
    let mut walker = Walker {
        class: class_idx,
        method: method_idx,
        path: Vec::new(),
        loop_depth: 0,
        in_switch: false,
        points,
    };
    walker.block(&method.body, &mut vars);
}

struct Walker<'a> {
    class: usize,
    method: usize,
    path: Vec<Seg>,
    loop_depth: usize,
    in_switch: bool,
    points: &'a mut Vec<PointInfo>,
}

impl Walker<'_> {
    fn emit(&mut self, index: usize, vars: &[VarInfo]) {
        self.points.push(PointInfo {
            point: ProgPoint {
                class: self.class,
                method: self.method,
                path: self.path.clone(),
                index,
            },
            vars: vars.to_vec(),
            loop_depth: self.loop_depth,
            in_switch: self.in_switch,
        });
    }

    fn block(&mut self, block: &Block, vars: &mut Vec<VarInfo>) {
        let base = vars.len();
        for (i, stmt) in block.stmts.iter().enumerate() {
            self.emit(i, vars);
            self.stmt(stmt, i, vars);
            if let Stmt::VarDecl { name, ty, .. } = stmt {
                vars.push(VarInfo { name: name.clone(), ty: ty.clone(), is_param: false });
            }
        }
        self.emit(block.stmts.len(), vars);
        vars.truncate(base);
    }

    fn nested(&mut self, seg: Seg, block: &Block, vars: &mut Vec<VarInfo>) {
        self.path.push(seg);
        self.block(block, vars);
        self.path.pop();
    }

    fn stmt(&mut self, stmt: &Stmt, index: usize, vars: &mut Vec<VarInfo>) {
        match stmt {
            Stmt::If { then_blk, else_blk, .. } => {
                self.nested(Seg::Then(index), then_blk, vars);
                if let Some(else_blk) = else_blk {
                    self.nested(Seg::Else(index), else_blk, vars);
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
                self.loop_depth += 1;
                self.nested(Seg::Body(index), body, vars);
                self.loop_depth -= 1;
            }
            Stmt::For { init, body, .. } => {
                // The loop variable (if any) is visible inside the body.
                let base = vars.len();
                if let Some(Stmt::VarDecl { name, ty, .. }) = init.as_deref() {
                    vars.push(VarInfo { name: name.clone(), ty: ty.clone(), is_param: false });
                }
                self.loop_depth += 1;
                self.nested(Seg::Body(index), body, vars);
                self.loop_depth -= 1;
                vars.truncate(base);
            }
            Stmt::Switch { cases, .. } => {
                let was_in_switch = self.in_switch;
                self.in_switch = true;
                for (case_idx, case) in cases.iter().enumerate() {
                    // Case bodies share a scope in Java, but MiniJava locals
                    // are per-arm for mutation purposes (declarations in one
                    // arm are not offered to later arms; fall-through code
                    // that uses them still type-checks since the checker
                    // scopes arms separately).
                    let base = vars.len();
                    self.path.push(Seg::Case { stmt: index, case: case_idx });
                    for (i, inner) in case.body.iter().enumerate() {
                        self.emit(i, vars);
                        self.stmt(inner, i, vars);
                        if let Stmt::VarDecl { name, ty, .. } = inner {
                            vars.push(VarInfo {
                                name: name.clone(),
                                ty: ty.clone(),
                                is_param: false,
                            });
                        }
                    }
                    self.emit(case.body.len(), vars);
                    self.path.pop();
                    vars.truncate(base);
                }
                self.in_switch = was_in_switch;
            }
            Stmt::Block(inner) => self.nested(Seg::Inner(index), inner, vars),
            Stmt::Try { body, catch, finally } => {
                self.nested(Seg::TryBody(index), body, vars);
                if let Some(catch) = catch {
                    self.nested(Seg::Catch(index), catch, vars);
                }
                if let Some(finally) = finally {
                    self.nested(Seg::Finally(index), finally, vars);
                }
            }
            _ => {}
        }
    }
}

/// Fallible variant of [`stmts_at_mut`], for callers holding paths that a
/// mutation may have invalidated (e.g. the reducer).
pub fn try_stmts_at_mut<'a>(
    program: &'a mut Program,
    point: &ProgPoint,
) -> Option<&'a mut Vec<Stmt>> {
    let method = program.classes.get_mut(point.class)?.methods.get_mut(point.method)?;
    let mut stmts: &mut Vec<Stmt> = &mut method.body.stmts;
    for seg in &point.path {
        stmts = match *seg {
            Seg::Then(i) => match stmts.get_mut(i)? {
                Stmt::If { then_blk, .. } => &mut then_blk.stmts,
                _ => return None,
            },
            Seg::Else(i) => match stmts.get_mut(i)? {
                Stmt::If { else_blk: Some(else_blk), .. } => &mut else_blk.stmts,
                _ => return None,
            },
            Seg::Body(i) => match stmts.get_mut(i)? {
                Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                    &mut body.stmts
                }
                _ => return None,
            },
            Seg::Case { stmt, case } => match stmts.get_mut(stmt)? {
                Stmt::Switch { cases, .. } => &mut cases.get_mut(case)?.body,
                _ => return None,
            },
            Seg::TryBody(i) => match stmts.get_mut(i)? {
                Stmt::Try { body, .. } => &mut body.stmts,
                _ => return None,
            },
            Seg::Catch(i) => match stmts.get_mut(i)? {
                Stmt::Try { catch: Some(catch), .. } => &mut catch.stmts,
                _ => return None,
            },
            Seg::Finally(i) => match stmts.get_mut(i)? {
                Stmt::Try { finally: Some(finally), .. } => &mut finally.stmts,
                _ => return None,
            },
            Seg::Inner(i) => match stmts.get_mut(i)? {
                Stmt::Block(inner) => &mut inner.stmts,
                _ => return None,
            },
        };
    }
    Some(stmts)
}

/// Returns the statement list addressed by `point`'s path (not applying
/// `point.index`). Panics if the path does not match the program shape;
/// paths must come from [`collect_points`] on the same program.
pub fn stmts_at_mut<'a>(program: &'a mut Program, point: &ProgPoint) -> &'a mut Vec<Stmt> {
    let method = &mut program.classes[point.class].methods[point.method];
    let mut stmts: &mut Vec<Stmt> = &mut method.body.stmts;
    for seg in &point.path {
        stmts = match *seg {
            Seg::Then(i) => match &mut stmts[i] {
                Stmt::If { then_blk, .. } => &mut then_blk.stmts,
                other => panic!("path mismatch: expected if, found {other:?}"),
            },
            Seg::Else(i) => match &mut stmts[i] {
                Stmt::If { else_blk: Some(else_blk), .. } => &mut else_blk.stmts,
                other => panic!("path mismatch: expected if/else, found {other:?}"),
            },
            Seg::Body(i) => match &mut stmts[i] {
                Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                    &mut body.stmts
                }
                other => panic!("path mismatch: expected loop, found {other:?}"),
            },
            Seg::Case { stmt, case } => match &mut stmts[stmt] {
                Stmt::Switch { cases, .. } => &mut cases[case].body,
                other => panic!("path mismatch: expected switch, found {other:?}"),
            },
            Seg::TryBody(i) => match &mut stmts[i] {
                Stmt::Try { body, .. } => &mut body.stmts,
                other => panic!("path mismatch: expected try, found {other:?}"),
            },
            Seg::Catch(i) => match &mut stmts[i] {
                Stmt::Try { catch: Some(catch), .. } => &mut catch.stmts,
                other => panic!("path mismatch: expected catch, found {other:?}"),
            },
            Seg::Finally(i) => match &mut stmts[i] {
                Stmt::Try { finally: Some(finally), .. } => &mut finally.stmts,
                other => panic!("path mismatch: expected finally, found {other:?}"),
            },
            Seg::Inner(i) => match &mut stmts[i] {
                Stmt::Block(inner) => &mut inner.stmts,
                other => panic!("path mismatch: expected block, found {other:?}"),
            },
        };
    }
    stmts
}

/// Immutable variant of [`stmts_at_mut`].
pub fn stmts_at<'a>(program: &'a Program, point: &ProgPoint) -> &'a [Stmt] {
    let method = &program.classes[point.class].methods[point.method];
    let mut stmts: &[Stmt] = &method.body.stmts;
    for seg in &point.path {
        stmts = match *seg {
            Seg::Then(i) => match &stmts[i] {
                Stmt::If { then_blk, .. } => &then_blk.stmts,
                other => panic!("path mismatch: expected if, found {other:?}"),
            },
            Seg::Else(i) => match &stmts[i] {
                Stmt::If { else_blk: Some(else_blk), .. } => &else_blk.stmts,
                other => panic!("path mismatch: expected if/else, found {other:?}"),
            },
            Seg::Body(i) => match &stmts[i] {
                Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                    &body.stmts
                }
                other => panic!("path mismatch: expected loop, found {other:?}"),
            },
            Seg::Case { stmt, case } => match &stmts[stmt] {
                Stmt::Switch { cases, .. } => &cases[case].body,
                other => panic!("path mismatch: expected switch, found {other:?}"),
            },
            Seg::TryBody(i) => match &stmts[i] {
                Stmt::Try { body, .. } => &body.stmts,
                other => panic!("path mismatch: expected try, found {other:?}"),
            },
            Seg::Catch(i) => match &stmts[i] {
                Stmt::Try { catch: Some(catch), .. } => &catch.stmts,
                other => panic!("path mismatch: expected catch, found {other:?}"),
            },
            Seg::Finally(i) => match &stmts[i] {
                Stmt::Try { finally: Some(finally), .. } => &finally.stmts,
                other => panic!("path mismatch: expected finally, found {other:?}"),
            },
            Seg::Inner(i) => match &stmts[i] {
                Stmt::Block(inner) => &inner.stmts,
                other => panic!("path mismatch: expected block, found {other:?}"),
            },
        };
    }
    stmts
}

/// Calls `f` on every expression in a statement (pre-order, including
/// nested statements' expressions).
pub fn for_each_expr_in_stmt(stmt: &Stmt, f: &mut dyn FnMut(&Expr)) {
    match stmt {
        Stmt::VarDecl { init, .. } => walk_expr(init, f),
        Stmt::Assign { target, value, .. } => {
            walk_lvalue(target, f);
            walk_expr(value, f);
        }
        Stmt::IncDec { target, .. } => walk_lvalue(target, f),
        Stmt::If { cond, then_blk, else_blk } => {
            walk_expr(cond, f);
            for s in &then_blk.stmts {
                for_each_expr_in_stmt(s, f);
            }
            if let Some(else_blk) = else_blk {
                for s in &else_blk.stmts {
                    for_each_expr_in_stmt(s, f);
                }
            }
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            walk_expr(cond, f);
            for s in &body.stmts {
                for_each_expr_in_stmt(s, f);
            }
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(init) = init {
                for_each_expr_in_stmt(init, f);
            }
            if let Some(cond) = cond {
                walk_expr(cond, f);
            }
            if let Some(step) = step {
                for_each_expr_in_stmt(step, f);
            }
            for s in &body.stmts {
                for_each_expr_in_stmt(s, f);
            }
        }
        Stmt::Switch { scrutinee, cases } => {
            walk_expr(scrutinee, f);
            for case in cases {
                for s in &case.body {
                    for_each_expr_in_stmt(s, f);
                }
            }
        }
        Stmt::Return(Some(value)) => walk_expr(value, f),
        Stmt::ExprStmt(expr) => walk_expr(expr, f),
        Stmt::Block(block) => {
            for s in &block.stmts {
                for_each_expr_in_stmt(s, f);
            }
        }
        Stmt::Try { body, catch, finally } => {
            for s in &body.stmts {
                for_each_expr_in_stmt(s, f);
            }
            if let Some(catch) = catch {
                for s in &catch.stmts {
                    for_each_expr_in_stmt(s, f);
                }
            }
            if let Some(finally) = finally {
                for s in &finally.stmts {
                    for_each_expr_in_stmt(s, f);
                }
            }
        }
        Stmt::Throw(code) => walk_expr(code, f),
        Stmt::Println(value) => walk_expr(value, f),
        Stmt::Break | Stmt::Continue | Stmt::Return(None) | Stmt::Mute | Stmt::Unmute => {}
    }
}

fn walk_lvalue(lvalue: &LValue, f: &mut dyn FnMut(&Expr)) {
    match lvalue {
        LValue::InstField { recv, .. } => walk_expr(recv, f),
        LValue::Index { array, index } => {
            walk_expr(array, f);
            walk_expr(index, f);
        }
        LValue::Local(_) | LValue::Name(_) | LValue::StaticField { .. } => {}
    }
}

/// Calls `f` on `expr` and every sub-expression (pre-order).
pub fn walk_expr(expr: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::InstField { recv, .. } => walk_expr(recv, f),
        Expr::Index { array, index } => {
            walk_expr(array, f);
            walk_expr(index, f);
        }
        Expr::Length(array) => walk_expr(array, f),
        Expr::NewArray { dims, .. } => {
            for dim in dims {
                walk_expr(dim, f);
            }
        }
        Expr::NewArrayInit { elems, .. } => {
            for elem in elems {
                walk_expr(elem, f);
            }
        }
        Expr::StaticCall { args, .. }
        | Expr::FreeCall { args, .. }
        | Expr::IntrinsicCall { args, .. } => {
            for arg in args {
                walk_expr(arg, f);
            }
        }
        Expr::InstCall { recv, args, .. } => {
            walk_expr(recv, f);
            for arg in args {
                walk_expr(arg, f);
            }
        }
        Expr::Unary { expr, .. } => walk_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Cast { expr, .. } => walk_expr(expr, f),
        _ => {}
    }
}

/// Collects every (point, statement-contains-call) pair for calls to
/// `class.method`: the returned points address the statements that contain
/// at least one call to the target, so code can be inserted right before
/// them (the paper's MI mutator).
pub fn call_sites(program: &Program, class_name: &str, method_name: &str) -> Vec<ProgPoint> {
    let mut sites = Vec::new();
    for info in collect_points(program) {
        let stmts = stmts_at(program, &info.point);
        if info.point.index >= stmts.len() {
            continue;
        }
        let stmt = &stmts[info.point.index];
        let mut found = false;
        for_each_expr_in_stmt(stmt, &mut |e| match e {
            Expr::StaticCall { class, method, .. }
                if class == class_name && method == method_name =>
            {
                found = true;
            }
            Expr::InstCall { method, .. } if method == method_name => {
                // Receiver-class match is validated by the mutator, which
                // knows the receiver's static type; method names are unique
                // enough in practice for site collection.
                found = true;
            }
            _ => {}
        });
        if found {
            sites.push(info.point);
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_check;

    const SRC: &str = r#"
        class T {
            int f;
            int g(int p) {
                int a = p + 1;
                if (a > 0) {
                    int b = a * 2;
                    while (b > 0) {
                        b--;
                    }
                }
                for (int i = 0; i < 3; i++) {
                    a += i;
                }
                return a;
            }
            static void main() {
                T t = new T();
                println(t.g(5));
            }
        }
    "#;

    #[test]
    fn collects_points_with_scopes() {
        let program = parse_and_check(SRC).unwrap();
        let points = collect_points(&program);
        assert!(!points.is_empty());
        // Inside the while body, `p`, `a`, and `b` are all visible.
        let in_while = points
            .iter()
            .find(|pi| pi.point.path.len() == 2 && pi.loop_depth == 1)
            .expect("point inside while body");
        let names: Vec<&str> = in_while.vars.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["p", "a", "b"]);
        // Inside the for body, the loop variable is visible.
        let in_for = points
            .iter()
            .find(|pi| pi.loop_depth == 1 && pi.vars.iter().any(|v| v.name == "i"))
            .expect("point inside for body");
        assert!(in_for.vars.iter().any(|v| v.name == "a"));
    }

    #[test]
    fn navigation_reaches_every_point() {
        let mut program = parse_and_check(SRC).unwrap();
        let points = collect_points(&program);
        for info in &points {
            let stmts = stmts_at_mut(&mut program, &info.point);
            assert!(info.point.index <= stmts.len());
        }
    }

    #[test]
    fn insertion_at_point_changes_block() {
        let mut program = parse_and_check(SRC).unwrap();
        let points = collect_points(&program);
        let target = points.iter().find(|pi| pi.loop_depth == 1).unwrap();
        let stmts = stmts_at_mut(&mut program, &target.point);
        let before = stmts.len();
        stmts.insert(target.point.index, Stmt::Break);
        assert_eq!(stmts.len(), before + 1);
    }

    #[test]
    fn finds_call_sites() {
        let program = parse_and_check(SRC).unwrap();
        let sites = call_sites(&program, "T", "g");
        assert_eq!(sites.len(), 1);
        let stmts = stmts_at(&program, &sites[0]);
        assert!(matches!(stmts[sites[0].index], Stmt::Println(_)));
    }

    #[test]
    fn params_flagged() {
        let program = parse_and_check(SRC).unwrap();
        let points = collect_points(&program);
        let first = &points[0];
        assert!(first.vars.iter().any(|v| v.is_param && v.name == "p"));
    }
}
