//! Compilation Space Exploration (CSE) and the Artemis/JoNM mutators —
//! the primary contribution of *"Validating JIT Compilers via Compilation
//! Space Exploration"* (SOSP '23), reproduced on the `cse-vm` substrate.
//!
//! * [`space`] — the formal backbone: temperatures, JIT-traces, and
//!   exhaustive compilation-space enumeration (Definitions 3.1–3.3,
//!   Figure 1).
//! * [`synth`] / [`skeleton`] — loop/expression/statement synthesis
//!   (Algorithm 2, Figure 3) over a statement-skeleton corpus.
//! * [`mutate`] — JIT-op neutral mutation with the LI/SW/MI mutators
//!   (§3.3–3.4, Algorithm 1's `JoNM`).
//! * [`validate`] — the `Validate` driver and metamorphic oracle
//!   (Algorithm 1), plus ground-truth bug attribution.
//! * [`baseline`] — the traditional (`count=0`) and option-fuzzing
//!   baselines (§3.2, §4.3).
//! * [`campaign`] — multi-seed fuzzing campaigns with Table 1/2-style
//!   aggregation.
//! * [`coverage`] — JIT-behavior coverage feedback: merged coverage
//!   maps, the minimized live corpus, and the deterministic round
//!   scheduler behind `CSE_COVERAGE=guide`.
//! * [`executor`] — the campaign engines: the serial reference loop and
//!   the deterministic work-stealing parallel executor behind
//!   `CampaignConfig::jobs`.
//! * [`supervisor`] — crash isolation for long campaigns: harness
//!   incidents, checkpoint/resume, and quarantine of crashing inputs.
//! * [`triage`] — automated incident triage: in-campaign reduction,
//!   signature-based dedup, and flakiness re-execution under the VM's
//!   deterministic resource budgets.
//!
//! # Examples
//!
//! ```
//! use cse_core::mutate::Artemis;
//! use cse_core::synth::SynthParams;
//! use cse_vm::VmKind;
//!
//! let seed = cse_fuzz::generate(1, &cse_fuzz::FuzzConfig::default());
//! let mut artemis = Artemis::new(7, SynthParams::for_kind(VmKind::HotSpotLike));
//! let (mutant, applied) = artemis.jonm(&seed);
//! // The mutant is a valid program (and, by construction, semantics-
//! // preserving — the crate's tests check that against the interpreter).
//! let mut checked = mutant.clone();
//! cse_lang::typeck::check(&mut checked).unwrap();
//! assert!(applied.len() <= seed.method_count());
//! ```

#![forbid(unsafe_code)]

pub mod baseline;
pub mod campaign;
pub mod coverage;
pub mod executor;
pub mod memo;
pub mod mutate;
pub mod skeleton;
pub mod space;
pub mod supervisor;
pub mod synth;
pub mod triage;
pub mod validate;

pub use coverage::{CoverageMode, CoveragePolicy, CoverageState, PlanVariant};
pub use memo::{ExecCachePolicy, ExecMemo};
pub use mutate::{AppliedMutation, Artemis, Mutator};
pub use supervisor::{ChaosConfig, HarnessIncident, IncidentPhase, SupervisorConfig};
pub use synth::SynthParams;
pub use triage::{
    shrink_plan, signature_of, triage_campaign, triage_incidents, BugSignature, OracleKind,
    TriageConfig, TriageReport, TriagedReport, Verdict,
};
pub use validate::{Discrepancy, DiscrepancyKind, ValidateConfig, ValidationOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use cse_vm::{Outcome, Vm, VmConfig, VmKind};

    /// Neutrality — the heart of JoNM (§3.3): a mutant must behave exactly
    /// like its seed under the reference interpreter.
    #[test]
    fn mutants_are_semantics_preserving() {
        let fuzz = cse_fuzz::FuzzConfig::default();
        let mut checked_mutants = 0;
        for seed_value in 0..12u64 {
            let seed = cse_fuzz::generate(seed_value, &fuzz);
            let seed_bc = validate::compile_checked(&seed);
            let seed_run =
                Vm::run_program(&seed_bc, VmConfig::interpreter_only(VmKind::HotSpotLike));
            let mut artemis =
                Artemis::new(seed_value * 31 + 7, SynthParams::for_kind(VmKind::HotSpotLike));
            for _ in 0..3 {
                let (mutant, applied) = artemis.jonm(&seed);
                if applied.is_empty() {
                    continue;
                }
                let mutant_bc = validate::compile_checked(&mutant);
                let mutant_run =
                    Vm::run_program(&mutant_bc, VmConfig::interpreter_only(VmKind::HotSpotLike));
                // Over-heavy mutants are discarded, mirroring the paper's
                // two-minute cutoff (§4.3); every finishing mutant must
                // agree with its seed exactly.
                if matches!(mutant_run.outcome, Outcome::Timeout) {
                    continue;
                }
                assert_eq!(
                    mutant_run.observable(),
                    seed_run.observable(),
                    "non-neutral mutation (seed {seed_value}, {applied:?}):\n{}",
                    cse_lang::pretty::print(&mutant),
                );
                checked_mutants += 1;
            }
        }
        assert!(checked_mutants >= 20, "only {checked_mutants} mutants exercised");
    }

    /// Mutants must actually *heat up* the VM — the point of JoNM is to
    /// trigger JIT compilation that the cold seed never reaches.
    #[test]
    fn mutants_trigger_jit_compilation() {
        let fuzz = cse_fuzz::FuzzConfig::default();
        let mut heated = 0;
        let mut total = 0;
        for seed_value in 0..10u64 {
            let seed = cse_fuzz::generate(seed_value, &fuzz);
            let mut artemis = Artemis::new(seed_value, SynthParams::for_kind(VmKind::HotSpotLike));
            // The paper runs MAX_ITER mutants per seed precisely because a
            // single mutation can land in code the seed never executes.
            for _ in 0..3 {
                let (mutant, applied) = artemis.jonm(&seed);
                if applied.is_empty() {
                    continue;
                }
                let bc = validate::compile_checked(&mutant);
                let run = Vm::run_program(&bc, VmConfig::correct(VmKind::HotSpotLike));
                // Over-heavy mutants are discarded (the paper's cutoff).
                if matches!(run.outcome, Outcome::Timeout) {
                    continue;
                }
                total += 1;
                if run.stats.compilations + run.stats.osr_compilations > 0 {
                    heated += 1;
                }
            }
        }
        assert!(heated * 2 >= total, "only {heated}/{total} mutants reached the JIT");
    }

    /// Mutants under correct VMs agree across all engines (no injected
    /// bugs → no discrepancies, ever).
    #[test]
    fn correct_vm_never_reports_discrepancies() {
        let fuzz = cse_fuzz::FuzzConfig::default();
        for seed_value in 0..6u64 {
            let seed = cse_fuzz::generate(seed_value, &fuzz);
            let config = ValidateConfig {
                max_iter: 3,
                vm: VmConfig::correct(VmKind::HotSpotLike),
                params: SynthParams::for_kind(VmKind::HotSpotLike),
                verify_neutrality: true,
                exec_cache: ExecCachePolicy::Auto,
            };
            let outcome = validate::validate(&seed, &config, seed_value);
            assert_eq!(outcome.neutrality_violations, 0, "seed {seed_value}");
            assert!(
                outcome.discrepancies.is_empty(),
                "false positive on a correct VM (seed {seed_value}): {:?}",
                outcome.discrepancies[0].kind
            );
        }
    }

    #[test]
    fn jonm_is_deterministic() {
        let seed = cse_fuzz::generate(3, &cse_fuzz::FuzzConfig::default());
        let params = SynthParams::for_kind(VmKind::OpenJ9Like);
        let (a, _) = Artemis::new(99, params.clone()).jonm(&seed);
        let (b, _) = Artemis::new(99, params).jonm(&seed);
        assert_eq!(a, b);
    }

    #[test]
    fn mutator_restriction_is_honored() {
        let seed = cse_fuzz::generate(5, &cse_fuzz::FuzzConfig::default());
        let mut artemis = Artemis::new(1, SynthParams::for_kind(VmKind::HotSpotLike));
        artemis.enabled = vec![Mutator::Li];
        let (_, applied) = artemis.jonm(&seed);
        assert!(applied.iter().all(|a| a.mutator == Mutator::Li));
    }
}
