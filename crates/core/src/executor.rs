//! Deterministic campaign execution — serial reference path and the
//! work-stealing parallel engine behind `CampaignConfig::jobs`.
//!
//! # Determinism contract
//!
//! A campaign's [`CampaignResult::digest`] must be **bit-identical** for
//! every `jobs` setting (and across kill/resume cycles, as PR 1
//! established). The design that guarantees this:
//!
//! * **Sharding** — a shared atomic claim counter hands out seed
//!   *offsets* in increasing order. A worker that claims an offset always
//!   processes it ("claimed-must-process"), so the set of completed
//!   offsets is a contiguous prefix of the seed range at every point in
//!   time — exactly the shape a checkpoint needs.
//! * **Pure seed work** — [`process_seed`] touches no shared state: it
//!   generates the seed, compiles it once, validates it, and runs the
//!   baseline, returning everything in a [`SeedRecord`].
//! * **Deterministic merge** — a single collector (the campaign thread)
//!   buffers out-of-order records and folds them into the result strictly
//!   in seed order via [`merge_seed`], which is the exact aggregation the
//!   serial loop performs. Quarantine writes and checkpoints happen only
//!   on the collector, in seed order.
//! * **Early stop before claim** — deadline and `stop_after_seeds` are
//!   checked *before* claiming an offset, never mid-seed, so a cutoff
//!   still leaves a contiguous, resumable prefix.
//!
//! `jobs <= 1` takes the serial loop below, which is the reference
//! semantics: the parallel path is an optimization that must be
//! observationally equivalent, and `tests/parallel_determinism.rs` holds
//! it to that.

use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cse_vm::supervise::contain_panics;
use cse_vm::{SharedArtifactCache, Symptom, VmPanic};

use crate::baseline;
use crate::campaign::{BugEvidence, CampaignConfig, CampaignResult};
use crate::coverage::{PlanVariant, TaskSpec};
use crate::supervisor::{self, HarnessIncident, IncidentPhase};
use crate::validate::{self, DiscrepancyKind, ValidateConfig, ValidationOutcome};

/// Everything the seed loops need besides the result being built.
pub(crate) struct ExecContext<'a> {
    pub config: &'a CampaignConfig,
    pub validate_config: ValidateConfig,
    /// When this invocation started (deadline base).
    pub start: Instant,
    /// Wall time accumulated by previous (killed) invocations.
    pub prior_wall: Duration,
    /// The coverage scheduler's task assignments for the offset range
    /// this invocation covers (`None` = unguided: every offset runs its
    /// natural seed, unfocused, baseline plan).
    pub round: Option<RoundTasks>,
}

/// One guided round's schedule, anchored at its first seed offset.
pub(crate) struct RoundTasks {
    pub base: u64,
    pub tasks: Vec<TaskSpec>,
}

impl ExecContext<'_> {
    /// The scheduled task for a seed offset, if this is a guided round.
    fn task(&self, offset: u64) -> Option<&TaskSpec> {
        let round = self.round.as_ref()?;
        round.tasks.get(usize::try_from(offset.checked_sub(round.base)?).ok()?)
    }
}

/// The complete, self-contained outcome of one seed: what a worker sends
/// to the collector. Contains no shared state and no open resources, so
/// it can cross threads freely.
struct SeedRecord {
    /// Seed offset (for task lookups at the merge barrier).
    offset: u64,
    seed_value: u64,
    outcome: ValidationOutcome,
    /// Baseline verdict when `run_traditional` is on; a contained panic
    /// carries the pretty-printed seed for the incident report.
    baseline: Option<Result<baseline::BaselineOutcome, (VmPanic, String)>>,
    /// Artifact-cache `(hits, misses)` this seed contributed to its
    /// worker's shard — volatile counters (see
    /// [`crate::campaign::CampaignTotals`]).
    artifact_stats: (u64, u64),
}

/// Runs the seed loop (serial or parallel per `config.jobs`) over the
/// offset range `[next, end)` on top of a possibly checkpoint-restored
/// `result`/`next` pair. `end < config.seeds` bounds one guided round;
/// unguided campaigns pass `end = config.seeds`. `processed` counts
/// seeds merged across this *invocation* (the `stop_after_seeds` budget
/// spans rounds).
pub(crate) fn run(
    ctx: &ExecContext<'_>,
    result: CampaignResult,
    next: u64,
    end: u64,
    processed: &mut u64,
) -> CampaignResult {
    if ctx.config.jobs <= 1 {
        run_serial(ctx, result, next, end, processed)
    } else {
        run_parallel(ctx, result, next, end, processed)
    }
}

/// The per-seed validation config: the scheduled forced-plan coordinate
/// (guided rounds), then the supervisor's chaos knob (which targets a
/// single seed value).
fn seed_vconfig(ctx: &ExecContext<'_>, offset: u64, seed_value: u64) -> ValidateConfig {
    let mut vconfig = ctx.validate_config.clone();
    match ctx.task(offset).map_or(PlanVariant::Baseline, |t| t.plan) {
        PlanVariant::Baseline => {}
        PlanVariant::ForceTop => {
            vconfig.vm.plan = Some(cse_vm::ForcedPlan::all(vconfig.vm.top_tier()));
        }
        PlanVariant::ForceT1 => {
            vconfig.vm.plan = Some(cse_vm::ForcedPlan::all(cse_vm::Tier(1)));
        }
    }
    if let Some(chaos) = ctx.config.supervisor.chaos {
        if chaos.panic_on_seed == seed_value {
            vconfig.vm.chaos_panic_at_ops = Some(chaos.after_ops);
        }
    }
    vconfig
}

/// Processes one seed end-to-end: generate, compile once, validate, run
/// the baseline. Pure with respect to campaign state — the artifact
/// `shard` is worker-local (results are hit/miss-invariant, see
/// [`cse_vm::SharedArtifactCache`]), and everything the collector needs
/// is in the returned record.
fn process_seed(ctx: &ExecContext<'_>, offset: u64, shard: &Rc<SharedArtifactCache>) -> SeedRecord {
    let config = ctx.config;
    let seed_value = config.first_seed + offset;
    // A guided task may re-expand a corpus entry (its generator seed +
    // focused mutation sites); the *rng* seed stays the slot's natural
    // value, so re-expansions draw fresh mutation sequences.
    let task = ctx.task(offset);
    let gen_seed = task.map_or(seed_value, |t| t.gen_seed);
    let focus: Vec<String> = task.map(|t| t.focus.clone()).unwrap_or_default();
    let seed_program = cse_fuzz::generate(gen_seed, &config.fuzz);
    let seed_vconfig = seed_vconfig(ctx, offset, seed_value);
    let stats_before = shard.stats();
    // Compile the seed exactly once; validation and the traditional
    // baseline share the same bytecode.
    let seed_bytecode = validate::try_compile_checked(&seed_program).map(Arc::new);
    let outcome = validate::validate_compiled_in(
        &seed_program,
        seed_bytecode.clone(),
        &seed_vconfig,
        seed_value,
        |artemis| artemis.focus = focus,
        shard,
    );
    outcome.check_invariants();
    let baseline = if config.run_traditional {
        let run = match &seed_bytecode {
            Ok(bytecode) => contain_panics(|| baseline::traditional_compiled(bytecode, &config.vm)),
            // The seed never compiled: keep the historical recompiling
            // path, whose contained panic becomes a Baseline incident.
            Err(_) => contain_panics(|| baseline::traditional(&seed_program, &config.vm)),
        };
        Some(run.map_err(|panic| (panic, cse_lang::pretty::print(&seed_program))))
    } else {
        None
    };
    let stats_after = shard.stats();
    let artifact_stats = (stats_after.0 - stats_before.0, stats_after.1 - stats_before.1);
    SeedRecord { offset, seed_value, outcome, baseline, artifact_stats }
}

/// Folds one seed's record into the campaign result. This is the *only*
/// aggregation path — serial and parallel runs both come through here,
/// strictly in seed order, which is what makes the digest independent of
/// `jobs`.
fn merge_seed(ctx: &ExecContext<'_>, result: &mut CampaignResult, record: SeedRecord) {
    let config = ctx.config;
    let sup = &config.supervisor;
    let seed_value = record.seed_value;
    let mut outcome = record.outcome;
    result.totals.seeds += 1;
    result.totals.mutants += outcome.mutants_run as u64;
    result.totals.completed += outcome.completed as u64;
    result.totals.vm_invocations += outcome.vm_invocations as u64;
    result.totals.discarded += outcome.discarded as u64;
    result.totals.seeds_discarded += outcome.seed_discarded as u64;
    result.totals.mutant_compile_failures += outcome.mutant_compile_failures as u64;
    result.totals.neutrality_violations += outcome.neutrality_violations as u64;
    result.totals.ir_verify_defects += outcome.ir_verify_defects;
    result.totals.tv_defects += outcome.tv_defects;
    result.totals.exec_cache_hits += outcome.exec_cache_hits;
    result.totals.exec_cache_misses += outcome.exec_cache_misses;
    result.totals.artifact_cache_hits += record.artifact_stats.0;
    result.totals.artifact_cache_misses += record.artifact_stats.1;
    // Coverage feedback mutates campaign state *only* here, on the
    // seed-ordered collector — the whole scheduler's jobs-invariance
    // rests on that.
    if let Some(state) = result.coverage.as_mut() {
        let task = ctx.task(record.offset);
        let plan = task.map_or(PlanVariant::Baseline, |t| t.plan);
        let gen_seed = task.map_or(seed_value, |t| t.gen_seed);
        state.absorb(
            &outcome.coverage,
            std::mem::take(&mut outcome.corpus_candidates),
            gen_seed,
            plan,
            outcome.vm_invocations as u64,
        );
    }
    let quarantine_vm = seed_vconfig(ctx, record.offset, seed_value).vm;
    for incident in std::mem::take(&mut outcome.incidents) {
        if let Some(dir) = &sup.quarantine_dir {
            if let Err(e) = supervisor::quarantine_incident(dir, &incident, &quarantine_vm) {
                eprintln!("warning: quarantine write failed: {e}");
            }
        }
        result.incidents.push(incident);
    }
    if outcome.found_bug() {
        result.cse_seeds.push(seed_value);
    }
    for discrepancy in outcome.discrepancies {
        if let DiscrepancyKind::Crash(info) = &discrepancy.kind {
            if let Some(dir) = &sup.quarantine_dir {
                if let Err(e) = supervisor::quarantine_crash(
                    dir,
                    seed_value,
                    seed_value,
                    discrepancy.culprit,
                    info,
                    &discrepancy.mutant_source,
                    &config.vm,
                ) {
                    eprintln!("warning: quarantine write failed: {e}");
                }
            }
        }
        match discrepancy.culprit {
            Some(bug) => {
                let evidence = result.bugs.entry(bug).or_insert_with(|| BugEvidence {
                    bug,
                    component: bug.component(),
                    symptom: bug.symptom(),
                    occurrences: 0,
                    first_seed: seed_value,
                    reproducer: discrepancy.mutant_source.clone(),
                });
                evidence.occurrences += 1;
                // Trust the *observed* symptom over the catalog when a
                // bug manifests differently (e.g. a mis-compilation
                // that crashes downstream).
                if let DiscrepancyKind::Crash(info) = &discrepancy.kind {
                    evidence.symptom = Symptom::Crash;
                    evidence.component = info.component;
                }
            }
            None => result.unattributed += 1,
        }
    }
    match record.baseline {
        Some(Ok(b)) => {
            result.totals.vm_invocations += b.vm_invocations as u64;
            if b.discrepancy {
                result.traditional_seeds.push(seed_value);
            }
        }
        Some(Err((panic, seed_source))) => {
            result.incidents.push(HarnessIncident {
                phase: IncidentPhase::Baseline,
                seed: seed_value,
                rng_seed: seed_value,
                iteration: None,
                payload: panic.payload,
                source: Some(seed_source),
            });
        }
        None => {}
    }
}

/// Saves a cadence or final checkpoint, updating the volatile totals
/// first (exactly the serial loop's historical behavior).
fn checkpoint(ctx: &ExecContext<'_>, result: &mut CampaignResult, next: u64) {
    let config = ctx.config;
    if let Some(path) = &config.supervisor.checkpoint_path {
        result.totals.partial = next < config.seeds;
        result.totals.wall = ctx.prior_wall + ctx.start.elapsed();
        if let Err(e) = supervisor::save_checkpoint(path, config, next, result) {
            eprintln!("warning: checkpoint write failed: {e}");
        }
    }
}

/// The reference semantics: one seed at a time, in order.
fn run_serial(
    ctx: &ExecContext<'_>,
    mut result: CampaignResult,
    mut next: u64,
    end: u64,
    processed: &mut u64,
) -> CampaignResult {
    let config = ctx.config;
    let sup = &config.supervisor;
    let shard = SharedArtifactCache::new();
    while next < end {
        if let Some(deadline) = sup.deadline {
            if ctx.start.elapsed() >= deadline {
                break;
            }
        }
        if let Some(stop) = sup.stop_after_seeds {
            if *processed >= stop {
                break;
            }
        }
        let record = process_seed(ctx, next, &shard);
        merge_seed(ctx, &mut result, record);
        next += 1;
        *processed += 1;
        if sup.checkpoint_path.is_some() && processed.is_multiple_of(sup.cadence()) {
            checkpoint(ctx, &mut result, next);
        }
    }
    result.totals.partial = next < config.seeds;
    result.totals.wall = ctx.prior_wall + ctx.start.elapsed();
    if let Some(path) = &sup.checkpoint_path {
        if let Err(e) = supervisor::save_checkpoint(path, config, next, &result) {
            eprintln!("warning: checkpoint write failed: {e}");
        }
    }
    result
}

/// The work-stealing parallel engine: `config.jobs` workers claim seed
/// offsets from an atomic counter and ship [`SeedRecord`]s to the
/// collector below, which merges them in seed order (see the module docs
/// for why the digest cannot depend on scheduling).
fn run_parallel(
    ctx: &ExecContext<'_>,
    mut result: CampaignResult,
    next: u64,
    end: u64,
    processed: &mut u64,
) -> CampaignResult {
    let config = ctx.config;
    let sup = &config.supervisor;
    let claim = AtomicU64::new(next);
    let stop = AtomicBool::new(false);
    // Seeds this invocation may still process under `stop_after_seeds`
    // (the budget spans rounds; claimed-before-budget-check stays safe
    // because the claim counter is monotonic).
    let budget = sup.stop_after_seeds.map(|limit| limit.saturating_sub(*processed));
    let (tx, rx) = mpsc::channel::<(u64, SeedRecord)>();
    // Offset of the next record the collector will merge; everything
    // below it is already folded into `result`.
    let mut merged_next = next;
    std::thread::scope(|scope| {
        for _ in 0..config.jobs {
            let tx = tx.clone();
            let (claim, stop) = (&claim, &stop);
            scope.spawn(move || {
                // One artifact shard per worker: `Rc`-based, never
                // crosses threads; warm-up differences between shards
                // cannot change results (hit-replay invariance).
                let shard = SharedArtifactCache::new();
                loop {
                    // Cutoffs are checked before claiming: a claimed
                    // offset is always processed, so completed seeds form
                    // a contiguous prefix at every instant.
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Some(deadline) = config.supervisor.deadline {
                        if ctx.start.elapsed() >= deadline {
                            stop.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                    let offset = claim.fetch_add(1, Ordering::SeqCst);
                    if offset >= end {
                        break;
                    }
                    if let Some(limit) = budget {
                        // The claim counter is monotonic, so refusing the
                        // first offset past the budget refuses all later
                        // ones too.
                        if offset - next >= limit {
                            break;
                        }
                    }
                    let record = process_seed(ctx, offset, &shard);
                    if tx.send((offset, record)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        // Collector: buffer out-of-order arrivals, merge the contiguous
        // prefix. Quarantine and checkpoint I/O happens only here.
        let mut pending: BTreeMap<u64, SeedRecord> = BTreeMap::new();
        for (offset, record) in rx {
            pending.insert(offset, record);
            while let Some(record) = pending.remove(&merged_next) {
                merge_seed(ctx, &mut result, record);
                merged_next += 1;
                *processed += 1;
                if sup.checkpoint_path.is_some() && processed.is_multiple_of(sup.cadence()) {
                    checkpoint(ctx, &mut result, merged_next);
                }
            }
        }
        assert!(pending.is_empty(), "completed seeds must form a contiguous prefix");
    });
    result.totals.partial = merged_next < config.seeds;
    result.totals.wall = ctx.prior_wall + ctx.start.elapsed();
    if let Some(path) = &sup.checkpoint_path {
        if let Err(e) = supervisor::save_checkpoint(path, config, merged_next, &result) {
            eprintln!("warning: checkpoint write failed: {e}");
        }
    }
    result
}
