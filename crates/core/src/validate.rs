//! JIT-compiler validation — the paper's Algorithm 1.
//!
//! `Validate(LVM, P)` runs the seed with its default JIT-trace, derives
//! `MAX_ITER` JoNM mutants, runs each with *its* default JIT-trace, and
//! reports a JIT-compiler bug whenever the outputs disagree (§3.3's
//! metamorphic oracle: the mutations are semantics-preserving, so any
//! discrepancy is the VM's fault).
//!
//! Beyond the paper's tool, the driver can (a) verify each mutant's
//! neutrality against the reference interpreter — a harness-soundness
//! check the paper cannot run on production JVMs but we can, and (b)
//! attribute discrepancies to ground-truth injected bugs by re-running
//! with individual bugs disabled, which powers the Table 1 "Duplicate"
//! accounting.

use cse_bytecode::BProgram;
use cse_lang::Program;
use cse_vm::{
    BugId, ExecutionResult, FaultInjector, Outcome, Symptom, Vm, VmConfig,
};

use crate::mutate::{AppliedMutation, Artemis};
use crate::synth::SynthParams;

/// Validation settings.
#[derive(Debug, Clone)]
pub struct ValidateConfig {
    /// Mutants per seed (the paper's `MAX_ITER`, set to 8 in §4.1).
    pub max_iter: usize,
    /// The LVM under test.
    pub vm: VmConfig,
    /// Synthesis hyper-parameters.
    pub params: SynthParams,
    /// Cross-check every mutant against the reference interpreter and
    /// panic on a non-neutral mutation (harness soundness; costs one
    /// extra run per mutant).
    pub verify_neutrality: bool,
}

impl ValidateConfig {
    /// The paper's evaluation settings for a VM profile (§4.1):
    /// `MAX_ITER = 8`, thresholds-scaled `MIN`/`MAX`.
    pub fn paper_defaults(vm: VmConfig) -> ValidateConfig {
        let params = SynthParams::for_kind(vm.kind);
        ValidateConfig { max_iter: 8, vm, params, verify_neutrality: true }
    }
}

/// How a discrepancy manifested (Table 1's bug-type split).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscrepancyKind {
    /// Outputs differ between seed and mutant (both completed).
    MisCompilation,
    /// The mutant crashed the VM.
    Crash(cse_vm::CrashInfo),
    /// The mutant's compiled code is pathologically slower than its
    /// interpreted execution (or timed out when interpretation finishes
    /// comfortably).
    Performance,
}

impl DiscrepancyKind {
    /// Maps to the Table 1 symptom class.
    pub fn symptom(&self) -> Symptom {
        match self {
            DiscrepancyKind::MisCompilation => Symptom::MisCompilation,
            DiscrepancyKind::Crash(_) => Symptom::Crash,
            DiscrepancyKind::Performance => Symptom::Performance,
        }
    }
}

/// One reported discrepancy.
#[derive(Debug, Clone)]
pub struct Discrepancy {
    pub kind: DiscrepancyKind,
    /// The mutant source that exposes the bug (a ready bug report).
    pub mutant_source: String,
    /// Mutations that were applied to derive the mutant.
    pub mutations: Vec<AppliedMutation>,
    /// Ground-truth culprit, when attribution was possible.
    pub culprit: Option<BugId>,
    /// Seed/mutant observable behaviors, for the report.
    pub seed_observable: String,
    pub mutant_observable: String,
}

/// The outcome of validating one seed.
#[derive(Debug, Default)]
pub struct ValidationOutcome {
    pub discrepancies: Vec<Discrepancy>,
    /// Mutants executed.
    pub mutants_run: usize,
    /// Mutants discarded for exceeding the step budget (the paper's
    /// two-minute cutoff, §4.3).
    pub discarded: usize,
    /// VM invocations performed (seed + mutants + attribution reruns).
    pub vm_invocations: usize,
    /// Non-neutral mutants detected (harness bugs; must stay zero).
    pub neutrality_violations: usize,
}

impl ValidationOutcome {
    /// Whether any discrepancy was found.
    pub fn found_bug(&self) -> bool {
        !self.discrepancies.is_empty()
    }
}

/// Compiles a checked program, panicking on front-end failure (inputs are
/// either fuzzer output or mutants of checked programs — both valid by
/// construction).
pub fn compile_checked(program: &Program) -> BProgram {
    let mut program = program.clone();
    cse_lang::typeck::check(&mut program).expect("mutant failed the type checker");
    cse_bytecode::compile(&program).expect("mutant failed bytecode compilation")
}

/// Algorithm 1: validates `LVM` (in `config.vm`) against one seed.
///
/// `rng_seed` fixes the mutation randomness, making every validation
/// reproducible.
pub fn validate(seed: &Program, config: &ValidateConfig, rng_seed: u64) -> ValidationOutcome {
    validate_with(seed, config, rng_seed, |_| {})
}

/// [`validate`] with a hook to configure the mutation engine (e.g. the
/// mutator-mix ablation restricts `Artemis::enabled`).
pub fn validate_with(
    seed: &Program,
    config: &ValidateConfig,
    rng_seed: u64,
    configure: impl FnOnce(&mut Artemis),
) -> ValidationOutcome {
    let mut outcome = ValidationOutcome::default();
    let seed_bytecode = compile_checked(seed);
    // R ← LVM(P): the seed with its default JIT-trace.
    let seed_result = Vm::run_program(&seed_bytecode, config.vm.clone());
    outcome.vm_invocations += 1;
    if matches!(seed_result.outcome, Outcome::Timeout) {
        outcome.discarded += 1;
        return outcome;
    }
    // Reference (interpreter) behavior for neutrality and the perf oracle.
    let seed_reference = if config.verify_neutrality {
        outcome.vm_invocations += 1;
        Some(Vm::run_program(&seed_bytecode, VmConfig::interpreter_only(config.vm.kind)))
    } else {
        None
    };
    let mut artemis = Artemis::new(rng_seed, config.params.clone());
    configure(&mut artemis);
    for _ in 0..config.max_iter {
        // P' ← JoNM(P).
        let (mutant, mutations) = artemis.jonm(seed);
        if mutations.is_empty() {
            continue;
        }
        let mutant_bytecode = compile_checked(&mutant);
        // R' ← LVM(P').
        let mutant_result = Vm::run_program(&mutant_bytecode, config.vm.clone());
        outcome.vm_invocations += 1;
        outcome.mutants_run += 1;
        // Reference run: neutrality check + performance baseline.
        let mutant_reference = if config.verify_neutrality {
            outcome.vm_invocations += 1;
            let reference =
                Vm::run_program(&mutant_bytecode, VmConfig::interpreter_only(config.vm.kind));
            if let Some(seed_reference) = &seed_reference {
                if reference.observable() != seed_reference.observable()
                    && !matches!(reference.outcome, Outcome::Timeout)
                    && !matches!(seed_reference.outcome, Outcome::Timeout)
                {
                    outcome.neutrality_violations += 1;
                    continue;
                }
            }
            Some(reference)
        } else {
            None
        };
        // Timeout handling: discard unless the reference shows the mutant
        // is comfortably cheap — then the slowness is the JIT's fault.
        if matches!(mutant_result.outcome, Outcome::Timeout) {
            let genuine_perf_bug = mutant_reference
                .as_ref()
                .map(|r| {
                    r.outcome.is_completed() && r.stats.total_ops() < config.vm.fuel / 4
                })
                .unwrap_or(false);
            if genuine_perf_bug {
                outcome.discrepancies.push(make_discrepancy(
                    DiscrepancyKind::Performance,
                    &mutant,
                    mutations,
                    &seed_result,
                    &mutant_result,
                    config,
                    &mutant_bytecode,
                    &mut outcome.vm_invocations,
                ));
            } else {
                outcome.discarded += 1;
            }
            continue;
        }
        // Explicit performance anomaly: compiled execution does far more
        // work than pure interpretation of the same program.
        if let Some(reference) = &mutant_reference {
            if reference.outcome.is_completed()
                && mutant_result.stats.total_ops()
                    > reference.stats.total_ops().saturating_mul(8) + 1_000_000
            {
                outcome.discrepancies.push(make_discrepancy(
                    DiscrepancyKind::Performance,
                    &mutant,
                    mutations,
                    &seed_result,
                    &mutant_result,
                    config,
                    &mutant_bytecode,
                    &mut outcome.vm_invocations,
                ));
                continue;
            }
        }
        // The §3.2 oracle: LVM(P) vs LVM(P').
        if mutant_result.observable() != seed_result.observable() {
            let kind = match &mutant_result.outcome {
                Outcome::Crash(info) => DiscrepancyKind::Crash(info.clone()),
                _ => DiscrepancyKind::MisCompilation,
            };
            outcome.discrepancies.push(make_discrepancy(
                kind,
                &mutant,
                mutations,
                &seed_result,
                &mutant_result,
                config,
                &mutant_bytecode,
                &mut outcome.vm_invocations,
            ));
        }
    }
    outcome
}

#[allow(clippy::too_many_arguments)]
fn make_discrepancy(
    kind: DiscrepancyKind,
    mutant: &Program,
    mutations: Vec<AppliedMutation>,
    seed_result: &ExecutionResult,
    mutant_result: &ExecutionResult,
    config: &ValidateConfig,
    mutant_bytecode: &BProgram,
    vm_invocations: &mut usize,
) -> Discrepancy {
    let culprit = match &kind {
        // Crashes carry ground truth directly.
        DiscrepancyKind::Crash(info) => Some(info.bug),
        // Mis-compilations and perf bugs are attributed by ablation.
        _ => attribute(mutant_bytecode, config, mutant_result, vm_invocations),
    };
    Discrepancy {
        kind,
        mutant_source: cse_lang::pretty::print(mutant),
        mutations,
        culprit,
        seed_observable: seed_result.observable(),
        mutant_observable: mutant_result.observable(),
    }
}

/// Ground-truth attribution: re-runs the mutant with each active bug
/// disabled; the first whose removal changes the observable behavior is
/// the culprit.
fn attribute(
    mutant_bytecode: &BProgram,
    config: &ValidateConfig,
    buggy_result: &ExecutionResult,
    vm_invocations: &mut usize,
) -> Option<BugId> {
    let active: Vec<BugId> = config.vm.faults.bugs().collect();
    for &bug in &active {
        let remaining: Vec<BugId> = active.iter().copied().filter(|&b| b != bug).collect();
        let mut vm = config.vm.clone();
        vm.faults = FaultInjector::with(remaining);
        let result = Vm::run_program(mutant_bytecode, vm);
        *vm_invocations += 1;
        if result.observable() != buggy_result.observable() {
            return Some(bug);
        }
    }
    None
}
