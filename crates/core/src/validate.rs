//! JIT-compiler validation — the paper's Algorithm 1.
//!
//! `Validate(LVM, P)` runs the seed with its default JIT-trace, derives
//! `MAX_ITER` JoNM mutants, runs each with *its* default JIT-trace, and
//! reports a JIT-compiler bug whenever the outputs disagree (§3.3's
//! metamorphic oracle: the mutations are semantics-preserving, so any
//! discrepancy is the VM's fault).
//!
//! Beyond the paper's tool, the driver can (a) verify each mutant's
//! neutrality against the reference interpreter — a harness-soundness
//! check the paper cannot run on production JVMs but we can, and (b)
//! attribute discrepancies to ground-truth injected bugs by re-running
//! with individual bugs disabled, which powers the Table 1 "Duplicate"
//! accounting.
//!
//! Every VM invocation goes through the crash barrier
//! ([`cse_vm::supervised_run`]): a panic anywhere in the substrate is
//! contained, recorded as a [`HarnessIncident`], and validation moves on
//! to the next mutant instead of unwinding the whole campaign. Mutants
//! that fail the type checker or bytecode compiler are likewise
//! quarantined as mutator bugs ([`try_compile_checked`]) rather than
//! aborting the process.

use std::rc::Rc;
use std::sync::Arc;

use cse_bytecode::BProgram;
use cse_lang::Program;
use cse_vm::supervise::{contain_panics, supervised_run_cached, supervised_run_warmth_cached};
use cse_vm::{
    BugId, ExecutionResult, FaultInjector, Outcome, ProgramArtifacts, SharedArtifactCache, Symptom,
    VmConfig, VmPanic,
};

use crate::memo::{render_for_check, ExecCachePolicy, ExecMemo};
use crate::mutate::{AppliedMutation, Artemis, Mutator};
use crate::supervisor::{HarnessIncident, IncidentPhase};
use crate::synth::SynthParams;

/// Validation settings.
#[derive(Debug, Clone)]
pub struct ValidateConfig {
    /// Mutants per seed (the paper's `MAX_ITER`, set to 8 in §4.1).
    pub max_iter: usize,
    /// The LVM under test.
    pub vm: VmConfig,
    /// Synthesis hyper-parameters.
    pub params: SynthParams,
    /// Cross-check every mutant against the reference interpreter and
    /// skip non-neutral mutations (harness soundness; costs one extra
    /// run per mutant).
    pub verify_neutrality: bool,
    /// Execution-memoization policy (see [`crate::memo`]): replay runs
    /// whose program footprint provably matches an earlier recorded run
    /// instead of executing them. Never changes a verdict or a digest —
    /// `CSE_EXEC_CACHE=off` is the kill switch, `check` the cross-check.
    pub exec_cache: ExecCachePolicy,
}

impl ValidateConfig {
    /// The paper's evaluation settings for a VM profile (§4.1):
    /// `MAX_ITER = 8`, thresholds-scaled `MIN`/`MAX`.
    pub fn paper_defaults(vm: VmConfig) -> ValidateConfig {
        let params = SynthParams::for_kind(vm.kind);
        ValidateConfig {
            max_iter: 8,
            vm,
            params,
            verify_neutrality: true,
            exec_cache: ExecCachePolicy::Auto,
        }
    }
}

/// How a discrepancy manifested (Table 1's bug-type split).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscrepancyKind {
    /// Outputs differ between seed and mutant (both completed).
    MisCompilation,
    /// The mutant crashed the VM.
    Crash(cse_vm::CrashInfo),
    /// The mutant's compiled code is pathologically slower than its
    /// interpreted execution (or timed out when interpretation finishes
    /// comfortably).
    Performance,
}

impl DiscrepancyKind {
    /// Maps to the Table 1 symptom class.
    pub fn symptom(&self) -> Symptom {
        match self {
            DiscrepancyKind::MisCompilation => Symptom::MisCompilation,
            DiscrepancyKind::Crash(_) => Symptom::Crash,
            DiscrepancyKind::Performance => Symptom::Performance,
        }
    }
}

/// One reported discrepancy.
#[derive(Debug, Clone)]
pub struct Discrepancy {
    pub kind: DiscrepancyKind,
    /// The mutant source that exposes the bug (a ready bug report).
    pub mutant_source: String,
    /// Mutations that were applied to derive the mutant.
    pub mutations: Vec<AppliedMutation>,
    /// Ground-truth culprit, when attribution was possible.
    pub culprit: Option<BugId>,
    /// Seed/mutant observable behaviors, for the report.
    pub seed_observable: String,
    pub mutant_observable: String,
}

/// The outcome of validating one seed.
///
/// # Counter invariants
///
/// The mutant-level counters are disjoint and complete:
///
/// ```text
/// mutants_run = completed + discarded
/// neutrality_violations <= discarded     (violations are one discard reason)
/// ```
///
/// `completed` mutants received a full oracle verdict (which may or may
/// not be a discrepancy); `discarded` mutants ran but produced none
/// (step-budget timeout without performance-bug evidence, a neutrality
/// violation, or a contained VM panic). Seed-level failures are kept out
/// of the mutant counters entirely: `seed_discarded` marks a seed whose
/// own run timed out or panicked (no mutants were attempted), and
/// `mutant_compile_failures` counts mutants that never ran because JoNM
/// produced an uncompilable program (a quarantined mutator bug).
/// [`ValidationOutcome::check_invariants`] asserts all of this.
#[derive(Debug, Default)]
pub struct ValidationOutcome {
    pub discrepancies: Vec<Discrepancy>,
    /// Mutants executed on the VM under test.
    pub mutants_run: usize,
    /// Mutants that ran to a full oracle verdict.
    pub completed: usize,
    /// Mutants that ran but yielded no verdict (timeout discard,
    /// neutrality violation, or contained panic).
    pub discarded: usize,
    /// The seed itself produced no baseline (timeout or contained
    /// panic); no mutants were attempted.
    pub seed_discarded: bool,
    /// Mutants that failed type checking or bytecode compilation —
    /// mutator bugs, quarantined instead of panicking (never ran, so not
    /// part of `mutants_run`).
    pub mutant_compile_failures: usize,
    /// VM invocations performed (seed + mutants + attribution reruns).
    pub vm_invocations: usize,
    /// Non-neutral mutants detected and skipped (harness bugs; must stay
    /// zero with the stock mutators).
    pub neutrality_violations: usize,
    /// Defects reported by the static IR verifier (the third oracle; see
    /// `cse_vm::jit::verify`) across seed and mutant runs. Orthogonal to
    /// the mutant counters: a defect never changes a run's verdict.
    pub ir_verify_defects: u64,
    /// Refinement violations reported by the translation validator (see
    /// `cse_vm::jit::tv`) across seed and mutant runs. Observation-only,
    /// like `ir_verify_defects`.
    pub tv_defects: u64,
    /// Runs served by the execution memo instead of executing (see
    /// [`crate::memo`]). A served run still counts in `vm_invocations`,
    /// so every other counter is independent of the cache policy.
    pub exec_cache_hits: u64,
    /// Memo lookups that fell through to a real execution.
    pub exec_cache_misses: u64,
    /// Contained harness failures (panics in the VM, the compilers, or
    /// the mutation engine).
    pub incidents: Vec<HarnessIncident>,
    /// Union of the JIT-behavior coverage of every seed/mutant run
    /// under the VM under test (all-zero unless `VmConfig::coverage`).
    pub coverage: cse_vm::CoverageMap,
    /// Mutant runs that covered cells no earlier run of this seed did
    /// — corpus-admission candidates for the campaign's coverage
    /// scheduler (capped; empty unless `VmConfig::coverage`).
    pub corpus_candidates: Vec<crate::coverage::CorpusCandidate>,
}

impl ValidationOutcome {
    /// Whether any discrepancy was found.
    pub fn found_bug(&self) -> bool {
        !self.discrepancies.is_empty()
    }

    /// Asserts the documented counter invariants (cheap; called by the
    /// campaign driver after every seed).
    pub fn check_invariants(&self) {
        assert_eq!(
            self.mutants_run,
            self.completed + self.discarded,
            "mutant counters must be disjoint and complete"
        );
        assert!(
            self.neutrality_violations <= self.discarded,
            "neutrality violations are a subset of discards"
        );
        if self.seed_discarded {
            assert_eq!(self.mutants_run, 0, "a discarded seed attempts no mutants");
        }
    }

    fn incident(
        &mut self,
        phase: IncidentPhase,
        rng_seed: u64,
        iteration: Option<usize>,
        payload: String,
        source: Option<String>,
    ) {
        self.incidents.push(HarnessIncident {
            phase,
            seed: rng_seed,
            rng_seed,
            iteration,
            payload,
            source,
        });
    }

    /// Harvests IR-verifier defects from a run into the counter and an
    /// [`IncidentPhase::IrVerifyDefect`] incident. Applied to the seed run
    /// and to first mutant runs only — neutrality references run the
    /// interpreter (nothing to verify) and attribution reruns would
    /// re-report the same compilations.
    fn note_ir_defects(
        &mut self,
        result: &ExecutionResult,
        rng_seed: u64,
        iteration: Option<usize>,
        source: &Program,
    ) {
        if result.ir_verify.is_empty() {
            return;
        }
        self.ir_verify_defects += result.ir_verify.len() as u64;
        self.incident(
            IncidentPhase::IrVerifyDefect,
            rng_seed,
            iteration,
            result.ir_verify.join("\n"),
            Some(cse_lang::pretty::print(source)),
        );
    }

    /// Harvests translation-validation defects from a run into the
    /// counter and an [`IncidentPhase::TvDefect`] incident; same sampling
    /// rules as [`ValidationOutcome::note_ir_defects`].
    fn note_tv_defects(
        &mut self,
        result: &ExecutionResult,
        rng_seed: u64,
        iteration: Option<usize>,
        source: &Program,
    ) {
        if result.tv.is_empty() {
            return;
        }
        self.tv_defects += result.tv.len() as u64;
        self.incident(
            IncidentPhase::TvDefect,
            rng_seed,
            iteration,
            result.tv.join("\n"),
            Some(cse_lang::pretty::print(source)),
        );
    }
}

/// Compiles a checked program, panicking on front-end failure (inputs are
/// either fuzzer output or mutants of checked programs — both valid by
/// construction). Campaign paths use [`try_compile_checked`] so a
/// mutator bug is quarantined instead of aborting the process.
pub fn compile_checked(program: &Program) -> BProgram {
    let mut program = program.clone();
    cse_lang::typeck::check(&mut program).expect("mutant failed the type checker");
    cse_bytecode::compile(&program).expect("mutant failed bytecode compilation")
}

/// Fallible twin of [`compile_checked`]: returns the failure (including
/// a contained compiler panic) as a message instead of unwinding.
pub fn try_compile_checked(program: &Program) -> Result<BProgram, String> {
    let mut program = program.clone();
    try_compile_checked_mut(&mut program)
}

/// [`try_compile_checked`] for callers that own the program and can let
/// the type checker annotate it in place. The validation loop compiles
/// every mutant exactly once and never reuses the AST afterward (reports
/// pretty-print the annotated form, which prints identically), so the
/// defensive whole-AST clone is pure overhead there.
pub fn try_compile_checked_mut(program: &mut Program) -> Result<BProgram, String> {
    contain_panics(|| {
        cse_lang::typeck::check(program).map_err(|e| format!("type check failed: {e}"))?;
        let bytecode = cse_bytecode::compile(program)
            .map_err(|e| format!("bytecode compilation failed: {e}"))?;
        // Mutants are only as trusted as the mutator that made them: a
        // JoNM product that compiles but fails bytecode verification is a
        // mutator (or compiler) bug and must be quarantined before the VM
        // executes it.
        cse_bytecode::verify::verify_program(&bytecode)
            .map_err(|e| format!("bytecode verification failed: {e}"))?;
        Ok(bytecode)
    })
    .map_err(|p| format!("compiler panicked: {}", p.payload))?
}

/// The content-addressed mutant front end: LI and SW mutations are
/// body-local (they rewrite statements inside exactly one method and
/// report it as `Class.method`), so such a mutant only needs *its
/// mutated methods* re-resolved and re-checked. The mutant is rebased
/// onto a pre-annotated clone of the seed — the mutated bodies are
/// moved over, re-checked against the seed's (unchanged) class table,
/// and the rest of the program keeps its seed annotations verbatim.
/// Resolution is deterministic, so the resulting bytecode is
/// bit-identical to a full front-end pass over the raw mutant.
///
/// Returns `None` when the fast path does not apply and the caller must
/// take the full pipeline: an MI mutation (it adds a control field and
/// rewrites a call site in a *different* method, so it is not
/// body-local), or a location that cannot be resolved (e.g. the chaos
/// knob's whole-program `<chaos: literal flip>` sentinel).
fn try_compile_mutant_incremental(
    mutant: &mut Program,
    annotated_seed: &mut Program,
    table: &cse_lang::typeck::ClassTable,
    mutations: &[AppliedMutation],
) -> Option<Result<BProgram, String>> {
    let mut targets: Vec<(usize, usize)> = Vec::new();
    for mutation in mutations {
        if matches!(mutation.mutator, Mutator::Mi) {
            return None;
        }
        let (class_name, method_name) = mutation.location.split_once('.')?;
        let class_idx = mutant.classes.iter().position(|c| c.name == class_name)?;
        let method_idx =
            mutant.classes[class_idx].methods.iter().position(|m| m.name == method_name)?;
        if !targets.contains(&(class_idx, method_idx)) {
            targets.push((class_idx, method_idx));
        }
    }
    // Swap the mutated bodies into the annotated program — no whole-AST
    // clone. The front end runs on `annotated_seed` (now carrying the
    // mutant's bodies at `targets`, seed annotations everywhere else),
    // then the second swap restores it to pristine and hands the mutant
    // its re-checked bodies back. Annotation rewrites print identically,
    // so repro files are unaffected. The restore runs even when checking
    // fails or panics — `contain_panics` has already caught by then.
    for &(class_idx, method_idx) in &targets {
        std::mem::swap(
            &mut annotated_seed.classes[class_idx].methods[method_idx].body,
            &mut mutant.classes[class_idx].methods[method_idx].body,
        );
    }
    let compiled = contain_panics(|| {
        for &(class_idx, method_idx) in &targets {
            cse_lang::typeck::check_method(annotated_seed, table, class_idx, method_idx)
                .map_err(|e| format!("type check failed: {e}"))?;
        }
        let bytecode = cse_bytecode::compile(annotated_seed)
            .map_err(|e| format!("bytecode compilation failed: {e}"))?;
        cse_bytecode::verify::verify_program(&bytecode)
            .map_err(|e| format!("bytecode verification failed: {e}"))?;
        Ok(bytecode)
    })
    .map_err(|p| format!("compiler panicked: {}", p.payload))
    .and_then(|r| r);
    for &(class_idx, method_idx) in &targets {
        std::mem::swap(
            &mut annotated_seed.classes[class_idx].methods[method_idx].body,
            &mut mutant.classes[class_idx].methods[method_idx].body,
        );
    }
    Some(compiled)
}

/// Step-budget fraction under which a completed reference run marks a
/// mutant timeout as the JIT's fault rather than an expensive program.
const TIMEOUT_CHEAP_DIVISOR: u64 = 4;

/// Factor and absolute slack for the explicit performance-anomaly
/// oracle: compiled execution doing `8x + 1M` the work of pure
/// interpretation is a performance bug, not noise.
const PERF_ANOMALY_FACTOR: u64 = 8;
const PERF_ANOMALY_SLACK: u64 = 1_000_000;

/// Classifies a mutant timeout: it is a genuine performance bug iff the
/// reference interpreter finished the same program comfortably (under a
/// quarter of the step budget); otherwise the program is just expensive
/// and the mutant is discarded.
pub fn timeout_is_performance_bug(reference: Option<&ExecutionResult>, fuel: u64) -> bool {
    reference
        .map(|r| r.outcome.is_completed() && r.stats.total_ops() < fuel / TIMEOUT_CHEAP_DIVISOR)
        .unwrap_or(false)
}

/// The explicit performance-anomaly oracle: whether compiled execution
/// did far more work than pure interpretation of the same program.
pub fn is_performance_anomaly(mutant_ops: u64, reference_ops: u64) -> bool {
    mutant_ops
        > reference_ops.saturating_mul(PERF_ANOMALY_FACTOR).saturating_add(PERF_ANOMALY_SLACK)
}

/// Algorithm 1: validates `LVM` (in `config.vm`) against one seed.
///
/// `rng_seed` fixes the mutation randomness, making every validation
/// reproducible.
pub fn validate(seed: &Program, config: &ValidateConfig, rng_seed: u64) -> ValidationOutcome {
    validate_with(seed, config, rng_seed, |_| {})
}

/// [`validate`] with a hook to configure the mutation engine (e.g. the
/// mutator-mix ablation restricts `Artemis::enabled`).
pub fn validate_with(
    seed: &Program,
    config: &ValidateConfig,
    rng_seed: u64,
    configure: impl FnOnce(&mut Artemis),
) -> ValidationOutcome {
    validate_compiled_with(
        seed,
        try_compile_checked(seed).map(Arc::new),
        config,
        rng_seed,
        configure,
    )
}

/// [`validate_with`] for a seed whose bytecode compilation already
/// happened (or already failed). The campaign driver compiles each seed
/// exactly once and shares the `Arc<BProgram>` between validation and the
/// traditional-fuzzing baseline instead of re-running the front end per
/// consumer.
pub fn validate_compiled_with(
    seed: &Program,
    seed_bytecode: Result<Arc<BProgram>, String>,
    config: &ValidateConfig,
    rng_seed: u64,
    configure: impl FnOnce(&mut Artemis),
) -> ValidationOutcome {
    validate_compiled_in(
        seed,
        seed_bytecode,
        config,
        rng_seed,
        configure,
        &SharedArtifactCache::new(),
    )
}

/// Runs one program through the execution memo: a recorded run whose
/// footprint provably matches is replayed instead of executed; misses
/// execute (through the shared artifact cache) and are recorded. Chaos
/// and wall-clock configs bypass the memo entirely — their runs are
/// harness-fault experiments, not replays.
fn memoized_run(
    memo: &mut ExecMemo,
    program: &BProgram,
    artifacts: &ProgramArtifacts,
    config: &VmConfig,
) -> Result<ExecutionResult, VmPanic> {
    if !memo.enabled() || config.chaos_panic_at_ops.is_some() || config.wall_clock_limit.is_some() {
        return supervised_run_cached(program, config.clone(), artifacts);
    }
    let exec_fp = config.exec_fingerprint();
    if let Some(found) = memo.lookup(&artifacts.digests, exec_fp) {
        if memo.checking() {
            let (fresh, _) = supervised_run_warmth_cached(program, config.clone(), artifacts)?;
            assert_eq!(
                render_for_check(&fresh),
                render_for_check(&found),
                "execution-memo replay diverged from a fresh run (CSE_EXEC_CACHE=check)"
            );
        }
        memo.hit();
        return Ok(found);
    }
    let (result, warmth) = supervised_run_warmth_cached(program, config.clone(), artifacts)?;
    memo.record(program, &artifacts.digests, config, exec_fp, &result, &warmth);
    Ok(result)
}

/// [`validate_compiled_with`] with an explicit shared artifact cache
/// ([`SharedArtifactCache`]): the campaign executor hands each worker's
/// shard down so JIT compilations and decoded programs are shared across
/// every seed the worker processes. Passing a fresh cache reproduces
/// [`validate_compiled_with`] exactly — sharing is observation-neutral
/// by the cache's replay contract.
pub fn validate_compiled_in(
    seed: &Program,
    seed_bytecode: Result<Arc<BProgram>, String>,
    config: &ValidateConfig,
    rng_seed: u64,
    configure: impl FnOnce(&mut Artemis),
    shard: &Rc<SharedArtifactCache>,
) -> ValidationOutcome {
    let mut memo = ExecMemo::new(config.exec_cache);
    let mut outcome =
        validate_inner(seed, seed_bytecode, config, rng_seed, configure, shard, &mut memo);
    outcome.exec_cache_hits = memo.hits;
    outcome.exec_cache_misses = memo.misses;
    outcome
}

/// The body of Algorithm 1; split out so [`validate_compiled_in`] can
/// harvest the memo counters on every exit path.
fn validate_inner(
    seed: &Program,
    seed_bytecode: Result<Arc<BProgram>, String>,
    config: &ValidateConfig,
    rng_seed: u64,
    configure: impl FnOnce(&mut Artemis),
    shard: &Rc<SharedArtifactCache>,
    memo: &mut ExecMemo,
) -> ValidationOutcome {
    let mut outcome = ValidationOutcome::default();
    let seed_bytecode = match seed_bytecode {
        Ok(bytecode) => bytecode,
        Err(message) => {
            // Fuzzer seeds are valid by construction, so this is a
            // harness bug in the fuzzer or the front end.
            outcome.incident(
                IncidentPhase::SeedCompile,
                rng_seed,
                None,
                message,
                Some(cse_lang::pretty::print(seed)),
            );
            outcome.seed_discarded = true;
            return outcome;
        }
    };
    // One shard attachment per program: the digests it computes key both
    // the cross-run artifact cache and the execution memo.
    let seed_artifacts = shard.attach(&seed_bytecode);
    // R ← LVM(P): the seed with its default JIT-trace.
    outcome.vm_invocations += 1;
    let seed_result = match memoized_run(memo, &seed_bytecode, &seed_artifacts, &config.vm) {
        Ok(result) => result,
        Err(panic) => {
            outcome.incident(
                IncidentPhase::SeedRun,
                rng_seed,
                None,
                panic.payload,
                Some(cse_lang::pretty::print(seed)),
            );
            outcome.seed_discarded = true;
            return outcome;
        }
    };
    outcome.note_ir_defects(&seed_result, rng_seed, None, seed);
    outcome.note_tv_defects(&seed_result, rng_seed, None, seed);
    // Running union of this seed's coverage, for novelty checks within
    // the seed (the campaign-global check happens at the merge barrier).
    let mut seen_coverage = seed_result.stats.coverage;
    if config.vm.coverage {
        outcome.coverage.union(&seed_result.stats.coverage);
    }
    if seed_result.outcome.is_resource_exhausted() {
        // An expensive seed: the paper's two-minute cutoff (§4.3), or a
        // heap/stack budget the seed cannot fit in. Not a mutant discard —
        // no mutants were attempted.
        outcome.seed_discarded = true;
        return outcome;
    }
    // Reference (interpreter) behavior for neutrality and the perf
    // oracle — computed *lazily*, at most once per seed, the first time
    // a mutant actually demands it (see `needs_reference` below).
    //
    // Cold-seed reuse, the seed-side twin of the cold-mutant rule below:
    // a seed whose LVM run never touched the JIT is its own reference —
    // every injected fault lives in the JIT pipeline, so a zero-JIT run
    // under the faulty config is bit-identical to the interpreter-only
    // rerun. Fuzzed seeds are deliberately colder than their mutants
    // (JoNM exists to heat them up), so this skips a whole interpreter
    // run for a large fraction of seeds. Crashed runs are excluded for
    // the same compile-time-assert blind spot documented below.
    let seed_is_own_reference = seed_result.stats.compilations == 0
        && seed_result.stats.osr_compilations == 0
        && seed_result.stats.jit_ops == 0
        && !matches!(seed_result.outcome, Outcome::Crash(_));
    // `None` = not yet demanded; `Some(None)` = demanded but unavailable
    // (the interpreter rerun panicked; recorded as an incident).
    let mut seed_reference: Option<Option<ExecutionResult>> = None;
    let mut seed_reference_observable: Option<String> = None;
    // The §3.2 oracle compares every mutant against this; render it once
    // instead of re-formatting the seed's output per iteration.
    let seed_observable = seed_result.observable();
    // One whole-program annotation of the seed backs the incremental
    // mutant front end (`try_compile_mutant_incremental`); the per-mutant
    // cost then drops to a single-method recheck. A seed the checker
    // rejects here (it shouldn't — its bytecode compiled) falls back to
    // the full per-mutant pipeline.
    let mut annotated_seed = seed.clone();
    let seed_table = match cse_lang::typeck::check(&mut annotated_seed) {
        Ok(()) => cse_lang::typeck::ClassTable::build(&annotated_seed).ok(),
        Err(_) => None,
    };
    let mut artemis = Artemis::new(rng_seed, config.params.clone());
    configure(&mut artemis);
    for iteration in 0..config.max_iter {
        // P' ← JoNM(P).
        let (mut mutant, mutations) = match contain_panics(|| artemis.jonm(seed)) {
            Ok(pair) => pair,
            Err(panic) => {
                outcome.incident(
                    IncidentPhase::Mutation,
                    rng_seed,
                    Some(iteration),
                    panic.payload,
                    Some(cse_lang::pretty::print(seed)),
                );
                continue;
            }
        };
        if mutations.is_empty() {
            continue;
        }
        // In-place check-and-compile: the mutant AST is owned and fresh
        // per iteration, so the type checker may annotate it directly
        // instead of paying a whole-AST clone per mutant. The incremental
        // front end re-checks only the mutated methods; anything it can't
        // handle takes the full pipeline.
        let compiled = match &seed_table {
            Some(table) => {
                try_compile_mutant_incremental(&mut mutant, &mut annotated_seed, table, &mutations)
                    .unwrap_or_else(|| try_compile_checked_mut(&mut mutant))
            }
            None => try_compile_checked_mut(&mut mutant),
        };
        let mutant_bytecode = match compiled {
            Ok(bytecode) => bytecode,
            Err(message) => {
                // A mutator bug: JoNM produced an uncompilable program.
                outcome.mutant_compile_failures += 1;
                outcome.incident(
                    IncidentPhase::MutantCompile,
                    rng_seed,
                    Some(iteration),
                    message,
                    Some(cse_lang::pretty::print(&mutant)),
                );
                continue;
            }
        };
        // R' ← LVM(P').
        //
        // The mutant attaches to the worker's shared artifact cache:
        // every unmutated method's compilation is shared with the seed,
        // the sibling mutants, and the attribution reruns below. Sharing
        // is conservative — the content digest and the fault set are part
        // of the cache key, so a run only reuses code whose compilation
        // its own configuration would reproduce bit-identically.
        let mutant_artifacts = shard.attach(&mutant_bytecode);
        outcome.vm_invocations += 1;
        outcome.mutants_run += 1;
        let mutant_result =
            match memoized_run(memo, &mutant_bytecode, &mutant_artifacts, &config.vm) {
                Ok(result) => result,
                Err(panic) => {
                    outcome.discarded += 1;
                    outcome.incident(
                        IncidentPhase::MutantRun,
                        rng_seed,
                        Some(iteration),
                        panic.payload,
                        Some(cse_lang::pretty::print(&mutant)),
                    );
                    continue;
                }
            };
        outcome.note_ir_defects(&mutant_result, rng_seed, Some(iteration), &mutant);
        outcome.note_tv_defects(&mutant_result, rng_seed, Some(iteration), &mutant);
        if config.vm.coverage {
            let map = mutant_result.stats.coverage;
            if map.covers_new(&seen_coverage) && outcome.corpus_candidates.len() < 4 {
                // Whitespace-bearing locations (e.g. the chaos marker)
                // would break the checkpoint's line format; real
                // `Class.method` locations never contain whitespace.
                let locations: Vec<String> = mutations
                    .iter()
                    .map(|m| m.location.clone())
                    .filter(|l| !l.contains(char::is_whitespace))
                    .collect();
                outcome.corpus_candidates.push(crate::coverage::CorpusCandidate { map, locations });
            }
            seen_coverage.union(&map);
            outcome.coverage.union(&map);
        }
        // Reference run: neutrality check + performance baseline.
        //
        // A mutant whose LVM run never touched the JIT — no tier
        // compilations, no OSR entries, no compiled ops executed — is its
        // own reference: every injected fault lives in the JIT pipeline
        // (`cse_vm::jit`), so a zero-JIT run under the faulty config is
        // bit-identical to the interpreter-only rerun it would be checked
        // against. Reusing it skips the rerun entirely (roughly a third
        // of mutants never warm up under the paper's thresholds).
        //
        // The `Crash` guard closes a counter blind spot: an injected
        // *compile-time* assert crashes the run from inside `jit::compile`
        // before `compilations` is ever incremented, so a crashed run can
        // read as zero-JIT while being anything but interpreter-equivalent
        // (ART's catalog is entirely compile-time asserts). Crashed runs
        // always take the real interpreter rerun.
        let stats = &mutant_result.stats;
        let mutant_is_own_reference = stats.compilations == 0
            && stats.osr_compilations == 0
            && stats.jit_ops == 0
            && !matches!(mutant_result.outcome, Outcome::Crash(_));
        let mutant_observable = mutant_result.observable();
        // Lazy-reference pruning: the interpreter rerun feeds exactly
        // three consumers — the neutrality discard, timeout
        // classification, and the performance-anomaly oracle. A mutant
        // that completed within the anomaly slack with an observable
        // identical to the seed's can trip none of them: no timeout to
        // classify, no anomaly possible (`8x + slack` exceeds its op
        // count for *every* reference), and a neutrality violation
        // could at most reclassify a no-bug mutant from `completed` to
        // `discarded` without changing any reported discrepancy. For
        // that (dominant) population the reference run is skipped
        // outright; everything that could influence a bug report still
        // takes the full rerun.
        let needs_reference = config.verify_neutrality
            && (mutant_result.outcome.is_resource_exhausted()
                || stats.total_ops() > PERF_ANOMALY_SLACK
                || mutant_observable != seed_observable);
        let mutant_reference = if !needs_reference {
            None
        } else if mutant_is_own_reference {
            Some(mutant_result.clone())
        } else {
            outcome.vm_invocations += 1;
            let reference_vm = VmConfig::interpreter_only(config.vm.kind);
            match memoized_run(memo, &mutant_bytecode, &mutant_artifacts, &reference_vm) {
                Ok(reference) => Some(reference),
                Err(panic) => {
                    // No reference for this mutant; skip the neutrality
                    // and performance oracles but keep the output oracle.
                    outcome.incident(
                        IncidentPhase::NeutralityRun,
                        rng_seed,
                        Some(iteration),
                        panic.payload,
                        Some(cse_lang::pretty::print(&mutant)),
                    );
                    None
                }
            }
        };
        // First demand on this seed: materialize the seed-side reference.
        if needs_reference && seed_reference.is_none() {
            let computed = if seed_is_own_reference {
                Some(seed_result.clone())
            } else {
                outcome.vm_invocations += 1;
                let reference_vm = VmConfig::interpreter_only(config.vm.kind);
                match memoized_run(memo, &seed_bytecode, &seed_artifacts, &reference_vm) {
                    Ok(result) => Some(result),
                    Err(panic) => {
                        // Proceed without neutrality checking for this seed.
                        outcome.incident(
                            IncidentPhase::ReferenceRun,
                            rng_seed,
                            None,
                            panic.payload,
                            Some(cse_lang::pretty::print(seed)),
                        );
                        None
                    }
                }
            };
            seed_reference_observable = computed.as_ref().map(|r| r.observable());
            seed_reference = Some(computed);
        }
        if let (Some(reference), Some(Some(seed_ref)), Some(seed_ref_observable)) =
            (&mutant_reference, &seed_reference, &seed_reference_observable)
        {
            if &reference.observable() != seed_ref_observable
                && !reference.outcome.is_resource_exhausted()
                && !seed_ref.outcome.is_resource_exhausted()
            {
                outcome.neutrality_violations += 1;
                outcome.discarded += 1;
                continue;
            }
        }
        // Resource-exhaustion handling: discard, unless a *timeout*
        // paired with a comfortably-cheap reference run shows the
        // slowness is the JIT's fault. Heap/stack budget trips carry no
        // performance signal, so they are always discarded.
        if mutant_result.outcome.is_resource_exhausted() {
            if matches!(mutant_result.outcome, Outcome::Timeout)
                && timeout_is_performance_bug(mutant_reference.as_ref(), config.vm.fuel)
            {
                outcome.completed += 1;
                let discrepancy = make_discrepancy(
                    DiscrepancyKind::Performance,
                    &mutant,
                    mutations,
                    &seed_result,
                    &mutant_result,
                    config,
                    &mutant_bytecode,
                    &mutant_artifacts,
                    memo,
                    rng_seed,
                    iteration,
                    &mut outcome,
                );
                outcome.discrepancies.push(discrepancy);
            } else {
                outcome.discarded += 1;
            }
            continue;
        }
        // Explicit performance anomaly: compiled execution does far more
        // work than pure interpretation of the same program.
        if let Some(reference) = &mutant_reference {
            if reference.outcome.is_completed()
                && is_performance_anomaly(
                    mutant_result.stats.total_ops(),
                    reference.stats.total_ops(),
                )
            {
                outcome.completed += 1;
                let discrepancy = make_discrepancy(
                    DiscrepancyKind::Performance,
                    &mutant,
                    mutations,
                    &seed_result,
                    &mutant_result,
                    config,
                    &mutant_bytecode,
                    &mutant_artifacts,
                    memo,
                    rng_seed,
                    iteration,
                    &mut outcome,
                );
                outcome.discrepancies.push(discrepancy);
                continue;
            }
        }
        // The §3.2 oracle: LVM(P) vs LVM(P').
        outcome.completed += 1;
        if mutant_observable != seed_observable {
            let kind = match &mutant_result.outcome {
                Outcome::Crash(info) => DiscrepancyKind::Crash(info.clone()),
                _ => DiscrepancyKind::MisCompilation,
            };
            let discrepancy = make_discrepancy(
                kind,
                &mutant,
                mutations,
                &seed_result,
                &mutant_result,
                config,
                &mutant_bytecode,
                &mutant_artifacts,
                memo,
                rng_seed,
                iteration,
                &mut outcome,
            );
            outcome.discrepancies.push(discrepancy);
        }
    }
    outcome.check_invariants();
    outcome
}

#[allow(clippy::too_many_arguments)]
fn make_discrepancy(
    kind: DiscrepancyKind,
    mutant: &Program,
    mutations: Vec<AppliedMutation>,
    seed_result: &ExecutionResult,
    mutant_result: &ExecutionResult,
    config: &ValidateConfig,
    mutant_bytecode: &BProgram,
    mutant_artifacts: &ProgramArtifacts,
    memo: &mut ExecMemo,
    rng_seed: u64,
    iteration: usize,
    outcome: &mut ValidationOutcome,
) -> Discrepancy {
    let culprit = match &kind {
        // Crashes carry ground truth directly.
        DiscrepancyKind::Crash(info) => Some(info.bug),
        // Mis-compilations and perf bugs are attributed by ablation.
        _ => attribute(
            mutant_bytecode,
            mutant_artifacts,
            memo,
            config,
            mutant_result,
            rng_seed,
            iteration,
            outcome,
        ),
    };
    Discrepancy {
        kind,
        mutant_source: cse_lang::pretty::print(mutant),
        mutations,
        culprit,
        seed_observable: seed_result.observable(),
        mutant_observable: mutant_result.observable(),
    }
}

/// Ground-truth attribution: re-runs the mutant with each active bug
/// disabled; the first whose removal changes the observable behavior is
/// the culprit. A panicking rerun skips that candidate (recorded as an
/// incident) instead of aborting.
///
/// # Fired-mask pruning
///
/// A rerun is only performed for bugs the buggy run actually *queried
/// active* ([`cse_vm::ExecStats::fired_bugs`]). The mask is complete:
/// every compile-time trigger site goes through `CompileCtx::active`
/// (replayed verbatim on artifact-cache hits) and every execution-time
/// site through `Vm::fault_fired`, and an injected bug can only
/// influence behavior through one of those queries returning `true`. A
/// bug absent from the mask therefore never influenced the run, its
/// ablation is a no-op, and the skipped rerun's observable provably
/// equals the buggy run's — the exact condition the loop tests.
#[allow(clippy::too_many_arguments)]
fn attribute(
    mutant_bytecode: &BProgram,
    mutant_artifacts: &ProgramArtifacts,
    memo: &mut ExecMemo,
    config: &ValidateConfig,
    buggy_result: &ExecutionResult,
    rng_seed: u64,
    iteration: usize,
    outcome: &mut ValidationOutcome,
) -> Option<BugId> {
    let active: Vec<BugId> = config.vm.faults.bugs().collect();
    for &bug in &active {
        if buggy_result.stats.fired_bugs & (1u64 << (bug as u64)) == 0 {
            continue;
        }
        let remaining: Vec<BugId> = active.iter().copied().filter(|&b| b != bug).collect();
        let mut vm = config.vm.clone();
        vm.faults = FaultInjector::with(remaining);
        outcome.vm_invocations += 1;
        let result = match memoized_run(memo, mutant_bytecode, mutant_artifacts, &vm) {
            Ok(result) => result,
            Err(panic) => {
                outcome.incident(
                    IncidentPhase::Attribution,
                    rng_seed,
                    Some(iteration),
                    panic.payload,
                    None,
                );
                continue;
            }
        };
        if result.observable() != buggy_result.observable() {
            return Some(bug);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthParams;
    use cse_vm::VmKind;

    /// The incremental mutant front end must be invisible: for fuzzed
    /// seeds and their JoNM mutants, rebase-and-recheck produces
    /// bit-identical bytecode to the full check-everything pipeline.
    #[test]
    fn incremental_mutant_front_end_matches_full_pipeline() {
        let mut checked_mutants = 0;
        for seed_value in 0..12u64 {
            let seed = cse_fuzz::generate(seed_value, &cse_fuzz::FuzzConfig::default());
            let mut annotated_seed = seed.clone();
            cse_lang::typeck::check(&mut annotated_seed).expect("fuzzed seeds type-check");
            let table = cse_lang::typeck::ClassTable::build(&annotated_seed).expect("table builds");
            let mut artemis = Artemis::new(seed_value, SynthParams::for_kind(VmKind::HotSpotLike));
            for _ in 0..4 {
                let (mut mutant, mutations) = artemis.jonm(&seed);
                if mutations.is_empty() {
                    continue;
                }
                let full = try_compile_checked(&mutant);
                // `None` = the fast path declined (e.g. an MI mutation);
                // production falls back to the full pipeline there.
                let Some(incremental) = try_compile_mutant_incremental(
                    &mut mutant,
                    &mut annotated_seed,
                    &table,
                    &mutations,
                ) else {
                    continue;
                };
                match (full, incremental) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a, b, "seed {seed_value}: bytecode diverged");
                        checked_mutants += 1;
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!(
                        "pipelines disagree on acceptance: full={:?} incremental={:?}",
                        a.err(),
                        b.err()
                    ),
                }
            }
        }
        assert!(checked_mutants >= 20, "calibration: only {checked_mutants} mutants compiled");
    }
}
