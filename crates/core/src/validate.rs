//! JIT-compiler validation — the paper's Algorithm 1.
//!
//! `Validate(LVM, P)` runs the seed with its default JIT-trace, derives
//! `MAX_ITER` JoNM mutants, runs each with *its* default JIT-trace, and
//! reports a JIT-compiler bug whenever the outputs disagree (§3.3's
//! metamorphic oracle: the mutations are semantics-preserving, so any
//! discrepancy is the VM's fault).
//!
//! Beyond the paper's tool, the driver can (a) verify each mutant's
//! neutrality against the reference interpreter — a harness-soundness
//! check the paper cannot run on production JVMs but we can, and (b)
//! attribute discrepancies to ground-truth injected bugs by re-running
//! with individual bugs disabled, which powers the Table 1 "Duplicate"
//! accounting.
//!
//! Every VM invocation goes through the crash barrier
//! ([`cse_vm::supervised_run`]): a panic anywhere in the substrate is
//! contained, recorded as a [`HarnessIncident`], and validation moves on
//! to the next mutant instead of unwinding the whole campaign. Mutants
//! that fail the type checker or bytecode compiler are likewise
//! quarantined as mutator bugs ([`try_compile_checked`]) rather than
//! aborting the process.

use std::rc::Rc;
use std::sync::Arc;

use cse_bytecode::BProgram;
use cse_lang::Program;
use cse_vm::supervise::{contain_panics, supervised_run, supervised_run_cached};
use cse_vm::{BugId, CodeCache, ExecutionResult, FaultInjector, Outcome, Symptom, VmConfig};

use crate::mutate::{AppliedMutation, Artemis};
use crate::supervisor::{HarnessIncident, IncidentPhase};
use crate::synth::SynthParams;

/// Validation settings.
#[derive(Debug, Clone)]
pub struct ValidateConfig {
    /// Mutants per seed (the paper's `MAX_ITER`, set to 8 in §4.1).
    pub max_iter: usize,
    /// The LVM under test.
    pub vm: VmConfig,
    /// Synthesis hyper-parameters.
    pub params: SynthParams,
    /// Cross-check every mutant against the reference interpreter and
    /// skip non-neutral mutations (harness soundness; costs one extra
    /// run per mutant).
    pub verify_neutrality: bool,
}

impl ValidateConfig {
    /// The paper's evaluation settings for a VM profile (§4.1):
    /// `MAX_ITER = 8`, thresholds-scaled `MIN`/`MAX`.
    pub fn paper_defaults(vm: VmConfig) -> ValidateConfig {
        let params = SynthParams::for_kind(vm.kind);
        ValidateConfig { max_iter: 8, vm, params, verify_neutrality: true }
    }
}

/// How a discrepancy manifested (Table 1's bug-type split).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscrepancyKind {
    /// Outputs differ between seed and mutant (both completed).
    MisCompilation,
    /// The mutant crashed the VM.
    Crash(cse_vm::CrashInfo),
    /// The mutant's compiled code is pathologically slower than its
    /// interpreted execution (or timed out when interpretation finishes
    /// comfortably).
    Performance,
}

impl DiscrepancyKind {
    /// Maps to the Table 1 symptom class.
    pub fn symptom(&self) -> Symptom {
        match self {
            DiscrepancyKind::MisCompilation => Symptom::MisCompilation,
            DiscrepancyKind::Crash(_) => Symptom::Crash,
            DiscrepancyKind::Performance => Symptom::Performance,
        }
    }
}

/// One reported discrepancy.
#[derive(Debug, Clone)]
pub struct Discrepancy {
    pub kind: DiscrepancyKind,
    /// The mutant source that exposes the bug (a ready bug report).
    pub mutant_source: String,
    /// Mutations that were applied to derive the mutant.
    pub mutations: Vec<AppliedMutation>,
    /// Ground-truth culprit, when attribution was possible.
    pub culprit: Option<BugId>,
    /// Seed/mutant observable behaviors, for the report.
    pub seed_observable: String,
    pub mutant_observable: String,
}

/// The outcome of validating one seed.
///
/// # Counter invariants
///
/// The mutant-level counters are disjoint and complete:
///
/// ```text
/// mutants_run = completed + discarded
/// neutrality_violations <= discarded     (violations are one discard reason)
/// ```
///
/// `completed` mutants received a full oracle verdict (which may or may
/// not be a discrepancy); `discarded` mutants ran but produced none
/// (step-budget timeout without performance-bug evidence, a neutrality
/// violation, or a contained VM panic). Seed-level failures are kept out
/// of the mutant counters entirely: `seed_discarded` marks a seed whose
/// own run timed out or panicked (no mutants were attempted), and
/// `mutant_compile_failures` counts mutants that never ran because JoNM
/// produced an uncompilable program (a quarantined mutator bug).
/// [`ValidationOutcome::check_invariants`] asserts all of this.
#[derive(Debug, Default)]
pub struct ValidationOutcome {
    pub discrepancies: Vec<Discrepancy>,
    /// Mutants executed on the VM under test.
    pub mutants_run: usize,
    /// Mutants that ran to a full oracle verdict.
    pub completed: usize,
    /// Mutants that ran but yielded no verdict (timeout discard,
    /// neutrality violation, or contained panic).
    pub discarded: usize,
    /// The seed itself produced no baseline (timeout or contained
    /// panic); no mutants were attempted.
    pub seed_discarded: bool,
    /// Mutants that failed type checking or bytecode compilation —
    /// mutator bugs, quarantined instead of panicking (never ran, so not
    /// part of `mutants_run`).
    pub mutant_compile_failures: usize,
    /// VM invocations performed (seed + mutants + attribution reruns).
    pub vm_invocations: usize,
    /// Non-neutral mutants detected and skipped (harness bugs; must stay
    /// zero with the stock mutators).
    pub neutrality_violations: usize,
    /// Defects reported by the static IR verifier (the third oracle; see
    /// `cse_vm::jit::verify`) across seed and mutant runs. Orthogonal to
    /// the mutant counters: a defect never changes a run's verdict.
    pub ir_verify_defects: u64,
    /// Contained harness failures (panics in the VM, the compilers, or
    /// the mutation engine).
    pub incidents: Vec<HarnessIncident>,
}

impl ValidationOutcome {
    /// Whether any discrepancy was found.
    pub fn found_bug(&self) -> bool {
        !self.discrepancies.is_empty()
    }

    /// Asserts the documented counter invariants (cheap; called by the
    /// campaign driver after every seed).
    pub fn check_invariants(&self) {
        assert_eq!(
            self.mutants_run,
            self.completed + self.discarded,
            "mutant counters must be disjoint and complete"
        );
        assert!(
            self.neutrality_violations <= self.discarded,
            "neutrality violations are a subset of discards"
        );
        if self.seed_discarded {
            assert_eq!(self.mutants_run, 0, "a discarded seed attempts no mutants");
        }
    }

    fn incident(
        &mut self,
        phase: IncidentPhase,
        rng_seed: u64,
        iteration: Option<usize>,
        payload: String,
        source: Option<String>,
    ) {
        self.incidents.push(HarnessIncident {
            phase,
            seed: rng_seed,
            rng_seed,
            iteration,
            payload,
            source,
        });
    }

    /// Harvests IR-verifier defects from a run into the counter and an
    /// [`IncidentPhase::IrVerifyDefect`] incident. Applied to the seed run
    /// and to first mutant runs only — neutrality references run the
    /// interpreter (nothing to verify) and attribution reruns would
    /// re-report the same compilations.
    fn note_ir_defects(
        &mut self,
        result: &ExecutionResult,
        rng_seed: u64,
        iteration: Option<usize>,
        source: &Program,
    ) {
        if result.ir_verify.is_empty() {
            return;
        }
        self.ir_verify_defects += result.ir_verify.len() as u64;
        self.incident(
            IncidentPhase::IrVerifyDefect,
            rng_seed,
            iteration,
            result.ir_verify.join("\n"),
            Some(cse_lang::pretty::print(source)),
        );
    }
}

/// Compiles a checked program, panicking on front-end failure (inputs are
/// either fuzzer output or mutants of checked programs — both valid by
/// construction). Campaign paths use [`try_compile_checked`] so a
/// mutator bug is quarantined instead of aborting the process.
pub fn compile_checked(program: &Program) -> BProgram {
    let mut program = program.clone();
    cse_lang::typeck::check(&mut program).expect("mutant failed the type checker");
    cse_bytecode::compile(&program).expect("mutant failed bytecode compilation")
}

/// Fallible twin of [`compile_checked`]: returns the failure (including
/// a contained compiler panic) as a message instead of unwinding.
pub fn try_compile_checked(program: &Program) -> Result<BProgram, String> {
    let mut program = program.clone();
    try_compile_checked_mut(&mut program)
}

/// [`try_compile_checked`] for callers that own the program and can let
/// the type checker annotate it in place. The validation loop compiles
/// every mutant exactly once and never reuses the AST afterward (reports
/// pretty-print the annotated form, which prints identically), so the
/// defensive whole-AST clone is pure overhead there.
pub fn try_compile_checked_mut(program: &mut Program) -> Result<BProgram, String> {
    contain_panics(|| {
        cse_lang::typeck::check(program).map_err(|e| format!("type check failed: {e}"))?;
        let bytecode = cse_bytecode::compile(program)
            .map_err(|e| format!("bytecode compilation failed: {e}"))?;
        // Mutants are only as trusted as the mutator that made them: a
        // JoNM product that compiles but fails bytecode verification is a
        // mutator (or compiler) bug and must be quarantined before the VM
        // executes it.
        cse_bytecode::verify::verify_program(&bytecode)
            .map_err(|e| format!("bytecode verification failed: {e}"))?;
        Ok(bytecode)
    })
    .map_err(|p| format!("compiler panicked: {}", p.payload))?
}

/// Step-budget fraction under which a completed reference run marks a
/// mutant timeout as the JIT's fault rather than an expensive program.
const TIMEOUT_CHEAP_DIVISOR: u64 = 4;

/// Factor and absolute slack for the explicit performance-anomaly
/// oracle: compiled execution doing `8x + 1M` the work of pure
/// interpretation is a performance bug, not noise.
const PERF_ANOMALY_FACTOR: u64 = 8;
const PERF_ANOMALY_SLACK: u64 = 1_000_000;

/// Classifies a mutant timeout: it is a genuine performance bug iff the
/// reference interpreter finished the same program comfortably (under a
/// quarter of the step budget); otherwise the program is just expensive
/// and the mutant is discarded.
pub fn timeout_is_performance_bug(reference: Option<&ExecutionResult>, fuel: u64) -> bool {
    reference
        .map(|r| r.outcome.is_completed() && r.stats.total_ops() < fuel / TIMEOUT_CHEAP_DIVISOR)
        .unwrap_or(false)
}

/// The explicit performance-anomaly oracle: whether compiled execution
/// did far more work than pure interpretation of the same program.
pub fn is_performance_anomaly(mutant_ops: u64, reference_ops: u64) -> bool {
    mutant_ops
        > reference_ops.saturating_mul(PERF_ANOMALY_FACTOR).saturating_add(PERF_ANOMALY_SLACK)
}

/// Algorithm 1: validates `LVM` (in `config.vm`) against one seed.
///
/// `rng_seed` fixes the mutation randomness, making every validation
/// reproducible.
pub fn validate(seed: &Program, config: &ValidateConfig, rng_seed: u64) -> ValidationOutcome {
    validate_with(seed, config, rng_seed, |_| {})
}

/// [`validate`] with a hook to configure the mutation engine (e.g. the
/// mutator-mix ablation restricts `Artemis::enabled`).
pub fn validate_with(
    seed: &Program,
    config: &ValidateConfig,
    rng_seed: u64,
    configure: impl FnOnce(&mut Artemis),
) -> ValidationOutcome {
    validate_compiled_with(
        seed,
        try_compile_checked(seed).map(Arc::new),
        config,
        rng_seed,
        configure,
    )
}

/// [`validate_with`] for a seed whose bytecode compilation already
/// happened (or already failed). The campaign driver compiles each seed
/// exactly once and shares the `Arc<BProgram>` between validation and the
/// traditional-fuzzing baseline instead of re-running the front end per
/// consumer.
pub fn validate_compiled_with(
    seed: &Program,
    seed_bytecode: Result<Arc<BProgram>, String>,
    config: &ValidateConfig,
    rng_seed: u64,
    configure: impl FnOnce(&mut Artemis),
) -> ValidationOutcome {
    let mut outcome = ValidationOutcome::default();
    let seed_bytecode = match seed_bytecode {
        Ok(bytecode) => bytecode,
        Err(message) => {
            // Fuzzer seeds are valid by construction, so this is a
            // harness bug in the fuzzer or the front end.
            outcome.incident(
                IncidentPhase::SeedCompile,
                rng_seed,
                None,
                message,
                Some(cse_lang::pretty::print(seed)),
            );
            outcome.seed_discarded = true;
            return outcome;
        }
    };
    // R ← LVM(P): the seed with its default JIT-trace.
    outcome.vm_invocations += 1;
    let seed_result = match supervised_run(&seed_bytecode, config.vm.clone()) {
        Ok(result) => result,
        Err(panic) => {
            outcome.incident(
                IncidentPhase::SeedRun,
                rng_seed,
                None,
                panic.payload,
                Some(cse_lang::pretty::print(seed)),
            );
            outcome.seed_discarded = true;
            return outcome;
        }
    };
    outcome.note_ir_defects(&seed_result, rng_seed, None, seed);
    if seed_result.outcome.is_resource_exhausted() {
        // An expensive seed: the paper's two-minute cutoff (§4.3), or a
        // heap/stack budget the seed cannot fit in. Not a mutant discard —
        // no mutants were attempted.
        outcome.seed_discarded = true;
        return outcome;
    }
    // Reference (interpreter) behavior for neutrality and the perf oracle.
    let seed_reference = if config.verify_neutrality {
        outcome.vm_invocations += 1;
        match supervised_run(&seed_bytecode, VmConfig::interpreter_only(config.vm.kind)) {
            Ok(result) => Some(result),
            Err(panic) => {
                // Proceed without neutrality checking for this seed.
                outcome.incident(
                    IncidentPhase::ReferenceRun,
                    rng_seed,
                    None,
                    panic.payload,
                    Some(cse_lang::pretty::print(seed)),
                );
                None
            }
        }
    } else {
        None
    };
    let mut artemis = Artemis::new(rng_seed, config.params.clone());
    configure(&mut artemis);
    for iteration in 0..config.max_iter {
        // P' ← JoNM(P).
        let (mut mutant, mutations) = match contain_panics(|| artemis.jonm(seed)) {
            Ok(pair) => pair,
            Err(panic) => {
                outcome.incident(
                    IncidentPhase::Mutation,
                    rng_seed,
                    Some(iteration),
                    panic.payload,
                    Some(cse_lang::pretty::print(seed)),
                );
                continue;
            }
        };
        if mutations.is_empty() {
            continue;
        }
        // In-place check-and-compile: the mutant AST is owned and fresh
        // per iteration, so the type checker may annotate it directly
        // instead of paying a whole-AST clone per mutant.
        let mutant_bytecode = match try_compile_checked_mut(&mut mutant) {
            Ok(bytecode) => bytecode,
            Err(message) => {
                // A mutator bug: JoNM produced an uncompilable program.
                outcome.mutant_compile_failures += 1;
                outcome.incident(
                    IncidentPhase::MutantCompile,
                    rng_seed,
                    Some(iteration),
                    message,
                    Some(cse_lang::pretty::print(&mutant)),
                );
                continue;
            }
        };
        // R' ← LVM(P').
        //
        // One JIT code cache per mutant, shared with the attribution
        // reruns below. Sharing is conservative — the fault set is part
        // of the cache key, so an ablated rerun only reuses code whose
        // compilation the ablation cannot have changed.
        let mutant_cache = CodeCache::for_program(&mutant_bytecode);
        outcome.vm_invocations += 1;
        outcome.mutants_run += 1;
        let mutant_result =
            match supervised_run_cached(&mutant_bytecode, config.vm.clone(), &mutant_cache) {
                Ok(result) => result,
                Err(panic) => {
                    outcome.discarded += 1;
                    outcome.incident(
                        IncidentPhase::MutantRun,
                        rng_seed,
                        Some(iteration),
                        panic.payload,
                        Some(cse_lang::pretty::print(&mutant)),
                    );
                    continue;
                }
            };
        outcome.note_ir_defects(&mutant_result, rng_seed, Some(iteration), &mutant);
        // Reference run: neutrality check + performance baseline.
        //
        // A mutant whose LVM run never touched the JIT — no tier
        // compilations, no OSR entries, no compiled ops executed — is its
        // own reference: every injected fault lives in the JIT pipeline
        // (`cse_vm::jit`), so a zero-JIT run under the faulty config is
        // bit-identical to the interpreter-only rerun it would be checked
        // against. Reusing it skips the rerun entirely (roughly a third
        // of mutants never warm up under the paper's thresholds).
        //
        // The `Crash` guard closes a counter blind spot: an injected
        // *compile-time* assert crashes the run from inside `jit::compile`
        // before `compilations` is ever incremented, so a crashed run can
        // read as zero-JIT while being anything but interpreter-equivalent
        // (ART's catalog is entirely compile-time asserts). Crashed runs
        // always take the real interpreter rerun.
        let stats = &mutant_result.stats;
        let mutant_is_own_reference = stats.compilations == 0
            && stats.osr_compilations == 0
            && stats.jit_ops == 0
            && !matches!(mutant_result.outcome, Outcome::Crash(_));
        let mutant_reference = if !config.verify_neutrality {
            None
        } else if mutant_is_own_reference {
            Some(mutant_result.clone())
        } else {
            outcome.vm_invocations += 1;
            match supervised_run(&mutant_bytecode, VmConfig::interpreter_only(config.vm.kind)) {
                Ok(reference) => Some(reference),
                Err(panic) => {
                    // No reference for this mutant; skip the neutrality
                    // and performance oracles but keep the output oracle.
                    outcome.incident(
                        IncidentPhase::NeutralityRun,
                        rng_seed,
                        Some(iteration),
                        panic.payload,
                        Some(cse_lang::pretty::print(&mutant)),
                    );
                    None
                }
            }
        };
        if let (Some(reference), Some(seed_reference)) = (&mutant_reference, &seed_reference) {
            if reference.observable() != seed_reference.observable()
                && !reference.outcome.is_resource_exhausted()
                && !seed_reference.outcome.is_resource_exhausted()
            {
                outcome.neutrality_violations += 1;
                outcome.discarded += 1;
                continue;
            }
        }
        // Resource-exhaustion handling: discard, unless a *timeout*
        // paired with a comfortably-cheap reference run shows the
        // slowness is the JIT's fault. Heap/stack budget trips carry no
        // performance signal, so they are always discarded.
        if mutant_result.outcome.is_resource_exhausted() {
            if matches!(mutant_result.outcome, Outcome::Timeout)
                && timeout_is_performance_bug(mutant_reference.as_ref(), config.vm.fuel)
            {
                outcome.completed += 1;
                let discrepancy = make_discrepancy(
                    DiscrepancyKind::Performance,
                    &mutant,
                    mutations,
                    &seed_result,
                    &mutant_result,
                    config,
                    &mutant_bytecode,
                    &mutant_cache,
                    rng_seed,
                    iteration,
                    &mut outcome,
                );
                outcome.discrepancies.push(discrepancy);
            } else {
                outcome.discarded += 1;
            }
            continue;
        }
        // Explicit performance anomaly: compiled execution does far more
        // work than pure interpretation of the same program.
        if let Some(reference) = &mutant_reference {
            if reference.outcome.is_completed()
                && is_performance_anomaly(
                    mutant_result.stats.total_ops(),
                    reference.stats.total_ops(),
                )
            {
                outcome.completed += 1;
                let discrepancy = make_discrepancy(
                    DiscrepancyKind::Performance,
                    &mutant,
                    mutations,
                    &seed_result,
                    &mutant_result,
                    config,
                    &mutant_bytecode,
                    &mutant_cache,
                    rng_seed,
                    iteration,
                    &mut outcome,
                );
                outcome.discrepancies.push(discrepancy);
                continue;
            }
        }
        // The §3.2 oracle: LVM(P) vs LVM(P').
        outcome.completed += 1;
        if mutant_result.observable() != seed_result.observable() {
            let kind = match &mutant_result.outcome {
                Outcome::Crash(info) => DiscrepancyKind::Crash(info.clone()),
                _ => DiscrepancyKind::MisCompilation,
            };
            let discrepancy = make_discrepancy(
                kind,
                &mutant,
                mutations,
                &seed_result,
                &mutant_result,
                config,
                &mutant_bytecode,
                &mutant_cache,
                rng_seed,
                iteration,
                &mut outcome,
            );
            outcome.discrepancies.push(discrepancy);
        }
    }
    outcome.check_invariants();
    outcome
}

#[allow(clippy::too_many_arguments)]
fn make_discrepancy(
    kind: DiscrepancyKind,
    mutant: &Program,
    mutations: Vec<AppliedMutation>,
    seed_result: &ExecutionResult,
    mutant_result: &ExecutionResult,
    config: &ValidateConfig,
    mutant_bytecode: &BProgram,
    mutant_cache: &Rc<CodeCache>,
    rng_seed: u64,
    iteration: usize,
    outcome: &mut ValidationOutcome,
) -> Discrepancy {
    let culprit = match &kind {
        // Crashes carry ground truth directly.
        DiscrepancyKind::Crash(info) => Some(info.bug),
        // Mis-compilations and perf bugs are attributed by ablation.
        _ => attribute(
            mutant_bytecode,
            mutant_cache,
            config,
            mutant_result,
            rng_seed,
            iteration,
            outcome,
        ),
    };
    Discrepancy {
        kind,
        mutant_source: cse_lang::pretty::print(mutant),
        mutations,
        culprit,
        seed_observable: seed_result.observable(),
        mutant_observable: mutant_result.observable(),
    }
}

/// Ground-truth attribution: re-runs the mutant with each active bug
/// disabled; the first whose removal changes the observable behavior is
/// the culprit. A panicking rerun skips that candidate (recorded as an
/// incident) instead of aborting.
#[allow(clippy::too_many_arguments)]
fn attribute(
    mutant_bytecode: &BProgram,
    mutant_cache: &Rc<CodeCache>,
    config: &ValidateConfig,
    buggy_result: &ExecutionResult,
    rng_seed: u64,
    iteration: usize,
    outcome: &mut ValidationOutcome,
) -> Option<BugId> {
    let active: Vec<BugId> = config.vm.faults.bugs().collect();
    for &bug in &active {
        let remaining: Vec<BugId> = active.iter().copied().filter(|&b| b != bug).collect();
        let mut vm = config.vm.clone();
        vm.faults = FaultInjector::with(remaining);
        outcome.vm_invocations += 1;
        let result = match supervised_run_cached(mutant_bytecode, vm, mutant_cache) {
            Ok(result) => result,
            Err(panic) => {
                outcome.incident(
                    IncidentPhase::Attribution,
                    rng_seed,
                    Some(iteration),
                    panic.payload,
                    None,
                );
                continue;
            }
        };
        if result.observable() != buggy_result.observable() {
            return Some(bug);
        }
    }
    None
}
