//! The statement-skeleton corpus.
//!
//! The paper extracts 7,823 statement skeletons from the HotSpot, OpenJ9,
//! and ART test suites (§3.4). Those suites are not available offline, so
//! this corpus is hand-written to cover the same construct classes —
//! arithmetic chains (int/long/byte, wrapping), nested control flow,
//! switches with fall-through, short bounded loops, local arrays, string
//! building, masked shifts, guarded division, and `Math` intrinsics. The
//! substitution is documented in `DESIGN.md`.
//!
//! A skeleton is a sequence of consecutive MiniJava statements containing
//! only *expression holes* (paper Algorithm 2): the pseudo-calls
//! `__int()`, `__long()`, `__byte()`, `__bool()`, and `__str()`, each
//! replaced by `SynExpr` output at instantiation. Skeleton-local variables
//! are prefixed `s_` and renamed fresh per instantiation, so skeletons
//! never collide with program variables or with other instantiations.
//! Skeletons only ever *write* their own locals; writes to reused program
//! variables are synthesized separately (with backup/restore), keeping the
//! corpus trivially neutral.
//!
//! Every skeleton must terminate quickly (bounded loops only) — exceptions
//! are fine (the mutators wrap synthesized code in `try`/`catch`).

use std::sync::OnceLock;

use cse_lang::ast::Stmt;

/// The corpus sources.
pub const CORPUS: &[&str] = &[
    // ----- integer arithmetic chains ------------------------------------
    "int s_a = __int(); s_a = s_a * 31 + __int(); s_a ^= s_a >>> 7;",
    "int s_a = __int() + __int(); int s_b = s_a - __int(); s_a = s_a * s_b;",
    "int s_a = __int(); s_a += s_a << 3; s_a -= s_a >> 2;",
    "int s_a = __int() & 255; int s_b = s_a | __int(); s_b ^= 4096;",
    "int s_a = __int(); int s_b = Math.max(s_a, __int()); s_a = Math.min(s_b, 1000000);",
    "int s_a = Math.abs(__int()); s_a = s_a % 97 + 1;",
    "int s_a = __int(); s_a = (s_a << 5) - s_a;",
    "int s_a = __int(); int s_b = __int(); int s_c = s_a * s_b - (s_a + s_b);",
    "int s_a = -(__int()); s_a = ~s_a + __int();",
    "int s_a = __int() >>> 1; s_a *= 3; s_a >>>= 2;",
    "int s_a = __int(); int s_b = 0; if (s_a == 0) { s_b = 1; } s_a += s_b;",
    // ----- long arithmetic ------------------------------------------------
    "long s_l = __long(); s_l = s_l * 1103515245L + 12345L;",
    "long s_l = __long() ^ __long(); s_l = (s_l << 13) ^ (s_l >>> 7);",
    "long s_l = __long(); long s_m = s_l >> 3; s_l = s_l - s_m * 8L;",
    "long s_l = (long) __int(); s_l *= s_l; s_l += __long();",
    "long s_l = __long(); s_l &= 65535L; s_l |= __long() << 16;",
    "long s_l = Math.max(__long(), 0L); s_l = s_l % 1000003L;",
    "long s_l = __long(); int s_i = (int) s_l; s_l = s_l - s_i;",
    // ----- byte wrap-around ------------------------------------------------
    "byte s_b = (byte) __int(); s_b += 2; s_b = (byte) (s_b * 3);",
    "byte s_b = (byte) (__int() & 127); s_b -= (byte) 1; s_b ^= 85;",
    "byte s_b = (byte) __int(); byte s_c = (byte) (s_b + s_b); s_b = (byte) (s_c - 1);",
    "byte s_b = (byte) (__int() >> 4); s_b <<= 2;",
    // ----- boolean logic ----------------------------------------------------
    "boolean s_p = __bool(); boolean s_q = !s_p || __bool(); s_p = s_p ^ s_q;",
    "boolean s_p = __int() > __int(); boolean s_q = s_p && __bool(); s_q |= !s_p;",
    "boolean s_p = __long() != 0L; s_p &= __bool();",
    "boolean s_p = __bool(); int s_a = 0; if (s_p) { s_a = __int(); } else { s_a = -(__int()); }",
    // ----- conditionals ------------------------------------------------------
    "int s_a = __int(); if (s_a > 0) { s_a = s_a - __int(); }",
    "int s_a = __int(); if (s_a % 2 == 0) { s_a /= 2; } else { s_a = 3 * s_a + 1; }",
    "int s_a = __int(); int s_b = __int(); if (s_a < s_b) { int s_t = s_a; s_a = s_b; s_b = s_t; }",
    "long s_l = __long(); if (s_l < 0L) { s_l = -(s_l); } if (s_l > 1000L) { s_l %= 1000L; }",
    "int s_a = __int(); if (s_a > 10) { if (s_a > 100) { s_a = 100; } else { s_a += 10; } }",
    "boolean s_p = __bool(); int s_a = __int(); if (s_p && s_a != 0) { s_a = 0 - s_a; }",
    // ----- short loops ---------------------------------------------------------
    "int s_s = 0; for (int s_i = 0; s_i < 7; s_i++) { s_s += s_i * __int(); }",
    "int s_s = __int(); for (int s_i = 0; s_i < 5; s_i++) { s_s = s_s * 2 + 1; }",
    "long s_s = 0L; for (int s_i = 1; s_i < 6; s_i++) { s_s += (long) s_i * __long(); }",
    "int s_s = 0; int s_i = 0; while (s_i < 6) { s_s ^= s_i << 2; s_i++; }",
    "int s_s = __int(); int s_i = 0; do { s_s -= 3; s_i++; } while (s_i < 4);",
    "int s_s = 0; for (int s_i = 8; s_i > 0; s_i -= 2) { s_s += s_i; }",
    "int s_s = 0; for (int s_i = 0; s_i < 9; s_i++) { if (s_i == 4) { continue; } s_s += s_i; }",
    "int s_s = 0; for (int s_i = 0; s_i < 9; s_i++) { if (s_s > __int()) { break; } s_s += 2; }",
    "int s_s = 0; for (int s_i = 0; s_i < 4; s_i++) { for (int s_j = 0; s_j < 3; s_j++) { s_s += s_i * s_j; } }",
    // ----- switches -----------------------------------------------------------
    "int s_a = __int(); switch (s_a % 4) { case 0: s_a += 1; break; case 1: s_a -= 1; break; default: s_a = 0; }",
    "int s_a = __int() & 7; int s_b = 0; switch (s_a) { case 0: case 1: s_b = 10; break; case 2: s_b = 20; default: s_b += 5; }",
    "int s_a = __int(); switch (s_a % 3) { case 0: s_a = s_a * 2; case 1: s_a += 3; break; case 2: s_a ^= 12; }",
    "int s_a = Math.abs(__int()) % 5; int s_b = __int(); switch (s_a) { case 0: s_b <<= 1; break; case 4: s_b >>= 1; break; }",
    // ----- local arrays ----------------------------------------------------------
    "int[] s_arr = new int[] { __int(), __int(), __int() }; int s_s = s_arr[0] + s_arr[2];",
    "int[] s_arr = new int[5]; for (int s_i = 0; s_i < s_arr.length; s_i++) { s_arr[s_i] = s_i * __int(); }",
    "int[] s_arr = new int[4]; s_arr[__int() & 3] = __int(); int s_v = s_arr[1];",
    "long[] s_arr = new long[3]; s_arr[0] = __long(); s_arr[2] = s_arr[0] * 2L; long s_v = s_arr[2] - s_arr[1];",
    "int[] s_arr = new int[6]; int s_s = 0; for (int s_i = 0; s_i < 6; s_i++) { s_arr[s_i] = s_i; s_s += s_arr[5 - s_i]; }",
    "byte[] s_arr = new byte[4]; s_arr[1] = (byte) __int(); s_arr[2] = (byte) (s_arr[1] + 1);",
    "boolean[] s_arr = new boolean[3]; s_arr[0] = __bool(); s_arr[2] = !s_arr[0];",
    "int[][] s_m = new int[2][3]; s_m[1][2] = __int(); int s_v = s_m[1][2] + s_m[0][0];",
    "int[] s_a = new int[3]; int[] s_b = s_a; s_b[1] = __int(); int s_v = s_a[1];",
    // ----- strings ---------------------------------------------------------------
    "String s_s = __str(); s_s = s_s + __int();",
    "String s_s = \"k\" + __long(); String s_t = s_s + __bool();",
    "String s_s = __str() + __str(); s_s = s_s + \"|\";",
    // ----- guarded division / exceptions -------------------------------------------
    "int s_a = __int(); int s_d = __int() | 1; s_a = s_a / s_d + s_a % s_d;",
    "int s_a = __int(); try { s_a = 1000 / (s_a & 3); } catch { s_a = -1; }",
    "int s_a = __int(); int[] s_arr = new int[2]; try { s_arr[s_a] = 7; } catch { s_a = 0; }",
    "long s_l = __long(); try { s_l = 100000L / (s_l & 7L); } catch { s_l = 1L; }",
    "int s_a = __int(); try { if (s_a > 0) { throw 3; } } catch { s_a += 100; }",
    // ----- casts & conversions ------------------------------------------------------
    "long s_l = __long(); int s_i = (int) (s_l >> 32); byte s_b = (byte) s_i;",
    "int s_a = __int(); long s_l = (long) s_a * (long) s_a;",
    "byte s_b = (byte) __int(); int s_i = s_b * 2 + 1; long s_l = s_i + __long();",
    "int s_a = (int) (__long() & 2147483647L); s_a >>>= 3;",
    // ----- mixed / Figure-2-flavored snippets ------------------------------------------
    "int s_a = __int(); for (int s_w = -6; s_w < 5; s_w += 4) { s_a += 2; } s_a &= 1023;",
    "byte s_b = (byte) __int(); for (int s_i = 0; s_i < 3; s_i++) { s_b += 2; }",
    "int s_m = __int(); switch ((s_m >>> 1) % 10 + 36) { case 36: s_m += 2; case 40: break; case 41: s_m = 9; }",
    "int s_s = 0; for (int s_i = 0; s_i < 5; s_i++) { switch (s_i % 3) { case 0: s_s += 1; break; case 1: s_s += 10; } }",
    "int s_a = __int(); int s_b = 0; while (s_a != 0 && s_b < 8) { s_b++; s_a >>>= 4; }",
    "long s_acc = 0L; for (int s_i = 0; s_i < 6; s_i++) { s_acc = s_acc * 31L + (long) (s_i ^ __int()); }",
    "int s_x = __int(); int s_y = __int(); int s_g = 0; for (int s_i = 0; s_i < 6; s_i++) { s_g = s_x & s_y; s_x = s_x ^ s_y; s_y = s_g << 1; }",
    "int s_n = Math.abs(__int()) % 10 + 2; int s_f = 1; for (int s_i = 1; s_i < s_n && s_i < 8; s_i++) { s_f *= s_i; }",
    "int s_v = __int(); int s_r = 0; for (int s_i = 0; s_i < 8; s_i++) { s_r = (s_r << 1) | (s_v & 1); s_v >>>= 1; }",
    "int s_a = __int(); int s_b = __int(); int s_c = (s_a + s_b) / 2; if (s_c > s_a) { s_c = s_a; }",
];

/// Parsed corpus: each entry is the statement list of one skeleton.
pub fn parsed_corpus() -> &'static Vec<Vec<Stmt>> {
    static PARSED: OnceLock<Vec<Vec<Stmt>>> = OnceLock::new();
    PARSED.get_or_init(|| CORPUS.iter().filter_map(|src| parse_skeleton(src).ok()).collect())
}

/// Parses one skeleton source into raw (unresolved) statements.
pub fn parse_skeleton(body: &str) -> Result<Vec<Stmt>, cse_lang::FrontError> {
    let wrapped = format!("class $Skel {{ static void k() {{ {body} }} }}");
    let program = cse_lang::parse(&wrapped)?;
    Ok(program.classes[0].methods[0].body.stmts.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_large_and_mostly_parses() {
        assert!(CORPUS.len() >= 70, "corpus has {} skeletons", CORPUS.len());
        let parsed = parsed_corpus();
        assert_eq!(parsed.len(), CORPUS.len(), "every skeleton must parse");
        for stmts in parsed {
            assert!(!stmts.is_empty());
        }
    }

    #[test]
    fn skeleton_locals_use_the_reserved_prefix() {
        for stmts in parsed_corpus() {
            for stmt in stmts {
                check_decl_prefixes(stmt);
            }
        }
    }

    fn check_decl_prefixes(stmt: &Stmt) {
        use cse_lang::ast::Stmt::*;
        match stmt {
            VarDecl { name, .. } => {
                assert!(name.starts_with("s_"), "skeleton local `{name}` lacks s_ prefix");
            }
            If { then_blk, else_blk, .. } => {
                then_blk.stmts.iter().for_each(check_decl_prefixes);
                if let Some(e) = else_blk {
                    e.stmts.iter().for_each(check_decl_prefixes);
                }
            }
            While { body, .. } | DoWhile { body, .. } => {
                body.stmts.iter().for_each(check_decl_prefixes);
            }
            For { init, body, .. } => {
                if let Some(init) = init {
                    check_decl_prefixes(init);
                }
                body.stmts.iter().for_each(check_decl_prefixes);
            }
            Switch { cases, .. } => {
                for case in cases {
                    case.body.iter().for_each(check_decl_prefixes);
                }
            }
            Block(b) => b.stmts.iter().for_each(check_decl_prefixes),
            Try { body, catch, finally } => {
                body.stmts.iter().for_each(check_decl_prefixes);
                if let Some(c) = catch {
                    c.stmts.iter().for_each(check_decl_prefixes);
                }
                if let Some(f) = finally {
                    f.stmts.iter().for_each(check_decl_prefixes);
                }
            }
            _ => {}
        }
    }

    #[test]
    fn skeletons_have_no_toplevel_jumps() {
        // `return` anywhere, and `break`/`continue` that would escape the
        // skeleton, would break neutrality.
        for (i, stmts) in parsed_corpus().iter().enumerate() {
            for stmt in stmts {
                assert!(
                    !matches!(stmt, Stmt::Return(_) | Stmt::Break | Stmt::Continue),
                    "skeleton {i} has a top-level jump"
                );
            }
        }
    }
}
