//! The comparison baselines of §4.3 and §3.2.
//!
//! * **Traditional approach** — treat the JIT as a static compiler: run
//!   the seed once with the default trace and once with every method
//!   force-compiled before its first call (`-Xjit:count=0`), and compare
//!   (the paper's dexfuzz/Yoshikawa-style baseline).
//! * **Option fuzzing** — JOpFuzzer-style: randomize the VM's compilation
//!   thresholds and compare runs across option sets (the realization the
//!   paper tried for a week without interesting findings, §3.2).

use cse_bytecode::BProgram;
use cse_lang::Program;
use cse_rng::Rng64;
#[cfg(test)]
use cse_vm::VmKind;
use cse_vm::{BugId, Outcome, Vm, VmConfig};

use crate::validate::compile_checked;

/// The result of a baseline check on one seed.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Whether the baseline spotted a discrepancy on this seed.
    pub discrepancy: bool,
    /// Ground-truth culprit when the discrepancy was a crash.
    pub culprit: Option<BugId>,
    pub vm_invocations: usize,
}

/// Traditional approach: default trace vs force-compile-all (§4.3).
pub fn traditional(seed: &Program, vm: &VmConfig) -> BaselineOutcome {
    traditional_compiled(&compile_checked(seed), vm)
}

/// [`traditional`] for a seed that is already compiled — the campaign
/// driver compiles each seed once and shares the bytecode between
/// validation and this baseline.
pub fn traditional_compiled(bytecode: &BProgram, vm: &VmConfig) -> BaselineOutcome {
    let default_run = Vm::run_program(bytecode, vm.clone());
    let mut forced = VmConfig::force_compile_all(vm.kind);
    forced.faults = vm.faults.clone();
    forced.fuel = vm.fuel;
    let forced_run = Vm::run_program(bytecode, forced);
    // Resource-exhausted runs are discarded, mirroring the paper's cutoff.
    if default_run.outcome.is_resource_exhausted() || forced_run.outcome.is_resource_exhausted() {
        return BaselineOutcome { discrepancy: false, culprit: None, vm_invocations: 2 };
    }
    let discrepancy = default_run.observable() != forced_run.observable();
    let culprit = match (&default_run.outcome, &forced_run.outcome) {
        (_, Outcome::Crash(info)) | (Outcome::Crash(info), _) => Some(info.bug),
        _ => None,
    };
    BaselineOutcome { discrepancy, culprit, vm_invocations: 2 }
}

/// JOpFuzzer-style option fuzzing: `option_sets` random threshold
/// configurations, outputs cross-compared against the default run.
pub fn option_fuzz(
    seed: &Program,
    vm: &VmConfig,
    option_sets: usize,
    rng_seed: u64,
) -> BaselineOutcome {
    let bytecode = compile_checked(seed);
    let mut rng = Rng64::seed_from_u64(rng_seed);
    let reference = Vm::run_program(&bytecode, vm.clone());
    let mut vm_invocations = 1;
    if reference.outcome.is_resource_exhausted() {
        return BaselineOutcome { discrepancy: false, culprit: None, vm_invocations };
    }
    for _ in 0..option_sets {
        let mut config = vm.clone();
        for tier in &mut config.tiers {
            // Scale each threshold by a random factor in [1/16, 4].
            let num = rng.gen_range(1..=64u64);
            tier.invocations = (tier.invocations * num / 16).max(1);
            let num = rng.gen_range(1..=64u64);
            tier.backedge = (tier.backedge * num / 16).max(1);
        }
        let run = Vm::run_program(&bytecode, config);
        vm_invocations += 1;
        if run.outcome.is_resource_exhausted() {
            continue;
        }
        if run.observable() != reference.observable() {
            let culprit = match &run.outcome {
                Outcome::Crash(info) => Some(info.bug),
                _ => None,
            };
            return BaselineOutcome { discrepancy: true, culprit, vm_invocations };
        }
    }
    BaselineOutcome { discrepancy: false, culprit: None, vm_invocations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traditional_silent_on_correct_vm() {
        for seed_value in 0..4u64 {
            let seed = cse_fuzz::generate(seed_value, &cse_fuzz::FuzzConfig::default());
            let vm = VmConfig::correct(VmKind::HotSpotLike);
            let outcome = traditional(&seed, &vm);
            assert!(!outcome.discrepancy, "seed {seed_value}: false positive");
            assert_eq!(outcome.vm_invocations, 2);
        }
    }

    #[test]
    fn option_fuzz_silent_on_correct_vm() {
        for seed_value in 0..3u64 {
            let seed = cse_fuzz::generate(seed_value, &cse_fuzz::FuzzConfig::default());
            let vm = VmConfig::correct(VmKind::OpenJ9Like);
            let outcome = option_fuzz(&seed, &vm, 4, seed_value);
            assert!(!outcome.discrepancy, "seed {seed_value}: false positive");
        }
    }

    #[test]
    fn option_fuzz_is_deterministic() {
        let seed = cse_fuzz::generate(9, &cse_fuzz::FuzzConfig::default());
        let vm = VmConfig::for_kind(VmKind::OpenJ9Like);
        let a = option_fuzz(&seed, &vm, 4, 123);
        let b = option_fuzz(&seed, &vm, 4, 123);
        assert_eq!(a.discrepancy, b.discrepancy);
        assert_eq!(a.vm_invocations, b.vm_invocations);
    }
}
