//! Execution memoization over the mutant space — content-addressed run
//! replay.
//!
//! Validation executes many runs that are provably replays of each other:
//! JoNM mutants that never enter their mutated method behave — step for
//! step — exactly like the seed, duplicate mutants repeat earlier runs
//! verbatim, and interpreter reference runs repeat across mutants whose
//! difference the interpreter never reaches. [`ExecMemo`] recognizes
//! those replays *before* running them and serves the recorded
//! [`ExecutionResult`] instead.
//!
//! # Soundness argument
//!
//! The VM is deterministic: a run is a pure function of (a) the program
//! text it consults and (b) the behavioral configuration facets captured
//! by [`VmConfig::exec_fingerprint`]. A recorded run's *footprint* is
//! the set of program fragments it could possibly have consulted:
//!
//! * the content+linkage digest ([`cse_bytecode::MethodDigest::key`]) of
//!   every method the run **entered** (per-method invocation counts from
//!   [`cse_vm::WarmthProfile`]), plus the entry point and `clinit`;
//! * the *compilation-unit* digest ([`cse_bytecode::ProgramDigests::units`])
//!   of every method the run **JIT-compiled** (from the
//!   [`cse_vm::TraceEvent::Compiled`] events), which covers the static
//!   call closure the inliner can read.
//!
//! By induction over execution steps, a run on a different program that
//! agrees on the entire footprint follows the identical trajectory: each
//! step consults only code already proven equal, so it transitions to
//! the same state and the next consultation is again inside the
//! footprint. The replayed result is therefore bit-identical — output,
//! outcome, events, statistics (including the fired-bug mask and the
//! IR-verifier defects) — with one documented exception:
//! `stats.code_cache_hits` measures shared-artifact-cache temperature,
//! which legitimately depends on what ran earlier.
//!
//! Runs that may be truncated or non-deterministic are never recorded:
//! wall-clock-limited runs, chaos-injection runs, watchdog-fired runs,
//! panicking runs, and runs whose event log hit the `max_events` cap
//! (the footprint would under-approximate the compiled set).
//!
//! # Kill switch and cross-checking
//!
//! `CSE_EXEC_CACHE` mirrors `CSE_PRUNE_PLANS`: memoization is on unless
//! `CSE_EXEC_CACHE=0`/`off`, and `CSE_EXEC_CACHE=check` re-executes
//! every hit and asserts the replay is exact (CI runs a leg in this
//! mode). Campaign digests are bit-identical with the cache on, off, or
//! checking — [`crate::campaign::CampaignResult::digest`] excludes the
//! hit counters, and hits still count as `vm_invocations`.

use cse_bytecode::{BProgram, ProgramDigests};
use cse_vm::{ExecutionResult, TraceEvent, VmConfig, WarmthProfile};

/// Execution-memoization policy for validation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecCachePolicy {
    /// Follow the `CSE_EXEC_CACHE` environment switch (the default:
    /// memoization is on unless `CSE_EXEC_CACHE=0`/`off`; `check`
    /// selects [`Check`](ExecCachePolicy::Check)).
    Auto,
    On,
    Off,
    /// Memoize, but re-execute every hit and assert the recorded result
    /// is a bit-exact replay (modulo `code_cache_hits`). The
    /// cross-check mode behind the CI leg; panics on a mismatch.
    Check,
}

impl ExecCachePolicy {
    /// Whether lookups and recording happen at all.
    pub fn enabled(self) -> bool {
        match self {
            ExecCachePolicy::On => true,
            ExecCachePolicy::Off => false,
            ExecCachePolicy::Check => true,
            ExecCachePolicy::Auto => exec_cache_env_default() != EnvDefault::Off,
        }
    }

    /// Whether hits must be re-executed and compared.
    pub fn checking(self) -> bool {
        match self {
            ExecCachePolicy::Check => true,
            ExecCachePolicy::Auto => exec_cache_env_default() == EnvDefault::Check,
            _ => false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EnvDefault {
    On,
    Off,
    Check,
}

/// The process-wide `CSE_EXEC_CACHE` default, read once. Tests that need
/// a specific behavior pass [`ExecCachePolicy::On`]/[`Off`]/[`Check`]
/// explicitly — mutating the environment would race under the threaded
/// test runner.
///
/// [`Off`]: ExecCachePolicy::Off
/// [`Check`]: ExecCachePolicy::Check
fn exec_cache_env_default() -> EnvDefault {
    static MODE: std::sync::OnceLock<EnvDefault> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("CSE_EXEC_CACHE") {
        Ok(v) if v == "0" || v == "off" => EnvDefault::Off,
        Ok(v) if v == "check" => EnvDefault::Check,
        Ok(v) if v == "1" || v == "on" || v.is_empty() => EnvDefault::On,
        Ok(v) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!("[cse-core] unknown CSE_EXEC_CACHE={v:?}; expected on/off/check");
            });
            EnvDefault::On
        }
        Err(_) => EnvDefault::On,
    })
}

/// One recorded run: the config fingerprint, the program footprint it
/// consulted, and the result to replay.
struct MemoEntry {
    /// [`VmConfig::exec_fingerprint`] of the recording config.
    exec_fp: u64,
    /// Whole-program digest — the fast path for duplicate programs.
    program: u64,
    /// `(method index, expected MethodDigest::key())` for every entered
    /// method (plus entry and clinit), sorted by index.
    methods: Vec<(u32, u64)>,
    /// `(method index, expected unit digest)` for every compiled root,
    /// sorted by index.
    units: Vec<(u32, u64)>,
    result: ExecutionResult,
}

impl MemoEntry {
    /// Whether `digests` agrees with this entry's entire footprint.
    fn matches(&self, digests: &ProgramDigests) -> bool {
        if self.program == digests.program {
            return true;
        }
        self.methods
            .iter()
            .all(|&(m, key)| digests.methods.get(m as usize).is_some_and(|d| d.key() == key))
            && self
                .units
                .iter()
                .all(|&(m, unit)| digests.units.get(m as usize).copied() == Some(unit))
    }
}

/// A per-seed execution-memoization table (see the module docs). Scoped
/// to one seed's validation: the seed and its JoNM mutants share method
/// numbering, which is what makes footprint indices comparable, and the
/// per-seed scope keeps hits independent of worker scheduling (the
/// campaign digest cannot depend on `jobs`).
pub struct ExecMemo {
    policy: ExecCachePolicy,
    entries: Vec<MemoEntry>,
    /// Runs served from the memo (under `Check`, hits that survived the
    /// re-execution comparison).
    pub hits: u64,
    /// Lookups that fell through to a real execution.
    pub misses: u64,
}

impl ExecMemo {
    pub fn new(policy: ExecCachePolicy) -> ExecMemo {
        ExecMemo { policy, entries: Vec::new(), hits: 0, misses: 0 }
    }

    /// Whether this memo does anything (false under
    /// [`ExecCachePolicy::Off`]).
    pub fn enabled(&self) -> bool {
        self.policy.enabled()
    }

    /// Whether hits must be verified against a fresh execution.
    pub fn checking(&self) -> bool {
        self.policy.checking()
    }

    /// Finds a recorded run that provably replays under `digests` and
    /// `exec_fp`, and returns a clone of its result. Counts a miss when
    /// nothing matches; the caller counts the hit via [`ExecMemo::hit`]
    /// once the replay is accepted (under `Check`, after comparison).
    pub fn lookup(&mut self, digests: &ProgramDigests, exec_fp: u64) -> Option<ExecutionResult> {
        if !self.enabled() {
            return None;
        }
        let found = self
            .entries
            .iter()
            .find(|e| e.exec_fp == exec_fp && e.matches(digests))
            .map(|e| e.result.clone());
        if found.is_none() {
            self.misses += 1;
        }
        found
    }

    /// Counts one served replay.
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records a completed run, unless the run is ineligible (see the
    /// module docs: chaos/wall-clock configs, watchdog-fired runs, and
    /// event logs at the `max_events` cap are never memoized).
    pub fn record(
        &mut self,
        program: &BProgram,
        digests: &ProgramDigests,
        config: &VmConfig,
        exec_fp: u64,
        result: &ExecutionResult,
        warmth: &WarmthProfile,
    ) {
        if !self.enabled() {
            return;
        }
        if config.chaos_panic_at_ops.is_some()
            || config.wall_clock_limit.is_some()
            || result.stats.watchdog_fired
            || result.events.len() >= config.max_events
        {
            return;
        }
        let mut methods: Vec<u32> = warmth
            .invocations
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(m, _)| m as u32)
            .collect();
        methods.push(program.entry.0);
        if let Some(clinit) = program.clinit {
            methods.push(clinit.0);
        }
        methods.sort_unstable();
        methods.dedup();
        let mut units: Vec<u32> = result
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Compiled { method, .. } => Some(method.0),
                _ => None,
            })
            .collect();
        units.sort_unstable();
        units.dedup();
        self.entries.push(MemoEntry {
            exec_fp,
            program: digests.program,
            methods: methods.into_iter().map(|m| (m, digests.methods[m as usize].key())).collect(),
            units: units.into_iter().map(|m| (m, digests.units[m as usize])).collect(),
            result: result.clone(),
        });
    }
}

/// Renders a run for the `Check`-mode comparison. `code_cache_hits` is
/// masked for the same reason [`crate::space::space_digest`] masks it:
/// it measures shared-cache temperature, which depends on what ran
/// earlier, and a cache hit is observably identical to a fresh compile
/// by the artifact cache's replay contract.
pub(crate) fn render_for_check(result: &ExecutionResult) -> String {
    let mut stats = result.stats;
    stats.code_cache_hits = 0;
    format!(
        "{} | events {:?} | stats {stats:?} | ir_verify {:?} | tv {:?}",
        result.observable(),
        result.events,
        result.ir_verify,
        result.tv
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_vm::supervise::supervised_run_warmth_cached;
    use cse_vm::{SharedArtifactCache, VmKind};

    fn compile(src: &str) -> BProgram {
        let program = cse_lang::parse_and_check(src).unwrap();
        cse_bytecode::compile(&program).unwrap()
    }

    const SEED: &str = r#"
        class T {
            static int hot(int n) {
                int total = 0;
                int i = 0;
                while (i < n) { total = total + i; i = i + 1; }
                return total;
            }
            static int cold(int n) { return n * 3; }
            static void main() {
                int total = 0;
                int j = 0;
                while (j < 400) { total = total + hot(10); j = j + 1; }
                println(total);
            }
        }
    "#;

    fn run_recorded(memo: &mut ExecMemo, program: &BProgram, config: &VmConfig) -> ExecutionResult {
        let shard = SharedArtifactCache::new();
        let artifacts = shard.attach(program);
        let exec_fp = config.exec_fingerprint();
        if let Some(found) = memo.lookup(&artifacts.digests, exec_fp) {
            memo.hit();
            return found;
        }
        let (result, warmth) =
            supervised_run_warmth_cached(program, config.clone(), &artifacts).unwrap();
        memo.record(program, &artifacts.digests, config, exec_fp, &result, &warmth);
        result
    }

    #[test]
    fn duplicate_program_is_served_from_the_memo() {
        let program = compile(SEED);
        let config = VmConfig::correct(VmKind::HotSpotLike);
        let mut memo = ExecMemo::new(ExecCachePolicy::On);
        let first = run_recorded(&mut memo, &program, &config);
        let second = run_recorded(&mut memo, &program, &config);
        assert_eq!(memo.hits, 1);
        assert_eq!(memo.misses, 1);
        assert_eq!(render_for_check(&first), render_for_check(&second));
    }

    #[test]
    fn mutation_outside_the_footprint_hits() {
        // `cold` is never called: mutating it cannot change the run.
        let mutant_src = SEED.replace("return n * 3;", "return n * 5;");
        let seed = compile(SEED);
        let mutant = compile(&mutant_src);
        let config = VmConfig::correct(VmKind::HotSpotLike);
        let mut memo = ExecMemo::new(ExecCachePolicy::On);
        let seed_result = run_recorded(&mut memo, &seed, &config);
        let replayed = run_recorded(&mut memo, &mutant, &config);
        assert_eq!(memo.hits, 1, "the mutant run must replay the seed run");
        assert_eq!(seed_result.observable(), replayed.observable());
        // Cross-check the footprint argument: a real execution agrees.
        let mut fresh_memo = ExecMemo::new(ExecCachePolicy::Off);
        let fresh = run_recorded(&mut fresh_memo, &mutant, &config);
        assert_eq!(render_for_check(&fresh), render_for_check(&replayed));
    }

    #[test]
    fn mutation_inside_the_footprint_misses() {
        let mutant_src = SEED.replace("total = total + i;", "total = total + i + 0;");
        let seed = compile(SEED);
        let mutant = compile(&mutant_src);
        let config = VmConfig::correct(VmKind::HotSpotLike);
        let mut memo = ExecMemo::new(ExecCachePolicy::On);
        run_recorded(&mut memo, &seed, &config);
        run_recorded(&mut memo, &mutant, &config);
        assert_eq!(memo.hits, 0, "a hot-method mutation must never replay");
        assert_eq!(memo.misses, 2);
    }

    #[test]
    fn different_configs_do_not_share_entries() {
        let program = compile(SEED);
        let mut memo = ExecMemo::new(ExecCachePolicy::On);
        run_recorded(&mut memo, &program, &VmConfig::correct(VmKind::HotSpotLike));
        run_recorded(&mut memo, &program, &VmConfig::interpreter_only(VmKind::HotSpotLike));
        assert_eq!(memo.hits, 0);
        assert_eq!(memo.misses, 2);
    }

    #[test]
    fn off_policy_never_records_or_serves() {
        let program = compile(SEED);
        let config = VmConfig::correct(VmKind::HotSpotLike);
        let mut memo = ExecMemo::new(ExecCachePolicy::Off);
        run_recorded(&mut memo, &program, &config);
        run_recorded(&mut memo, &program, &config);
        assert_eq!(memo.hits, 0);
        assert_eq!(memo.misses, 0, "a disabled memo does not even count lookups");
    }

    #[test]
    fn chaos_and_watchdog_runs_are_never_recorded() {
        let program = compile(SEED);
        let mut config = VmConfig::correct(VmKind::HotSpotLike);
        config.chaos_panic_at_ops = Some(u64::MAX);
        let mut memo = ExecMemo::new(ExecCachePolicy::On);
        run_recorded(&mut memo, &program, &config);
        run_recorded(&mut memo, &program, &config);
        assert_eq!(memo.hits, 0, "chaos-config runs must never be memoized");
    }
}
