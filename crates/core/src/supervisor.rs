//! Campaign supervision: incidents, checkpoints, and quarantine.
//!
//! Long campaigns must survive harness bugs, wedged runs, and process
//! kills without losing work. This module holds the pieces the
//! supervised campaign driver ([`crate::campaign::run_campaign`]) builds
//! on:
//!
//! - [`HarnessIncident`]: a structured record of a contained panic or
//!   harness failure (which phase, which seed, which mutation iteration,
//!   what payload), aggregated on [`CampaignResult`] instead of tearing
//!   the campaign down.
//! - Checkpoints: the full campaign state (seed cursor, bug map, totals,
//!   incidents) serialized to a versioned, dependency-free text format
//!   and written atomically, so a killed campaign resumes exactly where
//!   it stopped and produces a bit-identical [`CampaignResult`].
//! - Quarantine: crashing and panicking inputs persisted as
//!   self-contained repro files (source + rng seed + VM profile).
//!
//! The checkpoint format is line-oriented with length-prefixed blocks
//! for multi-line strings:
//!
//! ```text
//! cse-checkpoint v5
//! config HotSpot 100 0 8
//! next_seed 42
//! partial 1
//! unattributed 0
//! totals <seeds> <mutants> <completed> <vm_invocations> <discarded>
//!        <seeds_discarded> <mutant_compile_failures>
//!        <neutrality_violations> <ir_verify_defects> <tv_defects>
//!        <triage_reports> <triage_duplicates> <triage_flaky>
//!        <triage_unreproducible> <exec_cache_hits> <exec_cache_misses>
//!        <artifact_cache_hits> <artifact_cache_misses>
//!        <wall_nanos>                               (one line)
//! cse_seeds <n>        (then n lines, one seed each)
//! traditional_seeds <n>
//! bugs <n>
//!   bug <BugId> <occurrences> <first_seed> <Symptom> <Component>
//!   text <byte-len>      (then that many bytes of reproducer + newline)
//! incidents <n>
//!   incident <phase> <seed> <rng_seed> <iteration|->
//!   text <byte-len>      (payload)
//!   source <0|1>  [+ text block when 1]
//! ```
//!
//! A campaign running under `CSE_COVERAGE=collect|guide` writes format
//! v6: the v5 body followed by a `coverage` section (merged map, the
//! minimized corpus, the active round's schedule — see
//! [`crate::coverage`]). Coverage-off campaigns keep writing v5
//! byte-for-byte:
//!
//! ```text
//! coverage <round> <execs> <runs0> <runs1> <runs2> <new0> <new1> <new2>
//! map <64 lowercase-hex u64 words>
//! corpus <n>
//!   entry <gen_seed> <new_cells> <n-locations>  (then one location/line)
//!   map <64 hex words>
//! schedule <n>
//!   task <gen_seed> <plan-name> <n-focus>       (then one location/line)
//! ```

use std::fmt::Write as _;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use cse_vm::{BugId, Component, Symptom, VmConfig};

use crate::campaign::{BugEvidence, CampaignConfig, CampaignResult};
use crate::coverage::{CorpusEntry, CoverageState, PlanVariant, TaskSpec};

/// Where in Algorithm 1 a harness incident happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IncidentPhase {
    /// Compiling or type-checking the fuzzer seed.
    SeedCompile,
    /// Running the seed on the VM under test.
    SeedRun,
    /// Running the seed on the reference interpreter.
    ReferenceRun,
    /// Deriving a mutant (the mutation engine itself).
    Mutation,
    /// Compiling a mutant — a quarantined mutator bug: JoNM produced a
    /// program that fails the type checker or bytecode compiler.
    MutantCompile,
    /// Running a mutant on the VM under test.
    MutantRun,
    /// Running a mutant on the reference interpreter.
    NeutralityRun,
    /// Ground-truth attribution reruns.
    Attribution,
    /// The traditional-fuzzing baseline (§4.3 comparative study).
    Baseline,
    /// The static IR verifier flagged malformed IR at a pass boundary —
    /// the third oracle (alongside output differencing and crash
    /// detection); see `cse_vm::jit::verify`.
    IrVerifyDefect,
    /// The translation validator flagged a pass whose output is not a
    /// semantic refinement of its input — the per-pass semantic oracle;
    /// see `cse_vm::jit::tv`.
    TvDefect,
}

impl IncidentPhase {
    pub const ALL: [IncidentPhase; 11] = [
        IncidentPhase::SeedCompile,
        IncidentPhase::SeedRun,
        IncidentPhase::ReferenceRun,
        IncidentPhase::Mutation,
        IncidentPhase::MutantCompile,
        IncidentPhase::MutantRun,
        IncidentPhase::NeutralityRun,
        IncidentPhase::Attribution,
        IncidentPhase::Baseline,
        IncidentPhase::IrVerifyDefect,
        IncidentPhase::TvDefect,
    ];

    pub fn name(self) -> &'static str {
        match self {
            IncidentPhase::SeedCompile => "SeedCompile",
            IncidentPhase::SeedRun => "SeedRun",
            IncidentPhase::ReferenceRun => "ReferenceRun",
            IncidentPhase::Mutation => "Mutation",
            IncidentPhase::MutantCompile => "MutantCompile",
            IncidentPhase::MutantRun => "MutantRun",
            IncidentPhase::NeutralityRun => "NeutralityRun",
            IncidentPhase::Attribution => "Attribution",
            IncidentPhase::Baseline => "Baseline",
            IncidentPhase::IrVerifyDefect => "IrVerifyDefect",
            IncidentPhase::TvDefect => "TvDefect",
        }
    }

    /// Inverse of [`name`](Self::name) — used by checkpoint decoding and
    /// the `triage` binary's repro-file parser.
    pub fn from_name(name: &str) -> Option<IncidentPhase> {
        IncidentPhase::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for IncidentPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One contained harness failure. Incidents are facts about the
/// *harness* (or the VM substrate misbehaving in ways the fuel budget
/// cannot express), never about the program under test — they are
/// reported alongside bugs, not as bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessIncident {
    pub phase: IncidentPhase,
    /// Campaign seed value being validated when the incident happened.
    pub seed: u64,
    /// Mutation-rng seed (reproduces the exact mutant sequence).
    pub rng_seed: u64,
    /// Mutation iteration (`None` for seed-level phases).
    pub iteration: Option<usize>,
    /// Panic payload or error description.
    pub payload: String,
    /// Source of the program being processed, when known — enough to
    /// replay the incident in isolation.
    pub source: Option<String>,
}

/// Deterministic harness-fault injection for supervision tests: panic
/// inside the VM once `after_ops` operations have burned, but only while
/// validating `panic_on_seed`.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    pub panic_on_seed: u64,
    pub after_ops: u64,
}

/// Supervision settings for a campaign.
#[derive(Debug, Clone, Default)]
pub struct SupervisorConfig {
    /// Checkpoint file; when set, campaign state is persisted every
    /// [`checkpoint_every`](Self::checkpoint_every) seeds and the
    /// campaign resumes from this file if it already exists.
    pub checkpoint_path: Option<PathBuf>,
    /// Seeds between checkpoints (0 is treated as 1).
    pub checkpoint_every: u64,
    /// Directory receiving self-contained repro files for crashing and
    /// panicking inputs (created on demand).
    pub quarantine_dir: Option<PathBuf>,
    /// Global wall-clock budget; on expiry the campaign checkpoints and
    /// returns cleanly with `totals.partial = true`.
    pub deadline: Option<Duration>,
    /// Test hook simulating a kill: stop (with a checkpoint) after this
    /// many seeds *processed in this invocation*.
    pub stop_after_seeds: Option<u64>,
    /// Test hook injecting a deterministic VM panic on one seed.
    pub chaos: Option<ChaosConfig>,
}

impl SupervisorConfig {
    /// Checkpoint cadence with the zero-guard applied.
    pub fn cadence(&self) -> u64 {
        self.checkpoint_every.max(1)
    }
}

/// A loaded checkpoint: the next seed index to process plus the
/// accumulated result.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Seed *offset* (0-based index into the campaign's seed range).
    pub next_seed: u64,
    pub result: CampaignResult,
}

// v2 added the `ir_verify_defects` totals field; v3 added the four
// triage counters; v4 added the four (volatile) cache counters; v5 added
// the `tv_defects` totals field; v6 appends the coverage section (only
// written when the campaign carries coverage state — coverage-off
// campaigns still produce v5 byte-for-byte). Older checkpoints are
// rejected by the magic check, so an interrupted old-format campaign
// restarts from scratch rather than resuming with silently-zeroed
// counters.
const MAGIC: &str = "cse-checkpoint v5";
const MAGIC_V6: &str = "cse-checkpoint v6";

// ----- encoding -----------------------------------------------------------

fn push_text(out: &mut String, s: &str) {
    let _ = writeln!(out, "text {}", s.len());
    out.push_str(s);
    out.push('\n');
}

/// Canonical serialization of a campaign's state. Also the basis of
/// [`CampaignResult::digest`], so it must cover every observable field —
/// except `totals.wall`, which legitimately differs between an
/// uninterrupted run and a kill-and-resume run (pass `wall_nanos = 0`
/// for digests).
pub(crate) fn encode(
    config: &CampaignConfig,
    next_seed: u64,
    result: &CampaignResult,
    wall_nanos: u128,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", if result.coverage.is_some() { MAGIC_V6 } else { MAGIC });
    let _ = writeln!(
        out,
        "config {:?} {} {} {}",
        config.vm.kind, config.seeds, config.first_seed, config.max_iter
    );
    let _ = writeln!(out, "next_seed {next_seed}");
    let _ = writeln!(out, "partial {}", result.totals.partial as u8);
    let _ = writeln!(out, "unattributed {}", result.unattributed);
    let t = &result.totals;
    let _ = writeln!(
        out,
        "totals {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
        t.seeds,
        t.mutants,
        t.completed,
        t.vm_invocations,
        t.discarded,
        t.seeds_discarded,
        t.mutant_compile_failures,
        t.neutrality_violations,
        t.ir_verify_defects,
        t.tv_defects,
        t.triage_reports,
        t.triage_duplicates,
        t.triage_flaky,
        t.triage_unreproducible,
        t.exec_cache_hits,
        t.exec_cache_misses,
        t.artifact_cache_hits,
        t.artifact_cache_misses,
        wall_nanos
    );
    let _ = writeln!(out, "cse_seeds {}", result.cse_seeds.len());
    for s in &result.cse_seeds {
        let _ = writeln!(out, "{s}");
    }
    let _ = writeln!(out, "traditional_seeds {}", result.traditional_seeds.len());
    for s in &result.traditional_seeds {
        let _ = writeln!(out, "{s}");
    }
    let _ = writeln!(out, "bugs {}", result.bugs.len());
    for e in result.bugs.values() {
        let _ = writeln!(
            out,
            "bug {:?} {} {} {:?} {:?}",
            e.bug, e.occurrences, e.first_seed, e.symptom, e.component
        );
        push_text(&mut out, &e.reproducer);
    }
    let _ = writeln!(out, "incidents {}", result.incidents.len());
    for i in &result.incidents {
        let iteration = i.iteration.map(|n| n.to_string()).unwrap_or_else(|| "-".to_string());
        let _ = writeln!(out, "incident {} {} {} {}", i.phase, i.seed, i.rng_seed, iteration);
        push_text(&mut out, &i.payload);
        match &i.source {
            Some(source) => {
                let _ = writeln!(out, "source 1");
                push_text(&mut out, source);
            }
            None => {
                let _ = writeln!(out, "source 0");
            }
        }
    }
    if let Some(state) = &result.coverage {
        let _ = writeln!(
            out,
            "coverage {} {} {} {} {} {} {} {}",
            state.round,
            state.execs,
            state.variant_runs[0],
            state.variant_runs[1],
            state.variant_runs[2],
            state.variant_new[0],
            state.variant_new[1],
            state.variant_new[2],
        );
        push_map(&mut out, &state.global);
        let _ = writeln!(out, "corpus {}", state.corpus.len());
        for entry in &state.corpus {
            let _ = writeln!(
                out,
                "entry {} {} {}",
                entry.gen_seed,
                entry.new_cells,
                entry.locations.len()
            );
            for location in &entry.locations {
                let _ = writeln!(out, "{location}");
            }
            push_map(&mut out, &entry.map);
        }
        let _ = writeln!(out, "schedule {}", state.schedule.len());
        for task in &state.schedule {
            let _ =
                writeln!(out, "task {} {} {}", task.gen_seed, task.plan.name(), task.focus.len());
            for focus in &task.focus {
                let _ = writeln!(out, "{focus}");
            }
        }
    }
    out
}

/// One `map` line: the bitmap's words in lowercase hex (fixed width so
/// the encoding is canonical).
fn push_map(out: &mut String, map: &cse_vm::CoverageMap) {
    out.push_str("map");
    for word in map.words() {
        let _ = write!(out, " {word:016x}");
    }
    out.push('\n');
}

// ----- decoding -----------------------------------------------------------

struct Reader<'a> {
    data: &'a str,
    pos: usize,
}

type ParseResult<T> = Result<T, String>;

impl<'a> Reader<'a> {
    fn new(data: &'a str) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    fn line(&mut self) -> ParseResult<&'a str> {
        if self.pos >= self.data.len() {
            return Err("unexpected end of checkpoint".to_string());
        }
        let rest = &self.data[self.pos..];
        let end = rest.find('\n').ok_or("unterminated line")?;
        self.pos += end + 1;
        Ok(&rest[..end])
    }

    /// A line of the form `<tag> <fields...>`; returns the fields.
    fn tagged(&mut self, tag: &str) -> ParseResult<Vec<&'a str>> {
        let line = self.line()?;
        let mut parts = line.split(' ');
        let got = parts.next().unwrap_or("");
        if got != tag {
            return Err(format!("expected `{tag}`, found `{line}`"));
        }
        Ok(parts.collect())
    }

    fn tagged_num<T: std::str::FromStr>(&mut self, tag: &str) -> ParseResult<T> {
        let fields = self.tagged(tag)?;
        parse_field(&fields, 0, tag)
    }

    /// A `text <len>` block: `len` raw bytes plus a trailing newline.
    fn text(&mut self) -> ParseResult<String> {
        let len: usize = self.tagged_num("text")?;
        let rest = self.data.as_bytes();
        if self.pos + len + 1 > rest.len() {
            return Err("text block runs past end of checkpoint".to_string());
        }
        let body = self
            .data
            .get(self.pos..self.pos + len)
            .ok_or("text block length splits a UTF-8 boundary")?;
        if rest[self.pos + len] != b'\n' {
            return Err("text block missing trailing newline".to_string());
        }
        self.pos += len + 1;
        Ok(body.to_string())
    }

    fn at_end(&self) -> bool {
        self.data[self.pos..].trim().is_empty()
    }
}

fn parse_field<T: std::str::FromStr>(fields: &[&str], index: usize, what: &str) -> ParseResult<T> {
    fields
        .get(index)
        .ok_or_else(|| format!("{what}: missing field {index}"))?
        .parse()
        .map_err(|_| format!("{what}: malformed field {index}"))
}

fn bug_from_name(name: &str) -> ParseResult<BugId> {
    BugId::all()
        .iter()
        .copied()
        .find(|b| format!("{b:?}") == name)
        .ok_or_else(|| format!("unknown bug id `{name}`"))
}

fn symptom_from_name(name: &str) -> ParseResult<Symptom> {
    match name {
        "MisCompilation" => Ok(Symptom::MisCompilation),
        "Crash" => Ok(Symptom::Crash),
        "Performance" => Ok(Symptom::Performance),
        _ => Err(format!("unknown symptom `{name}`")),
    }
}

fn component_from_name(name: &str) -> ParseResult<Component> {
    const ALL: [Component; 18] = [
        Component::InliningC1,
        Component::IdealGraphBuilding,
        Component::IdealLoopOptimization,
        Component::GlobalConstantPropagation,
        Component::GlobalValueNumbering,
        Component::EscapeAnalysis,
        Component::GlobalCodeMotion,
        Component::RegisterAllocation,
        Component::CodeGeneration,
        Component::CodeExecution,
        Component::LocalValuePropagation,
        Component::GlobalValuePropagation,
        Component::LoopVectorization,
        Component::Deoptimization,
        Component::Recompilation,
        Component::OtherJitComponents,
        Component::GarbageCollection,
        Component::OptimizingCompiler,
    ];
    ALL.into_iter()
        .find(|c| format!("{c:?}") == name)
        .ok_or_else(|| format!("unknown component `{name}`"))
}

/// Parses a checkpoint, verifying it belongs to `config` (kind, seed
/// range, and `MAX_ITER` must all match — resuming a checkpoint into a
/// different campaign would silently corrupt results).
pub(crate) fn decode(data: &str, config: &CampaignConfig) -> ParseResult<Checkpoint> {
    let mut r = Reader::new(data);
    let magic = r.line()?;
    let has_coverage = match magic {
        m if m == MAGIC => false,
        m if m == MAGIC_V6 => true,
        _ => return Err(format!("bad checkpoint header `{magic}` (want `{MAGIC}`)")),
    };
    let fields = r.tagged("config")?;
    let kind = format!("{:?}", config.vm.kind);
    let (got_kind, got_seeds, got_first, got_iter) = (
        *fields.first().unwrap_or(&""),
        parse_field::<u64>(&fields, 1, "config")?,
        parse_field::<u64>(&fields, 2, "config")?,
        parse_field::<usize>(&fields, 3, "config")?,
    );
    if got_kind != kind
        || got_seeds != config.seeds
        || got_first != config.first_seed
        || got_iter != config.max_iter
    {
        return Err(format!(
            "checkpoint is for a different campaign \
             (checkpoint: {got_kind}/{got_seeds} seeds from {got_first}, max_iter {got_iter}; \
             campaign: {kind}/{} seeds from {}, max_iter {})",
            config.seeds, config.first_seed, config.max_iter
        ));
    }
    let next_seed: u64 = r.tagged_num("next_seed")?;
    let mut result = CampaignResult::default();
    result.totals.partial = r.tagged_num::<u8>("partial")? != 0;
    result.unattributed = r.tagged_num("unattributed")?;
    let t = r.tagged("totals")?;
    result.totals.seeds = parse_field(&t, 0, "totals")?;
    result.totals.mutants = parse_field(&t, 1, "totals")?;
    result.totals.completed = parse_field(&t, 2, "totals")?;
    result.totals.vm_invocations = parse_field(&t, 3, "totals")?;
    result.totals.discarded = parse_field(&t, 4, "totals")?;
    result.totals.seeds_discarded = parse_field(&t, 5, "totals")?;
    result.totals.mutant_compile_failures = parse_field(&t, 6, "totals")?;
    result.totals.neutrality_violations = parse_field(&t, 7, "totals")?;
    result.totals.ir_verify_defects = parse_field(&t, 8, "totals")?;
    result.totals.tv_defects = parse_field(&t, 9, "totals")?;
    result.totals.triage_reports = parse_field(&t, 10, "totals")?;
    result.totals.triage_duplicates = parse_field(&t, 11, "totals")?;
    result.totals.triage_flaky = parse_field(&t, 12, "totals")?;
    result.totals.triage_unreproducible = parse_field(&t, 13, "totals")?;
    result.totals.exec_cache_hits = parse_field(&t, 14, "totals")?;
    result.totals.exec_cache_misses = parse_field(&t, 15, "totals")?;
    result.totals.artifact_cache_hits = parse_field(&t, 16, "totals")?;
    result.totals.artifact_cache_misses = parse_field(&t, 17, "totals")?;
    let wall_nanos: u128 = parse_field(&t, 18, "totals")?;
    result.totals.wall = Duration::from_nanos(wall_nanos.min(u64::MAX as u128) as u64);
    let n: usize = r.tagged_num("cse_seeds")?;
    for _ in 0..n {
        result.cse_seeds.push(r.line()?.parse().map_err(|_| "bad cse seed")?);
    }
    let n: usize = r.tagged_num("traditional_seeds")?;
    for _ in 0..n {
        result.traditional_seeds.push(r.line()?.parse().map_err(|_| "bad traditional seed")?);
    }
    let n: usize = r.tagged_num("bugs")?;
    for _ in 0..n {
        let fields = r.tagged("bug")?;
        let bug = bug_from_name(fields.first().unwrap_or(&""))?;
        let occurrences: usize = parse_field(&fields, 1, "bug")?;
        let first_seed: u64 = parse_field(&fields, 2, "bug")?;
        let symptom = symptom_from_name(fields.get(3).unwrap_or(&""))?;
        let component = component_from_name(fields.get(4).unwrap_or(&""))?;
        let reproducer = r.text()?;
        result.bugs.insert(
            bug,
            BugEvidence { bug, component, symptom, occurrences, first_seed, reproducer },
        );
    }
    let n: usize = r.tagged_num("incidents")?;
    for _ in 0..n {
        let fields = r.tagged("incident")?;
        let phase = IncidentPhase::from_name(fields.first().unwrap_or(&""))
            .ok_or_else(|| format!("unknown incident phase in {fields:?}"))?;
        let seed: u64 = parse_field(&fields, 1, "incident")?;
        let rng_seed: u64 = parse_field(&fields, 2, "incident")?;
        let iteration = match fields.get(3) {
            Some(&"-") => None,
            Some(s) => Some(s.parse().map_err(|_| "bad incident iteration")?),
            None => return Err("incident: missing iteration".to_string()),
        };
        let payload = r.text()?;
        let source = match r.tagged_num::<u8>("source")? {
            0 => None,
            _ => Some(r.text()?),
        };
        result.incidents.push(HarnessIncident {
            phase,
            seed,
            rng_seed,
            iteration,
            payload,
            source,
        });
    }
    if has_coverage {
        let fields = r.tagged("coverage")?;
        let mut state = CoverageState {
            round: parse_field(&fields, 0, "coverage")?,
            execs: parse_field(&fields, 1, "coverage")?,
            ..CoverageState::default()
        };
        for i in 0..3 {
            state.variant_runs[i] = parse_field(&fields, 2 + i, "coverage")?;
            state.variant_new[i] = parse_field(&fields, 5 + i, "coverage")?;
        }
        state.global = parse_map(&mut r)?;
        let n: usize = r.tagged_num("corpus")?;
        for _ in 0..n {
            let fields = r.tagged("entry")?;
            let gen_seed: u64 = parse_field(&fields, 0, "entry")?;
            let new_cells: u32 = parse_field(&fields, 1, "entry")?;
            let locations = (0..parse_field::<usize>(&fields, 2, "entry")?)
                .map(|_| r.line().map(str::to_string))
                .collect::<ParseResult<Vec<String>>>()?;
            let map = parse_map(&mut r)?;
            state.corpus.push(CorpusEntry { gen_seed, locations, map, new_cells });
        }
        let n: usize = r.tagged_num("schedule")?;
        for _ in 0..n {
            let fields = r.tagged("task")?;
            let gen_seed: u64 = parse_field(&fields, 0, "task")?;
            let plan = PlanVariant::from_name(fields.get(1).unwrap_or(&""))
                .ok_or_else(|| format!("unknown plan variant in {fields:?}"))?;
            let focus = (0..parse_field::<usize>(&fields, 2, "task")?)
                .map(|_| r.line().map(str::to_string))
                .collect::<ParseResult<Vec<String>>>()?;
            state.schedule.push(TaskSpec { gen_seed, focus, plan });
        }
        result.coverage = Some(state);
    }
    if !r.at_end() {
        return Err("trailing data after checkpoint".to_string());
    }
    Ok(Checkpoint { next_seed, result })
}

/// Parses one `map` line back into a bitmap.
fn parse_map(r: &mut Reader<'_>) -> ParseResult<cse_vm::CoverageMap> {
    let fields = r.tagged("map")?;
    if fields.len() != cse_vm::coverage::MAP_WORDS {
        return Err(format!(
            "map: expected {} words, got {}",
            cse_vm::coverage::MAP_WORDS,
            fields.len()
        ));
    }
    let mut words = [0u64; cse_vm::coverage::MAP_WORDS];
    for (word, field) in words.iter_mut().zip(&fields) {
        *word = u64::from_str_radix(field, 16).map_err(|_| "map: malformed hex word")?;
    }
    Ok(cse_vm::CoverageMap::from_words(words))
}

// ----- checkpoint I/O -----------------------------------------------------

/// Atomically writes a checkpoint (tmp file + rename, so a kill during
/// the write never leaves a torn checkpoint behind).
pub fn save_checkpoint(
    path: &Path,
    config: &CampaignConfig,
    next_seed: u64,
    result: &CampaignResult,
) -> io::Result<()> {
    let body = encode(config, next_seed, result, result.totals.wall.as_nanos());
    let tmp = path.with_extension("tmp");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    // Buffered so a large campaign (thousands of bug reproducers and
    // incident payloads) goes out in a few syscalls instead of relying
    // on the kernel to coalesce; flush before the rename publishes it.
    let mut w = io::BufWriter::new(std::fs::File::create(&tmp)?);
    w.write_all(body.as_bytes())?;
    w.flush()?;
    std::fs::rename(&tmp, path)
}

/// Loads a checkpoint if `path` exists. `Ok(None)` when there is no
/// checkpoint yet; `Err` on a torn/foreign/corrupt file (the caller
/// decides whether to start fresh).
pub fn load_checkpoint(path: &Path, config: &CampaignConfig) -> io::Result<Option<Checkpoint>> {
    let data = match std::fs::read_to_string(path) {
        Ok(data) => data,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    decode(&data, config).map(Some).map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
}

// ----- quarantine ---------------------------------------------------------

/// Filename-safe form of a label. Lowercased: quarantine file names must
/// not rely on case to stay distinct, or entries collide on
/// case-insensitive filesystems (macOS, Windows).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect()
}

fn vm_profile_header(vm: &VmConfig) -> String {
    let bugs: Vec<String> = vm.faults.bugs().map(|b| format!("{b:?}")).collect();
    format!(
        "// vm profile: {:?} (jit: {}, fuel: {})\n// active bugs: {}\n",
        vm.kind,
        vm.jit_enabled,
        vm.fuel,
        if bugs.is_empty() { "none".to_string() } else { bugs.join(",") }
    )
}

/// Persists a contained harness incident as a self-contained repro file
/// and returns its path.
pub fn quarantine_incident(
    dir: &Path,
    incident: &HarnessIncident,
    vm: &VmConfig,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let iteration = incident.iteration.map(|n| format!("_iter{n}")).unwrap_or_default();
    // The signature hash keeps distinct incidents sharing a seed, phase,
    // and iteration from ever overwriting each other's repro file.
    let signature = crate::triage::signature_of(incident);
    let path = dir.join(format!(
        "incident_seed{}_{}{}_{:016x}.mj",
        incident.seed,
        sanitize(incident.phase.name()),
        iteration,
        signature.stable_hash()
    ));
    // Streamed through a buffered writer: repro files are written on the
    // campaign hot path (every contained incident), and line-at-a-time
    // writeln!s straight to a File would be a syscall per line.
    let mut w = io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(w, "// quarantined harness incident")?;
    writeln!(w, "// phase: {}", incident.phase)?;
    writeln!(w, "// campaign seed: {}", incident.seed)?;
    writeln!(w, "// rng seed: {}", incident.rng_seed)?;
    if let Some(iteration) = incident.iteration {
        writeln!(w, "// mutation iteration: {iteration}")?;
    }
    w.write_all(vm_profile_header(vm).as_bytes())?;
    for line in incident.payload.lines() {
        writeln!(w, "// panic: {line}")?;
    }
    writeln!(w, "// signature: {signature}")?;
    match &incident.source {
        Some(source) => w.write_all(source.as_bytes())?,
        None => w.write_all(b"// (no source captured)\n")?,
    }
    w.flush()?;
    Ok(path)
}

/// Persists a crash-discrepancy reproducer (mutant source + rng seed +
/// VM profile) and returns its path.
pub fn quarantine_crash(
    dir: &Path,
    seed: u64,
    rng_seed: u64,
    bug: Option<BugId>,
    crash: &cse_vm::CrashInfo,
    mutant_source: &str,
    vm: &VmConfig,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let label = bug.map(|b| format!("{b:?}")).unwrap_or_else(|| "unattributed".to_string());
    // Hash-suffixed like incident files: two different crashes on the
    // same seed with the same attribution never overwrite each other.
    let signature = crate::triage::crash_signature(&label, crash);
    let path = dir.join(format!(
        "crash_seed{}_{}_{:016x}.mj",
        seed,
        sanitize(&label),
        signature.stable_hash()
    ));
    // Buffered for the same reason as `quarantine_incident`.
    let mut w = io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(w, "// quarantined crashing input")?;
    writeln!(w, "// campaign seed: {seed}")?;
    writeln!(w, "// rng seed: {rng_seed}")?;
    writeln!(w, "// crash: {:?} in {:?} during {:?}", crash.kind, crash.component, crash.phase)?;
    writeln!(w, "// attributed bug: {label}")?;
    w.write_all(vm_profile_header(vm).as_bytes())?;
    w.write_all(mutant_source.as_bytes())?;
    w.flush()?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use cse_vm::VmKind;

    fn sample_result() -> CampaignResult {
        let mut result = CampaignResult::default();
        result.totals.seeds = 7;
        result.totals.mutants = 40;
        result.totals.completed = 35;
        result.totals.vm_invocations = 300;
        result.totals.discarded = 5;
        result.totals.seeds_discarded = 1;
        result.totals.mutant_compile_failures = 2;
        result.totals.neutrality_violations = 0;
        result.totals.ir_verify_defects = 3;
        result.totals.tv_defects = 2;
        result.totals.triage_reports = 2;
        result.totals.triage_duplicates = 1;
        result.totals.triage_flaky = 1;
        result.totals.triage_unreproducible = 1;
        result.totals.exec_cache_hits = 11;
        result.totals.exec_cache_misses = 29;
        result.totals.artifact_cache_hits = 17;
        result.totals.artifact_cache_misses = 13;
        result.totals.partial = true;
        result.totals.wall = Duration::from_millis(1234);
        result.unattributed = 3;
        result.cse_seeds = vec![1, 4, 6];
        result.traditional_seeds = vec![4];
        let bug = BugId::all()[0];
        result.bugs.insert(
            bug,
            BugEvidence {
                bug,
                component: bug.component(),
                symptom: bug.symptom(),
                occurrences: 2,
                first_seed: 4,
                reproducer: "class T {\n  static void main() { println(1); }\n}\n".to_string(),
            },
        );
        result.incidents.push(HarnessIncident {
            phase: IncidentPhase::MutantRun,
            seed: 6,
            rng_seed: 6,
            iteration: Some(3),
            payload: "chaos: injected VM panic after 4096 burned ops".to_string(),
            source: Some("class T { static void main() {} }\n".to_string()),
        });
        result.incidents.push(HarnessIncident {
            phase: IncidentPhase::SeedRun,
            seed: 2,
            rng_seed: 2,
            iteration: None,
            payload: "multi\nline\npayload".to_string(),
            source: None,
        });
        result
    }

    #[test]
    fn checkpoint_round_trips() {
        let config = CampaignConfig::for_kind(VmKind::HotSpotLike, 7);
        let result = sample_result();
        let encoded = encode(&config, 7, &result, result.totals.wall.as_nanos());
        let checkpoint = decode(&encoded, &config).expect("decode");
        assert_eq!(checkpoint.next_seed, 7);
        let re_encoded =
            encode(&config, 7, &checkpoint.result, checkpoint.result.totals.wall.as_nanos());
        assert_eq!(encoded, re_encoded);
    }

    /// Checkpoint v6: a result carrying coverage state round-trips the
    /// full state (map, corpus, schedule, counters) exactly, and the
    /// magic reflects the presence of coverage.
    #[test]
    fn coverage_checkpoint_round_trips_as_v6() {
        use crate::coverage::{CorpusEntry, CoverageState, PlanVariant, TaskSpec};
        let config = CampaignConfig::for_kind(VmKind::HotSpotLike, 7);
        let mut result = sample_result();
        let mut map = cse_vm::CoverageMap::new();
        map.insert(cse_vm::coverage::feat_compile(42, 2, false));
        map.insert(cse_vm::coverage::feat_pass(42, 2, "gvn"));
        let mut state = CoverageState {
            global: map,
            round: 3,
            execs: 1234,
            variant_runs: [9, 2, 1],
            variant_new: [40, 30, 5],
            ..CoverageState::default()
        };
        state.corpus.push(CorpusEntry {
            gen_seed: 11,
            locations: vec!["Cls0.m1".to_string(), "Cls2.m0".to_string()],
            map,
            new_cells: 2,
        });
        state.schedule.push(TaskSpec {
            gen_seed: 12,
            focus: vec!["Cls0.m1".to_string()],
            plan: PlanVariant::ForceTop,
        });
        state.schedule.push(TaskSpec { gen_seed: 13, focus: vec![], plan: PlanVariant::Baseline });
        let fingerprint = state.fingerprint();
        result.coverage = Some(state);

        let encoded = encode(&config, 7, &result, 0);
        assert!(encoded.starts_with(MAGIC_V6), "coverage checkpoints are v6");
        let decoded = decode(&encoded, &config).expect("decode");
        let restored = decoded.result.coverage.expect("coverage state restored");
        assert_eq!(restored.fingerprint(), fingerprint, "state must round-trip exactly");
        // And a coverage-free result still writes v5 byte-for-byte.
        assert!(encode(&config, 7, &sample_result(), 0).starts_with(MAGIC));
    }

    #[test]
    fn checkpoint_save_load_round_trips_via_disk() {
        let config = CampaignConfig::for_kind(VmKind::OpenJ9Like, 7);
        let result = sample_result();
        let dir = std::env::temp_dir().join(format!("cse-supervisor-test-{}", std::process::id()));
        let path = dir.join("roundtrip.checkpoint");
        save_checkpoint(&path, &config, 3, &result).expect("save");
        let loaded = load_checkpoint(&path, &config).expect("load").expect("present");
        assert_eq!(loaded.next_seed, 3);
        assert_eq!(loaded.result.digest(&config), result.digest(&config));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let config = CampaignConfig::for_kind(VmKind::HotSpotLike, 7);
        let path = std::env::temp_dir().join("cse-supervisor-test-definitely-missing");
        assert!(load_checkpoint(&path, &config).expect("ok").is_none());
    }

    #[test]
    fn foreign_checkpoint_is_rejected() {
        let config = CampaignConfig::for_kind(VmKind::HotSpotLike, 7);
        let other = CampaignConfig::for_kind(VmKind::ArtLike, 7);
        let encoded = encode(&config, 2, &sample_result(), 0);
        assert!(decode(&encoded, &other).is_err());
        let mut fewer_seeds = config.clone();
        fewer_seeds.seeds = 6;
        assert!(decode(&encoded, &fewer_seeds).is_err());
    }

    #[test]
    fn torn_checkpoint_is_rejected() {
        let config = CampaignConfig::for_kind(VmKind::HotSpotLike, 7);
        let encoded = encode(&config, 2, &sample_result(), 0);
        let torn = &encoded[..encoded.len() / 2];
        assert!(decode(torn, &config).is_err());
        assert!(decode("", &config).is_err());
        assert!(decode("garbage\n", &config).is_err());
    }

    #[test]
    fn quarantine_files_are_self_contained() {
        let dir = std::env::temp_dir().join(format!("cse-quarantine-test-{}", std::process::id()));
        let vm = crate::campaign::CampaignConfig::for_kind(VmKind::HotSpotLike, 1).vm;
        let incident = &sample_result().incidents[0];
        let path = quarantine_incident(&dir, incident, &vm).expect("write");
        let body = std::fs::read_to_string(&path).expect("read");
        assert!(body.contains("rng seed: 6"));
        assert!(body.contains("HotSpotLike"));
        assert!(body.contains("chaos: injected VM panic"));
        assert!(body.contains("class T"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
