//! JIT-op neutral mutation (JoNM) — the paper's §3.3/§3.4 and Algorithm 1.
//!
//! Given a seed program, [`Artemis::jonm`] stochastically mutates its
//! methods with the three mutators of Figure 3:
//!
//! * **LI (Loop Inserter)** — inserts a synthesized hot loop at a random
//!   program point, driving OSR compilation of the enclosing method.
//! * **SW (Statement Wrapper)** — wraps the statement after the point
//!   inside a synthesized loop, guarded by an `exec` flag so it still
//!   runs exactly once; the wrapped statement and the loop now compile
//!   together.
//! * **MI (Method Invocator)** — pre-invokes a method thousands of times
//!   before one of its real call sites, with a control-flag prologue that
//!   makes the pre-invocations return early (the paper's Figure 2
//!   example), driving method-counter JIT compilation.
//!
//! Every mutation is *semantics-preserving*: synthesized code is muted,
//! exception-fenced, and bracketed by backup/restore of every reused
//! variable. The crate's tests enforce neutrality by running mutants
//! against the reference interpreter.

use cse_lang::ast::*;
use cse_lang::scope::{self, PointInfo, VarInfo};
use cse_lang::ty::Ty;
use cse_lang::Program;
use cse_rng::Rng64;

use crate::synth::{Synth, SynthParams};

/// The three JoNM mutators (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutator {
    /// Loop Inserter.
    Li,
    /// Statement Wrapper.
    Sw,
    /// Method Invocator.
    Mi,
}

impl Mutator {
    /// All mutators (Algorithm 1's `{LI, SW, MI}`).
    pub const ALL: [Mutator; 3] = [Mutator::Li, Mutator::Sw, Mutator::Mi];
}

/// A record of one applied mutation (for reports and statistics).
#[derive(Debug, Clone)]
pub struct AppliedMutation {
    pub mutator: Mutator,
    /// `Class.method` the mutation landed in.
    pub location: String,
}

/// The Artemis mutation engine.
pub struct Artemis {
    rng: Rng64,
    pub params: SynthParams,
    counter: u64,
    /// Which mutators are enabled (all three by default; ablations
    /// restrict this).
    pub enabled: Vec<Mutator>,
    /// Chaos knob for supervision tests: after the normal JoNM pass,
    /// deliberately break semantic neutrality by flipping every integer
    /// literal assignment. Exercises the harness's neutrality-violation
    /// detection; never set outside tests.
    pub chaos_break_neutrality: bool,
    /// `Class.method` locations whose mutation probability is boosted
    /// (coverage guidance's mutation-site weighting). Empty — the
    /// default — leaves the RNG draw sequence bit-identical to an
    /// unguided engine.
    pub focus: Vec<String>,
}

impl Artemis {
    /// Creates an engine with a deterministic RNG.
    pub fn new(seed: u64, params: SynthParams) -> Artemis {
        Artemis {
            rng: Rng64::seed_from_u64(seed ^ 0xa5a5_5a5a_c3c3_3c3c),
            params,
            counter: 0,
            enabled: Mutator::ALL.to_vec(),
            chaos_break_neutrality: false,
            focus: Vec::new(),
        }
    }

    /// Algorithm 1's `JoNM(P)`: clones the seed and mutates a random
    /// subset of its methods. Returns the mutant and what was applied
    /// (possibly nothing — callers typically retry or accept).
    pub fn jonm(&mut self, seed: &Program) -> (Program, Vec<AppliedMutation>) {
        let mut mutant = seed.clone();
        let mut applied = Vec::new();
        // Snapshot the method list up front; mutations change indices
        // within bodies but never add/remove/reorder methods.
        let methods: Vec<(usize, usize)> = mutant
            .classes
            .iter()
            .enumerate()
            .flat_map(|(c, class)| (0..class.methods.len()).map(move |m| (c, m)))
            .collect();
        for (class_idx, method_idx) in methods {
            // `main` stays unmutated: its checksum printing is the oracle's
            // anchor, and the paper's seeds route all logic through helper
            // methods anyway.
            if mutant.classes[class_idx].methods[method_idx].name == "main" {
                continue;
            }
            // Focused methods mutate with boosted probability; exactly
            // one RNG draw happens either way, so an empty focus list
            // preserves the unguided draw sequence bit-for-bit.
            let boosted = !self.focus.is_empty() && {
                let class = &mutant.classes[class_idx];
                let location = format!("{}.{}", class.name, class.methods[method_idx].name);
                self.focus.iter().any(|f| f == &location)
            };
            let prob = if boosted {
                (self.params.mutation_prob * 3.0).min(0.95)
            } else {
                self.params.mutation_prob
            };
            if !self.rng.gen_bool(prob) {
                continue;
            }
            let mutator = self.enabled[self.rng.gen_range(0..self.enabled.len())];
            if let Some(record) = self.apply(&mut mutant, class_idx, method_idx, mutator) {
                applied.push(record);
            }
        }
        if self.chaos_break_neutrality && chaos_flip_literals(&mut mutant) > 0 {
            applied.push(AppliedMutation {
                mutator: Mutator::Li,
                location: "<chaos: literal flip>".to_string(),
            });
        }
        (mutant, applied)
    }

    /// Applies one mutator to one method; falls back to LI when the
    /// chosen mutator has no applicable site.
    fn apply(
        &mut self,
        program: &mut Program,
        class_idx: usize,
        method_idx: usize,
        mutator: Mutator,
    ) -> Option<AppliedMutation> {
        let location = format!(
            "{}.{}",
            program.classes[class_idx].name, program.classes[class_idx].methods[method_idx].name
        );
        let done = match mutator {
            Mutator::Li => self.apply_li(program, class_idx, method_idx),
            Mutator::Sw => {
                self.apply_sw(program, class_idx, method_idx)
                    || self.apply_li(program, class_idx, method_idx)
            }
            Mutator::Mi => {
                self.apply_mi(program, class_idx, method_idx)
                    || self.apply_li(program, class_idx, method_idx)
            }
        };
        done.then_some(AppliedMutation { mutator, location })
    }

    /// Program points within one method.
    fn points_in(&self, program: &Program, class_idx: usize, method_idx: usize) -> Vec<PointInfo> {
        scope::collect_points_in(program, class_idx, method_idx)
    }

    fn synth(&mut self) -> Synth<'_> {
        Synth { rng: &mut self.rng, params: &self.params, counter: &mut self.counter }
    }

    /// Picks a program point, biased toward shallow nesting: deeply nested
    /// points often sit in dead branches (untaken switch arms, cold `if`
    /// sides) where a synthesized loop would never run, so half the picks
    /// come from the method's top level. (The paper samples uniformly and
    /// names smarter point selection as future work, §4.5.)
    fn pick_point(&mut self, points: &[PointInfo]) -> PointInfo {
        let shallow: Vec<&PointInfo> = points.iter().filter(|p| p.point.path.is_empty()).collect();
        if !shallow.is_empty() && self.rng.gen_bool(0.7) {
            return shallow[self.rng.gen_range(0..shallow.len())].clone();
        }
        points[self.rng.gen_range(0..points.len())].clone()
    }

    // ----- LI ---------------------------------------------------------------

    fn apply_li(&mut self, program: &mut Program, class_idx: usize, method_idx: usize) -> bool {
        let points = self.points_in(program, class_idx, method_idx);
        if points.is_empty() {
            return false;
        }
        let info = self.pick_point(&points);
        let vars = info.vars.clone();
        let mut reused: Vec<VarInfo> = Vec::new();
        let mut synth = self.synth();
        let mut body = synth.syn_stmts(&vars, &mut reused);
        if synth.rng.gen_bool(0.5) {
            body.extend(synth.syn_stmts(&vars, &mut reused));
        }
        let l = synth.wrap_loop(&vars, reused, vec![], body, vec![]);
        let stmts = scope::stmts_at_mut(program, &info.point);
        splice(stmts, info.point.index, l);
        true
    }

    // ----- SW ---------------------------------------------------------------

    fn apply_sw(&mut self, program: &mut Program, class_idx: usize, method_idx: usize) -> bool {
        let candidates: Vec<PointInfo> = self
            .points_in(program, class_idx, method_idx)
            .into_iter()
            .filter(|info| {
                let stmts = scope::stmts_at(program, &info.point);
                info.point.index < stmts.len() && sw_wrappable(&stmts[info.point.index])
            })
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let info = self.pick_point(&candidates);
        // Variables the wrapped statement writes are off-limits to
        // synthesis: backing one up before `s` runs and restoring it after
        // the loop would silently undo `s`'s own effect.
        let written_by_s = {
            let stmts = scope::stmts_at(program, &info.point);
            locals_written(&stmts[info.point.index])
        };
        let vars: Vec<VarInfo> =
            info.vars.iter().filter(|v| !written_by_s.contains(&v.name)).cloned().collect();
        let mut reused: Vec<VarInfo> = Vec::new();
        let mut synth = self.synth();
        let exec = synth.fresh_public("ex");
        // First batch writes only fresh locals (corpus-only), so the
        // wrapped statement's reads are unaffected on its one execution.
        let before = synth.syn_stmts_pure(&vars, &mut reused);
        let after = synth.syn_stmts(&vars, &mut reused);
        // Assemble the loop body around the wrapped statement.
        let pre =
            vec![Stmt::VarDecl { name: exec.clone(), ty: Ty::Bool, init: Expr::BoolLit(false) }];
        // Temporarily detach the wrapped statement from the program.
        let stmts = scope::stmts_at_mut(program, &info.point);
        let wrapped = stmts.remove(info.point.index);
        let mut body = before;
        body.push(Stmt::If {
            cond: Expr::Unary { op: UnOp::Not, expr: Box::new(Expr::local(&exec)) },
            then_blk: Block::of(vec![
                Stmt::Unmute,
                wrapped,
                Stmt::Mute,
                Stmt::Assign {
                    target: LValue::Local(exec.clone()),
                    op: AssignOp::Set,
                    value: Expr::BoolLit(true),
                },
            ]),
            else_blk: None,
        });
        body.extend(after);
        let l = {
            let mut synth =
                Synth { rng: &mut self.rng, params: &self.params, counter: &mut self.counter };
            synth.wrap_loop(&vars, reused, pre, body, vec![])
        };
        let stmts = scope::stmts_at_mut(program, &info.point);
        splice(stmts, info.point.index, l);
        true
    }

    // ----- MI ---------------------------------------------------------------

    fn apply_mi(&mut self, program: &mut Program, class_idx: usize, method_idx: usize) -> bool {
        let class_name = program.classes[class_idx].name.clone();
        let target = program.classes[class_idx].methods[method_idx].clone();
        // Collect call sites of the target outside the target itself, with
        // a reusable receiver.
        let sites: Vec<_> = scope::call_sites(program, &class_name, &target.name)
            .into_iter()
            .filter(|site| !(site.class == class_idx && site.method == method_idx))
            .filter_map(|site| {
                let stmts = scope::stmts_at(program, &site);
                let stmt = &stmts[site.index];
                find_reusable_call(stmt, &class_name, &target).map(|recv| (site, recv))
            })
            .collect();
        if sites.is_empty() {
            return false;
        }
        let (site, receiver) = sites[self.rng.gen_range(0..sites.len())].clone();
        // Fresh control field on the target's class.
        let ctrl = {
            self.counter += 1;
            format!("$c{}", self.counter)
        };
        program.classes[class_idx].fields.push(FieldDecl {
            name: ctrl.clone(),
            ty: Ty::Bool,
            is_static: true,
            init: Some(Expr::BoolLit(false)),
        });
        let ctrl_read = Expr::StaticField { class: class_name.clone(), field: ctrl.clone() };
        let ctrl_set = |value: bool| Stmt::Assign {
            target: LValue::StaticField { class: class_name.clone(), field: ctrl.clone() },
            op: AssignOp::Set,
            value: Expr::BoolLit(value),
        };
        // Prologue: `if (C.$c) { …synthesized…; return <expr>; }`.
        let params_as_vars: Vec<VarInfo> = target
            .params
            .iter()
            .map(|p| VarInfo { name: p.name.clone(), ty: p.ty.clone(), is_param: true })
            .collect();
        let prologue = {
            let mut synth =
                Synth { rng: &mut self.rng, params: &self.params, counter: &mut self.counter };
            let mut reused = Vec::new();
            let stmts = synth.syn_stmts(&params_as_vars, &mut reused);
            let mut guts: Vec<Stmt> = Vec::new();
            let mut restores: Vec<Stmt> = Vec::new();
            for var in &reused {
                let bk = synth.fresh_public("bk");
                guts.push(Stmt::VarDecl {
                    name: bk.clone(),
                    ty: var.ty.clone(),
                    init: Expr::local(&var.name),
                });
                restores.push(Stmt::Assign {
                    target: LValue::Local(var.name.clone()),
                    op: AssignOp::Set,
                    value: Expr::local(&bk),
                });
            }
            guts.push(Stmt::Mute);
            guts.push(Stmt::Try {
                body: Block::of(stmts),
                catch: Some(Block::default()),
                finally: None,
            });
            guts.push(Stmt::Unmute);
            guts.extend(restores);
            let ret_value = if target.ret == Ty::Void {
                None
            } else {
                let mut reused_ret = Vec::new();
                Some(synth.syn_expr(&target.ret, &params_as_vars, &mut reused_ret))
            };
            guts.push(Stmt::Return(ret_value));
            Stmt::If { cond: ctrl_read, then_blk: Block::of(guts), else_blk: None }
        };
        program.classes[class_idx].methods[method_idx].body.stmts.insert(0, prologue);
        // Build the pre-invocation loop at the chosen site.
        let site_info = scope::collect_points_in(program, site.class, site.method)
            .into_iter()
            .find(|p| p.point == site)
            .expect("site still exists after prologue insertion");
        let vars = site_info.vars.clone();
        let call: Expr = {
            let mut synth =
                Synth { rng: &mut self.rng, params: &self.params, counter: &mut self.counter };
            let mut reused_args = Vec::new();
            let args: Vec<Expr> = target
                .params
                .iter()
                .map(|p| synth.syn_expr(&p.ty, &vars, &mut reused_args))
                .collect();
            if target.is_static {
                Expr::StaticCall { class: class_name.clone(), method: target.name.clone(), args }
            } else {
                Expr::InstCall { recv: Box::new(receiver), method: target.name.clone(), args }
            }
        };
        let body = vec![ctrl_set(true), Stmt::ExprStmt(call), ctrl_set(false)];
        let l = {
            let mut synth =
                Synth { rng: &mut self.rng, params: &self.params, counter: &mut self.counter };
            // The post-loop reset covers exceptional exits from the loop.
            synth.wrap_loop(&vars, Vec::new(), vec![], body, vec![ctrl_set(false)])
        };
        let stmts = scope::stmts_at_mut(program, &site);
        splice(stmts, site.index, l);
        true
    }
}

impl Synth<'_> {
    /// Fresh-name helper shared with the mutators.
    pub fn fresh_public(&mut self, tag: &str) -> String {
        *self.counter += 1;
        format!("${tag}{}", self.counter)
    }
}

/// Inserts `new_stmts` at `index` within `stmts`.
fn splice(stmts: &mut Vec<Stmt>, index: usize, new_stmts: Vec<Stmt>) {
    for (offset, stmt) in new_stmts.into_iter().enumerate() {
        stmts.insert(index + offset, stmt);
    }
}

/// Finds a call to `class.target` in `stmt` whose receiver is reusable
/// (`this` or a local); returns the receiver expression to clone
/// (`Expr::This` placeholder for static calls).
fn find_reusable_call(stmt: &Stmt, class: &str, target: &MethodDecl) -> Option<Expr> {
    let mut found: Option<Expr> = None;
    scope::for_each_expr_in_stmt(stmt, &mut |e| {
        if found.is_some() {
            return;
        }
        match e {
            Expr::StaticCall { class: c, method, .. }
                if target.is_static && c == class && *method == target.name =>
            {
                found = Some(Expr::This);
            }
            Expr::InstCall { recv, method, .. } if !target.is_static && *method == target.name => {
                match recv.as_ref() {
                    Expr::This => found = Some(Expr::This),
                    Expr::Local(name) => found = Some(Expr::local(name)),
                    _ => {}
                }
            }
            _ => {}
        }
    });
    found
}

/// The local variables a statement writes (assignment targets and
/// increment/decrement targets, at any nesting depth).
fn locals_written(stmt: &Stmt) -> std::collections::HashSet<String> {
    fn walk(stmt: &Stmt, out: &mut std::collections::HashSet<String>) {
        match stmt {
            Stmt::Assign { target, .. } | Stmt::IncDec { target, .. } => {
                if let LValue::Local(name) | LValue::Name(name) = target {
                    out.insert(name.clone());
                }
            }
            Stmt::VarDecl { name, .. } => {
                out.insert(name.clone());
            }
            Stmt::If { then_blk, else_blk, .. } => {
                then_blk.stmts.iter().for_each(|s| walk(s, out));
                if let Some(e) = else_blk {
                    e.stmts.iter().for_each(|s| walk(s, out));
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
                body.stmts.iter().for_each(|s| walk(s, out));
            }
            Stmt::For { init, step, body, .. } => {
                if let Some(init) = init {
                    walk(init, out);
                }
                if let Some(step) = step {
                    walk(step, out);
                }
                body.stmts.iter().for_each(|s| walk(s, out));
            }
            Stmt::Switch { cases, .. } => {
                for case in cases {
                    case.body.iter().for_each(|s| walk(s, out));
                }
            }
            Stmt::Block(b) => b.stmts.iter().for_each(|s| walk(s, out)),
            Stmt::Try { body, catch, finally } => {
                body.stmts.iter().for_each(|s| walk(s, out));
                if let Some(c) = catch {
                    c.stmts.iter().for_each(|s| walk(s, out));
                }
                if let Some(f) = finally {
                    f.stmts.iter().for_each(|s| walk(s, out));
                }
            }
            _ => {}
        }
    }
    let mut out = std::collections::HashSet::new();
    walk(stmt, &mut out);
    out
}

/// The deliberate non-neutral mutation behind
/// [`Artemis::chaos_break_neutrality`]: increments every integer-literal
/// assignment in the program. Returns how many literals were flipped.
fn chaos_flip_literals(mutant: &mut Program) -> usize {
    let mut flipped = 0;
    let points = scope::collect_points(mutant);
    for info in points {
        let stmts = scope::stmts_at_mut(mutant, &info.point);
        if info.point.index < stmts.len() {
            if let Stmt::Assign { value: Expr::IntLit(v), .. } = &mut stmts[info.point.index] {
                *v = v.wrapping_add(1);
                flipped += 1;
            }
        }
    }
    flipped
}

/// Whether SW may wrap this statement while preserving semantics: it must
/// not declare scope the following statements use, must not throw (its
/// exceptions would be swallowed by the loop's catch-all), and must not
/// jump out of itself.
pub fn sw_wrappable(stmt: &Stmt) -> bool {
    if matches!(
        stmt,
        Stmt::VarDecl { .. }
            | Stmt::Mute
            | Stmt::Unmute
            | Stmt::Return(_)
            | Stmt::Break
            | Stmt::Continue
            | Stmt::Throw(_)
    ) {
        return false;
    }
    stmt_cannot_throw(stmt, 0) && !has_escaping_jump(stmt, 0, 0)
}

/// Conservative "cannot throw" analysis. `_depth` reserved for future
/// refinement.
fn stmt_cannot_throw(stmt: &Stmt, _depth: usize) -> bool {
    let mut safe = true;
    // Every contained expression must be non-throwing.
    scope::for_each_expr_in_stmt(stmt, &mut |e| {
        if !expr_cannot_throw(e) {
            safe = false;
        }
    });
    if !safe {
        return false;
    }
    // Statement forms that throw regardless of expressions — including
    // throwing *lvalues* (an indexed store raises OOB through the LValue,
    // which the expression walk above never sees) and compound division.
    fn lvalue_safe(target: &LValue) -> bool {
        match target {
            LValue::Local(_) | LValue::StaticField { .. } => true,
            LValue::InstField { recv, .. } => matches!(recv.as_ref(), Expr::This),
            LValue::Index { .. } | LValue::Name(_) => false,
        }
    }
    fn scan(stmt: &Stmt) -> bool {
        match stmt {
            Stmt::Throw(_) => false,
            Stmt::Assign { target, op, value } => {
                let div_safe = match op.binop() {
                    Some(BinOp::Div | BinOp::Rem) => {
                        matches!(value, Expr::IntLit(v) if *v != 0)
                            || matches!(value, Expr::LongLit(v) if *v != 0)
                    }
                    _ => true,
                };
                lvalue_safe(target) && div_safe
            }
            Stmt::IncDec { target, .. } => lvalue_safe(target),
            Stmt::If { then_blk, else_blk, .. } => {
                then_blk.stmts.iter().all(scan)
                    && else_blk.as_ref().map(|b| b.stmts.iter().all(scan)).unwrap_or(true)
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                body.stmts.iter().all(scan)
            }
            Stmt::Switch { cases, .. } => cases.iter().all(|c| c.body.iter().all(scan)),
            Stmt::Block(b) => b.stmts.iter().all(scan),
            // A try with a catch-all swallows anything its body throws,
            // but the catch block itself must also be throw-free;
            // `finally`-only trys still propagate, so stay conservative.
            Stmt::Try { catch: Some(catch), finally: None, .. } => catch.stmts.iter().all(scan),
            Stmt::Try { .. } => false,
            _ => true,
        }
    }
    scan(stmt)
}

fn expr_cannot_throw(expr: &Expr) -> bool {
    match expr {
        // Division/remainder by a non-zero literal is safe.
        Expr::Binary { op: BinOp::Div | BinOp::Rem, rhs, .. } => {
            matches!(rhs.as_ref(), Expr::IntLit(v) if *v != 0)
                || matches!(rhs.as_ref(), Expr::LongLit(v) if *v != 0)
        }
        // Indexing, lengths, calls, allocation, and non-`this` field
        // access can all raise.
        Expr::Index { .. }
        | Expr::Length(_)
        | Expr::StaticCall { .. }
        | Expr::InstCall { .. }
        | Expr::FreeCall { .. }
        | Expr::NewObject(_)
        | Expr::NewArray { .. }
        | Expr::NewArrayInit { .. } => false,
        Expr::InstField { recv, .. } => matches!(recv.as_ref(), Expr::This),
        _ => true,
    }
}

/// Whether `stmt` contains a `break`/`continue`/`return` that would escape
/// it (and thus, after wrapping, target the synthesized loop instead).
fn has_escaping_jump(stmt: &Stmt, loop_depth: usize, switch_depth: usize) -> bool {
    match stmt {
        Stmt::Return(_) => true,
        Stmt::Break => loop_depth + switch_depth == 0,
        Stmt::Continue => loop_depth == 0,
        Stmt::If { then_blk, else_blk, .. } => {
            then_blk.stmts.iter().any(|s| has_escaping_jump(s, loop_depth, switch_depth))
                || else_blk
                    .as_ref()
                    .map(|b| b.stmts.iter().any(|s| has_escaping_jump(s, loop_depth, switch_depth)))
                    .unwrap_or(false)
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
            body.stmts.iter().any(|s| has_escaping_jump(s, loop_depth + 1, switch_depth))
        }
        Stmt::Switch { cases, .. } => cases
            .iter()
            .any(|c| c.body.iter().any(|s| has_escaping_jump(s, loop_depth, switch_depth + 1))),
        Stmt::Block(b) => b.stmts.iter().any(|s| has_escaping_jump(s, loop_depth, switch_depth)),
        Stmt::Try { body, catch, finally } => {
            body.stmts.iter().any(|s| has_escaping_jump(s, loop_depth, switch_depth))
                || catch
                    .as_ref()
                    .map(|b| b.stmts.iter().any(|s| has_escaping_jump(s, loop_depth, switch_depth)))
                    .unwrap_or(false)
                || finally
                    .as_ref()
                    .map(|b| b.stmts.iter().any(|s| has_escaping_jump(s, loop_depth, switch_depth)))
                    .unwrap_or(false)
        }
        _ => false,
    }
}
