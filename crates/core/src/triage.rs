//! Automated incident triage: reduction, dedup, and flakiness
//! classification for quarantined harness incidents.
//!
//! The paper's workflow does not stop at detection — every
//! bug-triggering program is reduced (Perses/C-Reduce, §2.2),
//! deduplicated by component, and re-executed to separate real
//! miscompilations from environmental noise before a report is filed
//! (§4). This module is that pipeline for [`HarnessIncident`]s:
//!
//! 1. **Signature-based dedup** — every incident gets a stable
//!    [`BugSignature`] (oracle kind, attributed pass/component, defect
//!    shape). Incidents sharing a signature collapse into one report
//!    with an occurrence count; only the first becomes the
//!    representative that is reduced and classified.
//! 2. **Automated reduction** — the representative's source is
//!    delta-debugged through [`cse_reduce::reduce_with`], keeping only
//!    candidates that still replay to the *same signature* under the
//!    panic barrier ([`supervised_run`]). When the replay VM carries a
//!    forced plan, the compilation-space coordinate is shrunk too
//!    ([`shrink_plan`]). Every candidate evaluation is wrapped in a
//!    bounded retry (attempt-based, never wall-clock-based) so a
//!    transient harness hiccup cannot abort a reduction.
//! 3. **Flakiness classification** — the reduced repro is re-executed
//!    `reruns` times serially and `reruns` times sharded across 4
//!    threads; a repro that always matches its signature is
//!    `deterministic`, sometimes is `flaky`, never is `unreproducible`.
//!    Unreproducible incidents are **never promoted to reports** — they
//!    are kept in a suppressed list for visibility.
//!
//! Everything here is bounded by deterministic budgets — the reducer's
//! step budget and the VM's fuel/heap/stack budgets (`CSE_FUEL`,
//! `CSE_HEAP_LIMIT`, `CSE_STACK_LIMIT`); the replay VM runs with the
//! wall-clock watchdog *disabled* — so triage verdicts, report
//! renderings, and campaign digests are bit-identical across machines
//! and worker counts.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use cse_bytecode::MethodId;
use cse_lang::Program;
use cse_reduce::{reduce_with, ReduceConfig};
use cse_vm::supervise::supervised_run;
use cse_vm::{ForcedPlan, VmConfig};

use crate::campaign::CampaignConfig;
use crate::supervisor::{ChaosConfig, HarnessIncident, IncidentPhase};
use crate::validate::try_compile_checked;

// ----- signatures ---------------------------------------------------------

/// Which oracle flagged the incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OracleKind {
    /// A contained panic somewhere in the harness or VM substrate.
    HarnessPanic,
    /// JoNM produced a program that fails compilation (a mutator bug).
    MutatorBug,
    /// The static IR verifier flagged malformed IR.
    IrDefect,
    /// The translation validator flagged a pass that broke its refinement
    /// contract.
    TvDefect,
    /// A crash discrepancy (used for quarantine file naming).
    Crash,
}

impl std::fmt::Display for OracleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleKind::HarnessPanic => write!(f, "harness-panic"),
            OracleKind::MutatorBug => write!(f, "mutator-bug"),
            OracleKind::IrDefect => write!(f, "ir-defect"),
            OracleKind::TvDefect => write!(f, "tv-defect"),
            OracleKind::Crash => write!(f, "crash"),
        }
    }
}

/// A stable bug signature: two incidents with the same signature are
/// one bug for reporting purposes. The shape is the payload's first
/// line with digit runs collapsed to `#`, so counters (burned ops,
/// block numbers, seed values) never split one bug into many reports.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BugSignature {
    pub oracle: OracleKind,
    /// Attributed component: the harness phase, or (for IR defects) the
    /// compiler pass the verifier blamed.
    pub component: String,
    /// Normalized defect shape.
    pub shape: String,
}

impl BugSignature {
    /// FNV-1a content hash — stable across processes and machines,
    /// suitable for file names and dedup keys.
    pub fn stable_hash(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for part in [self.oracle.to_string().as_str(), &self.component, &self.shape] {
            for byte in part.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= 0x1f;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

impl std::fmt::Display for BugSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x} oracle={} component={}", self.stable_hash(), self.oracle, self.component)
    }
}

/// Collapses digit runs to `#` and truncates: the canonical "shape" of
/// a payload line.
fn normalize_shape(text: &str) -> String {
    let first = text.lines().next().unwrap_or("");
    let mut out = String::new();
    for c in first.chars() {
        if c.is_ascii_digit() {
            if !out.ends_with('#') {
                out.push('#');
            }
        } else {
            out.push(c);
        }
    }
    // Truncate on a char boundary: payload lines can carry multi-byte
    // glyphs (e.g. the `…` in depth-bounded TV value terms).
    if out.len() > 160 {
        let mut cut = 160;
        while !out.is_char_boundary(cut) {
            cut -= 1;
        }
        out.truncate(cut);
    }
    out
}

/// The shape of one IR-verifier defect line, with the (program-specific)
/// method name stripped: `m3: after gvn: b2: ...` → `after gvn: b#: ...`.
fn ir_shape(line: &str) -> String {
    let tail = match line.find(": after ") {
        Some(idx) => &line[idx + 2..],
        None => line,
    };
    normalize_shape(tail)
}

/// The shape of one translation-validation defect line. TV
/// counterexamples embed symbolic terms full of program-specific temp
/// names (`r12`, `b3`, `in(b2, r7)`, `call#4@b1.0`) whose identity is
/// entirely numeric, so the digit normalization that `ir_shape` applies
/// after stripping the method name also collapses every temp name —
/// repeated hits of one pass defect on different programs dedup into one
/// report.
fn tv_shape(line: &str) -> String {
    ir_shape(line)
}

/// The pass an IR-verifier defect line attributes itself to.
fn ir_pass(payload: &str) -> Option<&str> {
    let line = payload.lines().next()?;
    let tail = &line[line.find(": after ")? + ": after ".len()..];
    Some(tail.split(':').next().unwrap_or(tail))
}

/// Computes the stable signature of an incident.
pub fn signature_of(incident: &HarnessIncident) -> BugSignature {
    match incident.phase {
        IncidentPhase::SeedCompile | IncidentPhase::MutantCompile => BugSignature {
            oracle: OracleKind::MutatorBug,
            component: incident.phase.name().to_string(),
            shape: normalize_shape(&incident.payload),
        },
        IncidentPhase::IrVerifyDefect => BugSignature {
            oracle: OracleKind::IrDefect,
            component: ir_pass(&incident.payload).unwrap_or("ir").to_string(),
            shape: ir_shape(incident.payload.lines().next().unwrap_or("")),
        },
        IncidentPhase::TvDefect => BugSignature {
            oracle: OracleKind::TvDefect,
            component: ir_pass(&incident.payload).unwrap_or("tv").to_string(),
            shape: tv_shape(incident.payload.lines().next().unwrap_or("")),
        },
        _ => BugSignature {
            oracle: OracleKind::HarnessPanic,
            component: incident.phase.name().to_string(),
            shape: normalize_shape(&incident.payload),
        },
    }
}

/// Signature for a crash-discrepancy quarantine file (kept alongside
/// incident signatures so both file families are hash-suffixed).
pub fn crash_signature(label: &str, crash: &cse_vm::CrashInfo) -> BugSignature {
    BugSignature {
        oracle: OracleKind::Crash,
        component: format!("{:?}", crash.component),
        shape: normalize_shape(&format!("{label} {:?} {}", crash.kind, crash.detail)),
    }
}

// ----- configuration ------------------------------------------------------

/// Triage settings.
#[derive(Debug, Clone)]
pub struct TriageConfig {
    /// Replay VM configuration. Triage forces `wall_clock_limit = None`
    /// on every replay: the fuel/heap/stack budgets bound execution, so
    /// verdicts cannot depend on machine speed.
    pub vm: VmConfig,
    /// Step budget for each representative's reduction
    /// (`CSE_TRIAGE_STEPS` overrides the default of 1000).
    pub max_reduce_steps: usize,
    /// Re-executions per parallelism level during flakiness
    /// classification (`CSE_TRIAGE_RERUNS` overrides the default of 3);
    /// each repro runs `reruns` times serially plus `reruns` times
    /// across 4 threads.
    pub reruns: usize,
    /// Extra replay attempts per candidate evaluation before it counts
    /// as a mismatch. Retries are attempt-based, never wall-clock-based.
    pub retries: usize,
    /// Worker threads for triaging signature groups; output is
    /// bit-identical for every value.
    pub jobs: usize,
}

impl TriageConfig {
    /// Triage settings derived from a campaign: same VM profile and
    /// fault set, wall-clock watchdog off, chaos knob cleared (it is
    /// re-applied per incident from the campaign's `ChaosConfig`).
    pub fn for_campaign(config: &CampaignConfig) -> TriageConfig {
        let mut vm = config.vm.clone();
        vm.wall_clock_limit = None;
        vm.chaos_panic_at_ops = None;
        TriageConfig {
            vm,
            max_reduce_steps: env_usize("CSE_TRIAGE_STEPS").unwrap_or(1000),
            reruns: env_usize("CSE_TRIAGE_RERUNS").unwrap_or(3),
            retries: 1,
            jobs: config.jobs,
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

// ----- replay -------------------------------------------------------------

/// What a replay of the incident must exhibit to count as "the same
/// bug". Derived from the incident *record*, not from a replay, so an
/// incident whose original run cannot be reproduced is detected as
/// such instead of silently re-targeting whatever the replay does.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Expected {
    Panic(String),
    CompileFail(String),
    IrDefect(String),
    TvDefect(String),
}

fn expected_of(incident: &HarnessIncident) -> Expected {
    match incident.phase {
        IncidentPhase::SeedCompile | IncidentPhase::MutantCompile => {
            Expected::CompileFail(normalize_shape(&incident.payload))
        }
        IncidentPhase::IrVerifyDefect => {
            Expected::IrDefect(ir_shape(incident.payload.lines().next().unwrap_or("")))
        }
        IncidentPhase::TvDefect => {
            Expected::TvDefect(tv_shape(incident.payload.lines().next().unwrap_or("")))
        }
        _ => Expected::Panic(normalize_shape(&incident.payload)),
    }
}

/// The VM configuration a specific incident replays under: the triage
/// VM, except that reference-interpreter phases replay on the reference
/// interpreter and the campaign's chaos knob is re-applied when it
/// targeted this incident's seed.
fn replay_vm(
    tcfg: &TriageConfig,
    incident: &HarnessIncident,
    chaos: Option<ChaosConfig>,
) -> VmConfig {
    let reference_phase =
        matches!(incident.phase, IncidentPhase::ReferenceRun | IncidentPhase::NeutralityRun);
    let mut vm =
        if reference_phase { VmConfig::interpreter_only(tcfg.vm.kind) } else { tcfg.vm.clone() };
    vm.wall_clock_limit = None;
    if !reference_phase {
        if let Some(chaos) = chaos {
            if chaos.panic_on_seed == incident.seed {
                vm.chaos_panic_at_ops = Some(chaos.after_ops);
            }
        }
    }
    vm
}

/// One replay: does `program` under `vm` exhibit `expected`?
fn replay_once(expected: &Expected, vm: &VmConfig, program: &Program) -> bool {
    let bytecode = match try_compile_checked(program) {
        Ok(bytecode) => bytecode,
        Err(message) => {
            return matches!(expected, Expected::CompileFail(shape)
                if *shape == normalize_shape(&message));
        }
    };
    if matches!(expected, Expected::CompileFail(_)) {
        return false;
    }
    match supervised_run(&bytecode, vm.clone()) {
        Err(panic) => {
            matches!(expected, Expected::Panic(shape) if *shape == normalize_shape(&panic.payload))
        }
        Ok(result) => match expected {
            Expected::IrDefect(shape) => {
                result.ir_verify.iter().any(|line| ir_shape(line) == *shape)
            }
            Expected::TvDefect(shape) => result
                .tv
                .iter()
                .any(|report| tv_shape(report.lines().next().unwrap_or("")) == *shape),
            _ => false,
        },
    }
}

/// Replay with bounded retry: a candidate counts as matching if any of
/// `1 + retries` attempts matches (short-circuiting, so deterministic
/// repros cost one run). On the deterministic substrate the retries are
/// a no-op safety net; they mirror the paper's re-execution before
/// filing and keep a transient reducer step from killing a reduction.
fn replay(expected: &Expected, vm: &VmConfig, program: &Program, retries: usize) -> bool {
    (0..=retries).any(|_| replay_once(expected, vm, program))
}

// ----- reports ------------------------------------------------------------

/// Flakiness verdict for a reduced repro.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every re-execution reproduced the signature.
    Deterministic,
    /// Some, but not all, re-executions reproduced it.
    Flaky,
    /// No re-execution reproduced it; never promoted to a report.
    Unreproducible,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Deterministic => write!(f, "deterministic"),
            Verdict::Flaky => write!(f, "flaky"),
            Verdict::Unreproducible => write!(f, "unreproducible"),
        }
    }
}

/// One triaged signature group.
#[derive(Debug, Clone)]
pub struct TriagedReport {
    pub signature: BugSignature,
    /// How many incidents collapsed into this report.
    pub occurrences: usize,
    /// Campaign seeds of every member incident, in incident order.
    pub seeds: Vec<u64>,
    /// Phase of the representative (first) incident.
    pub phase: IncidentPhase,
    pub verdict: Verdict,
    /// Re-executions that reproduced the signature, out of the total.
    pub reruns_matched: usize,
    pub reruns_total: usize,
    /// Source bytes before and after reduction (0 when no source was
    /// captured).
    pub original_bytes: usize,
    pub reduced_bytes: usize,
    /// Reducer candidate evaluations spent.
    pub reduce_steps: usize,
    /// Whether the reduction stopped on its step budget rather than at
    /// a fixed point.
    pub reduce_budget_exhausted: bool,
    /// Forced-plan pins before and after coordinate shrinking, when the
    /// replay VM carried a forced plan.
    pub plan_pins: Option<(usize, usize)>,
    /// The reduced repro source (absent when the incident carried no
    /// source).
    pub reduced_source: Option<String>,
}

impl TriagedReport {
    fn render(&self, out: &mut String) {
        let _ = writeln!(out, "report {}", self.signature);
        let _ = writeln!(out, "  shape: {}", self.signature.shape);
        let seeds: Vec<String> = self.seeds.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(out, "  occurrences: {} (seeds {})", self.occurrences, seeds.join(","));
        let _ = writeln!(
            out,
            "  verdict: {} ({}/{} reruns reproduce)",
            self.verdict, self.reruns_matched, self.reruns_total
        );
        let budget = if self.reduce_budget_exhausted { ", budget exhausted" } else { "" };
        let _ = writeln!(
            out,
            "  reduction: {} -> {} bytes in {} steps{budget}",
            self.original_bytes, self.reduced_bytes, self.reduce_steps
        );
        if let Some((before, after)) = self.plan_pins {
            let _ = writeln!(out, "  plan: {before} -> {after} pins");
        }
        match &self.reduced_source {
            Some(source) => {
                let _ = writeln!(out, "  repro:");
                for line in source.lines() {
                    let _ = writeln!(out, "    {line}");
                }
            }
            None => {
                let _ = writeln!(out, "  repro: (no source captured)");
            }
        }
    }
}

/// The result of triaging a batch of incidents.
#[derive(Debug, Clone, Default)]
pub struct TriageReport {
    /// Incidents triaged.
    pub incidents: usize,
    /// Promoted reports (deterministic or flaky), in first-occurrence
    /// order.
    pub reports: Vec<TriagedReport>,
    /// Unreproducible groups — kept for visibility, never promoted.
    pub suppressed: Vec<TriagedReport>,
}

impl TriageReport {
    /// Duplicate incidents absorbed across all signature groups.
    pub fn duplicates(&self) -> usize {
        self.reports.iter().chain(&self.suppressed).map(|r| r.occurrences.saturating_sub(1)).sum()
    }

    /// Promoted reports classified flaky.
    pub fn flaky(&self) -> usize {
        self.reports.iter().filter(|r| r.verdict == Verdict::Flaky).count()
    }

    /// Canonical rendering: deterministic, wall-clock free, identical
    /// for every worker count.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "triage: {} incident(s), {} report(s), {} duplicate(s), {} suppressed",
            self.incidents,
            self.reports.len(),
            self.duplicates(),
            self.suppressed.len()
        );
        for report in self.reports.iter().chain(&self.suppressed) {
            report.render(&mut out);
        }
        out
    }

    /// FNV-1a digest of the canonical rendering.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.render().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

// ----- plan shrinking -----------------------------------------------------

/// Shrinks a forced compilation plan (the compilation-space coordinate,
/// Definition 3.3) while `interesting` holds: drops per-call pins one at
/// a time (in sorted order, so the walk is deterministic), then the
/// default mode, to a fixed point or `max_steps` evaluations.
pub fn shrink_plan(
    plan: &ForcedPlan,
    max_steps: usize,
    interesting: &mut dyn FnMut(&ForcedPlan) -> bool,
) -> ForcedPlan {
    let mut current = plan.clone();
    let mut steps = 0;
    loop {
        let mut changed = false;
        let mut keys: Vec<(MethodId, u64)> = current.per_call.keys().copied().collect();
        keys.sort_by_key(|&(m, i)| (m.0, i));
        for key in keys {
            if steps >= max_steps {
                return current;
            }
            let mut candidate = current.clone();
            candidate.per_call.remove(&key);
            steps += 1;
            if interesting(&candidate) {
                current = candidate;
                changed = true;
            }
        }
        if current.default.is_some() {
            if steps >= max_steps {
                return current;
            }
            let mut candidate = current.clone();
            candidate.default = None;
            steps += 1;
            if interesting(&candidate) {
                current = candidate;
                changed = true;
            }
        }
        if !changed {
            return current;
        }
    }
}

// ----- the pipeline -------------------------------------------------------

struct Group<'a> {
    signature: BugSignature,
    representative: &'a HarnessIncident,
    seeds: Vec<u64>,
}

/// Triages a batch of incidents: dedup by signature, reduce each
/// representative, classify flakiness. Group order (and therefore the
/// report, its rendering, and its digest) follows first occurrence in
/// `incidents`; worker count never changes the output.
pub fn triage_incidents(
    incidents: &[HarnessIncident],
    tcfg: &TriageConfig,
    chaos: Option<ChaosConfig>,
    quarantine_dir: Option<&Path>,
) -> TriageReport {
    // Dedup: same signature → same group; first member is the
    // representative whose source gets reduced and classified.
    let mut groups: Vec<Group> = Vec::new();
    let mut index: BTreeMap<u64, usize> = BTreeMap::new();
    for incident in incidents {
        let signature = signature_of(incident);
        match index.get(&signature.stable_hash()) {
            Some(&at) => groups[at].seeds.push(incident.seed),
            None => {
                index.insert(signature.stable_hash(), groups.len());
                groups.push(Group {
                    signature,
                    representative: incident,
                    seeds: vec![incident.seed],
                });
            }
        }
    }
    let triaged = run_groups(&groups, tcfg, chaos);
    let mut report =
        TriageReport { incidents: incidents.len(), reports: Vec::new(), suppressed: Vec::new() };
    for item in triaged {
        if let (Some(dir), Verdict::Deterministic | Verdict::Flaky, Some(source)) =
            (quarantine_dir, item.verdict, &item.reduced_source)
        {
            if let Err(e) = write_reduced_repro(dir, &item, source) {
                eprintln!("warning: reduced-repro write failed: {e}");
            }
        }
        if item.verdict == Verdict::Unreproducible {
            report.suppressed.push(item);
        } else {
            report.reports.push(item);
        }
    }
    report
}

/// Campaign entry point: triages a finished campaign's incidents with
/// its supervisor's chaos knob and quarantine directory.
pub fn triage_campaign(
    config: &CampaignConfig,
    tcfg: &TriageConfig,
    incidents: &[HarnessIncident],
) -> TriageReport {
    triage_incidents(
        incidents,
        tcfg,
        config.supervisor.chaos,
        config.supervisor.quarantine_dir.as_deref(),
    )
}

/// Processes the signature groups, in parallel when configured; results
/// come back in group order regardless of scheduling.
fn run_groups(
    groups: &[Group<'_>],
    tcfg: &TriageConfig,
    chaos: Option<ChaosConfig>,
) -> Vec<TriagedReport> {
    if tcfg.jobs <= 1 || groups.len() <= 1 {
        return groups.iter().map(|g| triage_group(g, tcfg, chaos)).collect();
    }
    let claim = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, TriagedReport)>();
    let mut by_index: BTreeMap<usize, TriagedReport> = BTreeMap::new();
    std::thread::scope(|scope| {
        for _ in 0..tcfg.jobs.min(groups.len()) {
            let tx = tx.clone();
            let claim = &claim;
            scope.spawn(move || loop {
                let at = claim.fetch_add(1, Ordering::SeqCst);
                let Some(group) = groups.get(at) else { break };
                if tx.send((at, triage_group(group, tcfg, chaos))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (at, item) in rx {
            by_index.insert(at, item);
        }
    });
    by_index.into_values().collect()
}

/// Reduces and classifies one signature group's representative.
fn triage_group(
    group: &Group<'_>,
    tcfg: &TriageConfig,
    chaos: Option<ChaosConfig>,
) -> TriagedReport {
    let incident = group.representative;
    let expected = expected_of(incident);
    let mut vm = replay_vm(tcfg, incident, chaos);
    let mut report = TriagedReport {
        signature: group.signature.clone(),
        occurrences: group.seeds.len(),
        seeds: group.seeds.clone(),
        phase: incident.phase,
        verdict: Verdict::Unreproducible,
        reruns_matched: 0,
        reruns_total: 0,
        original_bytes: incident.source.as_ref().map(String::len).unwrap_or(0),
        reduced_bytes: 0,
        reduce_steps: 0,
        reduce_budget_exhausted: false,
        plan_pins: None,
        reduced_source: None,
    };
    // No source, no replay: the incident stays unreproducible by
    // definition (and is suppressed, never reported).
    let Some(source) = incident.source.as_deref() else { return report };
    let Ok(program) = cse_lang::parse(source) else { return report };

    // Reduction: delta-debug the AST while the candidate still replays
    // to the incident's signature.
    let outcome = reduce_with(
        &program,
        ReduceConfig { max_steps: tcfg.max_reduce_steps },
        &mut |candidate| replay(&expected, &vm, candidate, tcfg.retries),
    );
    report.reduce_steps = outcome.steps;
    report.reduce_budget_exhausted = outcome.budget_exhausted;
    let reduced = if outcome.input_interesting { outcome.program } else { program };

    // Compilation-space coordinate: shrink the forced plan while the
    // reduced program still replays.
    if let Some(plan) = vm.plan.clone() {
        let before = plan.per_call.len() + plan.default.is_some() as usize;
        let budget = tcfg.max_reduce_steps.saturating_sub(report.reduce_steps).max(1);
        let shrunk = shrink_plan(&plan, budget, &mut |candidate| {
            let mut candidate_vm = vm.clone();
            candidate_vm.plan = Some(candidate.clone());
            replay(&expected, &candidate_vm, &reduced, tcfg.retries)
        });
        let after = shrunk.per_call.len() + shrunk.default.is_some() as usize;
        report.plan_pins = Some((before, after));
        vm.plan = Some(shrunk);
    }

    let reduced_source = cse_lang::pretty::print(&reduced);
    report.reduced_bytes = reduced_source.len();

    // Flakiness: re-execute the reduced repro `reruns` times serially
    // and `reruns` times across 4 worker threads. The counts (not the
    // order) decide the verdict, so scheduling cannot change it.
    let reruns = tcfg.reruns.max(1);
    let mut matched = (0..reruns).filter(|_| replay_once(&expected, &vm, &reduced)).count();
    let shards = 4usize;
    let counter = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for shard in 0..shards {
            let (counter, vm, expected, source) = (&counter, &vm, &expected, &reduced_source);
            scope.spawn(move || {
                let Ok(local) = cse_lang::parse(source) else { return };
                for _ in (shard..reruns).step_by(shards) {
                    if replay_once(expected, vm, &local) {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });
    matched += counter.load(Ordering::SeqCst);
    report.reruns_total = 2 * reruns;
    report.reruns_matched = matched;
    report.verdict = if matched == report.reruns_total {
        Verdict::Deterministic
    } else if matched > 0 {
        Verdict::Flaky
    } else {
        Verdict::Unreproducible
    };
    if report.verdict != Verdict::Unreproducible {
        report.reduced_source = Some(reduced_source);
    }
    report
}

fn write_reduced_repro(dir: &Path, report: &TriagedReport, source: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("triage_{:016x}.mj", report.signature.stable_hash()));
    let mut body = String::new();
    let _ = writeln!(body, "// triaged repro (reduced)");
    let _ = writeln!(body, "// signature: {}", report.signature);
    let _ = writeln!(body, "// shape: {}", report.signature.shape);
    let _ = writeln!(body, "// verdict: {}", report.verdict);
    let _ = writeln!(body, "// occurrences: {}", report.occurrences);
    body.push_str(source);
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_incident(seed: u64, payload: &str, source: Option<&str>) -> HarnessIncident {
        HarnessIncident {
            phase: IncidentPhase::SeedRun,
            seed,
            rng_seed: seed,
            iteration: None,
            payload: payload.to_string(),
            source: source.map(str::to_string),
        }
    }

    #[test]
    fn signatures_collapse_counter_noise() {
        let a = signature_of(&chaos_incident(
            1,
            "chaos: injected VM panic after 1000 burned ops",
            None,
        ));
        let b = signature_of(&chaos_incident(
            9,
            "chaos: injected VM panic after 52341 burned ops",
            None,
        ));
        assert_eq!(a, b);
        assert_eq!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn signatures_separate_distinct_defects() {
        let a = signature_of(&chaos_incident(1, "index out of bounds: 4", None));
        let b = signature_of(&chaos_incident(1, "attempt to divide by zero", None));
        assert_ne!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn ir_shapes_drop_method_names_but_keep_passes() {
        let a = ir_shape("m3: after gvn: b2[4]: use before def in `add`");
        let b = ir_shape("helper: after gvn: b7[1]: use before def in `add`");
        assert_eq!(a, b);
        let c = ir_shape("m3: after licm: b2[4]: use before def in `add`");
        assert_ne!(a, c);
        assert_eq!(ir_pass("m3: after gvn: b2[4]: use before def"), Some("gvn"));
    }

    /// Shape truncation must respect char boundaries: TV value terms are
    /// depth-bounded with a multi-byte `…`, and a payload whose 160-byte
    /// cut lands inside it must not panic.
    #[test]
    fn shape_truncation_is_char_boundary_safe() {
        for pad in 150..170 {
            let line = format!("{}…tail", "x".repeat(pad));
            let shape = normalize_shape(&line);
            assert!(shape.len() <= 160, "shape must stay bounded");
        }
    }

    /// TV counterexamples embed symbolic temp names (`r12`, `b3`,
    /// `in(b2, r7)`) whose identity is numeric: two hits of the same pass
    /// defect on different programs must share one signature, while a
    /// different pass or a different defect shape must not.
    #[test]
    fn tv_shapes_dedup_across_temp_names_and_programs() {
        let a = tv_shape("T.hot: after gvn: b2: effect 1 diverges: before `putfield#3(r12, in(b2, r7))`, after `putfield#3(r12, r9)`");
        let b = tv_shape("Other.main: after gvn: b5: effect 3 diverges: before `putfield#8(r4, in(b5, r31))`, after `putfield#8(r4, r2)`");
        assert_eq!(a, b, "temp names and counters must normalize away");
        let c = tv_shape("T.hot: after licm: b2: effect 1 diverges: before `putfield#3(r12, in(b2, r7))`, after `putfield#3(r12, r9)`");
        assert_ne!(a, c, "the attributed pass stays significant");
        let d = tv_shape("T.hot: after gvn: b2: effect 1 dropped: `putfield#3(r12, in(b2, r7))`");
        assert_ne!(a, d, "the defect shape stays significant");

        // End-to-end: two TvDefect incidents from different programs and
        // methods collapse into one signature group.
        let incident = |seed: u64, payload: &str| HarnessIncident {
            phase: IncidentPhase::TvDefect,
            seed,
            rng_seed: seed,
            iteration: None,
            payload: payload.to_string(),
            source: None,
        };
        let x = signature_of(&incident(
            1,
            "T.hot: after gvn: b2: effect 1 diverges: before `putfield#3(r12, r7)`, after `putfield#3(r12, r9)`",
        ));
        let y = signature_of(&incident(
            2,
            "U.cold: after gvn: b9: effect 4 diverges: before `putfield#1(r2, r88)`, after `putfield#1(r2, r3)`",
        ));
        assert_eq!(x, y, "repeated TV hits must dedup into one report");
        assert_eq!(x.oracle, OracleKind::TvDefect);
        assert_eq!(x.component, "gvn", "signature component is the blamed pass");
    }

    #[test]
    fn unreproducible_incidents_are_suppressed() {
        // A panic payload that the (panic-free) replay can never match.
        let incident = chaos_incident(
            3,
            "phantom failure that will not reproduce",
            Some("class T { static void main() { println(1); } }"),
        );
        let tcfg = TriageConfig {
            vm: VmConfig::correct(cse_vm::VmKind::HotSpotLike),
            max_reduce_steps: 50,
            reruns: 2,
            retries: 0,
            jobs: 1,
        };
        let report = triage_incidents(std::slice::from_ref(&incident), &tcfg, None, None);
        assert!(report.reports.is_empty(), "unreproducible must never be promoted");
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.suppressed[0].verdict, Verdict::Unreproducible);
    }

    #[test]
    fn duplicate_incidents_collapse_with_counts() {
        let incidents = vec![
            chaos_incident(2, "chaos: injected VM panic after 100 burned ops", None),
            chaos_incident(5, "chaos: injected VM panic after 999 burned ops", None),
            chaos_incident(9, "chaos: injected VM panic after 31337 burned ops", None),
        ];
        let tcfg = TriageConfig {
            vm: VmConfig::correct(cse_vm::VmKind::HotSpotLike),
            max_reduce_steps: 10,
            reruns: 1,
            retries: 0,
            jobs: 1,
        };
        let report = triage_incidents(&incidents, &tcfg, None, None);
        assert_eq!(report.reports.len() + report.suppressed.len(), 1, "one signature group");
        let group = report.suppressed.first().or(report.reports.first()).unwrap();
        assert_eq!(group.occurrences, 3);
        assert_eq!(group.seeds, vec![2, 5, 9]);
        assert_eq!(report.duplicates(), 2);
    }
}
