//! Coverage-guided exploration: a deterministic feedback scheduler
//! over the JIT-behavior coverage maps `cse-vm` records.
//!
//! The campaign runs in synchronized rounds of [`ROUND_LEN`] seeds.
//! Within a round, seeds execute under the existing work-stealing
//! executor; their coverage maps are merged strictly in seed order at
//! the collector (the same seed-ordered barrier every other campaign
//! statistic already uses). At a round boundary the next round's
//! schedule — which generator seeds to run, which JoNM mutation sites
//! to boost, which forced plan to pin — is derived *purely* from the
//! merged [`CoverageState`] plus a counter-derived RNG. Nothing about
//! scheduling depends on worker count, timing, or completion order, so
//! a guided campaign is bit-identical across `jobs ∈ {1,2,4,8}` and
//! across kill/resume (the active round's schedule is persisted in the
//! checkpoint, v6).
//!
//! The live corpus is *minimized*: a mutant's map enters only if it
//! covers a cell the global map does not, and entries whose maps become
//! subsets of a newcomer's are evicted (the newcomer dominates them).

use cse_rng::Rng64;
use cse_vm::CoverageMap;

/// Seeds per synchronized round under `guide`. Small enough that
/// feedback turns around quickly on smoke-sized campaigns, large
/// enough that a round saturates an 8-worker executor.
pub const ROUND_LEN: u64 = 4;

/// Live-corpus size cap; the weakest entry (fewest new cells at
/// admission, oldest first) is evicted past this.
const CORPUS_CAP: usize = 64;

/// The coverage policy, resolved from config or the `CSE_COVERAGE`
/// environment knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoveragePolicy {
    /// Defer to `CSE_COVERAGE` (`off` when unset).
    #[default]
    Auto,
    /// No collection; byte-identical to a pre-coverage campaign.
    Off,
    /// Collect and merge maps; scheduling stays uniform (a campaign
    /// digest-identical to `Off`, plus a coverage report).
    Collect,
    /// Collect and feed the round scheduler.
    Guide,
}

/// The resolved (non-`Auto`) policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverageMode {
    Off,
    Collect,
    Guide,
}

fn coverage_env_default() -> CoverageMode {
    static MODE: std::sync::OnceLock<CoverageMode> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("CSE_COVERAGE").as_deref() {
        Err(_) | Ok("off") | Ok("") => CoverageMode::Off,
        Ok("collect") => CoverageMode::Collect,
        Ok("guide") => CoverageMode::Guide,
        Ok(other) => {
            static WARN: std::sync::Once = std::sync::Once::new();
            let text = format!("CSE_COVERAGE={other} is not off|collect|guide; coverage is off");
            WARN.call_once(|| eprintln!("warning: {text}"));
            CoverageMode::Off
        }
    })
}

impl CoveragePolicy {
    /// Resolves `Auto` against the environment.
    pub fn resolve(self) -> CoverageMode {
        match self {
            CoveragePolicy::Auto => coverage_env_default(),
            CoveragePolicy::Off => CoverageMode::Off,
            CoveragePolicy::Collect => CoverageMode::Collect,
            CoveragePolicy::Guide => CoverageMode::Guide,
        }
    }
}

/// The forced-plan coordinate a scheduled task pins, exploring the
/// plan dimension of the compilation space (§4.3's `-Xjit:count=0`
/// axis) instead of always sampling it implicitly through warmup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanVariant {
    /// No forced plan; tiers emerge from warmup as today.
    Baseline,
    /// Force every method to the profile's top tier before first call.
    ForceTop,
    /// Force every method to tier 1 (distinct from `ForceTop` only on
    /// multi-tier profiles; mapped to `Baseline` on single-tier ones).
    ForceT1,
}

impl PlanVariant {
    pub fn index(self) -> usize {
        match self {
            PlanVariant::Baseline => 0,
            PlanVariant::ForceTop => 1,
            PlanVariant::ForceT1 => 2,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            PlanVariant::Baseline => "baseline",
            PlanVariant::ForceTop => "force_top",
            PlanVariant::ForceT1 => "force_t1",
        }
    }

    pub fn from_name(name: &str) -> Option<PlanVariant> {
        match name {
            "baseline" => Some(PlanVariant::Baseline),
            "force_top" => Some(PlanVariant::ForceTop),
            "force_t1" => Some(PlanVariant::ForceT1),
            _ => None,
        }
    }
}

/// One scheduled campaign slot: which generator seed to expand, which
/// mutation sites to boost, which plan coordinate to pin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Generator seed fed to `cse_fuzz::generate` (a corpus entry's
    /// seed when re-energizing, the slot's natural seed when fresh).
    pub gen_seed: u64,
    /// `Class.method` locations whose JoNM mutation probability is
    /// boosted (the sites that produced this entry's novel coverage).
    pub focus: Vec<String>,
    /// Forced-plan coordinate.
    pub plan: PlanVariant,
}

/// A corpus admission candidate: a mutant run that covered cells its
/// seed's earlier runs had not (produced inside `validate`, admitted —
/// or not — at the seed-ordered merge barrier).
#[derive(Debug, Clone)]
pub struct CorpusCandidate {
    /// The mutant run's full coverage map.
    pub map: CoverageMap,
    /// Mutation locations (`Class.method`) applied to the mutant.
    pub locations: Vec<String>,
}

/// One minimized-corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Generator seed that (with its campaign mutations) reached the
    /// novel cells.
    pub gen_seed: u64,
    /// Mutation locations worth boosting when this entry is re-expanded.
    pub locations: Vec<String>,
    /// The entry's coverage map (for domination checks).
    pub map: CoverageMap,
    /// Cells this entry added to the global map at admission (its
    /// energy; also the eviction priority).
    pub new_cells: u32,
}

/// The merged campaign-wide coverage state: global map, minimized
/// corpus, per-plan-variant productivity counters, and the active
/// round's persisted schedule.
#[derive(Debug, Clone, Default)]
pub struct CoverageState {
    /// Union of every merged run's map.
    pub global: CoverageMap,
    /// Minimized live corpus.
    pub corpus: Vec<CorpusEntry>,
    /// The round the stored `schedule` belongs to.
    pub round: u64,
    /// The active round's schedule, persisted so a kill/resume
    /// mid-round replays identical tasks instead of re-deriving them
    /// from a state the completed prefix already mutated.
    pub schedule: Vec<TaskSpec>,
    /// VM invocations merged so far (novelty-rate denominator).
    pub execs: u64,
    /// Seeds run under each plan variant (by `PlanVariant::index`).
    pub variant_runs: [u64; 3],
    /// New cells contributed under each plan variant.
    pub variant_new: [u64; 3],
}

impl CoverageState {
    /// Covered cells in the global map.
    pub fn cells(&self) -> u32 {
        self.global.count()
    }

    /// A structural fingerprint of the whole state, for determinism
    /// assertions (jobs-invariance, resume-invariance).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fnv::new();
        for &word in self.global.words() {
            fp.u64(word);
        }
        fp.u64(self.corpus.len() as u64);
        for entry in &self.corpus {
            fp.u64(entry.gen_seed);
            fp.u64(u64::from(entry.new_cells));
            fp.u64(entry.locations.len() as u64);
            for location in &entry.locations {
                fp.str(location);
            }
            for &word in entry.map.words() {
                fp.u64(word);
            }
        }
        fp.u64(self.round);
        fp.u64(self.schedule.len() as u64);
        for task in &self.schedule {
            fp.u64(task.gen_seed);
            fp.u64(task.plan.index() as u64);
            fp.u64(task.focus.len() as u64);
            for focus in &task.focus {
                fp.str(focus);
            }
        }
        fp.u64(self.execs);
        for i in 0..3 {
            fp.u64(self.variant_runs[i]);
            fp.u64(self.variant_new[i]);
        }
        fp.finish()
    }

    /// Merges one seed's results into the state. Called only from the
    /// executor's seed-ordered collector, which is what makes the
    /// whole feedback loop worker-count-invariant.
    pub fn absorb(
        &mut self,
        run_coverage: &CoverageMap,
        candidates: Vec<CorpusCandidate>,
        gen_seed: u64,
        plan: PlanVariant,
        execs: u64,
    ) {
        self.variant_runs[plan.index()] += 1;
        self.variant_new[plan.index()] += u64::from(run_coverage.new_bits(&self.global));
        for candidate in candidates {
            let new_cells = candidate.map.new_bits(&self.global);
            if new_cells == 0 {
                continue;
            }
            // Minimization: the newcomer dominates (supersedes) every
            // entry whose map it covers entirely.
            self.corpus.retain(|entry| !entry.map.is_subset(&candidate.map));
            self.global.union(&candidate.map);
            self.corpus.push(CorpusEntry {
                gen_seed,
                locations: candidate.locations,
                map: candidate.map,
                new_cells,
            });
            if self.corpus.len() > CORPUS_CAP {
                let weakest = self
                    .corpus
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, entry)| (entry.new_cells, *i))
                    .map(|(i, _)| i)
                    .expect("corpus is non-empty past the cap");
                self.corpus.remove(weakest);
            }
        }
        self.global.union(run_coverage);
        self.execs += execs;
    }
}

/// Derives round `round`'s schedule (length `len`) from the merged
/// state. Pure: same state + same arguments → same schedule, on any
/// host, at any worker count.
pub fn schedule_round(
    state: &CoverageState,
    first_seed: u64,
    round: u64,
    len: u64,
    multi_tier: bool,
) -> Vec<TaskSpec> {
    let natural = |offset: u64| first_seed + round * ROUND_LEN + offset;
    if round == 0 || state.corpus.is_empty() {
        // Nothing learned yet: uniform exploration, identical to the
        // unguided campaign's slot order.
        return (0..len)
            .map(|i| TaskSpec {
                gen_seed: natural(i),
                focus: Vec::new(),
                plan: PlanVariant::Baseline,
            })
            .collect();
    }
    let mut rng = Rng64::seed_from_u64(
        first_seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xc0de_c0de_5eed_5eed,
    );
    let mut tasks = Vec::with_capacity(len as usize);
    for offset in 0..len {
        // Slot 0 of every guided round always pins the top tier: forced
        // top-tier compilation reaches (method, tier) cells warmup-based
        // sampling rarely does, and keeping one slot deterministic
        // guarantees `guide` strictly grows over `collect` even on
        // smoke-sized budgets.
        let mut plan =
            if offset == 0 { PlanVariant::ForceTop } else { pick_variant(state, &mut rng) };
        if plan == PlanVariant::ForceT1 && !multi_tier {
            plan = PlanVariant::Baseline;
        }
        // Half the slots re-energize the corpus (novelty-weighted),
        // half keep exploring fresh seeds so the corpus cannot starve
        // the frontier.
        let (gen_seed, focus) = if rng.gen_bool(0.5) {
            let entry = pick_entry(state, &mut rng);
            (entry.gen_seed, entry.locations.clone())
        } else {
            (natural(offset), Vec::new())
        };
        tasks.push(TaskSpec { gen_seed, focus, plan });
    }
    tasks
}

/// Novelty-weighted plan-variant choice: weight ≈ new cells per run,
/// in integer arithmetic (floats would invite cross-host drift).
fn pick_variant(state: &CoverageState, rng: &mut Rng64) -> PlanVariant {
    let variants = [PlanVariant::Baseline, PlanVariant::ForceTop, PlanVariant::ForceT1];
    let weights: Vec<u64> = variants
        .iter()
        .map(|v| {
            let i = v.index();
            ((state.variant_new[i] + 1) * 1000 / (state.variant_runs[i] + 1)).max(1)
        })
        .collect();
    let total: u64 = weights.iter().sum();
    let mut roll = rng.gen_range(0..total);
    for (variant, weight) in variants.iter().zip(&weights) {
        if roll < *weight {
            return *variant;
        }
        roll -= weight;
    }
    PlanVariant::Baseline
}

/// Energy-weighted corpus choice: entries that contributed more new
/// cells at admission are re-expanded proportionally more often.
fn pick_entry<'s>(state: &'s CoverageState, rng: &mut Rng64) -> &'s CorpusEntry {
    let total: u64 = state.corpus.iter().map(|e| u64::from(e.new_cells) + 1).sum();
    let mut roll = rng.gen_range(0..total);
    for entry in &state.corpus {
        let weight = u64::from(entry.new_cells) + 1;
        if roll < weight {
            return entry;
        }
        roll -= weight;
    }
    &state.corpus[0]
}

/// Local FNV-1a accumulator (mirrors `cse_vm::profile::Fnv`, which is
/// crate-private there).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn str(&mut self, value: &str) {
        self.u64(value.len() as u64);
        for byte in value.bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with(features: &[u64]) -> CoverageMap {
        let mut map = CoverageMap::new();
        for &feature in features {
            map.insert(feature);
        }
        map
    }

    #[test]
    fn absorb_admits_only_novel_candidates_and_evicts_dominated() {
        let mut state = CoverageState::default();
        let small = map_with(&[1, 2]);
        let big = map_with(&[1, 2, 3]);
        state.absorb(
            &small,
            vec![CorpusCandidate { map: small, locations: vec!["A.m".into()] }],
            7,
            PlanVariant::Baseline,
            10,
        );
        assert_eq!(state.corpus.len(), 1);
        let cells_after_small = state.cells();

        // A duplicate of already-covered cells is rejected.
        state.absorb(
            &small,
            vec![CorpusCandidate { map: small, locations: vec![] }],
            8,
            PlanVariant::Baseline,
            10,
        );
        assert_eq!(state.corpus.len(), 1, "non-novel candidate must not enter");
        assert_eq!(state.cells(), cells_after_small);

        // A dominating candidate evicts the subset entry.
        state.absorb(
            &big,
            vec![CorpusCandidate { map: big, locations: vec!["B.n".into()] }],
            9,
            PlanVariant::ForceTop,
            10,
        );
        assert_eq!(state.corpus.len(), 1, "dominated entry must be evicted");
        assert_eq!(state.corpus[0].gen_seed, 9);
        assert_eq!(state.execs, 30);
        assert_eq!(state.variant_runs, [2, 1, 0]);
    }

    #[test]
    fn schedule_is_deterministic_and_uniform_before_feedback() {
        let state = CoverageState::default();
        let a = schedule_round(&state, 100, 0, ROUND_LEN, true);
        let b = schedule_round(&state, 100, 0, ROUND_LEN, true);
        assert_eq!(a, b);
        for (i, task) in a.iter().enumerate() {
            assert_eq!(task.gen_seed, 100 + i as u64);
            assert_eq!(task.plan, PlanVariant::Baseline);
            assert!(task.focus.is_empty());
        }
    }

    #[test]
    fn guided_rounds_pin_force_top_in_slot_zero_and_respect_tiers() {
        let mut state = CoverageState::default();
        state.absorb(
            &map_with(&[1]),
            vec![CorpusCandidate { map: map_with(&[1]), locations: vec!["A.m".into()] }],
            5,
            PlanVariant::Baseline,
            1,
        );
        let multi = schedule_round(&state, 0, 1, ROUND_LEN, true);
        assert_eq!(multi[0].plan, PlanVariant::ForceTop);
        let single = schedule_round(&state, 0, 1, ROUND_LEN, false);
        assert!(single.iter().all(|t| t.plan != PlanVariant::ForceT1));
        assert_eq!(schedule_round(&state, 0, 1, ROUND_LEN, true), multi, "pure function");
    }

    #[test]
    fn state_fingerprint_tracks_content() {
        let mut a = CoverageState::default();
        let b = CoverageState::default();
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.absorb(&map_with(&[1]), Vec::new(), 0, PlanVariant::Baseline, 1);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
