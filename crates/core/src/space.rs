//! The compilation space modulo LVM — Definitions 3.1–3.3 of the paper.
//!
//! * **Thresholds** (Def 3.1): an LVM's `Z_1 ≤ … ≤ Z_N` split counter
//!   values into `N + 1` temperature bands.
//! * **Temperature** (Def 3.2): a counter `c` has temperature `t_i` iff
//!   `c ∈ [Z_i, Z_{i+1})`; a method's temperature is the max over its
//!   counter set `C_m` (method counter `c_0` + back-edge counters).
//! * **JIT-trace / compilation space** (Def 3.3): the set of
//!   interpreter/JIT interleavings an LVM can produce for a program;
//!   `LVM(P, φ)` — running `P` along a chosen trace — maps onto the VM's
//!   forced plans, and this module enumerates small spaces exhaustively
//!   (the paper's Figure 1).

use cse_bytecode::{BProgram, MethodId};
use cse_vm::{
    ExecMode, ExecutionResult, ForcedPlan, ProgramArtifacts, Tier, TraceEvent, Vm, VmConfig,
};

/// Definition 3.2: the temperature band of a single counter value given
/// the thresholds `Z_1 ≤ … ≤ Z_N`.
///
/// # Examples
///
/// ```
/// use cse_core::space::counter_temperature;
/// use cse_vm::Tier;
///
/// let thresholds = [100, 1000];
/// assert_eq!(counter_temperature(0, &thresholds), Tier(0));
/// assert_eq!(counter_temperature(99, &thresholds), Tier(0));
/// assert_eq!(counter_temperature(100, &thresholds), Tier(1));
/// assert_eq!(counter_temperature(5000, &thresholds), Tier(2));
/// ```
pub fn counter_temperature(counter: u64, thresholds: &[u64]) -> Tier {
    // The thresholds are sorted (Def 3.1: `Z_1 ≤ … ≤ Z_N`), so the band
    // is the partition point — the count of thresholds at or below the
    // counter — rather than a linear scan.
    Tier(thresholds.partition_point(|&z| z <= counter) as u8)
}

/// Definition 3.2: a method's temperature is the maximum over its counter
/// set `C_m = {c_0, c_1, …, c_M}`.
pub fn method_temperature(
    method_counter: u64,
    backedge_counters: &[u64],
    thresholds: &[u64],
) -> Tier {
    let mut temp = counter_temperature(method_counter, thresholds);
    for &c in backedge_counters {
        temp = temp.max(counter_temperature(c, thresholds));
    }
    temp
}

/// The temperature vector `u_m^i` of one method call: how the method's
/// temperature evolved while the call was on stack (e.g. `⟨t0, t1, t0⟩` =
/// entered interpreted, was compiled at level 1, then de-optimized).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TemperatureVector {
    pub method: MethodId,
    /// 0-based invocation index of this call.
    pub invocation: u64,
    pub temps: Vec<Tier>,
}

impl std::fmt::Display for TemperatureVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let temps: Vec<String> = self.temps.iter().map(|t| t.to_string()).collect();
        write!(f, "⟨{}⟩^{}_m{}", temps.join(","), self.invocation + 1, self.method.0)
    }
}

/// A JIT-trace: the sequence of temperature vectors of a run
/// (Definition 3.2's "JIT compilation trace").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JitTrace {
    pub vectors: Vec<TemperatureVector>,
}

impl JitTrace {
    /// Reconstructs the JIT-trace from a run's event log. Requires the run
    /// to have been executed with `record_method_entries` enabled;
    /// otherwise only compile/deopt transitions appear (as length-2
    /// vectors at their triggering invocation).
    pub fn from_events(events: &[TraceEvent]) -> JitTrace {
        let mut vectors: Vec<TemperatureVector> = Vec::new();
        for event in events {
            match event {
                TraceEvent::MethodEntry { method, tier, invocation } => {
                    vectors.push(TemperatureVector {
                        method: *method,
                        invocation: *invocation,
                        temps: vec![*tier],
                    });
                }
                TraceEvent::Compiled { method, tier, invocation, .. } => {
                    // Extend the live vector of this method if the entry was
                    // recorded; otherwise synthesize a transition vector.
                    match vectors.iter_mut().rev().find(|v| v.method == *method) {
                        Some(v) if v.invocation + 1 >= *invocation => v.temps.push(*tier),
                        _ => vectors.push(TemperatureVector {
                            method: *method,
                            invocation: invocation.saturating_sub(1),
                            temps: vec![Tier::INTERP, *tier],
                        }),
                    }
                }
                TraceEvent::Deopt { method, invocation, .. } => {
                    match vectors.iter_mut().rev().find(|v| v.method == *method) {
                        Some(v) if v.invocation + 1 >= *invocation => v.temps.push(Tier::INTERP),
                        _ => vectors.push(TemperatureVector {
                            method: *method,
                            invocation: invocation.saturating_sub(1),
                            temps: vec![Tier::INTERP],
                        }),
                    }
                }
                TraceEvent::GcRun { .. } => {}
            }
        }
        JitTrace { vectors }
    }

    /// A compact single-line rendering (`⟨t1⟩^1_m0 → ⟨t0,t1⟩^10_m2 → …`).
    pub fn render(&self) -> String {
        let parts: Vec<String> = self.vectors.iter().map(|v| v.to_string()).collect();
        parts.join(" → ")
    }

    /// Whether two traces describe the same interleaving.
    pub fn same_as(&self, other: &JitTrace) -> bool {
        self.vectors == other.vectors
    }
}

/// One point of an exhaustively enumerated compilation space: the plan's
/// per-call choices plus the run it produced.
#[derive(Debug)]
pub struct SpacePoint {
    /// For each enumerated call: `true` = compiled, `false` = interpreted.
    pub choices: Vec<bool>,
    pub result: ExecutionResult,
}

/// Warmth-aware plan-space pruning policy for [`enumerate_space_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrunePlans {
    /// Follow the `CSE_PRUNE_PLANS` environment switch (the default:
    /// pruning is on unless `CSE_PRUNE_PLANS=0`/`off`).
    Auto,
    On,
    Off,
}

impl PrunePlans {
    fn enabled(self) -> bool {
        match self {
            PrunePlans::On => true,
            PrunePlans::Off => false,
            PrunePlans::Auto => prune_env_default(),
        }
    }
}

/// The process-wide `CSE_PRUNE_PLANS` default, read once. Tests that need
/// both behaviors pass [`PrunePlans::On`]/[`PrunePlans::Off`] explicitly —
/// mutating the environment would race under the threaded test runner.
fn prune_env_default() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| match std::env::var("CSE_PRUNE_PLANS") {
        Ok(v) if v == "0" || v == "off" => false,
        Ok(v) if v == "1" || v == "on" || v.is_empty() => true,
        Ok(v) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!("[cse-core] unknown CSE_PRUNE_PLANS={v:?}; expected on/off");
            });
            true
        }
        Err(_) => true,
    })
}

/// Exhaustively explores the compilation space of `program` over the given
/// (method, invocation-index) call sites — the paper's Figure 1, where a
/// 4-call program yields a 16-choice space.
///
/// Each subset of `calls` is forced to compiled execution at the top tier
/// of `base_config` while the rest interpret; calls outside the list run
/// interpreted. Returns all `2^n` points in subset-bitmask order.
///
/// Warmth-aware pruning ([`PrunePlans::Auto`], switchable via
/// `CSE_PRUNE_PLANS`) may serve some points from a proven-identical
/// representative run instead of executing them; see
/// [`enumerate_space_with`].
///
/// # Panics
///
/// Panics when more than 20 call sites are requested (the space would
/// exceed a million runs).
pub fn enumerate_space(
    program: &BProgram,
    calls: &[(MethodId, u64)],
    base_config: &VmConfig,
) -> Vec<SpacePoint> {
    enumerate_space_with(program, calls, base_config, PrunePlans::Auto)
}

/// [`enumerate_space`] with an explicit pruning policy.
///
/// # How pruning works
///
/// A single profiling pre-run executes the program with every coordinate
/// forced to interpretation (this is exactly point 0's plan, so the run is
/// reused) and records the exact per-method invocation counts
/// ([`cse_vm::WarmthProfile`]). A coordinate `(m, i)` is *dead* when the
/// reference run invokes `m` fewer than `i + 1` times: no execution of the
/// space ever consults the plan at that coordinate, so the two plans that
/// differ only there are observably identical and share one run.
///
/// # Proof obligation
///
/// Deadness is measured on the all-interpreted run; it transfers to every
/// other plan by *inlining monotonicity*: forcing a method to compiled
/// execution can only remove `call_method` entries (inlined callees are
/// never counted; de-optimization re-enters the frame without re-counting),
/// never add them — so the interpreted run's invocation counts are
/// point-wise maximal over the space, **as long as compiled execution is
/// semantically faithful**. An injected compile-time bug can break
/// faithfulness (a miscompiled branch may steer execution into calls the
/// reference run never made), which is why the pruned and exhaustive
/// enumerations are digest-cross-checked in `cse-bench` and the pruning
/// property tests, and why `CSE_PRUNE_PLANS=off` exists as a kill switch.
/// Pruned points clone their representative's [`ExecutionResult`], so
/// pruned and exhaustive output are bit-identical whenever the obligation
/// holds.
pub fn enumerate_space_with(
    program: &BProgram,
    calls: &[(MethodId, u64)],
    base_config: &VmConfig,
    prune: PrunePlans,
) -> Vec<SpacePoint> {
    assert!(calls.len() <= 20, "space of 2^{} is too large to enumerate", calls.len());
    let top = base_config.top_tier();
    // The `2^n` points all execute the same program and differ only in
    // their forced plan — which is not a compilation input — so one set
    // of shared artifacts serves the whole space: a method force-compiled
    // by many plans is compiled once.
    let cache = ProgramArtifacts::for_program(program);
    let total: u32 = 1 << calls.len();
    let run_mask = |mask: u32| {
        let mut plan = ForcedPlan::all_interpreted();
        for (bit, &(method, invocation)) in calls.iter().enumerate() {
            let compiled = mask & (1 << bit) != 0;
            let mode = if compiled { ExecMode::Compiled(top) } else { ExecMode::Interpret };
            plan.set(method, invocation, mode);
        }
        let mut config = base_config.clone();
        config.plan = Some(plan);
        config.record_method_entries = true;
        (program, config)
    };
    let choices_of =
        |mask: u32| (0..calls.len()).map(|bit| mask & (1 << bit) != 0).collect::<Vec<bool>>();

    if !prune.enabled() {
        return (0..total)
            .map(|mask| {
                let (program, config) = run_mask(mask);
                let result = Vm::run_program_cached(program, config, &cache);
                SpacePoint { choices: choices_of(mask), result }
            })
            .collect();
    }

    // Profiling pre-run = point 0 (every coordinate interpreted).
    let (zero_result, warmth) = {
        let (program, config) = run_mask(0);
        Vm::run_program_warmth_cached(program, config, &cache)
    };
    // Bits whose coordinate the reference run never reaches; plans
    // differing only on these bits are observably identical.
    let mut dead_mask: u32 = 0;
    for (bit, &(method, invocation)) in calls.iter().enumerate() {
        if invocation >= warmth.invocations[method.0 as usize] {
            dead_mask |= 1 << bit;
        }
    }
    let mut canonical: std::collections::HashMap<u32, ExecutionResult> =
        std::collections::HashMap::new();
    canonical.insert(0, zero_result);
    (0..total)
        .map(|mask| {
            let canon = mask & !dead_mask;
            // Canonical masks are visited before any mask they represent
            // (clearing bits never increases the value), so the entry
            // below is vacant only when `mask` is itself canonical.
            let result = canonical.entry(canon).or_insert_with(|| {
                let (program, config) = run_mask(canon);
                Vm::run_program_cached(program, config, &cache)
            });
            SpacePoint { choices: choices_of(mask), result: result.clone() }
        })
        .collect()
}

/// One space point rendered for bit-exact comparison between pruned and
/// exhaustive enumerations.
///
/// `code_cache_hits` is masked out: it measures shared-cache
/// *temperature*, which depends on which earlier points of the sweep
/// already compiled a method — pruning legitimately changes that (a hit
/// is observably identical to a compile by the cache's soundness
/// contract). Everything else — choices, observable, trace events, the
/// remaining stats — must match exactly.
fn render_point(p: &SpacePoint) -> String {
    let mut stats = p.result.stats;
    stats.code_cache_hits = 0;
    format!("{:?} {} {:?} {stats:?}", p.choices, p.result.observable(), p.result.events)
}

/// A stable FNV-1a digest of an enumerated space, for cross-checking
/// that pruned and exhaustive enumerations are bit-identical (see
/// [`enumerate_space_with`]'s proof obligation). Rendering masks
/// `code_cache_hits`; see [`render_point`].
pub fn space_digest(points: &[SpacePoint]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for point in points {
        for byte in render_point(point).bytes().chain([b'\n']) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
    }
    hash
}

/// Cross-validates an enumerated space: `Some((i, j))` returns the first
/// pair of points whose observable behavior differs (a JIT-compiler bug by
/// §3.2's oracle), `None` when the space is consistent.
pub fn find_space_discrepancy(points: &[SpacePoint]) -> Option<(usize, usize)> {
    let first = points.first()?;
    for (j, point) in points.iter().enumerate().skip(1) {
        if point.result.observable() != first.result.observable() {
            return Some((0, j));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_vm::VmKind;

    #[test]
    fn temperature_bands_follow_definition() {
        let z = [10, 100, 1000];
        assert_eq!(counter_temperature(0, &z), Tier(0));
        assert_eq!(counter_temperature(9, &z), Tier(0));
        assert_eq!(counter_temperature(10, &z), Tier(1));
        assert_eq!(counter_temperature(999, &z), Tier(2));
        assert_eq!(counter_temperature(1000, &z), Tier(3));
        assert_eq!(counter_temperature(u64::MAX, &z), Tier(3));
    }

    #[test]
    fn temperature_boundaries() {
        // No thresholds: one band, everything is t0.
        assert_eq!(counter_temperature(0, &[]), Tier(0));
        assert_eq!(counter_temperature(u64::MAX, &[]), Tier(0));
        // Duplicate thresholds collapse bands: Z = [10, 10] jumps t0 → t2.
        assert_eq!(counter_temperature(9, &[10, 10]), Tier(0));
        assert_eq!(counter_temperature(10, &[10, 10]), Tier(2));
        // A zero threshold makes t0 unreachable.
        assert_eq!(counter_temperature(0, &[0, 100]), Tier(1));
        // Extreme thresholds and counters.
        assert_eq!(counter_temperature(u64::MAX - 1, &[u64::MAX]), Tier(0));
        assert_eq!(counter_temperature(u64::MAX, &[u64::MAX]), Tier(1));
    }

    #[test]
    fn partition_point_matches_linear_scan() {
        // The reference implementation of Definition 3.2, kept as an
        // executable spec for the partition-point version.
        fn linear(counter: u64, thresholds: &[u64]) -> Tier {
            let mut temp = 0u8;
            for (i, &z) in thresholds.iter().enumerate() {
                if counter >= z {
                    temp = i as u8 + 1;
                }
            }
            Tier(temp)
        }
        let threshold_sets: [&[u64]; 5] =
            [&[], &[10], &[10, 100, 1000], &[5, 5, 5], &[0, 1, 2, 3, u64::MAX]];
        for thresholds in threshold_sets {
            for c in (0..12).chain([99, 100, 101, 999, 1000, 1001, u64::MAX - 1, u64::MAX]) {
                assert_eq!(
                    counter_temperature(c, thresholds),
                    linear(c, thresholds),
                    "c={c}, Z={thresholds:?}"
                );
            }
        }
    }

    #[test]
    fn temperature_is_total_order() {
        let z = [10, 100];
        for c in 0..200u64 {
            assert!(counter_temperature(c, &z) <= counter_temperature(c + 1, &z));
        }
    }

    #[test]
    fn method_temperature_is_max_of_counters() {
        let z = [10, 100];
        assert_eq!(method_temperature(5, &[3, 7], &z), Tier(0));
        assert_eq!(method_temperature(5, &[50, 7], &z), Tier(1));
        assert_eq!(method_temperature(500, &[3], &z), Tier(2));
    }

    fn figure1_program() -> BProgram {
        // The paper's Figure 1 program: main calls foo, foo calls bar and
        // baz, and the answer is always 3.
        let src = r#"
            class T {
                static int baz() { return 1; }
                static int bar() { return 2; }
                static int foo() { return bar() + baz(); }
                static void main() { println(foo()); }
            }
        "#;
        let program = cse_lang::parse_and_check(src).unwrap();
        cse_bytecode::compile(&program).unwrap()
    }

    #[test]
    fn figure1_space_has_sixteen_consistent_points() {
        let program = figure1_program();
        let calls = vec![
            (program.find_method("T", "main").unwrap(), 0),
            (program.find_method("T", "foo").unwrap(), 0),
            (program.find_method("T", "bar").unwrap(), 0),
            (program.find_method("T", "baz").unwrap(), 0),
        ];
        let config = VmConfig::correct(VmKind::HotSpotLike);
        let points = enumerate_space(&program, &calls, &config);
        assert_eq!(points.len(), 16);
        for point in &points {
            assert_eq!(point.result.output, "3\n", "choice {:?}", point.choices);
        }
        assert_eq!(find_space_discrepancy(&points), None);
    }

    #[test]
    fn space_points_produce_distinct_traces() {
        let program = figure1_program();
        let calls = vec![
            (program.find_method("T", "foo").unwrap(), 0),
            (program.find_method("T", "bar").unwrap(), 0),
        ];
        let config = VmConfig::correct(VmKind::HotSpotLike);
        let points = enumerate_space(&program, &calls, &config);
        let traces: Vec<JitTrace> =
            points.iter().map(|p| JitTrace::from_events(&p.result.events)).collect();
        // All four interleavings must be pairwise distinct JIT-traces.
        for i in 0..traces.len() {
            for j in (i + 1)..traces.len() {
                assert!(!traces[i].same_as(&traces[j]), "points {i} and {j} collide");
            }
        }
    }

    /// Per-point [`render_point`] lines (better assertion diffs than the
    /// [`space_digest`] scalar).
    fn render_points(points: &[SpacePoint]) -> Vec<String> {
        points.iter().map(render_point).collect()
    }

    #[test]
    fn pruned_space_is_bit_identical_to_exhaustive() {
        let program = figure1_program();
        let bar = program.find_method("T", "bar").unwrap();
        let foo = program.find_method("T", "foo").unwrap();
        // (bar, 7) and (foo, 3) are dead: each method is called once.
        let calls = vec![
            (foo, 0),
            (bar, 0),
            (bar, 7),
            (foo, 3),
            (program.find_method("T", "baz").unwrap(), 0),
        ];
        let config = VmConfig::correct(VmKind::HotSpotLike);
        let pruned = enumerate_space_with(&program, &calls, &config, PrunePlans::On);
        let exhaustive = enumerate_space_with(&program, &calls, &config, PrunePlans::Off);
        assert_eq!(pruned.len(), 32);
        assert_eq!(render_points(&pruned), render_points(&exhaustive));
    }

    #[test]
    fn pruning_with_all_live_coordinates_is_identity() {
        let program = figure1_program();
        let calls = vec![
            (program.find_method("T", "foo").unwrap(), 0),
            (program.find_method("T", "bar").unwrap(), 0),
        ];
        let config = VmConfig::correct(VmKind::HotSpotLike);
        let pruned = enumerate_space_with(&program, &calls, &config, PrunePlans::On);
        let exhaustive = enumerate_space_with(&program, &calls, &config, PrunePlans::Off);
        assert_eq!(render_points(&pruned), render_points(&exhaustive));
    }

    #[test]
    fn trace_rendering_is_compact() {
        let trace = JitTrace {
            vectors: vec![TemperatureVector {
                method: MethodId(3),
                invocation: 9,
                temps: vec![Tier(0), Tier(1), Tier(0)],
            }],
        };
        assert_eq!(trace.render(), "⟨t0,t1,t0⟩^10_m3");
    }
}
