//! Fuzzing campaigns: the driver behind the paper's §4 evaluation.
//!
//! A campaign generates seeds (JavaFuzzer analog), validates each with
//! Artemis (Algorithm 1), optionally runs the traditional baseline on the
//! same seeds (the §4.3 comparative study), and aggregates per-bug
//! statistics with ground-truth deduplication (Table 1's
//! Reported/Duplicate split).
//!
//! The driver is crash-isolated: every VM invocation inside validation
//! goes through the panic barrier, contained failures surface as
//! [`HarnessIncident`]s on the result instead of tearing the campaign
//! down, and — when supervision is configured — campaign state is
//! checkpointed so a killed campaign resumes exactly where it stopped
//! and produces a bit-identical [`CampaignResult`] (see
//! [`CampaignResult::digest`]). Crashing and panicking inputs are
//! persisted to a quarantine directory as self-contained repro files.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use cse_vm::supervise::contain_panics;
use cse_vm::{BugId, Component, Symptom, VmConfig, VmKind};

use crate::baseline;
use crate::supervisor::{self, HarnessIncident, IncidentPhase, SupervisorConfig};
use crate::validate::{self, DiscrepancyKind, ValidateConfig};

/// Campaign settings.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    pub vm: VmConfig,
    /// Seeds to generate and validate.
    pub seeds: u64,
    /// First seed value (campaigns are fully deterministic).
    pub first_seed: u64,
    /// Mutants per seed (`MAX_ITER`).
    pub max_iter: usize,
    /// Also run the traditional baseline on every seed (§4.3 study).
    pub run_traditional: bool,
    /// Seed-generator settings.
    pub fuzz: cse_fuzz::FuzzConfig,
    /// Supervision: checkpointing, quarantine, deadline. The default is
    /// fully passive (no checkpoints, no quarantine, no deadline) —
    /// panic containment inside validation is always on.
    pub supervisor: SupervisorConfig,
}

impl CampaignConfig {
    /// Paper-style campaign against a VM profile with its default bug set.
    pub fn for_kind(kind: VmKind, seeds: u64) -> CampaignConfig {
        CampaignConfig {
            vm: VmConfig::for_kind(kind),
            seeds,
            first_seed: 0,
            max_iter: 8,
            run_traditional: false,
            fuzz: cse_fuzz::FuzzConfig::default(),
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// Aggregated evidence for one discovered bug.
#[derive(Debug, Clone)]
pub struct BugEvidence {
    pub bug: BugId,
    pub component: Component,
    pub symptom: Symptom,
    /// How many distinct (seed, mutant) pairs exposed it — occurrences
    /// beyond the first are the paper's "Duplicate" class.
    pub occurrences: usize,
    /// The seed value that first exposed it.
    pub first_seed: u64,
    /// A reproducer: the first mutant source exposing the bug.
    pub reproducer: String,
}

/// Campaign totals. The mutant counters satisfy
/// `mutants = completed + discarded` (see
/// [`crate::validate::ValidationOutcome`] for the per-seed invariant
/// these aggregate).
#[derive(Debug, Clone, Default)]
pub struct CampaignTotals {
    pub seeds: u64,
    pub mutants: u64,
    /// Mutants that ran to a full oracle verdict.
    pub completed: u64,
    pub vm_invocations: u64,
    /// Mutants that ran but yielded no verdict.
    pub discarded: u64,
    /// Seeds whose own run timed out or panicked (no mutants attempted).
    pub seeds_discarded: u64,
    /// Mutants quarantined for failing compilation (mutator bugs).
    pub mutant_compile_failures: u64,
    pub neutrality_violations: u64,
    /// True when the campaign stopped before exhausting its seed range
    /// (deadline expiry or a simulated kill); resume from the checkpoint
    /// to finish it.
    pub partial: bool,
    pub wall: Duration,
}

/// The result of a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignResult {
    /// Ground-truth-deduplicated bugs, keyed by id.
    pub bugs: BTreeMap<BugId, BugEvidence>,
    /// Discrepancies that could not be attributed (counted but unkeyed).
    pub unattributed: usize,
    /// Seeds on which CSE found at least one discrepancy.
    pub cse_seeds: Vec<u64>,
    /// Seeds on which the traditional baseline found a discrepancy.
    pub traditional_seeds: Vec<u64>,
    /// Contained harness failures, in seed order.
    pub incidents: Vec<HarnessIncident>,
    pub totals: CampaignTotals,
}

impl CampaignResult {
    /// Bug count by symptom (Table 1's type split).
    pub fn by_symptom(&self) -> BTreeMap<Symptom, usize> {
        let mut map = BTreeMap::new();
        for evidence in self.bugs.values() {
            *map.entry(evidence.symptom).or_insert(0) += 1;
        }
        map
    }

    /// Crash-bug count by affected component (Table 2).
    pub fn crash_components(&self) -> BTreeMap<Component, usize> {
        let mut map = BTreeMap::new();
        for evidence in self.bugs.values() {
            if evidence.symptom == Symptom::Crash {
                *map.entry(evidence.component).or_insert(0) += 1;
            }
        }
        map
    }

    /// Total duplicate occurrences (re-discoveries of known bugs).
    pub fn duplicates(&self) -> usize {
        self.bugs.values().map(|e| e.occurrences.saturating_sub(1)).sum()
    }

    /// Content digest over every deterministic field (everything except
    /// `totals.wall`). A campaign killed mid-run and resumed from its
    /// checkpoint produces the same digest as an uninterrupted run.
    pub fn digest(&self, config: &CampaignConfig) -> u64 {
        let canonical = supervisor::encode(config, 0, self, 0);
        // FNV-1a, 64-bit.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in canonical.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Runs a campaign (resuming from the supervisor's checkpoint when one
/// exists).
pub fn run_campaign(config: &CampaignConfig) -> CampaignResult {
    let start = Instant::now();
    let sup = &config.supervisor;
    let mut result = CampaignResult::default();
    // Seed *offset* of the next seed to validate (0-based).
    let mut next: u64 = 0;
    if let Some(path) = &sup.checkpoint_path {
        match supervisor::load_checkpoint(path, config) {
            Ok(Some(checkpoint)) => {
                next = checkpoint.next_seed.min(config.seeds);
                result = checkpoint.result;
            }
            Ok(None) => {}
            Err(e) => {
                // A torn or foreign checkpoint: starting over is always
                // sound (campaigns are deterministic); resuming into the
                // wrong campaign never is.
                eprintln!("warning: ignoring unusable checkpoint {}: {e}", path.display());
            }
        }
    }
    // Wall time accumulated by previous (killed) invocations.
    let prior_wall = result.totals.wall;
    let validate_config = ValidateConfig {
        max_iter: config.max_iter,
        vm: config.vm.clone(),
        params: crate::synth::SynthParams::for_kind(config.vm.kind),
        verify_neutrality: true,
    };
    let mut processed_this_run: u64 = 0;
    let mut stopped_early = false;
    while next < config.seeds {
        if let Some(deadline) = sup.deadline {
            if start.elapsed() >= deadline {
                stopped_early = true;
                break;
            }
        }
        if let Some(stop) = sup.stop_after_seeds {
            if processed_this_run >= stop {
                stopped_early = true;
                break;
            }
        }
        let seed_value = config.first_seed + next;
        let seed_program = cse_fuzz::generate(seed_value, &config.fuzz);
        let mut seed_vconfig = validate_config.clone();
        if let Some(chaos) = sup.chaos {
            if chaos.panic_on_seed == seed_value {
                seed_vconfig.vm.chaos_panic_at_ops = Some(chaos.after_ops);
            }
        }
        let mut outcome = validate::validate(&seed_program, &seed_vconfig, seed_value);
        outcome.check_invariants();
        result.totals.seeds += 1;
        result.totals.mutants += outcome.mutants_run as u64;
        result.totals.completed += outcome.completed as u64;
        result.totals.vm_invocations += outcome.vm_invocations as u64;
        result.totals.discarded += outcome.discarded as u64;
        result.totals.seeds_discarded += outcome.seed_discarded as u64;
        result.totals.mutant_compile_failures += outcome.mutant_compile_failures as u64;
        result.totals.neutrality_violations += outcome.neutrality_violations as u64;
        for incident in std::mem::take(&mut outcome.incidents) {
            if let Some(dir) = &sup.quarantine_dir {
                if let Err(e) = supervisor::quarantine_incident(dir, &incident, &seed_vconfig.vm) {
                    eprintln!("warning: quarantine write failed: {e}");
                }
            }
            result.incidents.push(incident);
        }
        if outcome.found_bug() {
            result.cse_seeds.push(seed_value);
        }
        for discrepancy in outcome.discrepancies {
            if let DiscrepancyKind::Crash(info) = &discrepancy.kind {
                if let Some(dir) = &sup.quarantine_dir {
                    if let Err(e) = supervisor::quarantine_crash(
                        dir,
                        seed_value,
                        seed_value,
                        discrepancy.culprit,
                        info,
                        &discrepancy.mutant_source,
                        &config.vm,
                    ) {
                        eprintln!("warning: quarantine write failed: {e}");
                    }
                }
            }
            match discrepancy.culprit {
                Some(bug) => {
                    let evidence = result.bugs.entry(bug).or_insert_with(|| BugEvidence {
                        bug,
                        component: bug.component(),
                        symptom: bug.symptom(),
                        occurrences: 0,
                        first_seed: seed_value,
                        reproducer: discrepancy.mutant_source.clone(),
                    });
                    evidence.occurrences += 1;
                    // Trust the *observed* symptom over the catalog when a
                    // bug manifests differently (e.g. a mis-compilation
                    // that crashes downstream).
                    if let DiscrepancyKind::Crash(info) = &discrepancy.kind {
                        evidence.symptom = Symptom::Crash;
                        evidence.component = info.component;
                    }
                }
                None => result.unattributed += 1,
            }
        }
        if config.run_traditional {
            match contain_panics(|| baseline::traditional(&seed_program, &config.vm)) {
                Ok(b) => {
                    result.totals.vm_invocations += b.vm_invocations as u64;
                    if b.discrepancy {
                        result.traditional_seeds.push(seed_value);
                    }
                }
                Err(panic) => {
                    result.incidents.push(HarnessIncident {
                        phase: IncidentPhase::Baseline,
                        seed: seed_value,
                        rng_seed: seed_value,
                        iteration: None,
                        payload: panic.payload,
                        source: Some(cse_lang::pretty::print(&seed_program)),
                    });
                }
            }
        }
        next += 1;
        processed_this_run += 1;
        if let Some(path) = &sup.checkpoint_path {
            if processed_this_run.is_multiple_of(sup.cadence()) {
                result.totals.partial = next < config.seeds;
                result.totals.wall = prior_wall + start.elapsed();
                if let Err(e) = supervisor::save_checkpoint(path, config, next, &result) {
                    eprintln!("warning: checkpoint write failed: {e}");
                }
            }
        }
    }
    result.totals.partial = stopped_early && next < config.seeds;
    result.totals.wall = prior_wall + start.elapsed();
    if let Some(path) = &sup.checkpoint_path {
        if let Err(e) = supervisor::save_checkpoint(path, config, next, &result) {
            eprintln!("warning: checkpoint write failed: {e}");
        }
    }
    result
}
