//! Fuzzing campaigns: the driver behind the paper's §4 evaluation.
//!
//! A campaign generates seeds (JavaFuzzer analog), validates each with
//! Artemis (Algorithm 1), optionally runs the traditional baseline on the
//! same seeds (the §4.3 comparative study), and aggregates per-bug
//! statistics with ground-truth deduplication (Table 1's
//! Reported/Duplicate split).
//!
//! The driver is crash-isolated: every VM invocation inside validation
//! goes through the panic barrier, contained failures surface as
//! [`HarnessIncident`]s on the result instead of tearing the campaign
//! down, and — when supervision is configured — campaign state is
//! checkpointed so a killed campaign resumes exactly where it stopped
//! and produces a bit-identical [`CampaignResult`] (see
//! [`CampaignResult::digest`]). Crashing and panicking inputs are
//! persisted to a quarantine directory as self-contained repro files.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use cse_vm::{BugId, Component, Symptom, VmConfig, VmKind};

use crate::coverage::{self, CoverageMode, CoveragePolicy, CoverageState};
use crate::executor;
use crate::memo::ExecCachePolicy;
use crate::supervisor::{self, HarnessIncident, IncidentPhase, SupervisorConfig};
use crate::triage::TriageConfig;
use crate::validate::ValidateConfig;

/// Campaign settings.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    pub vm: VmConfig,
    /// Seeds to generate and validate.
    pub seeds: u64,
    /// First seed value (campaigns are fully deterministic).
    pub first_seed: u64,
    /// Mutants per seed (`MAX_ITER`).
    pub max_iter: usize,
    /// Also run the traditional baseline on every seed (§4.3 study).
    pub run_traditional: bool,
    /// Seed-generator settings.
    pub fuzz: cse_fuzz::FuzzConfig,
    /// Supervision: checkpointing, quarantine, deadline. The default is
    /// fully passive (no checkpoints, no quarantine, no deadline) —
    /// panic containment inside validation is always on.
    pub supervisor: SupervisorConfig,
    /// Worker threads for seed processing. `1` (the default) runs the
    /// serial reference loop; `N > 1` shards seeds across `N` workers
    /// with a deterministic in-order merge, producing a **bit-identical**
    /// [`CampaignResult::digest`] for every value (see
    /// [`crate::executor`]). Deliberately not part of the checkpoint
    /// identity: a campaign checkpointed at one `jobs` setting resumes
    /// under any other.
    pub jobs: usize,
    /// When set, every quarantined incident is triaged after the
    /// campaign's seed range is exhausted: reduced, deduplicated by bug
    /// signature, and re-executed for a flakiness verdict (see
    /// [`crate::triage`]). The triage counters join the campaign digest;
    /// the full report rides on [`CampaignResult::triage`].
    pub triage: Option<TriageConfig>,
    /// Execution-memoization policy (see [`crate::memo`]). `Auto` (the
    /// default) follows the `CSE_EXEC_CACHE` environment knob. Like
    /// `jobs`, deliberately not part of the checkpoint identity: the
    /// memo is an execution strategy, not a campaign input, and the
    /// result digest is bit-identical at every setting.
    pub exec_cache: ExecCachePolicy,
    /// JIT-behavior coverage policy (see [`crate::coverage`]). `Auto`
    /// (the default) follows the `CSE_COVERAGE` environment knob; `Off`
    /// reproduces the pre-coverage campaign byte-for-byte, `Collect`
    /// additionally merges coverage maps (digest-identical to `Off`),
    /// `Guide` feeds the merged map back into round scheduling.
    pub coverage: CoveragePolicy,
}

impl CampaignConfig {
    /// Paper-style campaign against a VM profile with its default bug set.
    pub fn for_kind(kind: VmKind, seeds: u64) -> CampaignConfig {
        CampaignConfig {
            vm: VmConfig::for_kind(kind),
            seeds,
            first_seed: 0,
            max_iter: 8,
            run_traditional: false,
            fuzz: cse_fuzz::FuzzConfig::default(),
            supervisor: SupervisorConfig::default(),
            jobs: 1,
            triage: None,
            exec_cache: ExecCachePolicy::Auto,
            coverage: CoveragePolicy::Auto,
        }
    }

    /// Same campaign, processed by `jobs` worker threads.
    pub fn with_jobs(mut self, jobs: usize) -> CampaignConfig {
        self.jobs = jobs.max(1);
        self
    }

    /// Same campaign, with an explicit execution-memoization policy
    /// (tests use this instead of mutating `CSE_EXEC_CACHE`).
    pub fn with_exec_cache(mut self, policy: ExecCachePolicy) -> CampaignConfig {
        self.exec_cache = policy;
        self
    }

    /// Same campaign, with an explicit coverage policy (tests use this
    /// instead of mutating `CSE_COVERAGE`).
    pub fn with_coverage(mut self, policy: CoveragePolicy) -> CampaignConfig {
        self.coverage = policy;
        self
    }

    /// Same campaign, with end-of-campaign incident triage enabled
    /// (settings derived from the campaign itself; see
    /// [`TriageConfig::for_campaign`]).
    pub fn with_triage(mut self) -> CampaignConfig {
        self.triage = Some(TriageConfig::for_campaign(&self));
        self
    }
}

/// Aggregated evidence for one discovered bug.
#[derive(Debug, Clone)]
pub struct BugEvidence {
    pub bug: BugId,
    pub component: Component,
    pub symptom: Symptom,
    /// How many distinct (seed, mutant) pairs exposed it — occurrences
    /// beyond the first are the paper's "Duplicate" class.
    pub occurrences: usize,
    /// The seed value that first exposed it.
    pub first_seed: u64,
    /// A reproducer: the first mutant source exposing the bug.
    pub reproducer: String,
}

/// Campaign totals. The mutant counters satisfy
/// `mutants = completed + discarded` (see
/// [`crate::validate::ValidationOutcome`] for the per-seed invariant
/// these aggregate).
#[derive(Debug, Clone, Default)]
pub struct CampaignTotals {
    pub seeds: u64,
    pub mutants: u64,
    /// Mutants that ran to a full oracle verdict.
    pub completed: u64,
    pub vm_invocations: u64,
    /// Mutants that ran but yielded no verdict.
    pub discarded: u64,
    /// Seeds whose own run timed out or panicked (no mutants attempted).
    pub seeds_discarded: u64,
    /// Mutants quarantined for failing compilation (mutator bugs).
    pub mutant_compile_failures: u64,
    pub neutrality_violations: u64,
    /// Defects flagged by the static IR verifier (`cse_vm::jit::verify`)
    /// across seed and mutant runs; 0 unless `vm.verify_ir` enables the
    /// third oracle.
    pub ir_verify_defects: u64,
    /// Refinement violations flagged by the translation validator
    /// (`cse_vm::jit::tv`) across seed and mutant runs; 0 unless `vm.tv`
    /// enables the per-pass semantic oracle. Persisted in checkpoints but
    /// masked out of [`CampaignResult::digest`] (with the matching
    /// `TvDefect` incidents), so digests are bit-identical across
    /// `CSE_TV` settings — the validator observes campaigns, it never
    /// changes what they find.
    pub tv_defects: u64,
    /// Triage: promoted reports (deterministic or flaky), 0 unless
    /// `CampaignConfig::triage` is set. Part of the campaign digest —
    /// triage verdicts are deterministic, so these counters are
    /// bit-identical across machines and worker counts.
    pub triage_reports: u64,
    /// Triage: duplicate incidents collapsed into existing signatures.
    pub triage_duplicates: u64,
    /// Triage: promoted reports whose repro was classified flaky.
    pub triage_flaky: u64,
    /// Triage: signature groups that never re-reproduced (suppressed,
    /// never promoted to reports).
    pub triage_unreproducible: u64,
    /// Execution-memo hits: VM runs served from the content-addressed
    /// execution cache instead of being executed (see [`crate::memo`]).
    /// **Volatile**: cache effectiveness depends on the memo policy, so
    /// these four counters are persisted in checkpoints but zeroed out
    /// of [`CampaignResult::digest`] — the digest stays bit-identical
    /// across `CSE_EXEC_CACHE` settings and worker counts.
    pub exec_cache_hits: u64,
    /// Execution-memo lookups that missed and executed for real.
    pub exec_cache_misses: u64,
    /// Compiled-code/decode artifact cache hits across the campaign's
    /// per-worker [`cse_vm::SharedArtifactCache`] shards. Volatile, like
    /// the memo counters.
    pub artifact_cache_hits: u64,
    /// Artifact-cache misses (units compiled / programs decoded fresh).
    pub artifact_cache_misses: u64,
    /// True when the campaign stopped before exhausting its seed range
    /// (deadline expiry or a simulated kill); resume from the checkpoint
    /// to finish it.
    pub partial: bool,
    pub wall: Duration,
}

/// The result of a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignResult {
    /// Ground-truth-deduplicated bugs, keyed by id.
    pub bugs: BTreeMap<BugId, BugEvidence>,
    /// Discrepancies that could not be attributed (counted but unkeyed).
    pub unattributed: usize,
    /// Seeds on which CSE found at least one discrepancy.
    pub cse_seeds: Vec<u64>,
    /// Seeds on which the traditional baseline found a discrepancy.
    pub traditional_seeds: Vec<u64>,
    /// Contained harness failures, in seed order.
    pub incidents: Vec<HarnessIncident>,
    /// Incident triage report (reduction, dedup, flakiness), present
    /// when [`CampaignConfig::triage`] is set and the campaign finished
    /// its seed range. Recomputed deterministically on resume rather
    /// than checkpointed; the triage counters in [`CampaignTotals`]
    /// carry its identity into the digest.
    pub triage: Option<crate::triage::TriageReport>,
    /// Merged coverage state, present when the campaign ran under
    /// `CSE_COVERAGE=collect|guide`. Persisted in checkpoints (format
    /// v6) but masked out of [`CampaignResult::digest`]: under
    /// `collect` coverage only observes, so the digest stays identical
    /// to `off`; under `guide` the schedule it drives already shapes
    /// every digested field.
    pub coverage: Option<CoverageState>,
    pub totals: CampaignTotals,
}

impl CampaignResult {
    /// Bug count by symptom (Table 1's type split).
    pub fn by_symptom(&self) -> BTreeMap<Symptom, usize> {
        let mut map = BTreeMap::new();
        for evidence in self.bugs.values() {
            *map.entry(evidence.symptom).or_insert(0) += 1;
        }
        map
    }

    /// Crash-bug count by affected component (Table 2).
    pub fn crash_components(&self) -> BTreeMap<Component, usize> {
        let mut map = BTreeMap::new();
        for evidence in self.bugs.values() {
            if evidence.symptom == Symptom::Crash {
                *map.entry(evidence.component).or_insert(0) += 1;
            }
        }
        map
    }

    /// Total duplicate occurrences (re-discoveries of known bugs).
    pub fn duplicates(&self) -> usize {
        self.bugs.values().map(|e| e.occurrences.saturating_sub(1)).sum()
    }

    /// Content digest over every deterministic field (everything except
    /// `totals.wall`, the four cache counters — which depend on the
    /// memoization policy and worker warm-up rather than on what the
    /// campaign observed — and the translation-validator observations,
    /// which depend on the `CSE_TV` mode). A campaign killed mid-run and
    /// resumed from its checkpoint produces the same digest as an
    /// uninterrupted run.
    pub fn digest(&self, config: &CampaignConfig) -> u64 {
        let mut stable = self.clone();
        stable.totals.exec_cache_hits = 0;
        stable.totals.exec_cache_misses = 0;
        stable.totals.artifact_cache_hits = 0;
        stable.totals.artifact_cache_misses = 0;
        stable.totals.tv_defects = 0;
        stable.incidents.retain(|i| i.phase != IncidentPhase::TvDefect);
        stable.coverage = None;
        let canonical = supervisor::encode(config, 0, &stable, 0);
        // FNV-1a, 64-bit.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in canonical.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Runs a campaign (resuming from the supervisor's checkpoint when one
/// exists).
///
/// `config.jobs` selects the execution engine — the serial reference
/// loop or the deterministic parallel executor (see [`crate::executor`]);
/// the result (and its digest) is identical either way.
pub fn run_campaign(config: &CampaignConfig) -> CampaignResult {
    let start = Instant::now();
    let sup = &config.supervisor;
    let mode = config.coverage.resolve();
    let mut result = CampaignResult::default();
    // Seed *offset* of the next seed to validate (0-based).
    let mut next: u64 = 0;
    if let Some(path) = &sup.checkpoint_path {
        match supervisor::load_checkpoint(path, config) {
            Ok(Some(checkpoint)) => {
                // A checkpoint written under a different coverage mode
                // cannot be resumed deterministically (the schedules
                // would diverge); restart instead, like a foreign
                // checkpoint.
                if checkpoint.result.coverage.is_some() != (mode != CoverageMode::Off) {
                    eprintln!(
                        "warning: ignoring checkpoint {}: coverage mode changed",
                        path.display()
                    );
                } else {
                    next = checkpoint.next_seed.min(config.seeds);
                    result = checkpoint.result;
                }
            }
            Ok(None) => {}
            Err(e) => {
                // A torn or foreign checkpoint: starting over is always
                // sound (campaigns are deterministic); resuming into the
                // wrong campaign never is.
                eprintln!("warning: ignoring unusable checkpoint {}: {e}", path.display());
            }
        }
    }
    if mode != CoverageMode::Off && result.coverage.is_none() {
        result.coverage = Some(CoverageState::default());
    }
    // Wall time accumulated by previous (killed) invocations.
    let prior_wall = result.totals.wall;
    let mut vm = config.vm.clone();
    vm.coverage = mode != CoverageMode::Off;
    let validate_config = ValidateConfig {
        max_iter: config.max_iter,
        vm,
        params: crate::synth::SynthParams::for_kind(config.vm.kind),
        verify_neutrality: true,
        exec_cache: config.exec_cache,
    };
    // Seeds processed by this invocation (the `stop_after_seeds` budget
    // spans rounds).
    let mut processed: u64 = 0;
    let mut result = if mode != CoverageMode::Guide {
        // Unguided: one pass over the whole remaining range.
        let ctx = executor::ExecContext { config, validate_config, start, prior_wall, round: None };
        executor::run(&ctx, result, next, config.seeds, &mut processed)
    } else {
        // Guided: synchronized rounds of `ROUND_LEN` seeds. Each round's
        // schedule is derived purely from the merged coverage state at
        // the round barrier (and persisted inside it, so a kill/resume
        // mid-round replays the identical schedule).
        loop {
            if next >= config.seeds {
                break result;
            }
            if sup.stop_after_seeds.is_some_and(|stop| processed >= stop) {
                break result;
            }
            if sup.deadline.is_some_and(|deadline| start.elapsed() >= deadline) {
                break result;
            }
            let round = next / coverage::ROUND_LEN;
            let round_start = round * coverage::ROUND_LEN;
            let round_end = (round_start + coverage::ROUND_LEN).min(config.seeds);
            let state = result.coverage.as_mut().expect("guided campaigns carry coverage state");
            let at_barrier = next == round_start;
            let stale =
                state.round != round || state.schedule.len() as u64 != round_end - round_start;
            if at_barrier || stale {
                let schedule = coverage::schedule_round(
                    &*state,
                    config.first_seed,
                    round,
                    round_end - round_start,
                    config.vm.tiers.len() >= 2,
                );
                state.round = round;
                state.schedule = schedule;
            }
            let round_tasks =
                executor::RoundTasks { base: round_start, tasks: state.schedule.clone() };
            let ctx = executor::ExecContext {
                config,
                validate_config: validate_config.clone(),
                start,
                prior_wall,
                round: Some(round_tasks),
            };
            result = executor::run(&ctx, result, next, round_end, &mut processed);
            // The executor merges a contiguous prefix from offset 0, so
            // the totals are also the resumption point.
            let reached = result.totals.seeds;
            debug_assert!(reached >= next && reached <= round_end);
            if reached < round_end {
                // Stopped mid-round (budget or deadline); the schedule
                // stays persisted in the state for the resume.
                break result;
            }
            next = reached;
        }
    };
    if result.totals.seeds < config.seeds {
        result.totals.partial = true;
    }
    // End-of-campaign triage: only once the seed range is exhausted (a
    // partial campaign triages after its resumed run finishes instead).
    // The report is recomputed — deterministically — on every completed
    // run, including a resume of an already-finished campaign, so the
    // counters and digest never depend on when the campaign was killed.
    if let (Some(tcfg), false) = (&config.triage, result.totals.partial) {
        let report = crate::triage::triage_campaign(config, tcfg, &result.incidents);
        result.totals.triage_reports = report.reports.len() as u64;
        result.totals.triage_duplicates = report.duplicates() as u64;
        result.totals.triage_flaky = report.flaky() as u64;
        result.totals.triage_unreproducible = report.suppressed.len() as u64;
        result.triage = Some(report);
        if let Some(path) = &sup.checkpoint_path {
            // Fold the triage counters into the final checkpoint so a
            // resume of the finished campaign starts from a state that
            // round-trips to the same digest.
            if let Err(e) = supervisor::save_checkpoint(path, config, config.seeds, &result) {
                eprintln!("warning: final checkpoint write failed: {e}");
            }
        }
    }
    result
}
