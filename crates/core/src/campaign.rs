//! Fuzzing campaigns: the driver behind the paper's §4 evaluation.
//!
//! A campaign generates seeds (JavaFuzzer analog), validates each with
//! Artemis (Algorithm 1), optionally runs the traditional baseline on the
//! same seeds (the §4.3 comparative study), and aggregates per-bug
//! statistics with ground-truth deduplication (Table 1's
//! Reported/Duplicate split).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use cse_vm::{BugId, Component, Symptom, VmConfig, VmKind};

use crate::baseline;
use crate::validate::{self, DiscrepancyKind, ValidateConfig};

/// Campaign settings.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    pub vm: VmConfig,
    /// Seeds to generate and validate.
    pub seeds: u64,
    /// First seed value (campaigns are fully deterministic).
    pub first_seed: u64,
    /// Mutants per seed (`MAX_ITER`).
    pub max_iter: usize,
    /// Also run the traditional baseline on every seed (§4.3 study).
    pub run_traditional: bool,
    /// Seed-generator settings.
    pub fuzz: cse_fuzz::FuzzConfig,
}

impl CampaignConfig {
    /// Paper-style campaign against a VM profile with its default bug set.
    pub fn for_kind(kind: VmKind, seeds: u64) -> CampaignConfig {
        CampaignConfig {
            vm: VmConfig::for_kind(kind),
            seeds,
            first_seed: 0,
            max_iter: 8,
            run_traditional: false,
            fuzz: cse_fuzz::FuzzConfig::default(),
        }
    }
}

/// Aggregated evidence for one discovered bug.
#[derive(Debug, Clone)]
pub struct BugEvidence {
    pub bug: BugId,
    pub component: Component,
    pub symptom: Symptom,
    /// How many distinct (seed, mutant) pairs exposed it — occurrences
    /// beyond the first are the paper's "Duplicate" class.
    pub occurrences: usize,
    /// The seed value that first exposed it.
    pub first_seed: u64,
    /// A reproducer: the first mutant source exposing the bug.
    pub reproducer: String,
}

/// Campaign totals.
#[derive(Debug, Clone, Default)]
pub struct CampaignTotals {
    pub seeds: u64,
    pub mutants: u64,
    pub vm_invocations: u64,
    pub discarded: u64,
    pub neutrality_violations: u64,
    pub wall: Duration,
}

/// The result of a campaign.
#[derive(Debug, Default)]
pub struct CampaignResult {
    /// Ground-truth-deduplicated bugs, keyed by id.
    pub bugs: BTreeMap<BugId, BugEvidence>,
    /// Discrepancies that could not be attributed (counted but unkeyed).
    pub unattributed: usize,
    /// Seeds on which CSE found at least one discrepancy.
    pub cse_seeds: Vec<u64>,
    /// Seeds on which the traditional baseline found a discrepancy.
    pub traditional_seeds: Vec<u64>,
    pub totals: CampaignTotals,
}

impl CampaignResult {
    /// Bug count by symptom (Table 1's type split).
    pub fn by_symptom(&self) -> BTreeMap<Symptom, usize> {
        let mut map = BTreeMap::new();
        for evidence in self.bugs.values() {
            *map.entry(evidence.symptom).or_insert(0) += 1;
        }
        map
    }

    /// Crash-bug count by affected component (Table 2).
    pub fn crash_components(&self) -> BTreeMap<Component, usize> {
        let mut map = BTreeMap::new();
        for evidence in self.bugs.values() {
            if evidence.symptom == Symptom::Crash {
                *map.entry(evidence.component).or_insert(0) += 1;
            }
        }
        map
    }

    /// Total duplicate occurrences (re-discoveries of known bugs).
    pub fn duplicates(&self) -> usize {
        self.bugs.values().map(|e| e.occurrences.saturating_sub(1)).sum()
    }
}

/// Runs a campaign.
pub fn run_campaign(config: &CampaignConfig) -> CampaignResult {
    let start = Instant::now();
    let mut result = CampaignResult::default();
    let validate_config = ValidateConfig {
        max_iter: config.max_iter,
        vm: config.vm.clone(),
        params: crate::synth::SynthParams::for_kind(config.vm.kind),
        verify_neutrality: true,
    };
    for i in 0..config.seeds {
        let seed_value = config.first_seed + i;
        let seed_program = cse_fuzz::generate(seed_value, &config.fuzz);
        let outcome = validate::validate(&seed_program, &validate_config, seed_value);
        result.totals.seeds += 1;
        result.totals.mutants += outcome.mutants_run as u64;
        result.totals.vm_invocations += outcome.vm_invocations as u64;
        result.totals.discarded += outcome.discarded as u64;
        result.totals.neutrality_violations += outcome.neutrality_violations as u64;
        if outcome.found_bug() {
            result.cse_seeds.push(seed_value);
        }
        for discrepancy in outcome.discrepancies {
            match discrepancy.culprit {
                Some(bug) => {
                    let evidence = result.bugs.entry(bug).or_insert_with(|| BugEvidence {
                        bug,
                        component: bug.component(),
                        symptom: bug.symptom(),
                        occurrences: 0,
                        first_seed: seed_value,
                        reproducer: discrepancy.mutant_source.clone(),
                    });
                    evidence.occurrences += 1;
                    // Trust the *observed* symptom over the catalog when a
                    // bug manifests differently (e.g. a mis-compilation
                    // that crashes downstream).
                    if let DiscrepancyKind::Crash(info) = &discrepancy.kind {
                        evidence.symptom = Symptom::Crash;
                        evidence.component = info.component;
                    }
                }
                None => result.unattributed += 1,
            }
        }
        if config.run_traditional {
            let b = baseline::traditional(&seed_program, &config.vm);
            result.totals.vm_invocations += b.vm_invocations as u64;
            if b.discrepancy {
                result.traditional_seeds.push(seed_value);
            }
        }
    }
    result.totals.wall = start.elapsed();
    result
}
