//! Loop, expression, and statement synthesis — the paper's Algorithm 2.
//!
//! `SynExpr` fills expression holes: primitive-alike types get a random
//! value or a reused in-scope variable (recorded in `V'` for
//! backup/restore), array types get a freshly built array with
//! recursively synthesized elements, reference types get `new T()`.
//! `SynStmts` instantiates a statement skeleton from the corpus (fresh
//! local names, holes filled) or a writer template targeting a reused
//! variable. `wrap_loop` assembles the final synthesized loop `L` with
//! the neutrality armor of §3.4: backups of `V'`, output muting, a
//! catch-all around the loop, restores afterwards.
//!
//! Two deliberate deviations from the paper's Figure 3 shape, both fixing
//! neutrality holes the paper glosses over (documented in `DESIGN.md`):
//! the loop bounds `min(MIN, <expr>)` / `max(MAX, <expr>)` are hoisted
//! into temporaries evaluated once (re-evaluating a bound that reads a
//! variable the body writes could loop forever), and restores run even on
//! exceptional exit because the catch-all sits *inside* the
//! backup/restore bracket.

use cse_lang::ast::*;
use cse_lang::scope::VarInfo;
use cse_lang::ty::Ty;
use cse_rng::Rng64;
use cse_vm::VmKind;

use crate::skeleton;

/// Synthesis hyper-parameters (the paper's `MIN`, `MAX`, `STEP`, §4.1).
#[derive(Debug, Clone)]
pub struct SynthParams {
    /// Lower loop bound `MIN`.
    pub min: i32,
    /// Upper loop bound `MAX`; chosen per VM so synthesized loops cross
    /// the JIT and OSR thresholds (paper: 5,000/10,000 on HotSpot/OpenJ9,
    /// 20,000/50,000 on ART, scaled to this VM's thresholds).
    pub max: i32,
    /// `STEP` is drawn uniformly from `1..=step_max` (paper: 1..10).
    pub step_max: i32,
    /// Per-method mutation probability (Algorithm 1's `FlipCoin`).
    pub mutation_prob: f64,
}

impl SynthParams {
    /// Parameters tuned to a VM profile's thresholds (§4.1).
    pub fn for_kind(kind: VmKind) -> SynthParams {
        match kind {
            VmKind::HotSpotLike => {
                SynthParams { min: 5000, max: 9000, step_max: 10, mutation_prob: 0.5 }
            }
            VmKind::OpenJ9Like => {
                SynthParams { min: 4500, max: 8500, step_max: 10, mutation_prob: 0.5 }
            }
            VmKind::ArtLike => {
                SynthParams { min: 3500, max: 7000, step_max: 10, mutation_prob: 0.5 }
            }
        }
    }
}

/// The synthesis engine: RNG + fresh-name counter + params.
pub struct Synth<'a> {
    pub rng: &'a mut Rng64,
    pub params: &'a SynthParams,
    pub counter: &'a mut u64,
}

impl Synth<'_> {
    fn fresh(&mut self, tag: &str) -> String {
        *self.counter += 1;
        format!("${tag}{}", self.counter)
    }

    fn record_reuse(reused: &mut Vec<VarInfo>, var: &VarInfo) {
        if !reused.iter().any(|v| v.name == var.name) {
            reused.push(var.clone());
        }
    }

    /// Algorithm 2's `SynExpr`: synthesizes an expression of type `ty`
    /// from the variables available at the program point.
    pub fn syn_expr(&mut self, ty: &Ty, vars: &[VarInfo], reused: &mut Vec<VarInfo>) -> Expr {
        if ty.is_primitive_alike() {
            // Rule 1/2: random value or a reused same-typed variable.
            let candidates: Vec<&VarInfo> = vars.iter().filter(|v| &v.ty == ty).collect();
            if !candidates.is_empty() && self.rng.gen_bool(0.5) {
                let pick = candidates[self.rng.gen_range(0..candidates.len())];
                Self::record_reuse(reused, pick);
                return Expr::local(&pick.name);
            }
            return self.literal(ty);
        }
        match ty {
            Ty::Array(elem) => {
                if elem.is_primitive_alike() {
                    // One-dimensional: build with synthesized elements.
                    let len = self.rng.gen_range(1..=4);
                    let elems = (0..len).map(|_| self.syn_expr(elem, vars, reused)).collect();
                    Expr::NewArrayInit { elem: (**elem).clone(), elems }
                } else {
                    // Higher dimensions: allocate with random sizes.
                    let dims = ty.dimensions();
                    let sizes: Vec<Expr> =
                        (0..dims).map(|_| Expr::IntLit(self.rng.gen_range(1..=3))).collect();
                    Expr::NewArray { elem: ty.base().clone(), dims: sizes, extra_dims: 0 }
                }
            }
            // Every MiniJava class has the implicit no-argument
            // constructor, so `new T()` always applies (Rule 3's `null`
            // fallback never fires here).
            Ty::Class(name) => Expr::NewObject(name.clone()),
            _ => Expr::Null,
        }
    }

    fn literal(&mut self, ty: &Ty) -> Expr {
        match ty {
            Ty::Int => Expr::IntLit(self.rng.gen_range(-10_000..10_000)),
            Ty::Long => Expr::LongLit(self.rng.gen_range(-1_000_000..1_000_000)),
            Ty::Byte => Expr::IntLit(self.rng.gen_range(-128..=127)),
            Ty::Bool => Expr::BoolLit(self.rng.gen_bool(0.5)),
            Ty::Str => {
                let n: u32 = self.rng.gen_range(0..1000);
                Expr::StrLit(format!("s{n}"))
            }
            _ => Expr::Null,
        }
    }

    /// Algorithm 2's `SynStmts`: a statement list instantiated from the
    /// skeleton corpus, or a writer template over a reused variable.
    pub fn syn_stmts(&mut self, vars: &[VarInfo], reused: &mut Vec<VarInfo>) -> Vec<Stmt> {
        let writable: Vec<&VarInfo> = vars.iter().filter(|v| v.ty.is_primitive_alike()).collect();
        if !writable.is_empty() && self.rng.gen_bool(0.3) {
            // Writer template: mutate a reused variable (then restored by
            // the backup/restore bracket).
            let var = writable[self.rng.gen_range(0..writable.len())].clone();
            Self::record_reuse(reused, &var);
            let target = LValue::Local(var.name.clone());
            let stmt = if var.ty.is_numeric() && self.rng.gen_bool(0.6) {
                let op = match self.rng.gen_range(0..4) {
                    0 => AssignOp::Add,
                    1 => AssignOp::Sub,
                    2 => AssignOp::Xor,
                    _ => AssignOp::Or,
                };
                Stmt::Assign { target, op, value: self.syn_expr(&Ty::Int, vars, reused) }
            } else {
                let value = self.syn_expr(&var.ty, vars, reused);
                Stmt::Assign { target, op: AssignOp::Set, value }
            };
            return vec![stmt];
        }
        self.instantiate_skeleton(vars, reused)
    }

    /// Corpus-only synthesis: writes nothing but fresh locals (used where
    /// neutrality requires it, e.g. before SW's wrapped statement).
    pub fn syn_stmts_pure(&mut self, vars: &[VarInfo], reused: &mut Vec<VarInfo>) -> Vec<Stmt> {
        self.instantiate_skeleton(vars, reused)
    }

    fn instantiate_skeleton(&mut self, vars: &[VarInfo], reused: &mut Vec<VarInfo>) -> Vec<Stmt> {
        let corpus = skeleton::parsed_corpus();
        let mut stmts = corpus[self.rng.gen_range(0..corpus.len())].clone();
        // Rename skeleton locals (`s_*`) to fresh names.
        let mut rename = std::collections::HashMap::new();
        collect_decl_names(&stmts, &mut |name| {
            if name.starts_with("s_") && !rename.contains_key(name) {
                *self.counter += 1;
                rename.insert(name.to_string(), format!("$s{}", self.counter));
            }
        });
        rewrite_stmts(
            &mut stmts,
            &mut |expr| match expr {
                Expr::Name(n) | Expr::Local(n) => {
                    if let Some(new) = rename.get(n) {
                        *n = new.clone();
                    }
                }
                Expr::FreeCall { name, .. } => {
                    let ty = match name.as_str() {
                        "__int" => Some(Ty::Int),
                        "__long" => Some(Ty::Long),
                        "__byte" => Some(Ty::Byte),
                        "__bool" => Some(Ty::Bool),
                        "__str" => Some(Ty::Str),
                        _ => None,
                    };
                    if let Some(ty) = ty {
                        *expr = self.syn_expr(&ty, vars, reused);
                    }
                }
                _ => {}
            },
            &mut |name| {
                if let Some(new) = rename.get(name) {
                    *name = new.clone();
                }
            },
        );
        stmts
    }

    /// Assembles the synthesized loop `L` (Figure 3's shared shell):
    ///
    /// ```text
    /// <backups of V'>
    /// <pre>                          // mutator-specific (e.g. SW's flag)
    /// __mute();
    /// int $lo = Math.min(MIN, e1);
    /// int $hi = Math.max(MAX, e2);
    /// try { for (int $i = $lo; $i < $hi; $i += STEP) { <body> } } catch { }
    /// <post>                         // mutator-specific (e.g. MI's reset)
    /// __unmute();
    /// <restores of V'>
    /// ```
    pub fn wrap_loop(
        &mut self,
        vars: &[VarInfo],
        mut reused: Vec<VarInfo>,
        pre: Vec<Stmt>,
        body: Vec<Stmt>,
        post: Vec<Stmt>,
    ) -> Vec<Stmt> {
        let i = self.fresh("i");
        let lo = self.fresh("lo");
        let hi = self.fresh("hi");
        let step = self.rng.gen_range(1..=self.params.step_max.max(1));
        let e1 = self.syn_expr(&Ty::Int, vars, &mut reused);
        let e2 = self.syn_expr(&Ty::Int, vars, &mut reused);
        let loop_stmt = Stmt::For {
            init: Some(Box::new(Stmt::VarDecl {
                name: i.clone(),
                ty: Ty::Int,
                init: Expr::local(&lo),
            })),
            cond: Some(Expr::bin(BinOp::Lt, Expr::local(&i), Expr::local(&hi))),
            step: Some(Box::new(Stmt::Assign {
                target: LValue::Local(i),
                op: AssignOp::Add,
                value: Expr::IntLit(step),
            })),
            body: Block::of(body),
        };
        let mut out: Vec<Stmt> = Vec::new();
        // Backups (dedup by name happened at record time).
        let mut restores: Vec<Stmt> = Vec::new();
        for var in &reused {
            let bk = self.fresh("bk");
            out.push(Stmt::VarDecl {
                name: bk.clone(),
                ty: var.ty.clone(),
                init: Expr::local(&var.name),
            });
            restores.push(Stmt::Assign {
                target: LValue::Local(var.name.clone()),
                op: AssignOp::Set,
                value: Expr::local(&bk),
            });
        }
        out.extend(pre);
        out.push(Stmt::Mute);
        out.push(Stmt::VarDecl {
            name: lo,
            ty: Ty::Int,
            init: Expr::IntrinsicCall {
                which: Intrinsic::Min,
                args: vec![Expr::IntLit(self.params.min), e1],
            },
        });
        out.push(Stmt::VarDecl {
            name: hi,
            ty: Ty::Int,
            init: Expr::IntrinsicCall {
                which: Intrinsic::Max,
                args: vec![Expr::IntLit(self.params.max), e2],
            },
        });
        out.push(Stmt::Try {
            body: Block::of(vec![loop_stmt]),
            catch: Some(Block::default()),
            finally: None,
        });
        out.extend(post);
        out.push(Stmt::Unmute);
        out.extend(restores);
        out
    }
}

/// Collects the names declared by `stmts` (including loop-init decls).
fn collect_decl_names(stmts: &[Stmt], f: &mut impl FnMut(&str)) {
    for stmt in stmts {
        match stmt {
            Stmt::VarDecl { name, .. } => f(name),
            Stmt::If { then_blk, else_blk, .. } => {
                collect_decl_names(&then_blk.stmts, f);
                if let Some(e) = else_blk {
                    collect_decl_names(&e.stmts, f);
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
                collect_decl_names(&body.stmts, f);
            }
            Stmt::For { init, body, .. } => {
                if let Some(init) = init {
                    collect_decl_names(std::slice::from_ref(init), f);
                }
                collect_decl_names(&body.stmts, f);
            }
            Stmt::Switch { cases, .. } => {
                for case in cases {
                    collect_decl_names(&case.body, f);
                }
            }
            Stmt::Block(b) => collect_decl_names(&b.stmts, f),
            Stmt::Try { body, catch, finally } => {
                collect_decl_names(&body.stmts, f);
                if let Some(c) = catch {
                    collect_decl_names(&c.stmts, f);
                }
                if let Some(fin) = finally {
                    collect_decl_names(&fin.stmts, f);
                }
            }
            _ => {}
        }
    }
}

/// Rewrites every expression (post-order) and declared name in `stmts`.
pub fn rewrite_stmts(
    stmts: &mut [Stmt],
    on_expr: &mut impl FnMut(&mut Expr),
    on_decl: &mut impl FnMut(&mut String),
) {
    for stmt in stmts {
        rewrite_stmt(stmt, on_expr, on_decl);
    }
}

fn rewrite_stmt(
    stmt: &mut Stmt,
    on_expr: &mut impl FnMut(&mut Expr),
    on_decl: &mut impl FnMut(&mut String),
) {
    match stmt {
        Stmt::VarDecl { name, init, .. } => {
            rewrite_expr(init, on_expr);
            on_decl(name);
        }
        Stmt::Assign { target, value, .. } => {
            rewrite_lvalue(target, on_expr, on_decl);
            rewrite_expr(value, on_expr);
        }
        Stmt::IncDec { target, .. } => rewrite_lvalue(target, on_expr, on_decl),
        Stmt::If { cond, then_blk, else_blk } => {
            rewrite_expr(cond, on_expr);
            rewrite_stmts(&mut then_blk.stmts, on_expr, on_decl);
            if let Some(e) = else_blk {
                rewrite_stmts(&mut e.stmts, on_expr, on_decl);
            }
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            rewrite_expr(cond, on_expr);
            rewrite_stmts(&mut body.stmts, on_expr, on_decl);
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(init) = init {
                rewrite_stmt(init, on_expr, on_decl);
            }
            if let Some(cond) = cond {
                rewrite_expr(cond, on_expr);
            }
            if let Some(step) = step {
                rewrite_stmt(step, on_expr, on_decl);
            }
            rewrite_stmts(&mut body.stmts, on_expr, on_decl);
        }
        Stmt::Switch { scrutinee, cases } => {
            rewrite_expr(scrutinee, on_expr);
            for case in cases {
                rewrite_stmts(&mut case.body, on_expr, on_decl);
            }
        }
        Stmt::Return(Some(value)) => rewrite_expr(value, on_expr),
        Stmt::ExprStmt(expr) => rewrite_expr(expr, on_expr),
        Stmt::Block(b) => rewrite_stmts(&mut b.stmts, on_expr, on_decl),
        Stmt::Try { body, catch, finally } => {
            rewrite_stmts(&mut body.stmts, on_expr, on_decl);
            if let Some(c) = catch {
                rewrite_stmts(&mut c.stmts, on_expr, on_decl);
            }
            if let Some(f) = finally {
                rewrite_stmts(&mut f.stmts, on_expr, on_decl);
            }
        }
        Stmt::Throw(code) => rewrite_expr(code, on_expr),
        Stmt::Println(value) => rewrite_expr(value, on_expr),
        Stmt::Break | Stmt::Continue | Stmt::Return(None) | Stmt::Mute | Stmt::Unmute => {}
    }
}

fn rewrite_lvalue(
    lvalue: &mut LValue,
    on_expr: &mut impl FnMut(&mut Expr),
    on_decl: &mut impl FnMut(&mut String),
) {
    match lvalue {
        LValue::Name(name) | LValue::Local(name) => on_decl(name),
        LValue::InstField { recv, .. } => rewrite_expr(recv, on_expr),
        LValue::Index { array, index } => {
            rewrite_expr(array, on_expr);
            rewrite_expr(index, on_expr);
        }
        LValue::StaticField { .. } => {}
    }
}

fn rewrite_expr(expr: &mut Expr, on_expr: &mut impl FnMut(&mut Expr)) {
    match expr {
        Expr::InstField { recv, .. } => rewrite_expr(recv, on_expr),
        Expr::Index { array, index } => {
            rewrite_expr(array, on_expr);
            rewrite_expr(index, on_expr);
        }
        Expr::Length(array) => rewrite_expr(array, on_expr),
        Expr::NewArray { dims, .. } => {
            for d in dims {
                rewrite_expr(d, on_expr);
            }
        }
        Expr::NewArrayInit { elems, .. } => {
            for e in elems {
                rewrite_expr(e, on_expr);
            }
        }
        Expr::StaticCall { args, .. }
        | Expr::FreeCall { args, .. }
        | Expr::IntrinsicCall { args, .. } => {
            for a in args {
                rewrite_expr(a, on_expr);
            }
        }
        Expr::InstCall { recv, args, .. } => {
            rewrite_expr(recv, on_expr);
            for a in args {
                rewrite_expr(a, on_expr);
            }
        }
        Expr::Unary { expr: inner, .. } | Expr::Cast { expr: inner, .. } => {
            rewrite_expr(inner, on_expr);
        }
        Expr::Binary { lhs, rhs, .. } => {
            rewrite_expr(lhs, on_expr);
            rewrite_expr(rhs, on_expr);
        }
        _ => {}
    }
    on_expr(expr);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth_env() -> (Rng64, SynthParams, u64) {
        (Rng64::seed_from_u64(1), SynthParams::for_kind(VmKind::HotSpotLike), 0)
    }

    fn vars() -> Vec<VarInfo> {
        vec![
            VarInfo { name: "x".into(), ty: Ty::Int, is_param: true },
            VarInfo { name: "l".into(), ty: Ty::Long, is_param: false },
            VarInfo { name: "b".into(), ty: Ty::Bool, is_param: false },
        ]
    }

    #[test]
    fn syn_expr_reuses_matching_variables() {
        let (mut rng, params, mut counter) = synth_env();
        let mut synth = Synth { rng: &mut rng, params: &params, counter: &mut counter };
        let vars = vars();
        let mut reused = Vec::new();
        let mut saw_reuse = false;
        for _ in 0..50 {
            if let Expr::Local(name) = synth.syn_expr(&Ty::Int, &vars, &mut reused) {
                assert_eq!(name, "x");
                saw_reuse = true;
            }
        }
        assert!(saw_reuse, "Rule 2 should fire with ~50% probability");
        assert!(reused.iter().any(|v| v.name == "x"));
        // Reuse list is deduplicated.
        let count = reused.iter().filter(|v| v.name == "x").count();
        assert_eq!(count, 1);
    }

    #[test]
    fn syn_expr_array_and_class_rules() {
        let (mut rng, params, mut counter) = synth_env();
        let mut synth = Synth { rng: &mut rng, params: &params, counter: &mut counter };
        let mut reused = Vec::new();
        let arr = synth.syn_expr(&Ty::Int.array_of(), &[], &mut reused);
        assert!(matches!(arr, Expr::NewArrayInit { .. }));
        let multi = synth.syn_expr(&Ty::Int.array_of().array_of(), &[], &mut reused);
        assert!(matches!(multi, Expr::NewArray { .. }));
        let obj = synth.syn_expr(&Ty::Class("T".into()), &[], &mut reused);
        assert_eq!(obj, Expr::NewObject("T".into()));
    }

    #[test]
    fn skeleton_instantiation_renames_and_fills() {
        let (mut rng, params, mut counter) = synth_env();
        let mut synth = Synth { rng: &mut rng, params: &params, counter: &mut counter };
        let vars = vars();
        for _ in 0..80 {
            let mut reused = Vec::new();
            let stmts = synth.syn_stmts_pure(&vars, &mut reused);
            // No `s_` name and no hole may survive instantiation.
            let bad = std::cell::Cell::new(false);
            let mut probe = stmts.clone();
            rewrite_stmts(
                &mut probe,
                &mut |e| {
                    if let Expr::FreeCall { name, .. } = e {
                        if name.starts_with("__") {
                            bad.set(true);
                        }
                    }
                    if let Expr::Name(n) | Expr::Local(n) = e {
                        if n.starts_with("s_") {
                            bad.set(true);
                        }
                    }
                },
                &mut |n| {
                    if n.starts_with("s_") {
                        bad.set(true);
                    }
                },
            );
            assert!(!bad.get(), "unsubstituted skeleton parts in {stmts:?}");
        }
    }

    #[test]
    fn wrapped_loop_has_neutrality_armor() {
        let (mut rng, params, mut counter) = synth_env();
        let mut synth = Synth { rng: &mut rng, params: &params, counter: &mut counter };
        let vars = vars();
        let mut reused = Vec::new();
        let body = synth.syn_stmts(&vars, &mut reused);
        // Force one reused var so backups appear.
        let reused_vars = vec![vars[0].clone()];
        let l = synth.wrap_loop(&vars, reused_vars, vec![], body, vec![]);
        assert!(matches!(l[0], Stmt::VarDecl { .. }), "backup first");
        assert!(l.iter().any(|s| matches!(s, Stmt::Mute)));
        assert!(l.iter().any(|s| matches!(s, Stmt::Unmute)));
        assert!(l.iter().any(|s| matches!(s, Stmt::Try { catch: Some(_), .. })));
        // Restore is the last statement.
        assert!(matches!(l.last(), Some(Stmt::Assign { op: AssignOp::Set, .. })));
    }

    #[test]
    fn params_scale_with_vm_kind() {
        let hs = SynthParams::for_kind(VmKind::HotSpotLike);
        let j9 = SynthParams::for_kind(VmKind::OpenJ9Like);
        assert!(hs.max > j9.max, "per-VM MIN/MAX track each VM's thresholds (§4.1)");
        assert!(hs.min < hs.max && j9.min < j9.max);
    }
}
