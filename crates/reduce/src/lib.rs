//! Syntax-guided test-case reduction — the Perses/C-Reduce role in the
//! paper's workflow (§2.2: "we reduced it automatically using Perses and
//! C-Reduce").
//!
//! Given a program and an interestingness predicate (e.g. "this mutant
//! still exposes the discrepancy"), the reducer repeatedly tries
//! syntactically valid shrinking transformations — dropping statements,
//! replacing blocks by their bodies, dropping unused methods and fields —
//! keeping each change only when the predicate still holds, until a fixed
//! point. All intermediate candidates re-run the type checker, so the
//! reducer never produces invalid programs (the Perses property).
//!
//! # Examples
//!
//! ```
//! use cse_reduce::reduce;
//!
//! let program = cse_lang::parse_and_check(
//!     r#"class T {
//!         static void main() {
//!             int a = 1;
//!             int b = 2;
//!             println(7);
//!             b += a;
//!         }
//!     }"#,
//! ).unwrap();
//! // Keep only programs that still print "7".
//! let reduced = reduce(&program, &mut |p| {
//!     let bc = cse_bytecode::compile(p).unwrap();
//!     let run = cse_vm::Vm::run_program(
//!         &bc,
//!         cse_vm::VmConfig::interpreter_only(cse_vm::VmKind::HotSpotLike),
//!     );
//!     run.output.contains('7')
//! });
//! let main = reduced.classes[0].method("main").unwrap();
//! assert_eq!(main.body.stmts.len(), 1, "only the println survives");
//! ```

#![forbid(unsafe_code)]

use cse_lang::ast::*;
use cse_lang::Program;

/// Reduction limits. The step budget bounds *candidate evaluations* (the
/// expensive unit: each one type-checks and usually executes a program),
/// making every reduction terminate in a machine-independent number of
/// steps — wall-clock never decides when reduction stops.
#[derive(Debug, Clone, Copy)]
pub struct ReduceConfig {
    /// Maximum candidate evaluations before the reducer returns the best
    /// program found so far.
    pub max_steps: usize,
}

impl Default for ReduceConfig {
    fn default() -> ReduceConfig {
        ReduceConfig { max_steps: 100_000 }
    }
}

/// What a budgeted reduction produced.
#[derive(Debug, Clone)]
pub struct ReduceOutcome {
    /// The smallest interesting program found.
    pub program: Program,
    /// Candidate evaluations spent.
    pub steps: usize,
    /// Whether the step budget ran out before reaching a fixed point (the
    /// result is still valid and interesting, just possibly not minimal).
    pub budget_exhausted: bool,
    /// Whether the *input* satisfied the predicate. When false, the input
    /// is returned unchanged and no reduction was attempted.
    pub input_interesting: bool,
}

/// Reduces `program` while `interesting` holds. The predicate receives
/// *checked* candidates only; it is never called on invalid programs.
///
/// Convenience wrapper over [`reduce_with`] using the default
/// [`ReduceConfig`]; panics in debug builds if the input itself is not
/// interesting.
pub fn reduce(program: &Program, interesting: &mut dyn FnMut(&Program) -> bool) -> Program {
    let outcome = reduce_with(program, ReduceConfig::default(), interesting);
    debug_assert!(outcome.input_interesting, "the input itself must be interesting");
    outcome.program
}

/// Budgeted reduction: like [`reduce`], but bounded by
/// `config.max_steps` candidate evaluations and reporting how the
/// reduction ended instead of asserting on uninteresting inputs (those
/// come back unchanged with `input_interesting = false`).
pub fn reduce_with(
    program: &Program,
    config: ReduceConfig,
    interesting: &mut dyn FnMut(&Program) -> bool,
) -> ReduceOutcome {
    let mut ctx = Ctx { interesting, steps: 0, max_steps: config.max_steps };
    let mut current = program.clone();
    // The input is trusted to be checked; only the predicate gates it.
    ctx.steps += 1;
    if !(ctx.interesting)(&current) {
        return ReduceOutcome {
            program: current,
            steps: ctx.steps,
            budget_exhausted: false,
            input_interesting: false,
        };
    }
    while !ctx.exhausted() {
        let mut changed = false;
        // Pass 1: drop entire methods (never `main`).
        changed |= try_drop_methods(&mut current, &mut ctx);
        // Pass 2: statement-level delta debugging in every block.
        changed |= try_drop_statements(&mut current, &mut ctx);
        // Pass 3: structural simplification (if -> branch body, loop ->
        // body, try -> body).
        changed |= try_flatten(&mut current, &mut ctx);
        // Pass 4: drop unused fields.
        changed |= try_drop_fields(&mut current, &mut ctx);
        if !changed {
            break;
        }
    }
    ReduceOutcome {
        program: current,
        steps: ctx.steps,
        budget_exhausted: ctx.exhausted(),
        input_interesting: true,
    }
}

/// Shared reduction state: the predicate plus the step budget.
struct Ctx<'a> {
    interesting: &'a mut dyn FnMut(&Program) -> bool,
    steps: usize,
    max_steps: usize,
}

impl Ctx<'_> {
    fn exhausted(&self) -> bool {
        self.steps >= self.max_steps
    }

    /// Checks a candidate and applies the predicate, charging one step.
    /// Out of budget, every candidate is rejected, so all pass loops
    /// drain without further predicate runs.
    fn accept(&mut self, candidate: &Program) -> bool {
        if self.exhausted() {
            return false;
        }
        self.steps += 1;
        let mut check = candidate.clone();
        if cse_lang::typeck::check(&mut check).is_err() {
            return false;
        }
        (self.interesting)(candidate)
    }
}

fn try_drop_methods(current: &mut Program, ctx: &mut Ctx) -> bool {
    let mut changed = false;
    'retry: loop {
        for c in 0..current.classes.len() {
            for m in 0..current.classes[c].methods.len() {
                if current.classes[c].methods[m].name == "main" {
                    continue;
                }
                let mut candidate = current.clone();
                candidate.classes[c].methods.remove(m);
                if ctx.accept(&candidate) {
                    *current = candidate;
                    changed = true;
                    continue 'retry;
                }
            }
        }
        return changed;
    }
}

fn try_drop_fields(current: &mut Program, ctx: &mut Ctx) -> bool {
    let mut changed = false;
    'retry: loop {
        for c in 0..current.classes.len() {
            for f in 0..current.classes[c].fields.len() {
                let mut candidate = current.clone();
                candidate.classes[c].fields.remove(f);
                if ctx.accept(&candidate) {
                    *current = candidate;
                    changed = true;
                    continue 'retry;
                }
            }
        }
        return changed;
    }
}

/// ddmin-style statement removal: tries chunks from large to small in
/// every block of every method.
fn try_drop_statements(current: &mut Program, ctx: &mut Ctx) -> bool {
    let mut changed = false;
    loop {
        let points = cse_lang::scope::collect_points(current);
        // Visit distinct blocks once (points enumerate indices within
        // blocks; index 0 identifies each block).
        let blocks: Vec<_> =
            points.into_iter().filter(|p| p.point.index == 0).map(|p| p.point).collect();
        let mut round_changed = false;
        for block_point in blocks {
            // Earlier removals may have invalidated this path; skip then.
            let Some(stmts) = cse_lang::scope::try_stmts_at_mut(current, &block_point) else {
                continue;
            };
            let len = stmts.len();
            if len == 0 {
                continue;
            }
            let mut chunk = len;
            while chunk >= 1 {
                let mut start = 0;
                while let Some(stmts) = cse_lang::scope::try_stmts_at_mut(current, &block_point) {
                    if start >= stmts.len() {
                        break;
                    }
                    let mut candidate = current.clone();
                    if let Some(stmts) =
                        cse_lang::scope::try_stmts_at_mut(&mut candidate, &block_point)
                    {
                        let end = (start + chunk).min(stmts.len());
                        stmts.drain(start..end);
                    }
                    if ctx.accept(&candidate) {
                        *current = candidate;
                        round_changed = true;
                    } else {
                        start += chunk;
                    }
                }
                chunk /= 2;
            }
        }
        changed |= round_changed;
        if !round_changed {
            return changed;
        }
    }
}

/// Replaces structured statements by (parts of) their bodies.
fn try_flatten(current: &mut Program, ctx: &mut Ctx) -> bool {
    let mut changed = false;
    'retry: loop {
        let points = cse_lang::scope::collect_points(current);
        for info in points {
            let stmts = cse_lang::scope::stmts_at(current, &info.point);
            if info.point.index >= stmts.len() {
                continue;
            }
            let replacements: Vec<Vec<Stmt>> = match &stmts[info.point.index] {
                Stmt::If { then_blk, else_blk, .. } => {
                    let mut options = vec![then_blk.stmts.clone()];
                    if let Some(e) = else_blk {
                        options.push(e.stmts.clone());
                    }
                    options
                }
                Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
                    vec![body.stmts.clone()]
                }
                Stmt::For { body, .. } => vec![body.stmts.clone()],
                Stmt::Block(b) => vec![b.stmts.clone()],
                Stmt::Try { body, .. } => vec![body.stmts.clone()],
                _ => continue,
            };
            for replacement in replacements {
                // Declarations escaping their block would change scoping;
                // skip those hoists. Loop-control jumps would dangle.
                let hazardous = replacement
                    .iter()
                    .any(|s| matches!(s, Stmt::VarDecl { .. } | Stmt::Break | Stmt::Continue));
                if hazardous {
                    continue;
                }
                let mut candidate = current.clone();
                {
                    let stmts = cse_lang::scope::stmts_at_mut(&mut candidate, &info.point);
                    stmts.remove(info.point.index);
                    for (offset, stmt) in replacement.into_iter().enumerate() {
                        stmts.insert(info.point.index + offset, stmt);
                    }
                }
                if ctx.accept(&candidate) {
                    *current = candidate;
                    changed = true;
                    continue 'retry;
                }
            }
        }
        return changed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_output(p: &Program) -> String {
        let bc = cse_bytecode::compile(p).unwrap();
        cse_vm::Vm::run_program(
            &bc,
            cse_vm::VmConfig::interpreter_only(cse_vm::VmKind::HotSpotLike),
        )
        .output
    }

    #[test]
    fn removes_irrelevant_statements_and_methods() {
        let program = cse_lang::parse_and_check(
            r#"
            class T {
                static int unused() { return 3; }
                static int wanted() { return 42; }
                static void main() {
                    int x = 5;
                    x += 2;
                    for (int i = 0; i < 3; i++) { x *= 2; }
                    println(wanted());
                    int y = x;
                }
            }
            "#,
        )
        .unwrap();
        let reduced = reduce(&program, &mut |p| run_output(p).contains("42"));
        assert!(reduced.classes[0].method("unused").is_none(), "unused method dropped");
        let main = reduced.classes[0].method("main").unwrap();
        assert_eq!(main.body.stmts.len(), 1);
        assert!(run_output(&reduced).contains("42"));
    }

    #[test]
    fn flattens_wrappers_around_the_interesting_statement() {
        let program = cse_lang::parse_and_check(
            r#"
            class T {
                static void main() {
                    if (true) {
                        try { println(9); } catch { }
                    }
                }
            }
            "#,
        )
        .unwrap();
        let reduced = reduce(&program, &mut |p| run_output(p).contains('9'));
        let main = reduced.classes[0].method("main").unwrap();
        assert_eq!(main.body.stmts, vec![Stmt::Println(Expr::IntLit(9))]);
    }

    #[test]
    fn keeps_load_bearing_code() {
        let program = cse_lang::parse_and_check(
            r#"
            class T {
                static void main() {
                    int x = 21;
                    x *= 2;
                    println(x);
                }
            }
            "#,
        )
        .unwrap();
        let reduced = reduce(&program, &mut |p| run_output(p).contains("42"));
        // All three statements are needed to print 42.
        assert_eq!(reduced.classes[0].method("main").unwrap().body.stmts.len(), 3);
    }

    #[test]
    fn never_offers_invalid_candidates() {
        let program = cse_lang::parse_and_check(
            r#"
            class T {
                static void main() {
                    int x = 1;
                    x += 1;
                    println(x);
                }
            }
            "#,
        )
        .unwrap();
        // The predicate double-checks validity of everything it sees.
        let reduced = reduce(&program, &mut |p| {
            let mut copy = p.clone();
            cse_lang::typeck::check(&mut copy).expect("reducer offered an invalid candidate");
            run_output(p).contains('2')
        });
        assert!(run_output(&reduced).contains('2'));
    }
}
