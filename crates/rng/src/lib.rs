//! A small, self-contained, deterministic PRNG.
//!
//! Campaigns and the seed generator only ever need reproducible streams
//! keyed by a `u64` seed — there is no cryptographic or OS-entropy
//! requirement anywhere in the workspace. Depending on the external
//! `rand` crate made the tier-1 build impossible offline, so this crate
//! provides the tiny API surface the workspace actually uses:
//! [`Rng64::seed_from_u64`], [`Rng64::gen_range`], and
//! [`Rng64::gen_bool`].
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 exactly as the reference implementation recommends. Both
//! algorithms are public domain. Streams are stable across platforms and
//! releases: campaign seeds, checkpoints, and stored reproducers rely on
//! that.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step — used to expand one `u64` seed into a full xoshiro
/// state, and good enough on its own for cheap one-shot hashing.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng64 {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng64 { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)` via 128-bit multiply-shift.
    #[inline]
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, matching the resolution of `f64`.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniform value from a half-open or inclusive integer range.
    ///
    /// Panics on an empty range, like `rand::Rng::gen_range`.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Integer ranges [`Rng64::gen_range`] can draw from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut Rng64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                // Width computed in u64 two's complement; a full-domain
                // 64-bit range is not representable and not used anywhere.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.bounded(span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Inclusive range covering the whole domain.
                    return rng.next_u64() as $t;
                }
                (start as u64).wrapping_add(rng.bounded(span)) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(Rng64::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_vector() {
        // Pins the stream: checkpoints and stored reproducers depend on
        // these values never changing.
        let mut rng = Rng64::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = Rng64::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert!(first.iter().any(|&v| v != 0));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-100..100);
            assert!((-100..100).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x = rng.gen_range(-128..=127i64);
            assert!((-128..=127).contains(&x));
            let y: u64 = rng.gen_range(1..=64);
            assert!((1..=64).contains(&y));
        }
    }

    #[test]
    fn ranges_hit_both_endpoints() {
        let mut rng = Rng64::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "4-way range misses values: {seen:?}");
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1_000 {
            match rng.gen_range(-2..=2) {
                -2 => lo = true,
                2 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi, "inclusive endpoints unreached");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng64::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
