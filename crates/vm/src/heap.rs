//! The garbage-collected heap.
//!
//! A simple stop-the-world mark-sweep collector triggered every
//! `gc_interval` allocations (deterministic, so interpreter and JIT runs
//! see identical GC schedules). The collector validates heap integrity
//! while marking: a JIT bug that corrupts the heap (the paper's dominant
//! OpenJ9 crash class, §4.2/Table 2) surfaces here as a
//! [`HeapError::Corruption`].

use cse_bytecode::{ArrKind, BProgram, ClassId};

use crate::value::{Str, Value};

/// Array payloads, one vector per element kind.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrData {
    I32(Vec<i32>),
    I64(Vec<i64>),
    I8(Vec<i8>),
    Bool(Vec<bool>),
    Str(Vec<Option<Str>>),
    Ref(Vec<Option<u32>>),
}

impl ArrData {
    /// Allocates a defaulted array of `kind` with `len` elements.
    pub fn new(kind: ArrKind, len: usize) -> ArrData {
        match kind {
            ArrKind::I32 => ArrData::I32(vec![0; len]),
            ArrKind::I64 => ArrData::I64(vec![0; len]),
            ArrKind::I8 => ArrData::I8(vec![0; len]),
            ArrKind::Bool => ArrData::Bool(vec![false; len]),
            ArrKind::Str => ArrData::Str(vec![None; len]),
            ArrKind::Ref => ArrData::Ref(vec![None; len]),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            ArrData::I32(v) => v.len(),
            ArrData::I64(v) => v.len(),
            ArrData::I8(v) => v.len(),
            ArrData::Bool(v) => v.len(),
            ArrData::Str(v) => v.len(),
            ArrData::Ref(v) => v.len(),
        }
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A heap object.
#[derive(Debug, Clone, PartialEq)]
pub enum HeapObj {
    Obj { class: ClassId, fields: Vec<Value> },
    Arr(ArrData),
}

/// Per-object header overhead charged against the byte budget.
const OBJ_HEADER_BYTES: usize = 16;

impl HeapObj {
    /// Estimated logical size in bytes, charged against
    /// [`Heap::max_bytes`]. A deterministic *model* of a production heap
    /// footprint (header + payload), not the host allocation size — it
    /// must be identical on every machine so budget verdicts are too.
    pub fn byte_size(&self) -> usize {
        let payload = match self {
            HeapObj::Obj { fields, .. } => fields.len() * 16,
            HeapObj::Arr(data) => match data {
                ArrData::I32(v) => v.len() * 4,
                ArrData::I64(v) => v.len() * 8,
                ArrData::I8(v) => v.len(),
                ArrData::Bool(v) => v.len(),
                ArrData::Str(v) => v.len() * 8,
                ArrData::Ref(v) => v.len() * 8,
            },
        };
        OBJ_HEADER_BYTES + payload
    }
}

/// Heap failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// The collector found a dangling or wild reference — in this VM that
    /// only happens when an injected JIT bug corrupted the heap.
    Corruption { detail: String },
    /// The heap exceeded its configured object budget.
    OutOfMemory,
    /// The heap exceeded its configured byte budget
    /// ([`Heap::max_bytes`]); surfaced to the VM as a graceful
    /// `Outcome::BudgetExceeded(Resource::HeapBytes)`.
    ByteBudget,
}

/// The garbage-collected heap.
#[derive(Debug)]
pub struct Heap {
    slots: Vec<Option<HeapObj>>,
    free: Vec<u32>,
    live: usize,
    live_bytes: usize,
    allocations_since_gc: usize,
    /// Run a GC after this many allocations (0 disables automatic GC).
    pub gc_interval: usize,
    /// Maximum simultaneously-live objects (the paper's 1 GiB heap analog).
    pub max_objects: usize,
    /// Maximum simultaneously-live logical bytes (see
    /// [`HeapObj::byte_size`]); `usize::MAX` disables the budget.
    pub max_bytes: usize,
    /// Number of collections performed.
    pub gc_count: u64,
}

impl Heap {
    /// Creates a heap with the given GC interval and object budget, and
    /// no byte budget (see [`Heap::with_max_bytes`]).
    pub fn new(gc_interval: usize, max_objects: usize) -> Heap {
        Heap {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            live_bytes: 0,
            allocations_since_gc: 0,
            gc_interval,
            max_objects,
            max_bytes: usize::MAX,
            gc_count: 0,
        }
    }

    /// Sets the live-byte budget.
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Heap {
        self.max_bytes = max_bytes;
        self
    }

    /// Whether allocating `extra` more bytes would exceed the byte
    /// budget. The VM pre-checks this so it can run a last-chance
    /// collection before declaring the budget exhausted.
    pub fn bytes_would_exceed(&self, extra: usize) -> bool {
        self.live_bytes.saturating_add(extra) > self.max_bytes
    }

    /// Whether an automatic GC is due (the VM calls this after allocations
    /// so it can supply the roots).
    pub fn gc_due(&self) -> bool {
        self.gc_interval > 0 && self.allocations_since_gc >= self.gc_interval
    }

    /// Allocates an object, returning its reference.
    pub fn alloc(&mut self, obj: HeapObj) -> Result<u32, HeapError> {
        if self.live >= self.max_objects {
            return Err(HeapError::OutOfMemory);
        }
        let size = obj.byte_size();
        if self.bytes_would_exceed(size) {
            return Err(HeapError::ByteBudget);
        }
        self.allocations_since_gc += 1;
        self.live += 1;
        self.live_bytes += size;
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(obj);
                Ok(slot)
            }
            None => {
                self.slots.push(Some(obj));
                Ok((self.slots.len() - 1) as u32)
            }
        }
    }

    /// Immutable object access.
    pub fn get(&self, r: u32) -> Option<&HeapObj> {
        self.slots.get(r as usize).and_then(Option::as_ref)
    }

    /// Mutable object access.
    pub fn get_mut(&mut self, r: u32) -> Option<&mut HeapObj> {
        self.slots.get_mut(r as usize).and_then(Option::as_mut)
    }

    /// Number of live objects.
    pub fn live_objects(&self) -> usize {
        self.live
    }

    /// Estimated live bytes (see [`HeapObj::byte_size`]).
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Mark-sweep collection from `roots`, validating integrity.
    ///
    /// `program` supplies class layouts so object field counts can be
    /// validated against their declared shapes.
    pub fn collect(&mut self, roots: &[Value], program: &BProgram) -> Result<(), HeapError> {
        self.gc_count += 1;
        self.allocations_since_gc = 0;
        let mut marks = vec![false; self.slots.len()];
        let mut stack: Vec<u32> = Vec::new();
        for root in roots {
            if let Value::Ref(r) = root {
                stack.push(*r);
            }
        }
        while let Some(r) = stack.pop() {
            let idx = r as usize;
            if idx >= self.slots.len() {
                return Err(HeapError::Corruption {
                    detail: format!("wild reference {r} beyond heap end {}", self.slots.len()),
                });
            }
            if marks[idx] {
                continue;
            }
            let obj = self.slots[idx].as_ref().ok_or_else(|| HeapError::Corruption {
                detail: format!("dangling reference {r} to a freed slot"),
            })?;
            marks[idx] = true;
            match obj {
                HeapObj::Obj { class, fields } => {
                    let declared =
                        program.classes.get(class.0 as usize).map(|c| c.inst_fields.len());
                    if declared != Some(fields.len()) {
                        return Err(HeapError::Corruption {
                            detail: format!(
                                "object {r} has {} fields, class declares {declared:?}",
                                fields.len()
                            ),
                        });
                    }
                    for field in fields {
                        if let Value::Ref(child) = field {
                            stack.push(*child);
                        }
                    }
                }
                HeapObj::Arr(data) => {
                    if let ArrData::Ref(elems) = data {
                        for elem in elems.iter().flatten() {
                            stack.push(*elem);
                        }
                    }
                }
            }
        }
        // Sweep. Byte sizes are recomputed at sweep time: fault injection
        // can grow an object after allocation, so the saturating
        // subtraction keeps the counter sane either way.
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_some() && !marks[idx] {
                let freed = slot.as_ref().map(HeapObj::byte_size).unwrap_or(0);
                self.live_bytes = self.live_bytes.saturating_sub(freed);
                *slot = None;
                self.free.push(idx as u32);
                self.live -= 1;
            }
        }
        Ok(())
    }

    /// Deliberately corrupts the heap (used by injected JIT bugs): the
    /// most recently allocated live object's shape is damaged so the next
    /// collection fails validation.
    pub fn corrupt_for_fault_injection(&mut self) {
        for slot in self.slots.iter_mut().rev() {
            match slot {
                Some(HeapObj::Obj { fields, .. }) => {
                    // A field count mismatch models a JIT writing past the
                    // end of an object.
                    fields.push(Value::Ref(u32::MAX));
                    return;
                }
                Some(HeapObj::Arr(ArrData::Ref(elems))) => {
                    elems.push(Some(u32::MAX));
                    return;
                }
                _ => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> BProgram {
        let program =
            cse_lang::parse_and_check("class P { int a; int b; static void main() { } }").unwrap();
        cse_bytecode::compile(&program).unwrap()
    }

    #[test]
    fn alloc_and_access() {
        let mut heap = Heap::new(0, 100);
        let r = heap.alloc(HeapObj::Arr(ArrData::new(ArrKind::I32, 3))).unwrap();
        match heap.get_mut(r).unwrap() {
            HeapObj::Arr(ArrData::I32(v)) => v[1] = 42,
            _ => panic!(),
        }
        match heap.get(r).unwrap() {
            HeapObj::Arr(ArrData::I32(v)) => assert_eq!(v[1], 42),
            _ => panic!(),
        }
    }

    #[test]
    fn collect_frees_unreachable() {
        let program = tiny_program();
        let mut heap = Heap::new(0, 100);
        let a = heap.alloc(HeapObj::Arr(ArrData::new(ArrKind::I32, 1))).unwrap();
        let _b = heap.alloc(HeapObj::Arr(ArrData::new(ArrKind::I32, 1))).unwrap();
        assert_eq!(heap.live_objects(), 2);
        heap.collect(&[Value::Ref(a)], &program).unwrap();
        assert_eq!(heap.live_objects(), 1);
        assert!(heap.get(a).is_some());
    }

    #[test]
    fn collect_traverses_ref_arrays_and_objects() {
        let program = tiny_program();
        let mut heap = Heap::new(0, 100);
        let inner = heap.alloc(HeapObj::Arr(ArrData::new(ArrKind::I32, 1))).unwrap();
        let obj = heap
            .alloc(HeapObj::Obj { class: ClassId(0), fields: vec![Value::I(0), Value::I(1)] })
            .unwrap();
        let outer = heap.alloc(HeapObj::Arr(ArrData::Ref(vec![Some(inner), Some(obj)]))).unwrap();
        heap.collect(&[Value::Ref(outer)], &program).unwrap();
        assert_eq!(heap.live_objects(), 3);
    }

    #[test]
    fn gc_interval_trips() {
        let mut heap = Heap::new(2, 100);
        heap.alloc(HeapObj::Arr(ArrData::new(ArrKind::I32, 1))).unwrap();
        assert!(!heap.gc_due());
        heap.alloc(HeapObj::Arr(ArrData::new(ArrKind::I32, 1))).unwrap();
        assert!(heap.gc_due());
    }

    #[test]
    fn out_of_memory() {
        let mut heap = Heap::new(0, 1);
        heap.alloc(HeapObj::Arr(ArrData::new(ArrKind::I32, 1))).unwrap();
        assert_eq!(
            heap.alloc(HeapObj::Arr(ArrData::new(ArrKind::I32, 1))),
            Err(HeapError::OutOfMemory)
        );
    }

    #[test]
    fn byte_budget_trips_and_recovers_after_gc() {
        let program = tiny_program();
        // Header (16) + 100 i32s (400) = 416 bytes per array.
        let mut heap = Heap::new(0, 100).with_max_bytes(1000);
        let a = heap.alloc(HeapObj::Arr(ArrData::new(ArrKind::I32, 100))).unwrap();
        heap.alloc(HeapObj::Arr(ArrData::new(ArrKind::I32, 100))).unwrap();
        assert_eq!(heap.live_bytes(), 832);
        assert_eq!(
            heap.alloc(HeapObj::Arr(ArrData::new(ArrKind::I32, 100))),
            Err(HeapError::ByteBudget)
        );
        // Collecting the garbage array frees its bytes.
        heap.collect(&[Value::Ref(a)], &program).unwrap();
        assert_eq!(heap.live_bytes(), 416);
        heap.alloc(HeapObj::Arr(ArrData::new(ArrKind::I32, 100))).unwrap();
    }

    #[test]
    fn corruption_detected_by_gc() {
        let program = tiny_program();
        let mut heap = Heap::new(0, 100);
        let obj = heap
            .alloc(HeapObj::Obj { class: ClassId(0), fields: vec![Value::I(0), Value::I(1)] })
            .unwrap();
        heap.corrupt_for_fault_injection();
        let err = heap.collect(&[Value::Ref(obj)], &program).unwrap_err();
        assert!(matches!(err, HeapError::Corruption { .. }));
    }

    #[test]
    fn wild_reference_detected() {
        let program = tiny_program();
        let mut heap = Heap::new(0, 100);
        let err = heap.collect(&[Value::Ref(999)], &program).unwrap_err();
        assert!(matches!(err, HeapError::Corruption { .. }));
    }

    #[test]
    fn slot_reuse_after_gc() {
        let program = tiny_program();
        let mut heap = Heap::new(0, 100);
        let a = heap.alloc(HeapObj::Arr(ArrData::new(ArrKind::I32, 1))).unwrap();
        heap.collect(&[], &program).unwrap();
        let b = heap.alloc(HeapObj::Arr(ArrData::new(ArrKind::I64, 1))).unwrap();
        assert_eq!(a, b, "freed slot should be reused deterministically");
    }
}
