//! Trace events — the raw material for JIT-traces (Definition 3.2/3.3).
//!
//! The VM records every compilation-state transition: JIT and OSR
//! compilations, de-optimizations, and (optionally) per-call execution
//! modes. `cse-core` reconstructs temperature vectors and JIT-traces from
//! this log.

use cse_bytecode::MethodId;

use crate::config::Tier;

/// Why a method was compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompileReason {
    /// Method counter crossed a threshold.
    Invocations,
    /// Back-edge counter of the loop headed at `header` crossed a
    /// threshold (OSR compilation).
    Osr { header: u32 },
    /// A forced plan demanded it.
    Forced,
}

/// Why compiled code was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeoptReason {
    /// A speculated-never-taken branch was taken (uncommon trap).
    BranchSpeculation,
    /// A speculated-never-taken switch arm was hit.
    SwitchSpeculation,
}

/// One trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// `method` was JIT/OSR-compiled at `tier` when its invocation counter
    /// read `invocation`.
    Compiled { method: MethodId, tier: Tier, reason: CompileReason, invocation: u64 },
    /// `method` hit an uncommon trap at bytecode `bc_pc` and fell back to
    /// the interpreter — the paper's "cooled down by uncommon traps".
    Deopt { method: MethodId, tier: Tier, bc_pc: u32, reason: DeoptReason, invocation: u64 },
    /// A call began in the given mode (recorded only when
    /// `record_method_entries` is on).
    MethodEntry { method: MethodId, tier: Tier, invocation: u64 },
    /// A garbage collection ran.
    GcRun { live_before: usize, live_after: usize },
}

impl TraceEvent {
    /// The method this event concerns, if any.
    pub fn method(&self) -> Option<MethodId> {
        match self {
            TraceEvent::Compiled { method, .. }
            | TraceEvent::Deopt { method, .. }
            | TraceEvent::MethodEntry { method, .. } => Some(*method),
            TraceEvent::GcRun { .. } => None,
        }
    }

    /// Whether this is a compilation-state transition (compile or deopt) —
    /// the events that distinguish JIT-traces.
    pub fn is_tier_transition(&self) -> bool {
        matches!(self, TraceEvent::Compiled { .. } | TraceEvent::Deopt { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let e = TraceEvent::Compiled {
            method: MethodId(2),
            tier: Tier::T1,
            reason: CompileReason::Invocations,
            invocation: 100,
        };
        assert_eq!(e.method(), Some(MethodId(2)));
        assert!(e.is_tier_transition());
        let gc = TraceEvent::GcRun { live_before: 10, live_after: 2 };
        assert_eq!(gc.method(), None);
        assert!(!gc.is_tier_transition());
    }
}
