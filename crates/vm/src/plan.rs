//! Forced compilation plans — `LVM(P, φ)` from Definition 3.3.
//!
//! A plan pins the execution mode of specific (method, invocation-index)
//! pairs, bypassing profiling counters. This is the "straightforward and
//! ideal realization of CSE" the paper describes in §3.2: complete control
//! over the interleaving between interpretation and JIT compilation. It is
//! feasible here because we own the VM; the paper's JoNM exists precisely
//! because production VMs do not expose this interface. The Figure 1
//! compilation-space enumeration uses these plans.

use std::collections::HashMap;

use cse_bytecode::MethodId;

use crate::config::Tier;

/// How one method call executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Bytecode interpretation (temperature `t0`).
    Interpret,
    /// Execute code JIT-compiled at the given tier (temperature `t_i`).
    Compiled(Tier),
}

/// A forced compilation plan.
#[derive(Debug, Clone, Default)]
pub struct ForcedPlan {
    /// Mode for calls without a specific entry.
    pub default: Option<ExecMode>,
    /// Mode per (method, 0-based invocation index).
    pub per_call: HashMap<(MethodId, u64), ExecMode>,
}

impl ForcedPlan {
    /// Forces *every* call of every method to the given tier — the
    /// traditional `count=0` baseline.
    pub fn all(tier: Tier) -> ForcedPlan {
        ForcedPlan { default: Some(ExecMode::Compiled(tier)), per_call: HashMap::new() }
    }

    /// Forces every call to be interpreted.
    pub fn all_interpreted() -> ForcedPlan {
        ForcedPlan { default: Some(ExecMode::Interpret), per_call: HashMap::new() }
    }

    /// An empty plan that defers every decision to profiling (useful as a
    /// base for `set`).
    pub fn selective() -> ForcedPlan {
        ForcedPlan { default: None, per_call: HashMap::new() }
    }

    /// Pins one (method, invocation) pair.
    pub fn set(&mut self, method: MethodId, invocation: u64, mode: ExecMode) -> &mut Self {
        self.per_call.insert((method, invocation), mode);
        self
    }

    /// The forced mode for the given call, if any.
    pub fn mode_for(&self, method: MethodId, invocation: u64) -> Option<ExecMode> {
        self.per_call.get(&(method, invocation)).copied().or(self.default)
    }

    /// Order-stable fingerprint of the plan (the `per_call` map is hashed
    /// in sorted coordinate order), used as an execution-memoization key
    /// component.
    pub fn fingerprint(&self) -> u64 {
        fn mode_tag(mode: Option<ExecMode>) -> u64 {
            match mode {
                None => 0,
                Some(ExecMode::Interpret) => 1,
                Some(ExecMode::Compiled(tier)) => 2 + u64::from(tier.0),
            }
        }
        let mut fp = crate::profile::Fnv::new();
        fp.u64(mode_tag(self.default));
        let mut pins: Vec<(&(MethodId, u64), &ExecMode)> = self.per_call.iter().collect();
        pins.sort_by_key(|((method, invocation), _)| (method.0, *invocation));
        fp.u64(pins.len() as u64);
        for ((method, invocation), mode) in pins {
            fp.u64(u64::from(method.0));
            fp.u64(*invocation);
            fp.u64(mode_tag(Some(*mode)));
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_lookup_precedence() {
        let mut plan = ForcedPlan::all(Tier::T2);
        plan.set(MethodId(3), 1, ExecMode::Interpret);
        assert_eq!(plan.mode_for(MethodId(3), 0), Some(ExecMode::Compiled(Tier::T2)));
        assert_eq!(plan.mode_for(MethodId(3), 1), Some(ExecMode::Interpret));
        assert_eq!(plan.mode_for(MethodId(9), 7), Some(ExecMode::Compiled(Tier::T2)));
    }

    #[test]
    fn selective_plan_defers() {
        let mut plan = ForcedPlan::selective();
        plan.set(MethodId(0), 0, ExecMode::Compiled(Tier::T1));
        assert_eq!(plan.mode_for(MethodId(0), 0), Some(ExecMode::Compiled(Tier::T1)));
        assert_eq!(plan.mode_for(MethodId(0), 1), None);
    }
}
