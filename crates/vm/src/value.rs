//! Runtime values.

use std::rc::Rc;

/// A dynamically-tagged runtime value.
///
/// `byte` and `boolean` values live in the `I` variant (sign-extended /
/// 0-or-1), mirroring how the JVM's operand stack works. Strings are
/// immutable and live outside the garbage-collected heap; `Null` stands for
/// both null object references and null strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    I(i32),
    L(i64),
    S(Rc<str>),
    /// An object or array reference: an index into the VM heap.
    Ref(u32),
    Null,
}

impl Value {
    /// The `int` payload.
    ///
    /// # Panics
    ///
    /// Panics when the value is not an `I`; verified bytecode never does.
    pub fn as_i(&self) -> i32 {
        match self {
            Value::I(v) => *v,
            other => panic!("expected int value, found {other:?}"),
        }
    }

    /// The `long` payload (see [`Value::as_i`] for the panic contract).
    pub fn as_l(&self) -> i64 {
        match self {
            Value::L(v) => *v,
            other => panic!("expected long value, found {other:?}"),
        }
    }

    /// The boolean payload (an `I` of 0 or 1).
    pub fn as_bool(&self) -> bool {
        self.as_i() != 0
    }

    /// The string payload, or `None` for `Null`.
    pub fn as_s(&self) -> Option<&Rc<str>> {
        match self {
            Value::S(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is the null value.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Reference identity for `==`/`!=` on reference-typed operands.
    pub fn ref_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Ref(a), Value::Ref(b)) => a == b,
            // A string is only ever identity-compared against null (the
            // front end rejects `Str == Str`).
            _ => false,
        }
    }

    /// The default value for a static type.
    pub fn default_of(ty: &cse_lang::Ty) -> Value {
        use cse_lang::Ty;
        match ty {
            Ty::Int | Ty::Byte | Ty::Bool => Value::I(0),
            Ty::Long => Value::L(0),
            _ => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_lang::Ty;

    #[test]
    fn accessors() {
        assert_eq!(Value::I(7).as_i(), 7);
        assert_eq!(Value::L(9).as_l(), 9);
        assert!(Value::I(1).as_bool());
        assert!(!Value::I(0).as_bool());
        assert!(Value::Null.is_null());
    }

    #[test]
    fn ref_identity() {
        assert!(Value::Null.ref_eq(&Value::Null));
        assert!(Value::Ref(3).ref_eq(&Value::Ref(3)));
        assert!(!Value::Ref(3).ref_eq(&Value::Ref(4)));
        assert!(!Value::S("x".into()).ref_eq(&Value::Null));
        assert!(!Value::Null.ref_eq(&Value::Ref(0)));
    }

    #[test]
    fn defaults() {
        assert_eq!(Value::default_of(&Ty::Int), Value::I(0));
        assert_eq!(Value::default_of(&Ty::Byte), Value::I(0));
        assert_eq!(Value::default_of(&Ty::Long), Value::L(0));
        assert_eq!(Value::default_of(&Ty::Bool), Value::I(0));
        assert_eq!(Value::default_of(&Ty::Str), Value::Null);
        assert_eq!(Value::default_of(&Ty::Int.array_of()), Value::Null);
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn as_i_panics_on_wrong_tag() {
        let _ = Value::L(1).as_i();
    }
}
