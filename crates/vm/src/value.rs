//! Runtime values.

use std::rc::Rc;

/// The runtime string representation: a thin refcounted pointer.
///
/// `Rc<String>` keeps the `Value` enum at 16 bytes (`Rc<str>` is a fat
/// pointer and would force 24); cloning a string value on push/dup/binop
/// is a refcount bump either way, never a character copy. Literals are
/// interned once per program in the decoded instruction cache.
pub type Str = Rc<String>;

/// A dynamically-tagged runtime value.
///
/// `byte` and `boolean` values live in the `I` variant (sign-extended /
/// 0-or-1), mirroring how the JVM's operand stack works. Strings are
/// immutable and live outside the garbage-collected heap; `Null` stands for
/// both null object references and null strings.
///
/// Every non-string variant is plain `Copy` data, and `S` is a single
/// refcounted pointer, so `Value::clone` never allocates. A `size_of`
/// regression test below pins the 16-byte layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    I(i32),
    L(i64),
    S(Str),
    /// An object or array reference: an index into the VM heap.
    Ref(u32),
    Null,
}

impl Value {
    /// A string value from owned or borrowed text (allocates; hot paths
    /// should clone an interned [`Str`] instead).
    pub fn str(s: impl Into<String>) -> Value {
        Value::S(Rc::new(s.into()))
    }

    /// The `int` payload.
    ///
    /// # Panics
    ///
    /// Panics when the value is not an `I`; verified bytecode never does.
    pub fn as_i(&self) -> i32 {
        match self {
            Value::I(v) => *v,
            other => panic!("expected int value, found {other:?}"),
        }
    }

    /// The `long` payload (see [`Value::as_i`] for the panic contract).
    pub fn as_l(&self) -> i64 {
        match self {
            Value::L(v) => *v,
            other => panic!("expected long value, found {other:?}"),
        }
    }

    /// The boolean payload (an `I` of 0 or 1).
    pub fn as_bool(&self) -> bool {
        self.as_i() != 0
    }

    /// The string payload, or `None` for `Null`.
    pub fn as_s(&self) -> Option<&Str> {
        match self {
            Value::S(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is the null value.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Reference identity for `==`/`!=` on reference-typed operands.
    pub fn ref_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Ref(a), Value::Ref(b)) => a == b,
            // A string is only ever identity-compared against null (the
            // front end rejects `Str == Str`).
            _ => false,
        }
    }

    /// The default value for a static type.
    pub fn default_of(ty: &cse_lang::Ty) -> Value {
        use cse_lang::Ty;
        match ty {
            Ty::Int | Ty::Byte | Ty::Bool => Value::I(0),
            Ty::Long => Value::L(0),
            _ => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_lang::Ty;

    #[test]
    fn accessors() {
        assert_eq!(Value::I(7).as_i(), 7);
        assert_eq!(Value::L(9).as_l(), 9);
        assert!(Value::I(1).as_bool());
        assert!(!Value::I(0).as_bool());
        assert!(Value::Null.is_null());
    }

    #[test]
    fn ref_identity() {
        assert!(Value::Null.ref_eq(&Value::Null));
        assert!(Value::Ref(3).ref_eq(&Value::Ref(3)));
        assert!(!Value::Ref(3).ref_eq(&Value::Ref(4)));
        assert!(!Value::str("x").ref_eq(&Value::Null));
        assert!(!Value::Null.ref_eq(&Value::Ref(0)));
    }

    #[test]
    fn defaults() {
        assert_eq!(Value::default_of(&Ty::Int), Value::I(0));
        assert_eq!(Value::default_of(&Ty::Byte), Value::I(0));
        assert_eq!(Value::default_of(&Ty::Long), Value::L(0));
        assert_eq!(Value::default_of(&Ty::Bool), Value::I(0));
        assert_eq!(Value::default_of(&Ty::Str), Value::Null);
        assert_eq!(Value::default_of(&Ty::Int.array_of()), Value::Null);
    }

    #[test]
    fn compact_layout_regression_guard() {
        // The hot-path overhaul depends on values staying one pointer +
        // one word; a fat string pointer or an added variant payload
        // silently costs every push/dup/store a wider memcpy.
        assert!(std::mem::size_of::<Value>() <= 16, "Value grew past 16 bytes");
        assert_eq!(std::mem::size_of::<Str>(), std::mem::size_of::<usize>());
    }

    #[test]
    fn string_round_trip_and_sharing() {
        let v = Value::str("hello");
        let w = v.clone();
        let s = v.as_s().unwrap();
        assert_eq!(s.as_str(), "hello");
        // Cloning shares the allocation instead of deep-copying.
        assert!(Rc::ptr_eq(s, w.as_s().unwrap()));
        assert_eq!(v, Value::str("hello"));
        assert_ne!(v, Value::str("other"));
        assert_eq!(v.as_s().map(|s| s.len()), Some(5));
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn as_i_panics_on_wrong_tag() {
        let _ = Value::L(1).as_i();
    }
}
